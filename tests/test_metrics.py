"""Metric derivation tests (the figures' y-axes)."""

import pytest

from repro.core.counters import PerfCounters
from repro.core.metrics import (
    COMPONENT_LABELS,
    STALL_COMPONENTS,
    StallBreakdown,
    cycles_per_transaction,
    instructions_per_transaction,
    ipc,
    memory_stall_fraction,
    stall_breakdown,
    stalls_per_kilo_instruction,
    stalls_per_transaction,
)


def sample_counters() -> PerfCounters:
    return PerfCounters(
        instructions=10_000,
        cycles=20_000,
        transactions=10,
        l1i_misses=100,
        l2i_misses=10,
        llci_misses=1,
        l1d_misses=50,
        l2d_misses=20,
        llcd_misses=5,
    )


class TestBreakdown:
    def test_paper_convention_misses_times_penalty(self):
        b = stall_breakdown(sample_counters())
        assert b.l1i == 100 * 8
        assert b.l2i == 10 * 19
        assert b.llci == 1 * 167
        assert b.l1d == 50 * 8
        assert b.l2d == 20 * 19
        assert b.llcd == 5 * 167

    def test_totals(self):
        b = StallBreakdown(1, 2, 3, 4, 5, 6)
        assert b.instruction_total == 6
        assert b.data_total == 15
        assert b.total == 21

    def test_scaled_and_iter(self):
        b = StallBreakdown(10, 20, 30, 40, 50, 60)
        half = b.scaled(0.5)
        assert list(half) == [5, 10, 15, 20, 25, 30]

    def test_component_order_instruction_then_data(self):
        assert STALL_COMPONENTS == ("l1i", "l2i", "llci", "l1d", "l2d", "llcd")
        assert set(COMPONENT_LABELS) == set(STALL_COMPONENTS)

    def test_as_dict(self):
        b = StallBreakdown(1, 2, 3, 4, 5, 6)
        assert b.as_dict() == {"l1i": 1, "l2i": 2, "llci": 3, "l1d": 4, "l2d": 5, "llcd": 6}


class TestNormalisations:
    def test_per_kilo_instruction(self):
        b = stalls_per_kilo_instruction(sample_counters())
        assert b.l1i == pytest.approx(100 * 8 * 1000 / 10_000)

    def test_per_transaction(self):
        b = stalls_per_transaction(sample_counters())
        assert b.llcd == pytest.approx(5 * 167 / 10)

    def test_zero_instructions_safe(self):
        assert stalls_per_kilo_instruction(PerfCounters()).total == 0

    def test_zero_transactions_safe(self):
        assert stalls_per_transaction(PerfCounters()).total == 0

    def test_ipc(self):
        assert ipc(sample_counters()) == pytest.approx(0.5)
        assert ipc(PerfCounters()) == 0.0

    def test_instructions_per_transaction(self):
        assert instructions_per_transaction(sample_counters()) == pytest.approx(1000)

    def test_cycles_per_transaction(self):
        assert cycles_per_transaction(sample_counters()) == pytest.approx(2000)

    def test_memory_stall_fraction_top_down(self):
        # 1000 instr at ideal IPC 3 need ~333 cycles; 1000 elapsed
        # cycles mean ~2/3 of the time was stalled.
        c = PerfCounters(instructions=1000, cycles=1000)
        assert memory_stall_fraction(c) == pytest.approx(2 / 3, rel=0.01)
        assert memory_stall_fraction(PerfCounters()) == 0.0
        ideal = PerfCounters(instructions=3000, cycles=1000)
        assert memory_stall_fraction(ideal) == pytest.approx(0.0, abs=0.01)


class TestZeroWindowGuards:
    """A window with no retired work must yield zeros, never raise.

    Regression sweep: empty profiler windows (e.g. a core that saw no
    transactions) hit every derived metric with all-zero counters.
    """

    def test_every_derived_metric_survives_zero_counters(self):
        zero = PerfCounters()
        assert ipc(zero) == 0.0
        assert zero.ipc == 0.0
        assert instructions_per_transaction(zero) == 0.0
        assert cycles_per_transaction(zero) == 0.0
        assert memory_stall_fraction(zero) == 0.0
        assert stalls_per_kilo_instruction(zero).total == 0
        assert stalls_per_transaction(zero).total == 0
        assert stall_breakdown(zero).total == 0

    def test_misses_without_denominators(self):
        # Pathological but reachable mid-warm-up: misses recorded while
        # instructions/transactions are still zero in the window.
        c = PerfCounters(l1i_misses=10, l1d_misses=5)
        assert stalls_per_kilo_instruction(c).total == 0
        assert stalls_per_transaction(c).total == 0
        assert stall_breakdown(c).total > 0  # raw breakdown still counts

    def test_transactions_without_cycles(self):
        c = PerfCounters(transactions=3)
        assert cycles_per_transaction(c) == 0.0
        assert instructions_per_transaction(c) == 0.0
