"""Cross-engine behavioural tests.

Every engine must execute the same transaction bodies with the same
logical outcome — the property that lets the paper run one benchmark
against five systems.
"""

import pytest

from repro.engines.base import UserAbort
from repro.engines.common import TableSpec
from repro.engines.config import EngineConfig
from repro.engines.registry import ALL_SYSTEMS, PAPER_LABELS, canonical_name, make_engine
from repro.storage.record import microbench_schema

N_ROWS = 2000


def build(system, **config_kw):
    config = EngineConfig(materialize_threshold=0, **config_kw)
    engine = make_engine(system, config)
    engine.create_table(TableSpec("t", microbench_schema(), N_ROWS, grows=True))
    return engine


@pytest.fixture(params=ALL_SYSTEMS)
def engine(request):
    return build(request.param)


class TestRegistry:
    def test_all_systems_constructible(self, engine):
        assert engine.system in PAPER_LABELS.values()

    def test_aliases(self):
        assert canonical_name("Shore-MT") == "shore-mt"
        assert canonical_name("DBMS_D") == "dbms-d"
        assert canonical_name("volt") == "voltdb"

    def test_unknown_system(self):
        with pytest.raises(KeyError):
            canonical_name("oracle")

    def test_paper_ordering_disk_then_memory(self):
        assert ALL_SYSTEMS == ("shore-mt", "dbms-d", "voltdb", "hyper", "dbms-m")


class TestTransactionSemantics:
    def test_read_prepopulated_row(self, engine):
        rows = []
        engine.execute("p", lambda txn: rows.append(txn.read("t", 123)))
        assert rows[0] == microbench_schema().default_row(123)

    def test_read_missing_key(self, engine):
        rows = []
        engine.execute("p", lambda txn: rows.append(txn.read("t", N_ROWS + 5)))
        assert rows[0] is None

    def test_update_persists_across_transactions(self, engine):
        engine.execute("p", lambda txn: txn.update("t", 7, "value", 4242))
        rows = []
        engine.execute("p", lambda txn: rows.append(txn.read("t", 7)))
        assert rows[0][1] == 4242

    def test_update_callable(self, engine):
        engine.execute("p", lambda txn: txn.update("t", 7, "value", 100))
        engine.execute("p", lambda txn: txn.update("t", 7, "value", lambda v: v + 1))
        rows = []
        engine.execute("p", lambda txn: rows.append(txn.read("t", 7)))
        assert rows[0][1] == 101

    def test_read_your_own_write(self, engine):
        seen = []

        def body(txn):
            txn.update("t", 9, "value", 555)
            seen.append(txn.read("t", 9))

        engine.execute("p", body)
        assert seen[0][1] == 555

    def test_insert_then_read(self, engine):
        def body(txn):
            txn.insert("t", (99999, 1), key=99999)

        engine.execute("p", body)
        rows = []
        engine.execute("p", lambda txn: rows.append(txn.read("t", 99999)))
        assert rows[0] == (99999, 1)

    def test_update_missing_key_raises(self, engine):
        with pytest.raises(KeyError):
            engine.execute("p", lambda txn: txn.update("t", N_ROWS + 77, "value", 1))

    def test_scan_ordered(self, engine):
        got = []
        engine.execute("p", lambda txn: got.extend(txn.scan("t", 100, 5)))
        assert [k for k, _ in got] == [100, 101, 102, 103, 104]

    def test_delete_removes_key(self, engine):
        ok = []
        engine.execute("p", lambda txn: ok.append(txn.delete("t", 55)))
        assert ok == [True]
        rows = []
        engine.execute("p", lambda txn: rows.append(txn.read("t", 55)))
        assert rows[0] is None

    def test_delete_missing(self, engine):
        ok = []
        engine.execute("p", lambda txn: ok.append(txn.delete("t", N_ROWS + 1)))
        assert ok == [False]

    def test_user_abort_not_retried(self, engine):
        calls = []

        def body(txn):
            calls.append(1)
            raise UserAbort("1% rollback")

        engine.execute("p", body)
        assert len(calls) == 1
        assert engine.stats.aborts == 1


class TestTraces:
    def test_execute_returns_nonempty_trace(self, engine):
        trace = engine.execute("p", lambda txn: txn.read("t", 1))
        assert len(trace) > 0
        assert trace.instructions > 0

    def test_trace_has_instruction_and_data_events(self, engine):
        trace = engine.execute("p", lambda txn: txn.update("t", 1, "value", 2))
        kinds = {k for k, _, _ in trace.events()}
        assert 0 in kinds           # IFETCH (events() expands batched runs)
        assert kinds & {1, 2, 3}    # data traffic

    def test_repeated_procedure_same_code_lines(self, engine):
        t1 = engine.execute("p", lambda txn: txn.read("t", 1))
        code1 = {a for k, a, _ in t1.events() if k == 0}
        t2 = engine.execute("p", lambda txn: txn.read("t", 1))
        code2 = {a for k, a, _ in t2.events() if k == 0}
        assert code1 == code2  # instruction locality across transactions

    def test_stats_track_commits_and_ops(self, engine):
        engine.execute("p", lambda txn: txn.read("t", 1))
        assert engine.stats.commits == 1
        assert engine.stats.operations >= 1

    def test_hot_regions_exist(self, engine):
        regions = engine.hot_regions()
        assert regions and all(n > 0 for _, n in regions)

    def test_describe_lists_modules(self, engine):
        text = engine.describe()
        assert engine.system in text
        assert "KB" in text


class TestInstructionFootprints:
    """Paper Section 2.1/4: component structure differs where stated."""

    def test_dbms_d_has_the_largest_total_footprint(self):
        totals = {}
        for system in ALL_SYSTEMS:
            engine = build(system)
            totals[system] = engine.layout.total_footprint_bytes()
        assert totals["dbms-d"] == max(totals.values())

    def test_shore_mt_is_storage_manager_only(self):
        engine = build("shore-mt")
        outer = engine.layout.total_footprint_bytes("other")
        total = engine.layout.total_footprint_bytes()
        assert outer / total < 0.15

    def test_hyper_compiled_footprint_is_tiny(self):
        engine = build("hyper")
        engine.execute("p", lambda txn: txn.read("t", 1))
        compiled = engine.layout.module(engine.compiled_module("p"))
        assert compiled.footprint_bytes < 8 * 1024

    def test_per_txn_instruction_ordering(self):
        """DBMS D >> Shore-MT > DBMS M/VoltDB >> HyPer (Figures 2-3)."""
        instr = {}
        for system in ALL_SYSTEMS:
            engine = build(system)
            trace = engine.execute("p", lambda txn: txn.read("t", 1))
            instr[system] = trace.instructions
        assert instr["dbms-d"] > instr["shore-mt"]
        assert instr["shore-mt"] > instr["hyper"]
        assert instr["voltdb"] > instr["hyper"]
        assert instr["hyper"] < 4000
