"""Write-ahead-log tests."""

import pytest

from repro.core.trace import AccessTrace, DSTORE
from repro.storage.address_space import DataAddressSpace
from repro.storage.wal import WriteAheadLog, record_checksum, torn_copy


def make(**kw) -> WriteAheadLog:
    return WriteAheadLog("wal", DataAddressSpace(), **kw)


class TestAppend:
    def test_lsns_monotonic(self):
        wal = make()
        records = [wal.append(1, "update", 32) for _ in range(5)]
        lsns = [r.lsn for r in records]
        assert lsns == sorted(lsns)
        assert len(set(lsns)) == 5

    def test_append_emits_sequential_stores(self):
        wal = make()
        t = AccessTrace()
        wal.append(1, "update", 200, t, mod=4)
        assert all(k == DSTORE for k in t.kinds)
        assert t.addrs == list(range(t.addrs[0], t.addrs[0] + len(t)))

    def test_consecutive_appends_adjacent(self):
        wal = make()
        t1, t2 = AccessTrace(), AccessTrace()
        wal.append(1, "update", 40, t1)
        wal.append(1, "update", 40, t2)
        assert t2.addrs[0] - t1.addrs[0] <= 2  # append locality

    def test_buffer_wraps(self):
        wal = make(buffer_bytes=1024)
        for _ in range(100):
            wal.append(1, "update", 100)
        assert wal._head <= 1024


class TestGroupCommit:
    def test_flush_after_group_size_commits(self):
        wal = make(group_commit_size=4)
        for txn in range(4):
            wal.append(txn, "commit", 16)
        assert wal.flushes == 1
        assert wal.unflushed_records == 0

    def test_updates_do_not_trigger_flush(self):
        wal = make(group_commit_size=2)
        for _ in range(10):
            wal.append(1, "update", 16)
        assert wal.flushes == 0
        assert wal.unflushed_records == 10

    def test_force(self):
        wal = make()
        wal.append(1, "update", 16)
        wal.force()
        assert wal.unflushed_records == 0

    def test_record_line_estimate(self):
        wal = make()
        assert wal.estimated_record_lines(0) == 1
        assert wal.estimated_record_lines(200) == 4


class TestIntegrity:
    def test_append_stamps_verifiable_checksum(self):
        wal = make()
        record = wal.append(3, "update", 16, payload=("t", 1, (1, 2)))
        assert record.checksum == record_checksum(
            record.lsn, 3, "update", 16, ("t", 1, (1, 2))
        )
        assert record.intact

    def test_torn_copy_fails_verification(self):
        wal = make()
        record = wal.append(1, "update", 16)
        assert not torn_copy(record).intact

    def test_record_too_large_for_buffer(self):
        wal = make(buffer_bytes=256)
        with pytest.raises(ValueError, match="cannot fit"):
            wal.append(1, "update", 256)
        # A record that exactly fits still appends.
        wal.append(1, "update", 256 - 24)

    def test_truncate_before_reclaims_history(self):
        wal = make(retain_all=True)
        for _ in range(6):
            wal.append(1, "update", 8)
        dropped = wal.truncate_before(4)
        assert dropped == 3
        assert [r.lsn for r in wal.records] == [4, 5, 6]
