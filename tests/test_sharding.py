"""Sharded multi-primary 2PC tests.

Covers the partitioning map (hypothesis: total + stable), the 2PC happy
path, every protocol message dropped and duplicated at every fabric
step, coordinator crashes before and after the forced commit record,
participant crashes, and a ≥50-schedule seeded chaos sweep asserting
the three cross-shard invariants.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import (
    COORDINATOR_CRASH,
    FaultInjector,
    FaultSpec,
    NET_DROP,
    NET_DUPLICATE,
    NET_SEND,
    PARTICIPANT_CRASH,
    TPC_COORDINATOR,
    TPC_PARTICIPANT,
)
from repro.faults.invariants import tpcc_invariants
from repro.sharding import (
    ABORT,
    COMMIT,
    PARTITIONED_TABLES,
    ShardSpec,
    ShardedCluster,
    cross_shard_invariants,
    run_sharded_chaos_suite,
    shard_of_key,
    shard_of_warehouse,
    warehouse_of_key,
)
from repro.sharding.cluster import COMMITTED
from repro.storage.recovery import verify_against_engine
from repro.util.rng import root_rng

# Dense-key caps per table (matches repro.workloads.tpcc key packing).
_KEY_CAPS = {
    "warehouse": 1,
    "district": 10,
    "customer": 10 * 3000,
    "orders": 10 * 4096,
    "new_order": 10 * 4096,
    "order_line": 10 * 4096 * 15,
    "stock": 100_000,
}


class TestPartitioning:
    """The warehouse map is total and stable (hypothesis 3rd satellite)."""

    @given(
        table=st.sampled_from(PARTITIONED_TABLES),
        warehouse=st.integers(min_value=0, max_value=499),
        offset=st.integers(min_value=0, max_value=10**9),
        n_shards=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=200, deadline=None)
    def test_every_key_maps_to_exactly_one_shard(
        self, table, warehouse, offset, n_shards
    ):
        cap = _KEY_CAPS[table]
        key = warehouse * cap + (offset % cap)
        assert warehouse_of_key(table, key) == warehouse
        shard = shard_of_key(table, key, n_shards)
        assert shard is not None and 0 <= shard < n_shards
        assert shard == shard_of_warehouse(warehouse, n_shards)

    @given(
        warehouse=st.integers(min_value=0, max_value=10**6),
        n_shards=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=200, deadline=None)
    def test_placement_stable_and_enumeration_independent(
        self, warehouse, n_shards
    ):
        first = shard_of_warehouse(warehouse, n_shards)
        # Stable: re-asking (any number of times, any interleaving of
        # other warehouses in between) never moves the warehouse.
        for other in range(5):
            shard_of_warehouse(other, n_shards)
            assert shard_of_warehouse(warehouse, n_shards) == first
        assert 0 <= first < n_shards

    def test_unpartitioned_tables_have_no_owner(self):
        assert warehouse_of_key("item", 17) is None
        assert shard_of_key("history", 3, 4) is None

    def test_unknown_table_rejected(self):
        with pytest.raises(KeyError):
            warehouse_of_key("nope", 0)


def _drive(cluster: ShardedCluster, n_txns: int, seed: int = 1) -> int:
    rng = root_rng(seed + 1, "workload")
    committed = 0
    for _ in range(n_txns):
        if cluster.submit_next(rng) == COMMITTED:
            committed += 1
    return committed


def _check_clean(cluster: ShardedCluster) -> list[str]:
    """Resolve, then collect every invariant violation."""
    cluster.attach_injector(None)
    cluster.resolve_all()
    states = cluster.final_states()
    problems = list(cluster.problems)
    for shard in cluster.shards:
        problems.extend(
            f"state-roundtrip: shard {shard.shard_id}: {p}"
            for p in verify_against_engine(states[shard.shard_id], shard.engine)
        )
        problems.extend(
            f"tpcc-consistency: shard {shard.shard_id}: {p}"
            for p in tpcc_invariants(cluster.workload, shard.engine)
        )
    problems.extend(cross_shard_invariants(cluster, states))
    return problems


class TestHappyPath:
    def test_cross_shard_commits_are_atomic_and_acked(self):
        cluster = ShardedCluster(ShardSpec(n_shards=2, remote_pct=100.0))
        committed = _drive(cluster, 30)
        assert committed > 0
        assert cluster.counters["cross"] > 0
        assert cluster.counters["committed_global"] > 0
        assert cluster.counters["acked_global"] == cluster.counters["committed_global"]
        assert cluster.counters["unacked_global"] == 0
        assert cluster.prepare_ticks and cluster.commit_ticks
        assert _check_clean(cluster) == []

    def test_single_shard_degenerates_to_local(self):
        cluster = ShardedCluster(ShardSpec(n_shards=1, remote_pct=100.0))
        committed = _drive(cluster, 20)
        assert committed > 0
        assert cluster.counters["cross"] == 0
        assert cluster.counters["local"] == 20
        assert _check_clean(cluster) == []


class TestMessageFaults:
    """Drop / duplicate each 2PC message at every protocol step.

    With one cross-shard transaction the fabric send sequence is
    prepare, vote, decision, decision-ack (then retries); sweeping
    ``at_hit`` over the first eight sends hits every message kind at
    least once, on first transmission and on retry."""

    @pytest.mark.parametrize("kind", [NET_DROP, NET_DUPLICATE])
    @pytest.mark.parametrize("at_hit", range(1, 9))
    def test_message_fault_never_breaks_atomicity(self, kind, at_hit):
        cluster = ShardedCluster(ShardSpec(n_shards=2, remote_pct=100.0))
        cluster.attach_injector(
            FaultInjector([FaultSpec(NET_SEND, kind=kind, at_hit=at_hit)], seed=7)
        )
        _drive(cluster, 12)
        assert cluster.counters["cross"] > 0
        assert _check_clean(cluster) == []

    def test_dropped_prepare_is_retried_to_commit(self):
        cluster = ShardedCluster(ShardSpec(n_shards=2, remote_pct=100.0))
        cluster.attach_injector(
            FaultInjector([FaultSpec(NET_SEND, kind=NET_DROP, at_hit=1)], seed=7)
        )
        _drive(cluster, 12)
        # The very first prepare was dropped, yet commits still happen:
        # capped-backoff retransmission carried the protocol through.
        assert cluster.counters["committed_global"] > 0
        assert _check_clean(cluster) == []


class TestCoordinatorCrash:
    def _run_with_crash(self, point, kind, at_hit):
        cluster = ShardedCluster(ShardSpec(n_shards=2, remote_pct=100.0))
        cluster.attach_injector(
            FaultInjector([FaultSpec(point, kind=kind, at_hit=at_hit)], seed=3)
        )
        rng = root_rng(2, "workload")
        interrupted = None
        for _ in range(20):
            before = set(cluster.global_txns)
            cluster.submit_next(rng)
            if cluster.crashes:
                new = set(cluster.global_txns) - before
                interrupted = max(new) if new else None
                break
        assert cluster.crashes, "fault never fired"
        problems = _check_clean(cluster)
        return cluster, interrupted, problems

    def test_crash_before_commit_record_presumes_abort(self):
        # Coordinator hit 2 is step "decide": after all yes-votes, before
        # the forced coord-commit record — the decision must not survive.
        cluster, gtid, problems = self._run_with_crash(
            TPC_COORDINATOR, COORDINATOR_CRASH, at_hit=2
        )
        assert problems == []
        assert gtid is not None
        rec = cluster.global_txns[gtid]
        assert rec.decision == ABORT
        assert not rec.acked

    def test_crash_after_commit_record_preserves_commit(self):
        # Hit 3 is step "post-decision": the coord-commit record is
        # forced, so recovery must drive every member to committed.
        cluster, gtid, problems = self._run_with_crash(
            TPC_COORDINATOR, COORDINATOR_CRASH, at_hit=3
        )
        assert problems == []
        assert gtid is not None
        assert cluster.global_txns[gtid].decision == COMMIT

    def test_crash_at_begin_aborts_cleanly(self):
        cluster, gtid, problems = self._run_with_crash(
            TPC_COORDINATOR, COORDINATOR_CRASH, at_hit=1
        )
        assert problems == []
        if gtid is not None:
            assert cluster.global_txns[gtid].decision == ABORT

    @pytest.mark.parametrize("at_hit", [1, 2])
    def test_participant_crash_resolves_in_doubt(self, at_hit):
        cluster, _, problems = self._run_with_crash(
            TPC_PARTICIPANT, PARTICIPANT_CRASH, at_hit=at_hit
        )
        assert problems == []
        # Shutdown resolution leaves no shard holding prepared state.
        for shard in cluster.shards:
            assert not shard.in_doubt and not shard.open


class TestChaosSweep:
    def test_fifty_seed_sweep_holds_all_invariants(self):
        report, ok = run_sharded_chaos_suite(
            n_shards=2, remote_pct=40.0, seeds=range(1, 51), n_txns=16
        )
        assert ok, report

    def test_serial_and_parallel_sweeps_byte_identical(self):
        kwargs = dict(
            n_shards=3, remote_pct=30.0, replicas=2, ack="quorum",
            seeds=range(1, 7), n_txns=20,
        )
        serial, ok_s = run_sharded_chaos_suite(jobs=1, **kwargs)
        fanned, ok_f = run_sharded_chaos_suite(jobs=2, **kwargs)
        assert ok_s and ok_f, serial
        assert serial == fanned
