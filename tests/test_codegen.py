"""Code-module, layout, walker and compiler tests."""

import pytest

from repro.codegen.compiler import (
    CompilerProfile,
    DBMS_M_COMPILER,
    HYPER_COMPILER,
    TransactionCompiler,
)
from repro.codegen.layout import CODE_SEGMENT_LINES, CodeLayout
from repro.codegen.module import CodeModule, ENGINE, OTHER
from repro.codegen.walker import CodeWalker
from repro.core.trace import AccessTrace


def module(name="m", kb=64, group=ENGINE, **kw) -> CodeModule:
    return CodeModule(name, group, kb * 1024, **kw)


class TestCodeModule:
    def test_footprint_lines(self):
        assert module(kb=64).footprint_lines == 1024

    def test_instruction_density(self):
        m = module(instructions_per_line=16)
        assert m.instructions_for_lines(10) == 160

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"group": "bogus"},
            {"footprint_bytes": 0},
            {"instructions_per_line": 0},
            {"mispredict_rate": 1.5},
            {"base_cpi": 0},
        ],
    )
    def test_validation(self, kwargs):
        base = dict(name="m", group=ENGINE, footprint_bytes=1024)
        base.update(kwargs)
        with pytest.raises(ValueError):
            CodeModule(**base)


class TestCodeLayout:
    def test_modules_get_disjoint_page_aligned_ranges(self):
        layout = CodeLayout()
        a = layout.add(module("a", kb=10))
        b = layout.add(module("b", kb=10))
        end_a = layout.base_line(a) + layout.module(a).footprint_lines
        assert layout.base_line(b) >= end_a
        assert layout.base_line(a) % 64 == 0  # 4 KB pages = 64 lines

    def test_lookup_apis(self):
        layout = CodeLayout()
        mod_id = layout.add(module("parser", group=OTHER))
        assert layout.id_of("parser") == mod_id
        assert layout.name_of(mod_id) == "parser"
        assert layout.group_of(mod_id) == OTHER
        assert "parser" in layout
        assert len(layout) == 1

    def test_duplicate_name_rejected(self):
        layout = CodeLayout()
        layout.add(module("x"))
        with pytest.raises(ValueError):
            layout.add(module("x"))

    def test_engine_ids_and_footprint_totals(self):
        layout = CodeLayout()
        e = layout.add(module("e", kb=10, group=ENGINE))
        layout.add(module("o", kb=20, group=OTHER))
        assert layout.engine_ids() == [e]
        assert layout.total_footprint_bytes(ENGINE) == 10 * 1024
        assert layout.total_footprint_bytes() == 30 * 1024

    def test_code_below_data_segment(self):
        layout = CodeLayout()
        mod_id = layout.add(module("m", kb=512))
        top = layout.base_line(mod_id) + layout.module(mod_id).footprint_lines
        assert top < CODE_SEGMENT_LINES


class TestCodeWalker:
    def make(self, **kw):
        layout = CodeLayout()
        mod_id = layout.add(module("m", kb=64, **kw))
        return layout, CodeWalker(layout), mod_id

    def test_full_walk_emits_all_lines(self):
        layout, walker, mod_id = self.make()
        t = AccessTrace()
        instr = walker.run(t, mod_id, 1.0)
        assert len(t) == 1024
        assert instr == t.instructions

    def test_fraction_walk(self):
        layout, walker, mod_id = self.make()
        t = AccessTrace()
        walker.run(t, mod_id, 0.25)
        assert len(t) == 256

    def test_same_slice_same_lines(self):
        layout, walker, mod_id = self.make()
        t1, t2 = AccessTrace(), AccessTrace()
        walker.run_segment(t1, mod_id, 0.25, 0.5)
        walker.run_segment(t2, mod_id, 0.25, 0.5)
        assert t1.addrs == t2.addrs

    def test_disjoint_slices_disjoint_lines(self):
        layout, walker, mod_id = self.make()
        t1, t2 = AccessTrace(), AccessTrace()
        walker.run_segment(t1, mod_id, 0.0, 0.5)
        walker.run_segment(t2, mod_id, 0.5, 1.0)
        lines1 = {addr for _, addr, _ in t1.events()}
        lines2 = {addr for _, addr, _ in t2.events()}
        assert not lines1 & lines2

    def test_loop_refetches_body(self):
        layout, walker, mod_id = self.make()
        t = AccessTrace()
        walker.loop(t, mod_id, 0.0, 0.1, iterations=5)
        assert len(t) == 5 * 102  # 10% of 1024 lines, five times
        assert len({addr for _, addr, _ in t.events()}) == 102

    def test_invalid_segment_rejected(self):
        layout, walker, mod_id = self.make()
        with pytest.raises(ValueError):
            walker.run_segment(AccessTrace(), mod_id, 0.5, 0.4)

    def test_branch_accounting_with_carry(self):
        layout, walker, mod_id = self.make(
            branches_per_kilo_instruction=100, mispredict_rate=0.5
        )
        t = AccessTrace()
        for _ in range(50):
            walker.run_segment(t, mod_id, 0.0, 0.01)
        # ~10 lines/walk * 14 ipl * 50 = ~7000 instr -> ~700 branches.
        assert t.branches == pytest.approx(t.instructions * 0.1, rel=0.05)
        assert t.mispredicts == pytest.approx(t.branches * 0.5, rel=0.1)

    def test_base_cycles_accounted(self):
        layout, walker, mod_id = self.make(base_cpi=0.5)
        t = AccessTrace()
        walker.run(t, mod_id, 1.0)
        assert t.base_cycles == pytest.approx(t.instructions * 0.5)


class TestCompiler:
    def test_footprint_fraction_of_replaced(self):
        layout = CodeLayout()
        compiler = TransactionCompiler(CompilerProfile("t", footprint_factor=0.1))
        replaced = [module("a", kb=100), module("b", kb=100)]
        mod_id = compiler.compile(layout, "proc", replaced)
        compiled = layout.module(mod_id)
        assert compiled.footprint_bytes == int(200 * 1024 * 0.1)
        assert compiled.group == ENGINE
        assert compiled.name == "compiled:proc"

    def test_minimum_footprint_floor(self):
        layout = CodeLayout()
        compiler = TransactionCompiler(
            CompilerProfile("t", footprint_factor=0.001, min_footprint_bytes=4096)
        )
        mod_id = compiler.compile(layout, "p", [module("a", kb=10)])
        assert layout.module(mod_id).footprint_bytes == 4096

    def test_requires_replaced_modules(self):
        compiler = TransactionCompiler(HYPER_COMPILER)
        with pytest.raises(ValueError):
            compiler.compile(CodeLayout(), "p", [])

    def test_hyper_more_aggressive_than_dbms_m(self):
        assert HYPER_COMPILER.footprint_factor < DBMS_M_COMPILER.footprint_factor

    def test_compiled_code_is_dense_and_predictable(self):
        layout = CodeLayout()
        mod_id = TransactionCompiler(HYPER_COMPILER).compile(
            layout, "p", [module("a", kb=100)]
        )
        compiled = layout.module(mod_id)
        assert compiled.instructions_per_line >= 15
        assert compiled.branches_per_kilo_instruction < 100
        assert compiled.base_cpi < 0.4

    def test_invalid_profile(self):
        with pytest.raises(ValueError):
            CompilerProfile("bad", footprint_factor=0.0)
