"""repro-lint tests: rule corpus, engine mechanics, baseline, CLI."""

import json
from pathlib import Path

import pytest

from repro.lint import (
    Finding,
    LintConfig,
    LintEngine,
    lint_paths,
    rule_names,
)
from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.cli import main as lint_main

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

# Fixture files live under tests/, which auto-classification treats as
# non-sim; force sim so the sim-only rules run on them.
SIM_CONFIG = LintConfig(treat_as_sim=True)

RULES = tuple(rule_names())


def lint_fixture(name: str, select: tuple[str, ...] | None = None) -> list[Finding]:
    config = LintConfig(select=select, treat_as_sim=True)
    return LintEngine(config=config).lint_file(FIXTURES / name)


class TestRuleCatalogue:
    def test_eight_rules_registered(self):
        assert len(RULES) == 8
        assert RULES == (
            "wall-clock", "entropy", "global-random", "rng-factory",
            "unordered-iter", "float-eq", "mutable-default", "pool-seed",
        )

    @pytest.mark.parametrize("rule", RULES)
    def test_bad_fixture_fails_its_rule(self, rule):
        name = rule.replace("-", "_") + "_bad.py"
        findings = lint_fixture(name, select=(rule,))
        assert findings, f"{name} should trip the {rule} rule"
        assert all(f.rule == rule for f in findings)

    @pytest.mark.parametrize("rule", RULES)
    def test_good_fixture_is_clean_under_every_rule(self, rule):
        name = rule.replace("-", "_") + "_good.py"
        findings = lint_fixture(name)  # all eight rules
        assert findings == [], [f.render() for f in findings]

    def test_bad_fixtures_flag_every_call_site(self):
        # wall_clock_bad has three distinct clock reads; the rule must
        # see the aliased from-import as well as the dotted ones.
        findings = lint_fixture("wall_clock_bad.py", select=("wall-clock",))
        assert len(findings) >= 3

    def test_argless_random_gets_the_entropy_message(self):
        findings = lint_fixture("rng_factory_bad.py", select=("rng-factory",))
        assert any("argless" in f.message for f in findings)
        assert any("argless" not in f.message for f in findings)


class TestSimPathClassification:
    def test_sim_only_rules_skip_tests(self):
        source = "import random\nrng = random.Random(0)\n"
        engine = LintEngine(config=LintConfig())
        assert engine.lint_source(source, Path("tests/test_x.py")) == []
        assert engine.lint_source(source, Path("src/repro/core/x.py"))

    def test_conftest_and_benchmarks_are_not_sim(self):
        config = LintConfig()
        assert not config.is_sim_path(Path("src/conftest.py"))
        assert not config.is_sim_path(Path("benchmarks/bench_x.py"))
        assert config.is_sim_path(Path("src/repro/core/machine.py"))

    def test_non_sim_rules_still_run_on_tests(self):
        source = "import os\ntoken = os.urandom(8)\n"
        engine = LintEngine(config=LintConfig())
        findings = engine.lint_source(source, Path("tests/test_x.py"))
        assert [f.rule for f in findings] == ["entropy"]

    def test_allowlists_exempt_the_clock_and_factory_modules(self):
        engine = LintEngine(config=LintConfig())
        clock = "import time\nnow = time.time()\n"
        rng = "import random\nr = random.Random(0)\n"
        assert engine.lint_source(clock, Path("src/repro/util/clock.py")) == []
        assert engine.lint_source(rng, Path("src/repro/util/rng.py")) == []
        assert engine.lint_source(clock, Path("src/repro/core/machine.py"))
        assert engine.lint_source(rng, Path("src/repro/core/machine.py"))


class TestSuppression:
    def test_inline_pragma_narrows_to_named_rules(self):
        engine = LintEngine(config=LintConfig(treat_as_sim=True))
        path = Path("src/repro/x.py")
        src = "import random\nr = random.Random(0)  # repro-lint: disable=rng-factory\n"
        assert engine.lint_source(src, path) == []
        src = "import random\nr = random.Random(0)  # repro-lint: disable=wall-clock\n"
        assert engine.lint_source(src, path)

    def test_bare_disable_suppresses_everything_on_the_line(self):
        engine = LintEngine(config=LintConfig(treat_as_sim=True))
        src = "import random\nr = random.Random(0)  # repro-lint: disable\n"
        assert engine.lint_source(src, Path("src/repro/x.py")) == []

    def test_skip_file_pragma(self):
        engine = LintEngine(config=LintConfig(treat_as_sim=True))
        src = "# repro-lint: skip-file\nimport random\nr = random.Random(0)\n"
        assert engine.lint_source(src, Path("src/repro/x.py")) == []


class TestBaseline:
    def _finding(self) -> Finding:
        return Finding("src/repro/x.py", 3, 0, "rng-factory", "msg", "r = random.Random(0)")

    def test_fingerprint_survives_line_drift(self):
        a = self._finding()
        b = Finding(a.path, 99, 4, a.rule, a.message, a.snippet)
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_distinguishes_rule_and_snippet(self):
        a = self._finding()
        other_rule = Finding(a.path, a.line, a.col, "entropy", a.message, a.snippet)
        other_line = Finding(a.path, a.line, a.col, a.rule, a.message, "x = 1")
        assert a.fingerprint() != other_rule.fingerprint()
        assert a.fingerprint() != other_line.fingerprint()

    def test_round_trip_and_stale_detection(self, tmp_path):
        baseline = tmp_path / "baseline"
        finding = self._finding()
        assert write_baseline([finding], baseline) == 1
        pins = load_baseline(baseline)
        assert pins == {finding.fingerprint()}
        kept, suppressed, stale = apply_baseline([finding], pins)
        assert (kept, suppressed, stale) == ([], 1, set())
        kept, suppressed, stale = apply_baseline([], pins)
        assert kept == [] and suppressed == 0 and stale == pins

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope") == set()


class TestRepositoryIsClean:
    """The acceptance gate: the library lints clean, baseline empty."""

    def test_src_has_no_findings(self):
        findings = lint_paths([REPO_ROOT / "src"])
        assert findings == [], [f.render() for f in findings]

    def test_tests_have_no_findings(self):
        findings = lint_paths([REPO_ROOT / "tests"])
        assert findings == [], [f.render() for f in findings]

    def test_checked_in_baseline_is_empty(self):
        assert load_baseline(REPO_ROOT / ".repro-lint-baseline") == set()

    def test_fixture_corpus_is_excluded_from_directory_walks(self):
        findings = lint_paths([REPO_ROOT / "tests"])
        assert not any("lint_fixtures" in f.path for f in findings)


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert lint_main([str(target), "--no-baseline"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one_and_render_locations(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("import os\ntoken = os.urandom(8)\n")
        assert lint_main([str(target), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "dirty.py:2" in out and "entropy" in out

    def test_unknown_rule_and_missing_path_exit_two(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert lint_main([str(target), "--rules", "no-such-rule"]) == 2
        assert lint_main([str(tmp_path / "absent.py")]) == 2
        capsys.readouterr()

    def test_update_baseline_then_clean(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("import os\ntoken = os.urandom(8)\n")
        baseline = tmp_path / "baseline"
        assert lint_main([str(target), "--baseline", str(baseline), "--update-baseline"]) == 0
        assert lint_main([str(target), "--baseline", str(baseline)]) == 0
        assert "suppressed by baseline" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("import os\ntoken = os.urandom(8)\n")
        assert lint_main([str(target), "--no-baseline", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["rule"] == "entropy"
        assert len(payload[0]["fingerprint"]) == 16

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule in out

    def test_sim_paths_always_flag(self, tmp_path, capsys):
        target = tmp_path / "test_thing.py"
        target.write_text("import random\nr = random.Random(0)\n")
        assert lint_main([str(target), "--no-baseline"]) == 0
        assert lint_main([str(target), "--no-baseline", "--sim-paths", "always"]) == 1
        capsys.readouterr()

    def test_syntax_error_reported_as_parse_error(self, tmp_path, capsys):
        target = tmp_path / "broken.py"
        target.write_text("def f(:\n")
        assert lint_main([str(target), "--no-baseline"]) == 1
        assert "parse-error" in capsys.readouterr().out
