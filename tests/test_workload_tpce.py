"""TPC-E-lite workload tests (the paper-omission extension)."""

import random
from collections import Counter

import pytest

from repro.engines.config import EngineConfig
from repro.engines.registry import make_engine
from repro.workloads.tpce_lite import (
    ACCOUNTS_PER_CUSTOMER,
    HOLDINGS_PER_ACCOUNT,
    MIX,
    SECURITIES,
    TRADES_PER_ACCOUNT_CAP,
    TPCELite,
)


@pytest.fixture
def wl() -> TPCELite:
    return TPCELite(customers=2000)


@pytest.fixture
def engine(wl):
    engine = make_engine("voltdb", EngineConfig(materialize_threshold=0))
    wl.setup(engine)
    return engine


class TestSchema:
    def test_eight_tables(self, wl):
        assert len(wl.table_specs()) == 8

    def test_cardinalities(self, wl):
        specs = {s.name: s for s in wl.table_specs()}
        assert specs["customer"].n_rows == 2000
        assert specs["account"].n_rows == 2000 * ACCOUNTS_PER_CUSTOMER
        assert specs["security"].n_rows == SECURITIES
        assert specs["security"].replicated
        assert specs["trade"].grows

    def test_scale_from_db_bytes(self):
        wl = TPCELite(db_bytes=100 << 30)
        assert wl.n_customers > 1_000_000

    def test_read_heavy_mix(self):
        """TPC-E's hallmark: ~77% read-only transactions."""
        read_only = sum(p for name, p in MIX if name in ("trade_lookup", "market_watch"))
        assert read_only == pytest.approx(0.77, abs=0.01)
        assert sum(p for _, p in MIX) == pytest.approx(1.0)


class TestTransactions:
    def run_kind(self, wl, engine, kind, rng, max_tries=300):
        for _ in range(max_tries):
            got, body = wl.next_transaction(rng)
            if got == kind:
                engine.execute(got, body)
                return True
        return False

    def test_mix_distribution(self, wl):
        rng = random.Random(0)
        counts = Counter(wl.next_transaction(rng)[0] for _ in range(3000))
        for name, p in MIX:
            assert counts[name] / 3000 == pytest.approx(p, abs=0.03), name

    def test_trade_order_inserts(self, wl, engine):
        rng = random.Random(1)
        trades = engine.table("trade").heap
        before = trades.n_rows
        assert self.run_kind(wl, engine, "trade_order", rng)
        assert trades.n_rows == before + 1

    def test_trade_result_completes(self, wl, engine):
        rng = random.Random(2)
        assert self.run_kind(wl, engine, "trade_order", rng)
        assert self.run_kind(wl, engine, "trade_result", rng)
        assert engine.stats.commits >= 2

    def test_read_only_kinds_write_nothing(self, wl, engine):
        rng = random.Random(3)
        for kind in ("trade_lookup", "market_watch"):
            before = {n: t.heap.materialized_rows for n, t in engine.tables.items()}
            assert self.run_kind(wl, engine, kind, rng)
            after = {n: t.heap.materialized_rows for n, t in engine.tables.items()}
            assert before == after, kind

    def test_trade_ids_stay_in_account_range(self, wl):
        rng = random.Random(4)
        for _ in range(200):
            account = rng.randrange(wl.n_accounts)
            t = wl.next_trade_id(account)
            assert 0 <= t < TRADES_PER_ACCOUNT_CAP

    def test_holding_keys_dense(self, wl):
        key = wl.holding_key(7, HOLDINGS_PER_ACCOUNT - 1)
        assert wl.holding_key(8, 0) == key + 1

    def test_runs_on_all_engines(self, wl):
        from repro.engines.registry import ALL_SYSTEMS

        rng = random.Random(5)
        for system in ALL_SYSTEMS:
            engine = make_engine(system, EngineConfig(materialize_threshold=0))
            wl.setup(engine)
            for _ in range(12):
                kind, body = wl.next_transaction(rng)
                engine.execute(kind, body)
            assert engine.stats.commits > 0

    def test_partition_homing(self, wl):
        rng = random.Random(6)
        for _ in range(40):
            _, body = wl.next_transaction(rng, partition=0, n_partitions=4)
        # homing is by customer; spot-check the helper directly
        lo, hi = wl.partition_range(wl.n_customers, 0, 4)
        assert lo == 0 and hi == 500
