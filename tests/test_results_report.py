"""FigureResult and report-rendering tests."""

import pytest

from repro.bench.report import render_figure, render_summary_line, render_table1
from repro.bench.results import FigureResult, IPC, PERCENT_ENGINE, STALLS_PER_KI
from repro.bench.runner import RunResult
from repro.core.counters import PerfCounters
from repro.core.spec import IVY_BRIDGE


def fake_result(instr=10_000, cycles=20_000, txns=10, l1i=100, llcd=5,
                module_cycles=None, groups=None) -> RunResult:
    counters = PerfCounters(
        instructions=instr, cycles=cycles, transactions=txns,
        l1i_misses=l1i, llcd_misses=llcd,
    )
    return RunResult(
        system="test",
        counters=counters,
        module_cycles=module_cycles or {"engine_mod": 60.0, "outer_mod": 40.0},
        module_groups=groups or {"engine_mod": "engine", "outer_mod": "other"},
        server=IVY_BRIDGE,
        measured_txns=txns,
    )


def build_figure(metric) -> FigureResult:
    fig = FigureResult(
        figure_id="Figure X",
        title="test figure",
        metric=metric,
        x_label="size",
        x_values=["1MB", "10MB"],
        systems=["SysA", "SysB"],
    )
    for system in fig.systems:
        for x in fig.x_values:
            fig.add(system, x, fake_result())
    return fig


class TestFigureResult:
    def test_ipc_value(self):
        fig = build_figure(IPC)
        assert fig.value("SysA", "1MB") == pytest.approx(0.5)

    def test_percent_engine_value(self):
        fig = build_figure(PERCENT_ENGINE)
        assert fig.value("SysA", "1MB") == pytest.approx(60.0)

    def test_stall_breakdown(self):
        fig = build_figure(STALLS_PER_KI)
        b = fig.breakdown("SysB", "10MB")
        assert b.l1i == pytest.approx(100 * 8 / 10)
        assert fig.value("SysB", "10MB") == pytest.approx(b.total)

    def test_breakdown_rejected_for_scalar_metric(self):
        fig = build_figure(IPC)
        with pytest.raises(ValueError):
            fig.breakdown("SysA", "1MB")

    def test_series(self):
        fig = build_figure(IPC)
        assert fig.series("SysA") == [0.5, 0.5]

    def test_engine_time_fraction(self):
        assert fake_result().engine_time_fraction() == pytest.approx(0.6)


class TestRendering:
    def test_table1_contains_spec(self):
        text = render_table1(IVY_BRIDGE)
        assert "Ivy Bridge" in text
        assert "20MB" in text

    def test_scalar_figure_layout(self):
        text = render_figure(build_figure(IPC))
        assert "Figure X" in text
        assert "SysA" in text and "SysB" in text
        assert "0.50" in text

    def test_stall_figure_has_six_components(self):
        text = render_figure(build_figure(STALLS_PER_KI))
        for label in ("L1I", "L2I", "LLC I", "L1D", "L2D", "LLC D", "total"):
            assert label in text

    def test_notes_rendered(self):
        fig = build_figure(IPC)
        fig.notes.append("simulated substrate")
        assert "note: simulated substrate" in render_figure(fig)

    def test_summary_line(self):
        line = render_summary_line(build_figure(IPC))
        assert "SysA=0.50..0.50" in line


class TestRegistry:
    def test_all_figures_registered(self):
        from repro.bench.figures import ALL_IDS, REGISTRY

        assert len(ALL_IDS) == 29  # table1 + fig1..fig28
        assert "table1" in REGISTRY

    def test_id_normalisation(self):
        from repro.bench.figures import load

        assert load("fig1") is load("fig01")
        assert load("Figure 1") is load("fig1")

    def test_unknown_figure(self):
        from repro.bench.figures import load

        with pytest.raises(KeyError):
            load("fig99")

    def test_every_figure_module_importable_with_run(self):
        from repro.bench.figures import ALL_IDS, load

        for figure_id in ALL_IDS:
            assert callable(load(figure_id).run)


class TestCLI:
    def test_table1_via_cli(self, capsys):
        from repro.bench.cli import main

        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "regenerated" in out

    def test_unknown_figure_exit_code(self, capsys):
        from repro.bench.cli import main

        assert main(["fig99"]) == 2
