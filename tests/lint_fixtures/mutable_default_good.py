"""GOOD: None sentinels and field(default_factory=...)."""

from dataclasses import dataclass, field


def collect(item, into=None):
    into = [] if into is None else into
    into.append(item)
    return into


@dataclass
class Report:
    name: str = "run"
    problems: list = field(default_factory=list)
    extra: dict = field(default_factory=dict)
