"""BAD: OS entropy sources (entropy rule)."""

import os
import random
import secrets
import uuid


def fresh_ids():
    token = os.urandom(8)  # kernel entropy
    run_id = uuid.uuid4()  # random UUID
    nonce = secrets.token_hex(4)  # secrets module
    rng = random.SystemRandom()  # /dev/urandom-backed Random
    return token, run_id, nonce, rng
