"""BAD: set iteration order reaching results (unordered-iter rule)."""


def merge(left, right):
    report = []
    for name in set(left) | set(right):  # arbitrary order into the report
        report.append(name)
    rows = [n.upper() for n in {x for x in left}]  # comprehension over a set
    joined = ",".join({"a", "b", "c"})  # joined in hash order
    pinned = list(left.keys() | right.keys())  # keys-view union is a set
    return report, rows, joined, pinned
