"""GOOD: all randomness derives from the run seed."""

from repro.util.rng import child_rng


def fresh_ids(seed):
    rng = child_rng(seed, "ids")
    return rng.getrandbits(64), rng.getrandbits(128)
