"""GOOD: host-clock reads routed through repro.util.clock."""

from repro.util.clock import timestamp, wall_timer


def measure(run):
    started = wall_timer()
    run()
    return wall_timer() - started, timestamp()
