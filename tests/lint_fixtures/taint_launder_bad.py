"""Bad: wall-clock values laundered through helpers into sim state.

The syntactic wall-clock rule sees only the direct ``time.time()``
call in ``_now_offset``; both commits below are invisible to it and
must be caught by the interprocedural taint pass.
"""

import time


def _now_offset():
    # The source, one helper away from the sinks.
    return time.time() * 1000


def _commit(state, value):
    # Param 1 reaches a subscript store: a sinking parameter.
    state["skew"] = value


class Engine:
    def __init__(self):
        self.offset = 0

    def calibrate(self):
        # Launder through the helper's return value, then store.
        self.offset = int(_now_offset())


def record(state):
    # Launder through a sinking parameter.
    _commit(state, _now_offset())
