"""BAD: random.Random constructed outside the factory (rng-factory rule)."""

import random
from random import Random


def streams(seed):
    ad_hoc = random.Random(seed)  # provenance-free stream
    aliased = Random(f"{seed}:x")  # aliased constructor
    unseeded = random.Random()  # argless: seeds from OS entropy
    return ad_hoc, aliased, unseeded
