"""Bad: two paths acquire the same two locks in opposite orders.

``transfer`` takes table -> row, ``audit`` takes row -> table; run
concurrently they can block each other forever.  The lock-order pass
must report the table/row cycle.  A third function leaks: it acquires,
then makes a call that can raise before the fall-through release.
"""


class LockTable:
    def acquire(self, txn, resource):
        raise NotImplementedError

    def release_all(self, txn):
        raise NotImplementedError


def transfer(locks, txn):
    locks.acquire(txn, ("table", "accounts"))
    locks.acquire(txn, ("row", "accounts", 1))
    locks.release_all(txn)


def audit(locks, txn):
    locks.acquire(txn, ("row", "accounts", 1))
    locks.acquire(txn, ("table", "accounts"))
    locks.release_all(txn)


def leaky(locks, txn, body):
    locks.acquire(txn, ("table", "accounts"))
    body(txn)  # raises -> the lock above is never released
    locks.release_all(txn)
