"""GOOD: streams come from the seeded factories."""

from repro.util.rng import child_rng, root_rng


def streams(seed):
    top = root_rng(seed, "workload")
    kid = child_rng(seed, "fault-schedule")
    return top, kid
