"""Bad: undisciplined child_rng purposes and sanitizer scopes.

An unregistered purpose, a registered purpose constructed at more
sites than the registry allows (aliasing two streams onto one
sequence), a non-literal purpose outside the dynamic allowlist, and a
draw inside a scope naming a different stream.
"""

from repro.lint import sanitizer
from repro.util.rng import child_rng


def make_streams(seed):
    mystery = child_rng(seed, "totally-unregistered")
    first = child_rng(seed, "client")
    second = child_rng(seed, "client")  # registry allows one site
    return mystery, first, second


def opaque(seed, purpose):
    # Purpose is a plain parameter and this function is not in
    # DYNAMIC_SITES.
    return child_rng(seed, purpose)


def cross_draw(seed):
    rng = child_rng(seed, "client")
    with sanitizer.scope("workload"):
        return rng.random()  # draw from "client" inside a "workload" scope


def bad_label(seed):
    with sanitizer.scope("no-such-label"):
        return seed
