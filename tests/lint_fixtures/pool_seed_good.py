"""GOOD: a per-task seed rides in the task tuple."""

from concurrent.futures import ProcessPoolExecutor


def run_cell(task):
    return task


def fan_out(tasks, base_seed):
    seeded = [(task, base_seed + 1000 * rep) for rep, task in enumerate(tasks)]
    with ProcessPoolExecutor(max_workers=4) as pool:
        return list(pool.map(run_cell, seeded, chunksize=1))
