"""Bad: cross-unit time arithmetic without explicit conversions.

Every function mixes the virtual timeline's currencies (ns, ticks, ms)
with no conversion helper or factor in sight — the units pass must
flag each one.
"""


def total_latency(service_ns, queue_ticks):
    # ns + ticks: meaningless sum.
    return service_ns + queue_ticks


def deadline_ns(start_ns, timeout_ms):
    # Scaling by a bare literal does not convert: still ms at the `+`.
    return start_ns + timeout_ms * 1_000_000


def overdue(now_ns, deadline_ticks):
    # Comparing ns against ticks.
    return now_ns > deadline_ticks


def stash(elapsed_ticks):
    # ticks stored into an ns-suffixed name.
    spent_ns = elapsed_ticks
    return spent_ns
