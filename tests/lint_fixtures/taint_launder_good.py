"""Good: wall-clock stays host-side; sim state derives from the seed.

Same helper shape as the bad fixture, but the clock value is only
*displayed* (never stored into sim state), and what does get stored is
seed-derived — the taint pass must stay silent on both.
"""

import time  # repro-lint: disable=wall-clock


def _now_ms():
    return time.time() * 1000  # repro-lint: disable=wall-clock


def report(run):
    # Display-only consumption of a tainted value: not a sink.
    started = _now_ms()
    print(f"{run} took {_now_ms() - started:.1f}ms")


class Engine:
    def __init__(self, seed):
        # Seed-derived attribute store: tainted only by the parameter,
        # never by a host source.
        self.seed = seed
        self.offset = seed * 2
