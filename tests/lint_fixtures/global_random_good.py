"""GOOD: draws on a private, provenance-tagged stream."""

from repro.util.rng import child_rng


def pick(items, seed):
    rng = child_rng(seed, "pick")
    winner = rng.choice(items)
    rng.shuffle(items)
    return winner, rng.randint(0, 10)
