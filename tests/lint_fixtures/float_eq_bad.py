"""BAD: exact equality on fractional float constants (float-eq rule)."""


def classify(ipc, stall_share):
    if ipc == 0.5:  # accumulated cycles never land exactly here
        return "half"
    return stall_share != 0.25
