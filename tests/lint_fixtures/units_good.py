"""Good: the same arithmetic, with declared conversions.

Conversion factors (``TICK_NS``: ns per tick) and ``a_to_b`` helpers
carry values between units; like-unit arithmetic and count scaling
stay silent.
"""

from repro.util.timeunits import TICK_NS, ms_to_ns


def total_latency_ns(service_ns, queue_ticks):
    return service_ns + queue_ticks * TICK_NS


def deadline(start_ns, timeout_ms):
    return start_ns + ms_to_ns(timeout_ms)


def overdue(now_ns, deadline_ticks):
    return now_ns > deadline_ticks * TICK_NS


def mean_service_ns(total_ns, requests):
    # Dividing by a count keeps the unit.
    return total_ns / requests if requests else 0.0


def drain_ticks(backlog_ns):
    # Dividing by the factor converts ns -> ticks.
    return backlog_ns // TICK_NS
