"""BAD: draws on the shared module-level RNG (global-random rule)."""

import random
from random import shuffle


def pick(items):
    random.seed(0)  # reseeds shared state for everyone
    winner = random.choice(items)
    shuffle(items)  # aliased from-import of the same state
    return winner, random.randint(0, 10)
