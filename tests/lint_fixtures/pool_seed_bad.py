"""BAD: process-pool fan-out with no seed threaded (pool-seed rule)."""

from concurrent.futures import ProcessPoolExecutor


def run_cell(task):
    return task


def fan_out(tasks):
    with ProcessPoolExecutor(max_workers=4) as pool:
        return list(pool.map(run_cell, tasks, chunksize=1))
