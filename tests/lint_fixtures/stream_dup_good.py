"""Good: registered purposes, prefixes, and matching scopes."""

from repro.lint import sanitizer
from repro.util.rng import child_rng


def make_streams(seed, tag):
    # A registered literal and a registered f-string prefix.
    client = child_rng(seed, "client")
    cluster = child_rng(seed, f"load-cluster:{tag}")
    return client, cluster


def scoped_draw(seed):
    rng = child_rng(seed, "stall")
    with sanitizer.scope("stall"):
        return rng.random()


def labelled_region(seed):
    # A scope-only label from SCOPE_LABELS, no draw inside.
    with sanitizer.scope("fault-schedule"):
        return seed
