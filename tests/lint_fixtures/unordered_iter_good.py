"""GOOD: sets sorted before their order can matter."""


def merge(left, right):
    report = []
    for name in sorted(set(left) | set(right)):
        report.append(name)
    rows = [n.upper() for n in sorted({x for x in left})]
    joined = ",".join(sorted({"a", "b", "c"}))
    pinned = sorted(left.keys() | right.keys())
    return report, rows, joined, pinned
