"""BAD: host-clock reads in a sim path (wall-clock rule)."""

import time
from time import perf_counter as pc
from datetime import datetime


def measure(run):
    started = time.time()  # direct dotted read
    run()
    elapsed = pc() - started  # aliased from-import read
    stamp = datetime.now()  # datetime's wall clock
    return elapsed, stamp
