"""GOOD: tolerant comparison (or integral counters) instead of exact ==."""

import math


def classify(ipc, stall_cycles, total_cycles):
    if math.isclose(ipc, 0.5, rel_tol=1e-9):
        return "half"
    return stall_cycles * 4 != total_cycles  # integral counters may use ==
