"""BAD: mutable defaults (mutable-default rule)."""

from dataclasses import dataclass


def collect(item, into=[]):  # shared across calls
    into.append(item)
    return into


@dataclass
class Report:
    name: str = "run"
    problems: list = []  # shared across instances
    extra: dict = {}
