"""Good: one global acquisition order, releases on every edge.

Both paths take table before row (no cycle), and the risky call sits
inside a ``try`` whose ``finally`` releases — the canonical
``acquire(); try: work() finally: release()`` idiom must not flag.
"""


def transfer(locks, txn, body):
    locks.acquire(txn, ("table", "accounts"))
    locks.acquire(txn, ("row", "accounts", 1))
    try:
        body(txn)
    finally:
        locks.release_all(txn)


def audit(locks, txn, body):
    locks.acquire(txn, ("table", "accounts"))
    locks.acquire(txn, ("row", "accounts", 2))
    try:
        body(txn)
    finally:
        locks.release_all(txn)
