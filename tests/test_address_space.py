"""Address-space allocator tests."""

import pytest

from repro.codegen.layout import CODE_SEGMENT_LINES
from repro.core.spec import CACHE_LINE_BYTES
from repro.storage.address_space import Arena, DataAddressSpace


class TestRegions:
    def test_regions_are_disjoint_and_above_code(self, space):
        a = space.region("a", 1024)
        b = space.region("b", 4096)
        assert a.base_line >= CODE_SEGMENT_LINES
        assert b.base_line >= a.end_line

    def test_line_addressing(self, space):
        r = space.region("r", 256)
        assert r.line(0) == r.base_line
        assert r.line(63) == r.base_line
        assert r.line(64) == r.base_line + 1
        assert r.n_lines == 4

    def test_line_bounds_checked(self, space):
        r = space.region("r", 128)
        with pytest.raises(ValueError):
            r.line(-1)
        with pytest.raises(ValueError):
            r.line(128)

    def test_lines_for_spans(self, space):
        r = space.region("r", 256)
        assert list(r.lines_for(60, 8)) == [r.base_line, r.base_line + 1]
        assert list(r.lines_for(0, 64)) == [r.base_line]
        with pytest.raises(ValueError):
            r.lines_for(0, 0)

    def test_duplicate_names_rejected(self, space):
        space.region("x", 64)
        with pytest.raises(ValueError):
            space.region("x", 64)

    def test_lookup_and_membership(self, space):
        r = space.region("y", 64)
        assert space.get("y") is r
        assert "y" in space
        assert "z" not in space

    def test_allocated_bytes(self, space):
        space.region("a", 100)  # rounds to 2 lines
        assert space.allocated_bytes == 2 * CACHE_LINE_BYTES

    def test_rejects_nonpositive(self, space):
        with pytest.raises(ValueError):
            space.region("bad", 0)


class TestArena:
    def test_bump_allocation_line_aligned(self, space):
        arena = space.arena("nodes", 1 << 20)
        a = arena.alloc(100)
        b = arena.alloc(100)
        assert a == 0
        assert b == 128  # 100 rounded up to the next line
        assert arena.used_bytes == 228

    def test_custom_alignment(self, space):
        arena = space.arena("fine", 1 << 20)
        arena.alloc(10, align=8)
        assert arena.alloc(10, align=8) == 16

    def test_line_of(self, space):
        arena = space.arena("n", 1 << 20)
        off = arena.alloc(64)
        assert arena.line_of(off) == arena.region.base_line

    def test_exhaustion(self, space):
        arena = Arena(space.region("tiny", 128))
        arena.alloc(64)
        arena.alloc(64)
        with pytest.raises(MemoryError):
            arena.alloc(64)

    def test_rejects_nonpositive(self, space):
        arena = space.arena("z", 1 << 20)
        with pytest.raises(ValueError):
            arena.alloc(0)
