"""Analysis-extension tests: breakdowns, hardware sweeps, skew."""

import pytest

from repro.analysis import (
    profile_modules,
    render_breakdown,
    render_skew,
    render_sweep,
    sweep_core_width,
    sweep_l1i_size,
    sweep_llc_size,
    sweep_skew,
    SkewedMicroBenchmark,
)
from repro.bench.runner import RunSpec
from repro.workloads.microbench import MicroBenchmark


def micro_factory():
    return MicroBenchmark(db_bytes=100 << 30)


def quick_spec(system="dbms-d") -> RunSpec:
    return RunSpec(system=system).quick()


class TestModuleBreakdown:
    @pytest.fixture(scope="class")
    def profiles(self):
        return profile_modules(
            quick_spec("dbms-d"), micro_factory, measure_txns=40, warmup_txns=10
        )

    def test_covers_all_touched_modules(self, profiles):
        names = {p.name for p in profiles}
        assert "parser" in names
        assert "btree" in names

    def test_sorted_by_cycles(self, profiles):
        cycles = [p.cycles for p in profiles]
        assert cycles == sorted(cycles, reverse=True)

    def test_groups_assigned(self, profiles):
        assert {p.group for p in profiles} >= {"engine", "other"}

    def test_misses_accumulated(self, profiles):
        assert sum(p.l1i_misses for p in profiles) > 0
        assert sum(p.llcd_misses for p in profiles) > 0
        assert sum(p.instructions for p in profiles) > 0

    def test_render(self, profiles):
        text = render_breakdown(profiles)
        assert "inside the OLTP engine" in text
        assert "parser" in text


class TestHardwareSweeps:
    def test_bigger_l1i_fewer_instruction_stalls(self):
        points = sweep_l1i_size(quick_spec("dbms-d"), micro_factory, sizes_kb=(32, 256))
        assert points[1].l1i_stalls_per_ki < 0.5 * points[0].l1i_stalls_per_ki
        assert points[1].ipc > points[0].ipc

    def test_llc_growth_barely_helps_at_100gb(self):
        """Section 8: megabytes of LLC never hold gigabytes of data."""
        points = sweep_llc_size(quick_spec("hyper"), micro_factory, sizes_mb=(20, 80))
        assert points[1].ipc < points[0].ipc * 1.3

    def test_narrow_core_loses_little(self):
        points = sweep_core_width(
            quick_spec("shore-mt"), micro_factory, ideal_ipcs=(1.5, 3.0)
        )
        narrow, wide = points[0], points[1]
        assert narrow.ipc > 0.6 * wide.ipc  # half the width, small loss

    def test_render(self):
        points = sweep_l1i_size(quick_spec("voltdb"), micro_factory, sizes_kb=(32,))
        text = render_sweep("sweep", points)
        assert "L1I=32KB" in text


class TestSkewExtension:
    def test_workload_generates_in_range(self):
        import random

        wl = SkewedMicroBenchmark(db_bytes=1 << 20, theta=0.9)
        rng = random.Random(0)
        keys = []

        class Spy:
            def read(self, table, key):
                keys.append(key)
                return (key, 0)

        for _ in range(100):
            _, body = wl.next_transaction(rng)
            body(Spy())
        assert all(0 <= k < wl.n_rows for k in keys)

    def test_skew_recovers_ipc(self):
        points = sweep_skew("hyper", thetas=(0.0, 0.95), quick=True)
        uniform, skewed = points[0], points[1]
        assert skewed.ipc > uniform.ipc
        assert skewed.llcd_stalls_per_ki < uniform.llcd_stalls_per_ki

    def test_render(self):
        points = sweep_skew("hyper", thetas=(0.0,), quick=True)
        assert "theta" in render_skew(points)
