"""Lock-manager tests: the 2PL compatibility lattice and no-wait conflicts."""

import pytest

from repro.core.trace import AccessTrace
from repro.storage.address_space import DataAddressSpace
from repro.storage.lock_manager import LockConflict, LockManager, LockMode, compatible


def make() -> LockManager:
    return LockManager("lm", DataAddressSpace())


class TestCompatibility:
    @pytest.mark.parametrize(
        "held,requested,ok",
        [
            (LockMode.S, LockMode.S, True),
            (LockMode.S, LockMode.X, False),
            (LockMode.X, LockMode.S, False),
            (LockMode.X, LockMode.X, False),
            (LockMode.IS, LockMode.IX, True),
            (LockMode.IX, LockMode.IX, True),
            (LockMode.IX, LockMode.S, False),
            (LockMode.IS, LockMode.X, False),
        ],
    )
    def test_matrix(self, held, requested, ok):
        assert compatible(held, requested) is ok


class TestAcquisition:
    def test_shared_locks_coexist(self):
        lm = make()
        lm.acquire(1, "row", LockMode.S)
        lm.acquire(2, "row", LockMode.S)
        assert lm.active_locks == 2

    def test_exclusive_conflicts(self):
        lm = make()
        lm.acquire(1, "row", LockMode.X)
        with pytest.raises(LockConflict) as exc:
            lm.acquire(2, "row", LockMode.X)
        assert exc.value.holder == 1
        assert exc.value.requester == 2
        assert lm.conflicts == 1

    def test_reader_blocks_writer(self):
        lm = make()
        lm.acquire(1, "row", LockMode.S)
        with pytest.raises(LockConflict):
            lm.acquire(2, "row", LockMode.X)

    def test_own_upgrade_allowed(self):
        lm = make()
        lm.acquire(1, "row", LockMode.S)
        lm.acquire(1, "row", LockMode.X)
        assert lm.holds(1, "row") == LockMode.X

    def test_reacquire_same_mode_idempotent(self):
        lm = make()
        lm.acquire(1, "row", LockMode.S)
        lm.acquire(1, "row", LockMode.S)
        assert lm.holds(1, "row") == LockMode.S

    def test_intention_locks_on_table(self):
        lm = make()
        lm.acquire(1, ("table", "t"), LockMode.IX)
        lm.acquire(2, ("table", "t"), LockMode.IS)
        lm.acquire(2, ("table", "t"), LockMode.IX)
        with pytest.raises(LockConflict):
            lm.acquire(3, ("table", "t"), LockMode.X)


class TestRelease:
    def test_release_all_frees_resources(self):
        lm = make()
        lm.acquire(1, "a", LockMode.X)
        lm.acquire(1, "b", LockMode.S)
        assert lm.release_all(1) == 2
        assert lm.active_locks == 0
        lm.acquire(2, "a", LockMode.X)  # no conflict now

    def test_release_all_only_touches_own(self):
        lm = make()
        lm.acquire(1, "a", LockMode.S)
        lm.acquire(2, "a", LockMode.S)
        lm.release_all(1)
        assert lm.holds(2, "a") == LockMode.S
        assert lm.holds(1, "a") is None

    def test_release_with_no_locks(self):
        assert make().release_all(9) == 0


class TestEmission:
    def test_acquire_emits_lock_table_rmw(self):
        lm = make()
        t = AccessTrace()
        lm.acquire(1, "r", LockMode.S, t, mod=2)
        assert len(t) == 2  # load + store of the lock head
        assert lm.acquisitions == 1

    def test_same_resource_same_bucket_line(self):
        lm = make()
        t1, t2 = AccessTrace(), AccessTrace()
        lm.acquire(1, "r", LockMode.S, t1)
        lm.release_all(1)
        lm.acquire(2, "r", LockMode.S, t2)
        assert t1.addrs == t2.addrs
