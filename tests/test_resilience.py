"""repro.load.resilience — chaos-under-load and graceful degradation.

The contract under test: every chaos sweep is a pure function of
(seed, spec).  The hypothesis sweep at the bottom drives the whole
stack — window scheduling, fault firing, retries, shedding, breaker —
across (seed, fault kind, backend, ack mode) and asserts the rendered
saturation table and the degraded-mode verdicts are byte-identical
serial vs ``--jobs 2`` and sanitized vs plain.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.faults import BROWNOUT, COORDINATOR_CRASH, CRASH, NET_PARTITION
from repro.lint import sanitizer
from repro.load.arrivals import ArrivalSpec
from repro.load.driver import LoadSpec, run_load
from repro.load.report import render_load_report, render_saturation_curve
from repro.load.resilience import (
    CHAOS_SUITES,
    ChaosLoadSpec,
    ResilienceSpec,
    _Breaker,
    chaos_suite,
    schedule_windows,
)


class TestChaosLoadSpec:
    def test_suite_builder_round_trips_every_suite(self):
        for name, kinds in CHAOS_SUITES.items():
            spec = chaos_suite(name)
            assert spec.suite == name and spec.kinds == kinds

    def test_unknown_suite_raises(self):
        with pytest.raises(ValueError, match="unknown chaos suite"):
            chaos_suite("earthquake")

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(kinds=()),
            dict(kinds=("no-such-kind",)),
            dict(windows_per_kind=0),
            dict(window_frac=0.0),
            dict(window_frac=0.6),
            dict(brownout_factor=0.5),
            dict(slow_slots=0),
            dict(recovery_base_us=-1.0),
            dict(blowup_threshold=1.0),
            dict(recovery_frac=0.0),
        ],
    )
    def test_bad_spec_raises(self, kwargs):
        with pytest.raises(ValueError):
            ChaosLoadSpec(**kwargs)

    @pytest.mark.parametrize(
        "suite, shards, replicas, servers",
        [
            ("partition", 0, 0, 1),  # needs replicas
            ("partition", 2, 2, 1),  # not with shards
            ("coordinator-crash", 0, 0, 1),  # needs shards
            ("prepare-stall", 0, 2, 1),  # needs shards
            ("crash", 2, 0, 1),  # sharded crash = coordinator-crash
            ("slow-shard", 0, 0, 1),  # needs servers >= 2
        ],
    )
    def test_backend_mismatch_raises(self, suite, shards, replicas, servers):
        with pytest.raises(ValueError):
            chaos_suite(suite).validate_backend(shards, replicas, servers)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(timeout_ms=-1.0),
            dict(max_retries=-1),
            dict(backoff_base_ms=0),
            dict(backoff_cap_ms=0),
            dict(shed_depth=-1),
            dict(breaker_threshold=-1),
            dict(breaker_open_ms=0.0),
        ],
    )
    def test_bad_resilience_raises(self, kwargs):
        with pytest.raises(ValueError):
            ResilienceSpec(**kwargs)


class TestWindowScheduling:
    HORIZON = 10_000_000  # 10ms in virtual ns

    def test_pure_function_of_seed(self):
        a = schedule_windows(chaos_suite("mixed"), 7, "x1", self.HORIZON)
        b = schedule_windows(chaos_suite("mixed"), 7, "x1", self.HORIZON)
        assert a == b

    def test_seed_moves_windows(self):
        a = schedule_windows(chaos_suite("brownout"), 7, "x1", self.HORIZON)
        b = schedule_windows(chaos_suite("brownout"), 8, "x1", self.HORIZON)
        assert a != b

    def test_adding_a_kind_never_shifts_existing_windows(self):
        # The per-kind child-stream idiom: mixed's crash windows are
        # byte-equal to the crash-only suite's at the same seed.
        crash_only = schedule_windows(chaos_suite("crash"), 7, "x1", self.HORIZON)
        mixed = schedule_windows(chaos_suite("mixed"), 7, "x1", self.HORIZON)
        assert [w for w in mixed if w.kind == CRASH] == list(crash_only)

    def test_windows_land_inside_their_segments(self):
        chaos = chaos_suite("brownout", windows_per_kind=3)
        windows = schedule_windows(chaos, 7, "x1", self.HORIZON)
        assert len(windows) == 3
        segment = self.HORIZON // 3
        for i, w in enumerate(sorted(windows, key=lambda w: w.start_ns)):
            assert i * segment <= w.start_ns < (i + 1) * segment
            assert w.end_ns <= self.HORIZON
            assert w.end_ns > w.start_ns


class TestBreaker:
    def test_opens_after_threshold_and_rejects(self):
        b = _Breaker(threshold=2, open_ns=1000)
        b.fold(10, False, False)
        b.fold(20, False, False)
        assert b.state == "open" and b.opens == 1
        assert b.admit(500) == (False, False)

    def test_half_open_single_probe_then_closes(self):
        b = _Breaker(threshold=1, open_ns=1000)
        b.fold(0, False, False)
        assert b.admit(1000) == (True, True)  # the probe
        assert b.admit(1001) == (False, False)  # only one probe at a time
        b.fold(1100, True, True)
        assert b.state == "closed"
        assert b.admit(1200) == (True, False)

    def test_failed_probe_reopens(self):
        b = _Breaker(threshold=1, open_ns=1000)
        b.fold(0, False, False)
        assert b.admit(1000) == (True, True)
        b.fold(1100, False, True)
        assert b.state == "open" and b.opens == 2

    def test_success_resets_consecutive_count(self):
        b = _Breaker(threshold=2, open_ns=1000)
        b.fold(10, False, False)
        b.fold(20, True, False)
        b.fold(30, False, False)
        assert b.state == "closed"


def _sweep(seed: int, suite: str, *, shards=0, replicas=0, ack="quorum",
           servers=1, resilience=None, n_events=30, multipliers=(0.5,)):
    return LoadSpec(
        arrival=ArrivalSpec(n_clients=200, n_events=n_events),
        seed=seed,
        shards=shards,
        replicas=replicas,
        ack=ack,
        servers=servers,
        multipliers=multipliers,
        chaos=chaos_suite(suite),
        resilience=resilience
        or ResilienceSpec(timeout_ms=5.0, max_retries=2, shed_depth=64,
                          breaker_threshold=8),
    )


class TestReplayBehavior:
    def test_crash_fires_and_recovers(self):
        result = run_load(_sweep(7, "crash"), jobs=1)
        c = result.points[0].chaos
        assert c.crashes == 1
        assert c.window_digest != 0
        assert not c.problems  # recovered state verified clean
        assert {v.name for v in c.verdicts} == {
            "bounded-p999-blowup",
            "recovers-within-n-ticks",
            "no-acked-loss-under-load",
        }

    def test_shedding_fires_under_overload(self):
        spec = _sweep(
            7, "brownout",
            resilience=ResilienceSpec(shed_depth=2),
            multipliers=(4.0,),
        )
        point = run_load(spec, jobs=1).points[0]
        c = point.chaos
        assert c.shed > 0
        # Every request settles exactly once with retries off: shed and
        # aborted requests fail, the rest succeed.
        assert c.succeeded + c.failed == point.n_events

    def test_timeout_abandons_queued_requests(self):
        spec = _sweep(
            7, "brownout",
            resilience=ResilienceSpec(timeout_ms=0.001),
            multipliers=(4.0,),
        )
        c = run_load(spec, jobs=1).points[0].chaos
        assert c.timeouts > 0

    def test_retry_recovers_goodput_after_crash(self):
        no_retry = _sweep(7, "crash", resilience=ResilienceSpec())
        with_retry = _sweep(7, "crash", resilience=ResilienceSpec(max_retries=3))
        c0 = run_load(no_retry, jobs=1).points[0].chaos
        c1 = run_load(with_retry, jobs=1).points[0].chaos
        assert c0.failed >= 1  # the crash victim is lost without retry
        assert c1.failed == 0 and c1.retries >= 1
        assert c1.succeeded > c0.succeeded

    def test_classic_sweep_untouched(self):
        spec = LoadSpec(
            arrival=ArrivalSpec(n_clients=200, n_events=30),
            seed=7, multipliers=(0.5,),
        )
        result = run_load(spec, jobs=1)
        assert result.points[0].chaos is None
        out = render_load_report(result)
        assert "chaos" not in out and "goodtps" not in out


# (suite, shards, replicas, ack) combinations the hypothesis sweep mixes
# with seeds; each exercises a different fault path through the stack.
_SWEEP_BACKENDS = [
    ("crash", 0, 0, "quorum"),
    ("crash", 0, 2, "quorum"),
    ("crash", 0, 2, "sync-one"),
    ("partition", 0, 2, "quorum"),
    ("coordinator-crash", 2, 0, "async"),
    ("prepare-stall", 2, 0, "async"),
    ("brownout", 0, 0, "quorum"),
]


class TestDeterminismSweep:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        backend=st.sampled_from(_SWEEP_BACKENDS),
    )
    def test_serial_parallel_sanitized_byte_parity(self, seed, backend):
        suite, shards, replicas, ack = backend
        spec = _sweep(seed, suite, shards=shards, replicas=replicas, ack=ack,
                      n_events=24)
        serial = run_load(spec, jobs=1)
        parallel = run_load(spec, jobs=2)
        with sanitizer.sanitizing():
            sanitized = run_load(spec, jobs=1)
            violations = sanitizer.violations()
        table = render_saturation_curve(serial)
        assert table == render_saturation_curve(parallel)
        assert table == render_saturation_curve(sanitized)
        verdicts = [p.chaos.verdict_map() for p in serial.points]
        assert verdicts == [p.chaos.verdict_map() for p in parallel.points]
        assert verdicts == [p.chaos.verdict_map() for p in sanitized.points]
        assert serial.points == parallel.points == sanitized.points
        assert not violations, violations[:3]
