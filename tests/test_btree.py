"""B+tree tests: correctness, structure, trace emission, properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.trace import AccessTrace, DLOAD_SERIAL
from repro.storage.address_space import DataAddressSpace
from repro.storage.btree import BPlusTree, binary_search_probes


def make_tree(page_bytes=512, **kw) -> BPlusTree:
    return BPlusTree("t", DataAddressSpace(), page_bytes=page_bytes, **kw)


class TestBinarySearchProbes:
    def test_finds_target(self):
        probes = binary_search_probes(100, 37)
        assert probes[-1] == 37

    def test_probe_count_logarithmic(self):
        for n in (10, 100, 1000):
            for target in (0, n // 2, n - 1):
                assert len(binary_search_probes(n, target)) <= n.bit_length() + 1

    def test_single_entry(self):
        assert binary_search_probes(1, 0) == [0]


class TestCorrectness:
    def test_insert_probe_roundtrip(self):
        tree = make_tree()
        for k in range(2000):
            tree.insert(k, k * 3)
        for k in (0, 999, 1999):
            assert tree.probe(k) == k * 3
        assert tree.probe(2000) is None
        assert len(tree) == 2000

    def test_overwrite(self):
        tree = make_tree()
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.probe(1) == "b"
        assert len(tree) == 1

    def test_reverse_and_shuffled_inserts(self):
        import random

        tree = make_tree()
        keys = list(range(1000))
        random.Random(1).shuffle(keys)
        for k in keys:
            tree.insert(k, -k)
        assert [k for k, _ in tree.items()] == sorted(keys)

    def test_delete(self):
        tree = make_tree()
        for k in range(100):
            tree.insert(k, k)
        assert tree.delete(50)
        assert tree.probe(50) is None
        assert not tree.delete(50)
        assert len(tree) == 99

    def test_range_scan_ordered(self):
        tree = make_tree()
        for k in range(0, 1000, 2):
            tree.insert(k, k)
        result = tree.range_scan(101, 5)
        assert result == [(102, 102), (104, 104), (106, 106), (108, 108), (110, 110)]

    def test_range_scan_past_end(self):
        tree = make_tree()
        tree.insert(1, 1)
        assert tree.range_scan(5, 10) == []


class TestStructure:
    def test_height_grows_logarithmically(self):
        tree = make_tree(page_bytes=512)  # max ~28 entries/node
        for k in range(5000):
            tree.insert(k, k)
        assert 3 <= tree.height <= 5

    def test_big_pages_shallower_than_small(self):
        big = make_tree(page_bytes=8192)
        small = make_tree(page_bytes=256)
        for k in range(5000):
            big.insert(k, k)
            small.insert(k, k)
        assert big.height < small.height

    def test_probe_path_has_height_nodes(self):
        tree = make_tree()
        for k in range(5000):
            tree.insert(k, k)
        assert len(tree.probe_path(1234)) == tree.height

    def test_page_too_small_rejected(self):
        with pytest.raises(ValueError):
            make_tree(page_bytes=64)


class TestTraceEmission:
    def test_probe_emits_serial_loads(self):
        tree = make_tree(page_bytes=8192)
        for k in range(20000):
            tree.insert(k, k)
        t = AccessTrace()
        tree.probe(12345, t, mod=1)
        assert len(t) >= tree.height
        assert all(k == DLOAD_SERIAL for k in t.kinds)

    def test_large_pages_touch_more_lines_than_small(self):
        big, small = make_tree(page_bytes=8192), make_tree(page_bytes=256)
        for k in range(20000):
            big.insert(k, k)
            small.insert(k, k)
        tb, ts = AccessTrace(), AccessTrace()
        big.probe(777, tb)
        small.probe(777, ts)
        assert len(tb) / big.height > len(ts) / small.height

    def test_search_line_cap_limits_emission(self):
        capped = make_tree(page_bytes=8192, search_line_cap=2)
        free = make_tree(page_bytes=8192)
        for k in range(20000):
            capped.insert(k, k)
            free.insert(k, k)
        tc, tf = AccessTrace(), AccessTrace()
        capped.probe(777, tc)
        free.probe(777, tf)
        assert len(tc) < len(tf)
        assert len(tc) <= capped.height * 3

    def test_insert_emits_store(self):
        tree = make_tree()
        t = AccessTrace()
        tree.insert(1, 1, t)
        assert any(k == 2 for k in t.kinds)  # DSTORE


@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=300),
    page_bytes=st.sampled_from([256, 512, 2048]),
)
def test_btree_matches_dict(keys, page_bytes):
    """Property: a B+tree behaves like a dict plus sorted iteration."""
    tree = BPlusTree("p", DataAddressSpace(), page_bytes=page_bytes)
    reference: dict[int, int] = {}
    for i, k in enumerate(keys):
        tree.insert(k, i)
        reference[k] = i
    assert len(tree) == len(reference)
    for k in reference:
        assert tree.probe(k) == reference[k]
    assert [k for k, _ in tree.items()] == sorted(reference)


@settings(max_examples=25, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=2000), min_size=5, max_size=200, unique=True),
    delete_ratio=st.floats(min_value=0.1, max_value=0.9),
)
def test_btree_delete_matches_dict(keys, delete_ratio):
    tree = BPlusTree("p", DataAddressSpace(), page_bytes=256)
    reference = {}
    for k in keys:
        tree.insert(k, k)
        reference[k] = k
    victims = keys[: int(len(keys) * delete_ratio)]
    for k in victims:
        assert tree.delete(k) == (k in reference)
        reference.pop(k, None)
    for k in keys:
        assert tree.probe(k) == reference.get(k)
