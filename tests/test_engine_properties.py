"""Property-based engine tests: every engine tracks a reference model.

Random operation sequences run through each engine's transaction API
and through a plain dict; committed state must agree, aborted state
must vanish, and engine-internal invariants (empty lock table, GC-able
version chains) must hold afterwards.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engines.base import TransactionAborted, UserAbort
from repro.engines.common import TableSpec
from repro.engines.config import EngineConfig
from repro.engines.registry import ALL_SYSTEMS, make_engine
from repro.storage.record import microbench_schema

N_ROWS = 300


def fresh_engine(system):
    engine = make_engine(system, EngineConfig(materialize_threshold=0))
    engine.create_table(TableSpec("t", microbench_schema(), N_ROWS, grows=True))
    return engine


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["read", "update", "insert", "delete"]),
        st.integers(min_value=0, max_value=N_ROWS - 1),
        st.integers(min_value=-1000, max_value=1000),
    ),
    min_size=1,
    max_size=25,
)


@pytest.mark.parametrize("system", ALL_SYSTEMS)
@settings(max_examples=12, deadline=None)
@given(txns=st.lists(ops_strategy, min_size=1, max_size=6))
def test_engine_matches_reference_model(system, txns):
    engine = fresh_engine(system)
    schema = microbench_schema()
    # Reference state: key -> row or None (deleted); default rows lazily.
    reference = {}

    def ref_get(key):
        if key in reference:
            return reference[key]
        return schema.default_row(key) if key < N_ROWS else None

    next_insert_key = [N_ROWS + 1000]
    for ops in txns:
        observed = []

        def body(txn, ops=ops, observed=observed):
            deleted_in_txn = set()
            for op, key, value in ops:
                if op == "read":
                    observed.append(("read", key, txn.read("t", key)))
                elif op == "update":
                    if ref_get(key) is None or key in deleted_in_txn:
                        continue  # keep the body deterministic & valid
                    txn.update("t", key, "value", value)
                    observed.append(("update", key, value))
                elif op == "insert":
                    k = next_insert_key[0]
                    txn.insert("t", (k, value), key=k)
                    observed.append(("insert", k, value))
                else:
                    ok = txn.delete("t", key)
                    if ok:
                        deleted_in_txn.add(key)
                    observed.append(("delete", key, ok))

        engine.execute("prop", body)
        # Commit succeeded: fold the observed effects into the reference.
        for op, key, value in observed:
            if op == "update":
                row = ref_get(key)
                reference[key] = (row[0], value)
            elif op == "insert":
                next_insert_key[0] += 1
                reference[key] = (key, value)
            elif op == "delete" and value:
                reference[key] = None

    # Verify committed state via a final transaction on the engine.
    checks = sorted(set(reference))[:30] + [0, N_ROWS - 1]
    results = {}
    engine.execute(
        "verify", lambda txn: results.update({k: txn.read("t", k) for k in checks})
    )
    for key in checks:
        assert results[key] == ref_get(key), (system, key)


@pytest.mark.parametrize("system", ALL_SYSTEMS)
@settings(max_examples=10, deadline=None)
@given(keys=st.lists(st.integers(min_value=0, max_value=20), min_size=2, max_size=8))
def test_aborted_transactions_leave_no_trace(system, keys):
    """A user abort after updates must roll everything back."""
    engine = fresh_engine(system)
    baseline = {}
    engine.execute(
        "snap", lambda txn: baseline.update({k: txn.read("t", k) for k in keys})
    )

    def doomed(txn):
        for k in keys:
            txn.update("t", k, "value", 999_999)
        raise UserAbort("client rollback")

    engine.execute("doomed", doomed)
    after = {}
    engine.execute(
        "snap2", lambda txn: after.update({k: txn.read("t", k) for k in keys})
    )
    assert after == baseline
    if hasattr(engine, "locks"):
        assert engine.locks.active_locks == 0


@settings(max_examples=10, deadline=None)
@given(
    conflicts=st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=6)
)
def test_shore_conflicting_interleavings_never_leak_locks(conflicts):
    """Open transactions fighting over few rows: aborts are clean."""
    engine = fresh_engine("shore-mt")
    open_txns = []
    for key in conflicts:
        txn = engine.begin()
        try:
            txn.update("t", key, "value", 1)
            open_txns.append(txn)
        except TransactionAborted:
            txn.abort()
    for txn in open_txns:
        txn.commit()
    assert engine.locks.active_locks == 0
