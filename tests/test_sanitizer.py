"""Runtime RNG-stream sanitizer tests: parity, provenance, divergence."""

import os
import random

import pytest

from repro.bench.runner import ExperimentRunner, RunSpec
from repro.bench.parallel import workload_spec
from repro.faults.chaos import ChaosRunner, ChaosSpec
from repro.lint import sanitizer
from repro.util.rng import child_rng, root_rng
from repro.workloads.microbench import MicroBenchmark

MICRO_1MB = workload_spec("micro", db_bytes=1 << 20)


def micro():
    return MicroBenchmark(db_bytes=1 << 20, rows_per_txn=4, read_write=True)


@pytest.fixture(autouse=True)
def clean_sanitizer():
    """Every test starts and ends disarmed with empty state."""
    sanitizer.reset()
    sanitizer.disarm()
    yield
    sanitizer.reset()
    sanitizer.disarm()


class TestTrackedRandomParity:
    """Armed factories must draw bit-identically to plain Random."""

    def test_tracked_equals_plain_across_methods(self):
        plain = random.Random("7:workload")
        tracked = sanitizer.TrackedRandom("7:workload", "workload")
        items = list(range(20))
        mirror = list(range(20))
        tracked.shuffle(items)
        plain.shuffle(mirror)
        assert items == mirror
        for _ in range(50):
            assert tracked.random() == plain.random()
            assert tracked.randint(0, 1 << 30) == plain.randint(0, 1 << 30)
            assert tracked.gauss(0, 1) == plain.gauss(0, 1)
            assert tracked.getrandbits(64) == plain.getrandbits(64)

    def test_factories_hand_out_tracked_only_when_armed(self):
        assert type(child_rng(3, "x")) is random.Random
        sanitizer.arm()
        assert isinstance(child_rng(3, "x"), sanitizer.TrackedRandom)
        assert isinstance(root_rng(3), sanitizer.TrackedRandom)

    def test_factory_seed_derivations_are_pinned(self):
        # The sanitized stream must continue the exact sequences the
        # codebase pinned before the factories existed.
        sanitizer.arm()
        assert child_rng(5, "p").random() == random.Random("5:p").random()
        assert root_rng(5).random() == random.Random(5).random()

    def test_seeding_draws_are_not_counted(self):
        sanitizer.arm()
        child_rng(1, "quiet")
        assert sanitizer.snapshot_draws() == {}


class TestScopes:
    def test_cross_stream_draw_detected(self):
        sanitizer.arm()
        right = child_rng(1, "fault-schedule")
        wrong = child_rng(1, "workload")
        with sanitizer.scope("fault-schedule"):
            right.random()
            assert sanitizer.ok()
            wrong.random()  # the deliberate injection
        assert not sanitizer.ok()
        assert any("cross-stream" in v for v in sanitizer.violations())

    def test_scope_allows_any_listed_purpose(self):
        sanitizer.arm()
        with sanitizer.scope("a", "b"):
            child_rng(1, "a").random()
            child_rng(1, "b").random()
        assert sanitizer.ok()

    def test_disarmed_scope_is_free_and_silent(self):
        with sanitizer.scope("a"):
            child_rng(1, "b").random()
        assert sanitizer.ok()
        assert sanitizer.scope("a") is sanitizer.scope("b")

    def test_duplicate_violations_deduplicated(self):
        sanitizer.arm()
        wrong = child_rng(1, "workload")
        with sanitizer.scope("image"):
            wrong.random()
            wrong.random()
        assert len(sanitizer.violations()) == 1


class TestInjectedCrossStreamRegression:
    """A planted wrong-stream draw in sim code must be caught."""

    def test_schedule_scope_flags_foreign_stream(self):
        from repro.faults.injector import FaultInjector, FaultSpec, TXN_BODY

        with sanitizer.sanitizing():
            injector = FaultInjector(
                [FaultSpec(TXN_BODY, kind="abort", probability=0.5, times=-1)],
                seed=3,
            )
            # Buggy hypothetical code: consuming the workload stream
            # inside the injector's own per-kind draw region.
            workload_stream = child_rng(3, "workload")
            for _ in range(4):
                with sanitizer.scope("abort"):
                    injector.stream("abort").random()
                    workload_stream.random()
        assert not sanitizer.ok()
        assert any("'workload@3:workload'" in v for v in sanitizer.violations())

    def test_real_injector_draws_stay_clean(self):
        from repro.engines.base import TransactionAborted
        from repro.faults.injector import FaultInjector, FaultSpec, TXN_BODY

        with sanitizer.sanitizing():
            injector = FaultInjector(
                [FaultSpec(TXN_BODY, kind="abort", probability=0.5, times=-1)],
                seed=3,
            )
            for _ in range(20):
                try:
                    injector.fire(TXN_BODY)
                except TransactionAborted:
                    pass
        assert sanitizer.ok(), sanitizer.violations()


class TestDrawCounts:
    def test_merge_and_compare(self):
        a = {"workload@42": 10, "image@1:image": 2}
        b = {"workload@42": 3}
        merged = sanitizer.merge_draws(dict(a), b)
        assert merged["workload@42"] == 13
        problems = sanitizer.compare_draws(a, merged)
        assert problems == ["draw-count divergence on 'workload@42': 10 != 13"]
        assert sanitizer.compare_draws(a, dict(a)) == []

    def test_serial_and_parallel_runs_draw_identically(self):
        from dataclasses import replace

        spec = replace(RunSpec(system="hyper").quick(), repetitions=2)
        with sanitizer.sanitizing():
            serial = ExperimentRunner(spec, MICRO_1MB).run(jobs=1)
            sanitizer.reset()
            parallel = ExperimentRunner(spec, MICRO_1MB).run(jobs=2)
        assert serial.rng_draws
        assert sanitizer.compare_draws(serial.rng_draws, parallel.rng_draws) == []

    def test_unsanitized_results_carry_no_draws(self):
        spec = RunSpec(system="hyper").quick()
        result = ExperimentRunner(spec, MICRO_1MB).run(jobs=1)
        assert result.rng_draws == {}


class TestCheckedMerge:
    def test_flags_sets_and_passes_through(self):
        sanitizer.arm()
        items = {3, 1, 2}
        assert sanitizer.checked_merge(items, "fold") is items
        assert not sanitizer.ok()
        assert any("unordered merge" in v for v in sanitizer.violations())

    def test_ordered_containers_pass_silently(self):
        sanitizer.arm()
        for items in ([1, 2], (1, 2), {"a": 1}):
            assert sanitizer.checked_merge(items, "fold") is items
        assert sanitizer.ok()


class TestStableHash:
    """Placement hashing must not depend on PYTHONHASHSEED."""

    def test_known_values_are_pinned(self):
        from repro.util.stablehash import stable_hash

        # str/bytes go through CRC32 — stable across processes, unlike
        # builtin hash(); pin a few so the placement contract is frozen.
        assert stable_hash("warehouse") == 3971189756
        assert stable_hash(b"warehouse") == 3971189756
        assert stable_hash(("row", "district", 7)) == 16521360409315371933

    def test_ints_hash_to_themselves(self):
        from repro.util.stablehash import stable_hash

        for value in (0, 1, 7, 2**40, -3):
            assert stable_hash(value) == value
        assert stable_hash(True) == 1 and stable_hash(False) == 0

    def test_tuples_mix_recursively(self):
        from repro.util.stablehash import stable_hash

        assert stable_hash(("a", 1)) != stable_hash(("a", 2))
        assert stable_hash(("a", 1)) != stable_hash(("b", 1))
        assert stable_hash(("a", ("b", 1))) == stable_hash(("a", ("b", 1)))


class TestSanitizingContext:
    def test_arms_and_exports_env_then_restores(self):
        before = os.environ.get(sanitizer.ENV_VAR)
        with sanitizer.sanitizing():
            assert sanitizer.enabled()
            assert os.environ[sanitizer.ENV_VAR] == "1"
        assert not sanitizer.enabled()
        assert os.environ.get(sanitizer.ENV_VAR) == before

    def test_off_is_a_no_op(self):
        with sanitizer.sanitizing(False):
            assert not sanitizer.enabled()


class TestBitIdenticalRuns:
    """--sanitize must not change a single output bit."""

    def test_chaos_digest_parity_single_node(self):
        spec = ChaosSpec.quick("shore-mt", seed=9)
        plain = ChaosRunner(spec, micro()).run()
        with sanitizer.sanitizing():
            sanitized = ChaosRunner(spec, micro()).run()
        assert sanitizer.ok(), sanitizer.violations()
        assert sanitized.digest() == plain.digest()
        assert sanitized.attempted == plain.attempted

    def test_chaos_digest_parity_replicated_quorum(self):
        spec = ChaosSpec.quick("shore-mt", seed=9, replicas=2, ack="quorum")
        plain = ChaosRunner(spec, micro()).run()
        with sanitizer.sanitizing():
            sanitized = ChaosRunner(spec, micro()).run()
        assert sanitizer.ok(), sanitizer.violations()
        assert sanitized.digest() == plain.digest()
        assert sanitized.replica_digests == plain.replica_digests

    def test_figure_cell_parity(self):
        spec = RunSpec(system="hyper").quick()
        plain = ExperimentRunner(spec, MICRO_1MB).run(jobs=1)
        with sanitizer.sanitizing():
            sanitized = ExperimentRunner(spec, MICRO_1MB).run(jobs=1)
        assert sanitizer.ok(), sanitizer.violations()
        assert sanitized.counters == plain.counters
        assert sanitized.measured_txns == plain.measured_txns
        assert sanitized.module_cycles == plain.module_cycles
