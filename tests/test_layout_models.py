"""Analytic layout-model tests: determinism, scale, fidelity vs materialised."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.trace import AccessTrace
from repro.storage.address_space import DataAddressSpace
from repro.storage.art import AdaptiveRadixTree
from repro.storage.btree import BPlusTree
from repro.storage.hash_index import HashIndex
from repro.storage.layout_models import AnalyticART, AnalyticBTree, AnalyticHash

BILLION = 1_250_000_000


def identity_within(n):
    return lambda k: k if 0 <= k < n else None


class TestAnalyticBTree:
    def make(self, n=BILLION, **kw):
        return AnalyticBTree(
            "b", DataAddressSpace(), n_keys=n, key_to_value=identity_within(n), **kw
        )

    def test_probe_resolves_prepopulated_keys(self):
        idx = self.make()
        assert idx.probe(0) == 0
        assert idx.probe(BILLION - 1) == BILLION - 1
        assert idx.probe(BILLION) is None

    def test_probe_lines_deterministic(self):
        idx = self.make()
        assert idx.probe_lines(123456789) == idx.probe_lines(123456789)

    def test_distinct_keys_distinct_paths(self):
        idx = self.make()
        a = idx.probe_lines(1)
        b = idx.probe_lines(BILLION // 2)
        assert a[-1] != b[-1]

    def test_height_matches_fanout_math(self):
        idx = self.make()  # 8 KB pages, ~340 entries effective
        assert idx.height == 4  # 340^4 > 1.25e9 > 340^3

    def test_small_pages_deeper(self):
        deep = self.make(page_bytes=256)
        assert deep.height > self.make().height

    def test_overrides_and_tombstones(self):
        idx = self.make()
        idx.insert(5, 99)
        assert idx.probe(5) == 99
        assert idx.delete(5)
        assert idx.probe(5) is None

    def test_insert_beyond_domain(self):
        idx = self.make(n=1000)
        idx.insert(5000, 77)
        assert idx.probe(5000) == 77
        assert idx.probe(4999) is None

    def test_range_scan_returns_ordered_values(self):
        idx = self.make(n=10_000)
        assert idx.range_scan(10, 3) == [(10, 10), (11, 11), (12, 12)]

    def test_range_scan_emission_proportional_to_n(self):
        idx = self.make(n=10_000_000)
        t_small, t_big = AccessTrace(), AccessTrace()
        idx.range_scan(100, 10, t_small)
        idx.range_scan(100, 1000, t_big)
        assert len(t_big) > len(t_small)
        assert len(t_big) < 500  # entries-only, not whole leaves

    def test_search_line_cap(self):
        capped = AnalyticBTree(
            "c", DataAddressSpace(), n_keys=BILLION, search_line_cap=2
        )
        free = AnalyticBTree("f", DataAddressSpace(), n_keys=BILLION)
        key = 987654321
        assert len(capped.probe_lines(key)) < len(free.probe_lines(key))


class TestAnalyticART:
    def make(self, n=BILLION):
        return AnalyticART("a", DataAddressSpace(), n_keys=n, key_to_value=identity_within(n))

    def test_resolution(self):
        idx = self.make()
        assert idx.probe(42) == 42
        assert idx.probe(BILLION + 1) is None

    def test_height_log256(self):
        assert self.make().inner_levels == 4  # ceil(log256 1.25e9)
        assert AnalyticART("s", DataAddressSpace(), n_keys=60_000).inner_levels == 2
        assert AnalyticART("s3", DataAddressSpace(), n_keys=70_000).inner_levels == 3

    def test_one_line_per_level_plus_leaf(self):
        idx = self.make()
        lines = idx.probe_lines(999_999_937)
        assert len(lines) == idx.inner_levels + 1

    def test_adaptive_level_sizes(self):
        # Sparse upper levels use small nodes, packed ones Node256.
        idx = self.make(n=131_072)  # 3 levels: fanouts 256, 256, 2
        assert idx.level_node_bytes[0] == 2096
        assert idx.level_node_bytes[-1] == 64

    def test_footprint_tracks_population(self):
        """The fix behind HyPer's 10MB-fits-in-LLC behaviour."""
        small = AnalyticART("s2", DataAddressSpace(), n_keys=131_072)
        total = sum(r.n_lines for r in small._level_regions) * 64
        assert total < 8 << 20  # well under the LLC

    def test_range_scan(self):
        idx = self.make(n=100_000)
        assert [v for _, v in idx.range_scan(7, 4)] == [7, 8, 9, 10]


class TestAnalyticHash:
    def make(self, n=BILLION):
        return AnalyticHash("h", DataAddressSpace(), n_keys=n, key_to_value=identity_within(n))

    def test_resolution_and_overrides(self):
        idx = self.make()
        assert idx.probe(77) == 77
        idx.insert(77, "new")
        assert idx.probe(77) == "new"
        idx.delete(77)
        assert idx.probe(77) is None

    def test_probe_lines_bucket_plus_chain(self):
        idx = self.make()
        lines = idx.probe_lines(123)
        assert 2 <= len(lines) <= 6

    def test_chain_statistics_track_load_factor(self):
        idx = self.make(n=1_000_000)
        mean = sum(len(idx.probe_lines(k)) - 1 for k in range(0, 100_000, 997))
        mean /= len(range(0, 100_000, 997))
        assert 1.0 <= mean <= 1.8

    def test_range_scan_emulation(self):
        idx = self.make(n=1000)
        assert idx.range_scan(5, 3) == [(5, 5), (6, 6), (7, 7)]

    def test_fewer_lines_than_btree(self):
        h = self.make()
        b = AnalyticBTree("b2", DataAddressSpace(), n_keys=BILLION)
        assert len(h.probe_lines(12345)) < len(b.probe_lines(12345))


class TestFidelityVsMaterialised:
    """The layout models must match the real structures at small scale."""

    N = 30_000

    def test_btree_height_matches(self):
        real = BPlusTree("r", DataAddressSpace(), page_bytes=512)
        for k in range(self.N):
            real.insert(k, k)
        model = AnalyticBTree("m", DataAddressSpace(), n_keys=self.N, page_bytes=512)
        assert abs(model.height - real.height) <= 1

    def test_btree_lines_per_probe_match(self):
        real = BPlusTree("r", DataAddressSpace(), page_bytes=2048)
        for k in range(self.N):
            real.insert(k, k)
        model = AnalyticBTree("m", DataAddressSpace(), n_keys=self.N, page_bytes=2048)
        real_lines = []
        model_lines = []
        for k in range(100, self.N, 2971):
            t = AccessTrace()
            real.probe(k, t)
            real_lines.append(len(t))
            model_lines.append(len(model.probe_lines(k)))
        mean_real = sum(real_lines) / len(real_lines)
        mean_model = sum(model_lines) / len(model_lines)
        assert mean_model == pytest.approx(mean_real, rel=0.35)

    def test_art_height_matches(self):
        real = AdaptiveRadixTree("r", DataAddressSpace())
        for k in range(self.N):
            real.insert(k, k)
        model = AnalyticART("m", DataAddressSpace(), n_keys=self.N)
        assert abs(model.height - real.height()) <= 1

    def test_hash_lines_per_probe_match(self):
        real = HashIndex("r", DataAddressSpace(), expected_keys=self.N)
        for k in range(self.N):
            real.insert(k, k)
        model = AnalyticHash("m", DataAddressSpace(), n_keys=self.N)
        sample = range(0, self.N, 293)
        mean_real = sum(len(real.probe_path(k)) for k in sample) / len(sample)
        mean_model = sum(len(model.probe_lines(k)) for k in sample) / len(sample)
        assert mean_model == pytest.approx(mean_real, rel=0.35)


@settings(max_examples=30, deadline=None)
@given(
    n_keys=st.integers(min_value=100, max_value=10**10),
    key=st.integers(min_value=0),
)
def test_analytic_btree_paths_always_valid(n_keys, key):
    key = key % n_keys
    idx = AnalyticBTree("p", DataAddressSpace(), n_keys=n_keys)
    lines = idx.probe_lines(key)
    assert len(lines) >= idx.height
    assert len(set(lines)) == len(lines)  # distinct, dependence-ordered
    assert lines == idx.probe_lines(key)


@settings(max_examples=30, deadline=None)
@given(
    n_keys=st.integers(min_value=100, max_value=10**10),
    keys=st.lists(st.integers(min_value=0), min_size=1, max_size=20),
)
def test_analytic_overrides_shadow_population(n_keys, keys):
    idx = AnalyticHash("p", DataAddressSpace(), n_keys=n_keys, key_to_value=lambda k: k)
    for k in keys:
        idx.insert(k, ("v", k))
    for k in keys:
        assert idx.probe(k) == ("v", k)
