"""PerfCounters arithmetic tests."""

import pytest

from repro.core.counters import PerfCounters


class TestSnapshotDelta:
    def test_delta_subtracts(self):
        c = PerfCounters(instructions=100, cycles=200, l1i_misses=5)
        snap = c.snapshot()
        c.instructions += 50
        c.cycles += 80
        c.l1i_misses += 2
        d = c.delta(snap)
        assert d.instructions == 50
        assert d.cycles == 80
        assert d.l1i_misses == 2

    def test_snapshot_is_independent(self):
        c = PerfCounters(instructions=10)
        snap = c.snapshot()
        c.instructions = 99
        assert snap.instructions == 10

    def test_add(self):
        a = PerfCounters(instructions=1, transactions=1)
        b = PerfCounters(instructions=2, transactions=3)
        a.add(b)
        assert a.instructions == 3
        assert a.transactions == 4

    def test_scaled(self):
        c = PerfCounters(instructions=100, cycles=300)
        half = c.scaled(0.5)
        assert half.instructions == 50
        assert half.cycles == 150

    def test_reset(self):
        c = PerfCounters(instructions=5, llcd_misses=7)
        c.reset()
        assert c.instructions == 0
        assert c.llcd_misses == 0


class TestDerived:
    def test_ipc(self):
        c = PerfCounters(instructions=300, cycles=100)
        assert c.ipc == pytest.approx(3.0)

    def test_ipc_zero_cycles(self):
        assert PerfCounters().ipc == 0.0

    def test_as_dict_roundtrip(self):
        c = PerfCounters(instructions=9, llci_misses=1)
        d = c.as_dict()
        assert d["instructions"] == 9
        assert d["llci_misses"] == 1
        assert PerfCounters(**d).as_dict() == d
