"""Open-loop load driver tests: arrivals, scenarios, driver, reporting.

The load driver's whole value is its determinism contract — a timeline
is a pure function of ``(seed, tag, spec, mix, n_rows)`` — so most of
these are property tests: same seed must mean byte-identical timelines
regardless of client count representation or ``--jobs`` width, Zipf
mixes must concentrate mass on hot keys, think times must never be
negative, and offered load beyond capacity must saturate instead of
reporting impossible throughput.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.report import render_latency_percentiles
from repro.lint import sanitizer
from repro.load import (
    ARRIVAL_PROCESSES,
    ArrivalSpec,
    LoadSpec,
    MIXES,
    build_timeline,
    run_load,
    timeline_digest,
)
from repro.load.driver import probe_capacity, run_load_point
from repro.load.report import (
    append_load_record,
    load_record,
    per_op_rows,
    render_load_report,
    saturation_rows,
)
from repro.load.scenarios import INSERT, Mix, choose_op, pick_key
from repro.obs import Histogram, nearest_rank
from repro.util.rng import child_rng

MIX = MIXES["read-write"]
N_ROWS = 2000


def tiny_arrival(**kw) -> ArrivalSpec:
    base = dict(n_clients=1000, rate=1000.0, n_events=150)
    base.update(kw)
    return ArrivalSpec(**base)


class TestArrivalSpec:
    def test_rejects_unknown_process(self):
        with pytest.raises(ValueError, match="unknown arrival process"):
            ArrivalSpec(process="uniform")

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError, match="rate"):
            ArrivalSpec(rate=0.0)

    def test_cohorts_partition_clients_exactly(self):
        spec = tiny_arrival(n_clients=1_000_003, n_streams=32)
        cohorts = [spec.cohort(s) for s in range(spec.streams())]
        assert sum(size for _, size in cohorts) == spec.n_clients
        # Contiguous, non-overlapping client id ranges.
        edge = 0
        for lo, size in cohorts:
            assert lo == edge
            edge = lo + size

    def test_streams_never_exceed_clients(self):
        assert tiny_arrival(n_clients=5, n_streams=32).streams() == 5

    def test_mean_rate_preserved_by_shaping(self):
        # The off-phase rate compensates the burst/flash peak so the
        # integral of the multiplier over the horizon stays ~1.
        for process in ("burst", "flash"):
            spec = tiny_arrival(process=process)
            horizon = spec.horizon_s()
            n = 10_000
            mean = (
                sum(
                    spec.multiplier_at((i + 0.5) * horizon / n, horizon)
                    for i in range(n)
                )
                / n
            )
            assert mean == pytest.approx(1.0, rel=0.05), process


class TestTimelineDeterminism:
    def test_same_seed_same_timeline(self):
        a = build_timeline(tiny_arrival(), MIX, N_ROWS, 7)
        b = build_timeline(tiny_arrival(), MIX, N_ROWS, 7)
        assert a == b
        assert timeline_digest(a) == timeline_digest(b)

    def test_different_seed_different_timeline(self):
        a = build_timeline(tiny_arrival(), MIX, N_ROWS, 7)
        b = build_timeline(tiny_arrival(), MIX, N_ROWS, 8)
        assert timeline_digest(a) != timeline_digest(b)

    def test_tag_namespaces_streams(self):
        a = build_timeline(tiny_arrival(), MIX, N_ROWS, 7, tag="x1")
        b = build_timeline(tiny_arrival(), MIX, N_ROWS, 7, tag="x2")
        assert timeline_digest(a) != timeline_digest(b)

    def test_timeline_is_time_ordered_and_capped(self):
        spec = tiny_arrival(n_events=80)
        events = build_timeline(spec, MIX, N_ROWS, 3)
        assert len(events) <= 80
        keys = [(e.t_ns, e.stream, e.seq) for e in events]
        assert keys == sorted(keys)

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        process=st.sampled_from(ARRIVAL_PROCESSES),
        n_clients=st.sampled_from([1, 50, 1000, 1_000_000]),
    )
    def test_pure_function_of_seed(self, seed, process, n_clients):
        spec = tiny_arrival(process=process, n_clients=n_clients, n_events=60)
        a = build_timeline(spec, MIX, N_ROWS, seed)
        b = build_timeline(spec, MIX, N_ROWS, seed)
        assert a == b

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_client_count_scales_without_rng_blowup(self, seed):
        """A million clients must cost the same streams as a thousand:
        the cohort representation, not per-client state."""
        small = tiny_arrival(n_clients=1000, n_events=60)
        huge = tiny_arrival(n_clients=1_000_000, n_events=60)
        a = build_timeline(small, MIX, N_ROWS, seed)
        b = build_timeline(huge, MIX, N_ROWS, seed)
        # Same stream structure (32 cohorts), same event count regime.
        assert {e.stream for e in a} <= set(range(32))
        assert {e.stream for e in b} <= set(range(32))
        assert all(0 <= e.client < 1_000_000 for e in b)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        process=st.sampled_from(ARRIVAL_PROCESSES),
    )
    def test_think_times_non_negative(self, seed, process):
        spec = tiny_arrival(process=process, think_ms=2.0, n_events=80)
        for event in build_timeline(spec, MIX, N_ROWS, seed):
            assert event.think_ns >= 0
            assert event.t_ns >= event.think_ns  # arrival includes think

    def test_zero_think_time_means_zero(self):
        for event in build_timeline(tiny_arrival(), MIX, N_ROWS, 5):
            assert event.think_ns == 0


class TestScenarios:
    def test_known_mixes(self):
        assert set(MIXES) == {
            "read-only", "read-write", "write-only", "incremental-write",
        }

    def test_mix_validation(self):
        with pytest.raises(ValueError, match="unknown operation"):
            Mix("bad", (("scan", 1.0),))
        with pytest.raises(ValueError, match="theta"):
            Mix("bad", (("read", 1.0),), theta=1.5)

    def test_choose_op_respects_weights(self):
        mix = MIXES["read-write"]
        ops = [choose_op(mix, u / 1000) for u in range(1000)]
        reads = ops.count("read")
        assert 750 <= reads <= 850  # 80% nominal
        assert choose_op(mix, 0.999999) in ("read", "update")

    def test_read_only_is_read_only(self):
        events = build_timeline(tiny_arrival(), MIXES["read-only"], N_ROWS, 11)
        assert {e.op for e in events} == {"read"}

    def test_incremental_write_marks_keys_for_driver(self):
        events = build_timeline(
            tiny_arrival(), MIXES["incremental-write"], N_ROWS, 11
        )
        assert events
        assert all(e.op == INSERT and e.key == -1 for e in events)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_zipf_mass_concentration(self, seed):
        """theta=0.8 over 2000 keys: the hottest 1% of the keyspace must
        draw far more than its uniform share of accesses."""
        rng = child_rng(seed, "zipf-mass")
        n = 2000
        draws = [pick_key(rng, n, 0.8) for _ in range(4000)]
        assert all(0 <= k < n for k in draws)
        hot = sum(1 for k in draws if k < n // 100)
        assert hot / len(draws) > 0.10  # uniform share would be 1%

    def test_theta_zero_is_uniform(self):
        rng = child_rng(1, "uniform-keys")
        draws = [pick_key(rng, 1000, 0.0) for _ in range(3000)]
        hot = sum(1 for k in draws if k < 10)
        assert hot / len(draws) < 0.05


class TestNearestRank:
    def test_percentiles_are_actual_samples(self):
        samples = list(range(1, 101))
        assert nearest_rank(samples, 50) == 50
        assert nearest_rank(samples, 99) == 99
        assert nearest_rank(samples, 99.9) == 100
        assert nearest_rank(samples, 100) == 100
        assert nearest_rank(samples, 0) == 1

    def test_no_float_rank_creep(self):
        # ceil(0.99 * 100) in binary floats is 100, not 99 — the integer
        # basis-point arithmetic must not inherit that.
        assert nearest_rank(list(range(100)), 99) == 98

    def test_merge_order_independent(self):
        a = [5, 1, 9, 3]
        b = [2, 8, 4, 7]
        assert nearest_rank(a + b, 99) == nearest_rank(b + a, 99)
        assert nearest_rank(a + b, 50) == nearest_rank(sorted(a + b), 50)

    def test_errors(self):
        with pytest.raises(ValueError):
            nearest_rank([], 50)
        with pytest.raises(ValueError):
            nearest_rank([1], 101)

    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=400),
        q=st.sampled_from([0.0, 50.0, 99.0, 99.9, 100.0]),
    )
    def test_result_is_a_sample_and_order_free(self, values, q):
        result = nearest_rank(values, q)
        assert result in values
        assert result == nearest_rank(list(reversed(values)), q)

    def test_histogram_quantile_agrees_conservatively(self):
        hist = Histogram()
        samples = [3, 17, 120, 4096, 70000]
        for s in samples:
            hist.observe(s)
        for q in (50.0, 99.0, 99.9):
            exact = nearest_rank(samples, q)
            assert hist.quantile(q) >= exact  # bucket edge upper-bounds
            assert hist.quantile(q) < exact * 2 + 1  # same log2 bucket

    def test_histogram_quantile_empty(self):
        with pytest.raises(ValueError):
            Histogram().quantile(50)

    def test_render_latency_percentiles_deterministic(self):
        samples = [1500, 900, 120000, 3200] * 10
        assert render_latency_percentiles(samples) == render_latency_percentiles(
            list(reversed(samples))
        )
        assert "p999=" in render_latency_percentiles(samples)


def quick_spec(**kw) -> LoadSpec:
    base = dict(
        system="hyper",
        arrival=ArrivalSpec(n_clients=1000, n_events=100),
        multipliers=(0.5, 4.0),
        seed=7,
    )
    base.update(kw)
    return LoadSpec(**base)


class TestLoadSpec:
    def test_rejects_unknown_mix(self):
        with pytest.raises(ValueError, match="unknown mix"):
            quick_spec(mix="scan-heavy")

    def test_rejects_bad_remote_pct(self):
        with pytest.raises(ValueError, match="remote_pct"):
            quick_spec(remote_pct=150.0)

    def test_rejects_bad_multipliers(self):
        with pytest.raises(ValueError, match="multipliers"):
            quick_spec(multipliers=(1.0, -2.0))


class TestDriver:
    def test_queueing_separated_from_service(self):
        point = run_load_point(quick_spec(), 4.0, 2_000_000.0)
        assert point.n_events > 0
        assert len(point.queueing_ns) == point.n_events
        assert all(q >= 0 for q in point.queueing_ns)
        assert all(s > 0 for s in point.service_ns)
        lat = point.latencies_ns
        assert all(
            l == q + s for l, q, s in zip(lat, point.queueing_ns, point.service_ns)
        )

    def test_saturation_overload_does_not_exceed_capacity(self):
        """The monotonicity smoke: past saturation, achieved throughput
        must plateau — offering 8x more must not report ~8x more."""
        result = run_load(quick_spec(multipliers=(0.5, 2.0, 8.0)))
        by_mult = {p.multiplier: p for p in result.points}
        sat = by_mult[2.0].achieved_tps
        deep = by_mult[8.0].achieved_tps
        assert deep <= sat * 1.10  # plateau, not scaling with offered
        assert deep < by_mult[8.0].offered_tps * 0.60
        # And the plateau is backed by a stretched makespan, not fudge.
        assert by_mult[8.0].makespan_ns > by_mult[8.0].horizon_ns

    def test_under_load_tracks_offered(self):
        result = run_load(quick_spec(multipliers=(0.25,)))
        point = result.points[0]
        assert point.achieved_tps <= point.offered_tps * 1.01
        assert point.achieved_tps > point.offered_tps * 0.5

    def test_incremental_write_grows_table(self):
        result = run_load(
            quick_spec(mix="incremental-write", multipliers=(1.0,))
        )
        point = result.points[0]
        assert point.committed > 0
        assert point.aborted == 0

    def test_fault_rate_injects_aborts(self):
        # Injected TXN_BODY aborts are retried like any abort, so only a
        # high per-attempt rate exhausts the retry budget visibly.
        result = run_load(
            quick_spec(fault_rate=0.9, multipliers=(1.0,))
        )
        point = result.points[0]
        assert point.aborted > 0
        assert point.committed > 0  # not everything dies

    def test_serial_vs_jobs_bit_identical(self):
        spec = quick_spec(
            arrival=ArrivalSpec(n_clients=1_000_000, n_events=80, process="flash")
        )
        serial = run_load(spec, jobs=1)
        fanned = run_load(spec, jobs=2)
        assert serial.points == fanned.points
        assert render_load_report(serial) == render_load_report(fanned)

    def test_sanitized_matches_plain(self):
        spec = quick_spec()
        plain = run_load(spec)
        with sanitizer.sanitizing(True):
            sanitized = run_load(spec)
        assert render_load_report(plain) == render_load_report(sanitized)
        assert sanitized.rng_draws  # provenance was collected
        assert sanitizer.ok()

    def test_replicated_backend_charges_fabric_ticks(self):
        spec = quick_spec(
            system="shore-mt",
            mix="read-only",
            replicas=2,
            ack="quorum",
            arrival=ArrivalSpec(n_clients=200, n_events=25),
            multipliers=(1.0,),
        )
        result = run_load(spec)
        point = result.points[0]
        assert point.committed > 0
        # Quorum acks round-trip the fabric: service must dwarf the
        # plain engine's sub-microsecond times.
        assert point.mean_service_ns() > 50_000

    def test_sharded_backend_runs_2pc(self):
        spec = quick_spec(
            system="shore-mt",
            shards=2,
            remote_pct=30.0,
            arrival=ArrivalSpec(n_clients=200, n_events=20),
            multipliers=(1.0,),
        )
        result = run_load(spec)
        assert result.points[0].committed > 0

    def test_capacity_probe_deterministic(self):
        assert probe_capacity(quick_spec()) == probe_capacity(quick_spec())


class TestLoadReport:
    def test_report_has_percentiles_and_curve(self):
        result = run_load(quick_spec())
        text = render_load_report(result)
        assert "p50=" in text and "p99=" in text and "p999=" in text
        assert "saturation curve" in text
        assert "offered" in text and "achieved" in text

    def test_record_roundtrip(self, tmp_path):
        result = run_load(quick_spec(multipliers=(1.0,)))
        record = load_record(result)
        assert record["points"] == saturation_rows(result)
        assert record["spec"]["clients"] == 1000
        path = append_load_record(record, tmp_path)
        assert path.name.startswith("LOAD_")
        data = json.loads(path.read_text())
        assert isinstance(data, list) and len(data) == 1
        append_load_record(record, tmp_path)
        assert len(json.loads(path.read_text())) == 2

    def test_per_op_breakdown_partitions_latencies(self):
        point = run_load(quick_spec(multipliers=(1.0,))).points[0]
        assert len(point.ops) == len(point.latencies_ns)
        by_op = point.latencies_by_op()
        assert set(by_op) <= {"read", "update", "insert"}
        assert len(by_op) > 1  # read-write mix exercises two ops
        assert sum(len(v) for v in by_op.values()) == point.n_events
        # Partition, not a resample: the multiset of latencies is intact.
        merged = sorted(lat for v in by_op.values() for lat in v)
        assert merged == sorted(point.latencies_ns)

    def test_per_op_rows_in_record(self):
        result = run_load(quick_spec(multipliers=(1.0,)))
        rows = saturation_rows(result)
        by_op = rows[0]["by_op"]
        assert set(by_op) == set(result.points[0].latencies_by_op())
        for row in by_op.values():
            assert row["count"] > 0
            assert row["p50_us"] <= row["p99_us"] <= row["p999_us"]
        assert per_op_rows(result.points[0]) == by_op

    def test_per_op_lines_rendered(self):
        result = run_load(quick_spec(multipliers=(1.0,)))
        text = render_load_report(result)
        for op in result.points[0].latencies_by_op():
            assert f"    {op}" in text or f"    {op} " in text

    def test_sharded_ops_use_procedure_names(self):
        spec = quick_spec(
            system="shore-mt",
            shards=2,
            remote_pct=30.0,
            arrival=ArrivalSpec(n_clients=200, n_events=20),
            multipliers=(1.0,),
        )
        point = run_load(spec).points[0]
        # The sharded backend drives its own distributed TPC-C mix; ops
        # carry the cluster's procedure names, not the timeline's labels.
        assert set(point.latencies_by_op()) <= {
            "new_order", "payment", "stock_level"
        }

    def test_per_op_split_is_deterministic(self):
        spec = quick_spec(multipliers=(1.0,))
        a = run_load(spec, jobs=1).points[0]
        b = run_load(spec, jobs=2).points[0]
        assert a.ops == b.ops
        assert a.latencies_by_op() == b.latencies_by_op()

    def test_report_carries_no_wall_clock(self):
        # The stdout report must be byte-diffable across runs: anything
        # timestamp-shaped lives only in the LOAD record.
        result = run_load(quick_spec(multipliers=(1.0,)))
        text = render_load_report(result)
        record = load_record(result)
        assert record["timestamp"] not in text
        assert record["date"] not in text


class TestCliValidation:
    """`repro-bench load` / `chaos` reject nonsense with exit code 2
    (argparse's usage-error convention), never a traceback."""

    def _exit_code(self, argv):
        from repro.bench.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        return excinfo.value.code

    @pytest.mark.parametrize(
        "argv",
        [
            ["load", "--clients", "0"],
            ["load", "--rate", "-1"],
            ["load", "--arrival", "tsunami"],
            ["load", "--mix", "no-such-mix"],
            ["load", "--servers", "0"],
            ["load", "--fault-rate", "1.5"],
            ["load", "--multipliers", "0"],
            ["chaos", "--shards", "0"],
            ["chaos", "--shards", "2", "--remote-pct", "150"],
            ["chaos", "--shards", "2", "--remote-pct", "-5"],
            ["chaos", "--replicas", "-1"],
            ["chaos", "--seeds", "0"],
            ["load", "--chaos", "no-such-suite"],
            ["load", "--chaos", "brownout", "--chaos-windows", "0"],
            ["load", "--chaos", "partition"],  # needs --replicas >= 1
            ["load", "--chaos", "coordinator-crash"],  # needs --shards >= 1
            ["load", "--chaos", "crash", "--shards", "2"],
            ["load", "--retry", "-1"],
            ["load", "--timeout-ms", "-1"],
            ["load", "--shed", "-1"],
            ["load", "--breaker", "-1"],
        ],
    )
    def test_bad_arguments_exit_2(self, argv, capsys):
        assert self._exit_code(argv) == 2
        assert "usage" in capsys.readouterr().err

    def test_good_arguments_do_not_trip_validation(self, capsys, monkeypatch, tmp_path):
        from repro.bench.cli import main

        monkeypatch.chdir(tmp_path)  # LOAD record lands in a sandbox
        code = main(
            ["load", "--clients", "100", "--events", "40",
             "--multipliers", "1", "--no-save"]
        )
        assert code == 0
        assert "saturation curve" in capsys.readouterr().out
