"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.machine import Machine
from repro.core.spec import CacheSpec, IVY_BRIDGE, ServerSpec
from repro.core.trace import AccessTrace
from repro.storage.address_space import DataAddressSpace

# A deliberately tiny server so cache-capacity effects are cheap to hit.
TINY_SERVER = ServerSpec(
    name="tiny-test-server",
    n_sockets=1,
    cores_per_socket=4,
    clock_ghz=1.0,
    memory_gb=1,
    l1i=CacheSpec("L1I", 2 * 1024, 2, miss_penalty_cycles=8),
    l1d=CacheSpec("L1D", 2 * 1024, 2, miss_penalty_cycles=8),
    l2=CacheSpec("L2", 8 * 1024, 4, miss_penalty_cycles=19),
    llc=CacheSpec("LLC", 64 * 1024, 8, miss_penalty_cycles=167),
)


@pytest.fixture
def space() -> DataAddressSpace:
    return DataAddressSpace()


@pytest.fixture
def trace() -> AccessTrace:
    return AccessTrace()


@pytest.fixture
def machine() -> Machine:
    return Machine(IVY_BRIDGE, n_cores=1)


@pytest.fixture
def tiny_machine() -> Machine:
    return Machine(TINY_SERVER, n_cores=1)


@pytest.fixture
def tiny_machine_mc() -> Machine:
    return Machine(TINY_SERVER, n_cores=2)
