"""Set-associative cache unit tests."""

import pytest

from repro.core.cache import SetAssociativeCache
from repro.core.spec import CacheSpec


def small_cache(n_sets=4, assoc=2) -> SetAssociativeCache:
    spec = CacheSpec("test", n_sets * assoc * 64, assoc, miss_penalty_cycles=8)
    return SetAssociativeCache(spec)


class TestBasics:
    def test_first_access_misses_then_hits(self):
        c = small_cache()
        assert not c.lookup(100)
        assert c.lookup(100)
        assert c.stats.accesses == 2
        assert c.stats.hits == 1
        assert c.stats.misses == 1

    def test_distinct_sets_do_not_conflict(self):
        c = small_cache(n_sets=4, assoc=2)
        for line in range(4):  # one line per set
            assert not c.lookup(line)
        for line in range(4):
            assert c.lookup(line)

    def test_miss_ratio(self):
        c = small_cache()
        c.lookup(1)
        c.lookup(1)
        c.lookup(1)
        assert c.stats.miss_ratio == pytest.approx(1 / 3)

    def test_empty_stats(self):
        c = small_cache()
        assert c.stats.miss_ratio == 0.0
        assert c.resident_lines() == 0


class TestLRU:
    def test_eviction_order_is_lru(self):
        c = small_cache(n_sets=1, assoc=2)
        c.lookup(0)
        c.lookup(1)
        c.lookup(0)  # refresh 0 -> 1 is now LRU
        c.lookup(2)  # evicts 1
        assert c.lookup(0)
        assert not c.lookup(1)

    def test_associativity_limit(self):
        c = small_cache(n_sets=1, assoc=4)
        for line in range(4):
            c.lookup(line)
        assert c.resident_lines() == 4
        c.lookup(4)
        assert c.resident_lines() == 4
        assert c.stats.evictions == 1

    def test_cyclic_overflow_always_misses(self):
        # The LRU worst case: cycling through assoc+1 lines of one set.
        c = small_cache(n_sets=1, assoc=2)
        for _ in range(5):
            for line in range(3):
                c.lookup(line)
        assert c.stats.hits == 0

    def test_fill_respects_capacity(self):
        c = small_cache(n_sets=1, assoc=2)
        for line in range(5):
            c.fill(line)
        assert c.resident_lines() == 2


class TestWritesAndInvalidation:
    def test_write_marks_dirty_and_hits(self):
        c = small_cache()
        c.lookup(7, write=True)
        assert c.lookup(7)

    def test_invalidate_present(self):
        c = small_cache()
        c.lookup(3)
        assert c.invalidate(3)
        assert not c.contains(3)
        assert c.stats.invalidations == 1

    def test_invalidate_absent_is_noop(self):
        c = small_cache()
        assert not c.invalidate(3)
        assert c.stats.invalidations == 0

    def test_contains_does_not_touch_stats(self):
        c = small_cache()
        c.lookup(5)
        before = c.stats.accesses
        assert c.contains(5)
        assert not c.contains(6)
        assert c.stats.accesses == before

    def test_flush_empties(self):
        c = small_cache()
        for line in range(8):
            c.lookup(line)
        c.flush()
        assert c.resident_lines() == 0
        assert not c.lookup(0)  # cold again

    def test_stats_reset(self):
        c = small_cache()
        c.lookup(1)
        c.stats.reset()
        assert c.stats.accesses == 0
        assert c.stats.misses == 0

    def test_fill_is_not_an_access(self):
        c = small_cache()
        c.fill(9)
        assert c.stats.accesses == 0
        assert c.lookup(9)  # resident
