"""TPC-B workload tests."""

import random

import pytest

from repro.engines.config import EngineConfig
from repro.engines.registry import make_engine
from repro.workloads.tpcb import ACCOUNTS_PER_BRANCH, TELLERS_PER_BRANCH, TPCB


@pytest.fixture
def wl() -> TPCB:
    return TPCB(db_bytes=100 << 30)


@pytest.fixture
def engine(wl):
    engine = make_engine("dbms-m", EngineConfig(materialize_threshold=0))
    wl.setup(engine)
    return engine


class TestScaling:
    def test_paper_cardinalities_at_100gb(self, wl):
        """Section 5.1.2: ~20K branches, ~200K tellers, ~2B accounts."""
        assert wl.n_branches == pytest.approx(20_000, rel=0.05)
        assert wl.n_tellers == pytest.approx(200_000, rel=0.05)
        assert wl.n_accounts == pytest.approx(2_000_000_000, rel=0.05)

    def test_ratios(self, wl):
        assert wl.n_tellers == wl.n_branches * TELLERS_PER_BRANCH
        assert wl.n_accounts == wl.n_branches * ACCOUNTS_PER_BRANCH

    def test_four_tables_history_grows(self, wl):
        specs = {s.name: s for s in wl.table_specs()}
        assert set(specs) == {"branch", "teller", "account", "history"}
        assert specs["history"].grows
        assert specs["branch"].warm_priority > specs["account"].warm_priority


class TestAccountUpdate:
    def test_updates_three_tables_and_appends_history(self, wl, engine):
        rng = random.Random(0)
        proc, body = wl.next_transaction(rng)
        assert proc == "account_update"
        history = engine.table("history").heap
        before = history.n_rows
        engine.execute(proc, body)
        assert history.n_rows == before + 1
        assert engine.stats.operations == 4

    def test_balances_add_up(self, wl, engine):
        rng = random.Random(3)
        # Run several transactions, then check conservation: the account
        # delta equals the branch delta for a fresh single-branch run.
        totals = {"account": 0, "teller": 0, "branch": 0}
        for _ in range(5):
            proc, body = wl.next_transaction(rng)
            engine.execute(proc, body)
        history = engine.table("history").heap
        deltas = [history.read(rid)[1] for rid in range(1, history.n_rows)]
        assert deltas  # recorded delta per transaction
        # Every history row's referenced teller belongs to its branch.
        for rid in range(1, history.n_rows):
            account, delta, teller, branch, _ = history.read(rid)
            assert teller // TELLERS_PER_BRANCH == branch
            assert account // ACCOUNTS_PER_BRANCH == branch

    def test_partition_homing(self, wl):
        rng = random.Random(1)

        class Spy:
            def __init__(self):
                self.branches = set()

            def update(self, table, key, column, fn):
                if table == "branch":
                    self.branches.add(key)
                return (key, 0)

            def insert(self, table, values, key=None):
                return 0

        spy = Spy()
        for _ in range(30):
            _, body = wl.next_transaction(rng, partition=1, n_partitions=4)
            body(spy)
        per_part = -(-wl.n_branches // 4)
        assert spy.branches
        assert all(per_part <= b < 2 * per_part for b in spy.branches)

    def test_update_persistence(self, wl, engine):
        """The same account updated twice accumulates both deltas."""
        account_table = engine.table("account")
        base = account_table.heap.read(0)[1]

        def plus(txn, amount):
            txn.update("account", 0, "balance", lambda v: v + amount)

        engine.execute("account_update", lambda txn: plus(txn, 10))
        engine.execute("account_update", lambda txn: plus(txn, 5))
        reader = engine.begin()
        assert reader.read("account", 0)[1] == base + 15
        reader.commit()
