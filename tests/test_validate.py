"""Tests for the figure-validation machinery."""

import pytest

from repro.bench.results import FigureResult, IPC, STALLS_PER_KI
from repro.bench.runner import RunResult
from repro.bench.validate import (
    Check,
    _decreasing,
    _increasing,
    render_checks,
    validate_figure,
)
from repro.core.counters import PerfCounters
from repro.core.spec import IVY_BRIDGE


def result(instr=10_000, cycles=20_000, txns=10, **misses) -> RunResult:
    counters = PerfCounters(instructions=instr, cycles=cycles, transactions=txns, **misses)
    return RunResult(
        system="x", counters=counters, module_cycles={}, module_groups={},
        server=IVY_BRIDGE, measured_txns=txns,
    )


SYSTEMS = ["Shore-MT", "DBMS D", "VoltDB", "HyPer", "DBMS M"]


def ipc_figure(figure_id="Figure 1", values=None) -> FigureResult:
    fig = FigureResult(
        figure_id=figure_id, title="t", metric=IPC,
        x_label="size", x_values=["1MB", "100GB"], systems=SYSTEMS,
    )
    values = values or {}
    for s in SYSTEMS:
        for x in fig.x_values:
            ipc_value = values.get((s, x), 0.7)
            fig.add(s, x, result(instr=int(1000 * ipc_value), cycles=1000))
    return fig


class TestHelpers:
    def test_monotone_helpers(self):
        assert _decreasing([3, 2, 1])
        assert _decreasing([1.0, 1.01, 0.9])  # within slack
        assert not _decreasing([1, 2])
        assert _increasing([1, 2, 3])
        assert not _increasing([3, 1])

    def test_check_render(self):
        assert "PASS" in Check("Figure 1", "x", True).render()
        assert "FAIL" in Check("Figure 1", "x", False, "why").render()

    def test_render_checks_summary(self):
        text = render_checks([Check("f", "a", True), Check("f", "b", False)])
        assert "1/2 checks passed" in text


class TestFigureValidation:
    def test_good_fig1_passes(self):
        fig = ipc_figure(values={
            ("HyPer", "1MB"): 2.4, ("HyPer", "100GB"): 0.4,
            ("Shore-MT", "1MB"): 1.0, ("Shore-MT", "100GB"): 0.8,
            ("VoltDB", "1MB"): 0.9, ("VoltDB", "100GB"): 0.7,
            ("DBMS M", "1MB"): 0.7, ("DBMS M", "100GB"): 0.65,
            ("DBMS D", "1MB"): 0.65, ("DBMS D", "100GB"): 0.6,
        })
        checks = validate_figure(fig)
        assert checks and all(c.passed for c in checks)

    def test_bad_fig1_detected(self):
        # HyPer highest at 100GB: violates the collapse claim.
        fig = ipc_figure(values={
            ("HyPer", "1MB"): 2.4, ("HyPer", "100GB"): 1.1,
        })
        checks = validate_figure(fig)
        assert any(not c.passed for c in checks)

    def test_unregistered_figure_yields_no_checks(self):
        fig = ipc_figure(figure_id="Figure 99")
        assert validate_figure(fig) == []

    def test_crashing_predicate_is_a_failure(self):
        # A stalls validator on an IPC figure raises inside the predicate.
        fig = ipc_figure(figure_id="Figure 3")
        fig.x_values = ["100GB"]
        checks = validate_figure(fig)
        assert checks
        assert all(not c.passed for c in checks)
        assert any(c.details for c in checks)


class TestEndToEnd:
    def test_validate_one_real_figure(self):
        from repro.bench.figures import run_figure

        panels = run_figure("fig3", quick=True)
        checks = []
        for panel in panels:
            checks.extend(validate_figure(panel))
        assert checks
        assert all(c.passed for c in checks), render_checks(checks)
