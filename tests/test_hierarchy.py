"""Memory hierarchy tests: levels, fills, coherence."""

import pytest

from repro.core.hierarchy import L1, L2, LLC, MEMORY, MemoryHierarchy
from tests.conftest import TINY_SERVER


@pytest.fixture
def hier() -> MemoryHierarchy:
    return MemoryHierarchy(TINY_SERVER, n_cores=1)


@pytest.fixture
def hier2() -> MemoryHierarchy:
    return MemoryHierarchy(TINY_SERVER, n_cores=2)


class TestInstructionPath:
    def test_cold_access_goes_to_memory(self, hier):
        assert hier.access_instr(0, 1000) == MEMORY

    def test_second_access_hits_l1(self, hier):
        hier.access_instr(0, 1000)
        assert hier.access_instr(0, 1000) == L1

    def test_l2_hit_after_l1_eviction(self, hier):
        # TINY L1I: 2KB/64B = 32 lines, 2-way, 16 sets. Evict line 0
        # from L1 by cycling its set; it should still be in L2.
        hier.access_instr(0, 0)
        for i in range(1, 4):
            hier.access_instr(0, i * 16)  # same set as line 0
        level = hier.access_instr(0, 0)
        assert level == L2

    def test_llc_hit_after_l2_eviction(self, hier):
        # L2 is 8KB = 128 lines, 4-way, 32 sets; cycle set 0 heavily.
        hier.access_instr(0, 0)
        for i in range(1, 8):
            hier.access_instr(0, i * 32)
        assert hier.access_instr(0, 0) == LLC


class TestDataPath:
    def test_cold_then_warm(self, hier):
        level, transfer = hier.access_data(0, 555, write=False)
        assert level == MEMORY and not transfer
        level, transfer = hier.access_data(0, 555, write=False)
        assert level == L1 and not transfer

    def test_write_allocates(self, hier):
        hier.access_data(0, 77, write=True)
        level, _ = hier.access_data(0, 77, write=False)
        assert level == L1

    def test_instruction_and_data_do_not_share_l1(self, hier):
        hier.access_instr(0, 42)
        level, _ = hier.access_data(0, 42, write=False)
        # Line is in L2 (filled on the instruction path), not L1D.
        assert level == L2


class TestCoherence:
    def test_single_core_skips_coherence(self, hier):
        hier.access_data(0, 9, write=True)
        assert hier.coherence_transfers == 0
        assert not hier._modified_by

    def test_store_invalidates_other_core(self, hier2):
        hier2.access_data(0, 9, write=False)
        level, _ = hier2.access_data(0, 9, write=False)
        assert level == L1
        hier2.access_data(1, 9, write=True)
        # Core 0's private copy must be gone; the LLC still holds it.
        level, _ = hier2.access_data(0, 9, write=False)
        assert level in (LLC, MEMORY)

    def test_reading_remote_modified_line_is_a_transfer(self, hier2):
        hier2.access_data(0, 123, write=True)
        level, transfer = hier2.access_data(1, 123, write=False)
        assert transfer
        assert hier2.coherence_transfers == 1
        assert level in (LLC, MEMORY)

    def test_own_modified_line_is_not_a_transfer(self, hier2):
        hier2.access_data(0, 5, write=True)
        level, transfer = hier2.access_data(0, 5, write=False)
        assert level == L1 and not transfer

    def test_n_cores_bounds(self):
        with pytest.raises(ValueError):
            MemoryHierarchy(TINY_SERVER, n_cores=0)
        with pytest.raises(ValueError):
            MemoryHierarchy(TINY_SERVER, n_cores=TINY_SERVER.n_cores + 1)


class TestMaintenance:
    def test_flush(self, hier2):
        hier2.access_data(0, 1, write=True)
        hier2.access_instr(1, 2)
        hier2.flush()
        assert hier2.resident_lines() == 0
        assert hier2.coherence_transfers == 0
        assert hier2.access_instr(1, 2) == MEMORY

    def test_resident_lines_counts_all_levels(self, hier):
        hier.access_instr(0, 1)
        # line in L1I + L2 + LLC
        assert hier.resident_lines() == 3
