"""Cycle-model tests: ideal IPC, overlap factors, stall accounting."""

import pytest

from repro.core.counters import PerfCounters
from repro.core.cpu import (
    CycleModel,
    DEFAULT_OVERLAP,
    FRONTEND_REFILL_FACTOR,
    OverlapModel,
    SERIAL_MISS_EXTRA_CYCLES,
)
from repro.core.spec import IVY_BRIDGE


class TestOverlapModel:
    def test_defaults_valid(self):
        assert DEFAULT_OVERLAP.instr == 1.0
        assert 0 < DEFAULT_OVERLAP.l1d <= 1
        assert DEFAULT_OVERLAP.llcd_serial == 1.0

    @pytest.mark.parametrize("field", ["instr", "l1d", "l2d", "llcd", "llcd_serial", "coherence"])
    def test_out_of_range_rejected(self, field):
        with pytest.raises(ValueError):
            OverlapModel(**{field: 1.5})
        with pytest.raises(ValueError):
            OverlapModel(**{field: -0.1})


class TestIdealLoop:
    def test_miss_free_loop_retires_at_ideal_ipc(self):
        """Section 4.1.1: a loop with no misses measures IPC = 3."""
        model = CycleModel(IVY_BRIDGE)
        delta = PerfCounters(instructions=30_000)
        cycles = model.cycles(delta)
        assert delta.instructions / cycles == pytest.approx(3.0, rel=0.01)

    def test_explicit_base_cycles_override_ideal(self):
        model = CycleModel(IVY_BRIDGE)
        delta = PerfCounters(instructions=1000)
        cycles = model.cycles(delta, base_cycles=500.0)
        assert cycles == 500


class TestStallAccounting:
    def test_instruction_stalls_full_latency_with_frontend_factor(self):
        model = CycleModel(IVY_BRIDGE)
        delta = PerfCounters(l1i_misses=10)
        assert model.stall_cycles(delta) == pytest.approx(10 * 8 * FRONTEND_REFILL_FACTOR)

    def test_hierarchical_charging_is_additive(self):
        model = CycleModel(IVY_BRIDGE)
        delta = PerfCounters(l1i_misses=1, l2i_misses=1, llci_misses=1)
        assert model.stall_cycles(delta) == pytest.approx((8 + 19 + 167) * FRONTEND_REFILL_FACTOR)

    def test_parallel_data_misses_overlap(self):
        model = CycleModel(IVY_BRIDGE)
        delta = PerfCounters(llcd_misses=10)  # none serial
        assert model.stall_cycles(delta) == pytest.approx(10 * 167 * DEFAULT_OVERLAP.llcd)

    def test_serial_misses_expose_full_latency_plus_walk(self):
        model = CycleModel(IVY_BRIDGE)
        delta = PerfCounters(llcd_misses=10, llcd_serial_misses=10)
        expected = 10 * (167 + SERIAL_MISS_EXTRA_CYCLES)
        assert model.stall_cycles(delta) == pytest.approx(expected)

    def test_serial_subset_split(self):
        model = CycleModel(IVY_BRIDGE)
        delta = PerfCounters(llcd_misses=10, llcd_serial_misses=4)
        expected = (
            6 * 167 * DEFAULT_OVERLAP.llcd
            + 4 * (167 + SERIAL_MISS_EXTRA_CYCLES)
        )
        assert model.stall_cycles(delta) == pytest.approx(expected)

    def test_branch_mispredict_penalty(self):
        model = CycleModel(IVY_BRIDGE)
        delta = PerfCounters(mispredicts=10)
        assert model.stall_cycles(delta) == pytest.approx(10 * IVY_BRIDGE.branch_misprediction_penalty)

    def test_coherence_charged_at_llc_penalty(self):
        model = CycleModel(IVY_BRIDGE)
        delta = PerfCounters(coherence_misses=3)
        assert model.stall_cycles(delta) == pytest.approx(3 * 167)

    def test_cycles_at_least_one(self):
        model = CycleModel(IVY_BRIDGE)
        assert model.cycles(PerfCounters()) == 1

    def test_custom_knobs(self):
        model = CycleModel(IVY_BRIDGE, serial_miss_extra_cycles=0, frontend_refill_factor=1.0)
        delta = PerfCounters(l1i_misses=1, llcd_misses=1, llcd_serial_misses=1)
        assert model.stall_cycles(delta) == pytest.approx(8 + 167)
