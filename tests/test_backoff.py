"""repro.util.backoff — the consolidated retry schedule.

The three former inline copies (replication ack loop, 2PC resend loop,
engine abort-retry loop) must keep drawing byte-identical schedules
after the consolidation; the pinned digests below freeze them.
"""

from __future__ import annotations

import zlib
from random import Random

import pytest

from repro.util import child_rng
from repro.util.backoff import capped_backoff, jittered_backoff


def _inline_jittered(base: int, cap: int, attempt: int, rng: Random) -> int:
    # The exact pre-consolidation expression from group._await_ack /
    # cluster._await, kept verbatim as the reference implementation.
    jitter = rng.randrange(0, base + 1)
    return min(base * 2 ** (attempt - 1), cap) + jitter


class TestCappedBackoff:
    def test_doubles_then_caps(self):
        assert [capped_backoff(2, 16, a) for a in range(1, 7)] == [2, 4, 8, 16, 16, 16]

    def test_float_schedule_matches_engine_inline(self):
        base, cap = 500.0, 500.0 * 64
        for attempts in range(1, 12):
            assert capped_backoff(base, cap, attempts) == min(
                base * 2 ** (attempts - 1), cap
            )

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError, match="attempt"):
            capped_backoff(2, 16, 0)


class TestJitteredBackoff:
    def test_byte_identical_to_inline_copy(self):
        # Same seeded stream through both implementations: every draw
        # and every returned tick count must match, and the two RNGs
        # must end in the same state.
        ref = child_rng(1234, "client")
        new = child_rng(1234, "client")
        for attempt in range(1, 20):
            assert _inline_jittered(2, 16, attempt, ref) == jittered_backoff(
                2, 16, attempt, new
            )
        assert ref.getstate() == new.getstate()

    def test_single_draw_per_call(self):
        rng = Random(7)
        before = rng.getstate()
        jittered_backoff(4, 32, 3, rng)
        rng2 = Random(7)
        rng2.setstate(before)
        rng2.randrange(0, 5)
        assert rng.getstate() == rng2.getstate()

    def test_pinned_schedule_digest(self):
        # Freezes the (seed, "client") replication-client schedule for
        # ShardSpec-style base=2/cap=16.  If this digest moves, a
        # refactor changed the retry timing of every replicated and
        # sharded experiment in the repo — that is a breaking change,
        # not a cleanup.
        rng = child_rng(42, "client")
        schedule = tuple(jittered_backoff(2, 16, a, rng) for a in range(1, 33))
        digest = zlib.crc32(repr(schedule).encode())
        assert digest == 290665123, (digest, schedule)

    def test_jitter_bounded_by_base(self):
        rng = Random(0)
        for attempt in range(1, 50):
            val = jittered_backoff(3, 24, attempt, rng)
            det = int(capped_backoff(3, 24, attempt))
            assert det <= val <= det + 3
