"""TableSpec / EngineTable / PartitionedTable tests."""

import pytest

from repro.core.trace import AccessTrace
from repro.engines.common import EngineTable, PartitionedTable, TableSpec, index_hot_regions
from repro.storage.record import microbench_schema


def spec(n_rows=1000, **kw) -> TableSpec:
    return TableSpec("t", microbench_schema(), n_rows, **kw)


class TestTableSpec:
    def test_logical_bytes(self):
        assert spec(n_rows=10).logical_bytes == 240

    def test_needs_rows(self):
        with pytest.raises(ValueError):
            spec(n_rows=0)

    def test_flags(self):
        s = TableSpec("x", microbench_schema(), 5, grows=True, warm_priority=2, replicated=True)
        assert s.grows and s.replicated and s.warm_priority == 2


class TestEngineTable:
    def test_dense_prepopulation_identity(self, space):
        t = EngineTable(spec(), space, index_kind="btree")
        assert t.probe(500, None, 0) == 500
        assert t.probe(1000, None, 0) is None
        assert t.probe(-1, None, 0) is None

    def test_insert_row_appends_and_indexes(self, space):
        t = EngineTable(spec(), space, index_kind="hash")
        rid = t.insert_row((9, 9), key=5000, trace=None, mod=0)
        assert rid == 1000
        assert t.probe(5000, None, 0) == rid
        assert t.heap.read(rid) == (9, 9)

    def test_analytic_backing_at_scale(self, space):
        t = EngineTable(spec(n_rows=10**9), space, index_kind="art")
        assert t.probe(10**8, None, 0) == 10**8

    def test_hot_regions_nonempty(self, space):
        t = EngineTable(spec(), space, index_kind="btree")
        regions = t.hot_regions()
        assert regions
        assert all(n > 0 for _, n in regions)


class TestPartitionedTable:
    def make(self, n_rows=1000, parts=4, space=None):
        from repro.storage.address_space import DataAddressSpace

        return PartitionedTable(
            spec(n_rows=n_rows), space or DataAddressSpace(), parts, index_kind="cc_btree"
        )

    def test_partition_routing(self):
        t = self.make()
        assert t.partition_of(0) == 0
        assert t.partition_of(999) == 3
        assert t.partition_of(10**9) == 3  # clamped

    def test_probe_across_partitions(self):
        t = self.make()
        for key in (0, 251, 503, 999):
            assert t.probe(key, None, 0) == key
        assert t.probe(1000, None, 0) is None

    def test_partitions_have_disjoint_index_addresses(self):
        t = self.make()
        t0_lines = index_hot_regions(t._indexes[0])
        t1_lines = index_hot_regions(t._indexes[1])
        spans0 = {(b, b + n) for b, n in t0_lines}
        spans1 = {(b, b + n) for b, n in t1_lines}
        assert not spans0 & spans1

    def test_insert_routed_by_key(self):
        t = self.make()
        rid = t.insert_row((1, 2), key=10, trace=None, mod=0)
        assert t.probe(10, None, 0) == rid

    def test_partition_count_validated(self, space):
        with pytest.raises(ValueError):
            PartitionedTable(spec(), space, 0, index_kind="btree")

    def test_emission_stays_in_one_partition(self):
        t = self.make(n_rows=100_000_000)
        tr = AccessTrace()
        t.probe(10, tr, 0)  # partition 0
        p0_regions = index_hot_regions(t._indexes[0])
        lo = min(b for b, _ in p0_regions)
        hi = max(b + n for b, n in p0_regions)
        assert all(lo <= a < hi for a in tr.addrs)
