"""Profiler window tests (the VTune-methodology stand-in)."""

import pytest

from repro.core.machine import Machine
from repro.core.profiler import Profiler
from repro.core.trace import AccessTrace
from tests.conftest import TINY_SERVER


def run_some(machine, n=3, mod=0, core=0):
    for i in range(n):
        t = AccessTrace()
        t.ifetch_run(100 * (i + 1), 5, mod)
        t.retire(mod, 80, base_cycles=40)
        machine.run_trace(t, core_id=core)


class TestWindows:
    def test_window_excludes_warmup(self, tiny_machine):
        prof = Profiler(tiny_machine)
        run_some(tiny_machine, n=5)  # warm-up, outside the window
        prof.start_window()
        run_some(tiny_machine, n=2)
        window = prof.end_window()
        assert window.counters().transactions == 2
        assert window.counters().instructions == 160

    def test_window_module_cycles_are_window_only(self, tiny_machine):
        prof = Profiler(tiny_machine)
        run_some(tiny_machine, n=10, mod=1)
        full_before = tiny_machine.module_cycles()[1]
        prof.start_window()
        run_some(tiny_machine, n=1, mod=1)
        window = prof.end_window()
        assert 0 < window.module_cycles[1] < full_before

    def test_machine_stats_unchanged_by_windowing(self, tiny_machine):
        prof = Profiler(tiny_machine)
        prof.start_window()
        run_some(tiny_machine, n=2, mod=3)
        before = tiny_machine.snapshot_module_stats()
        prof.end_window()
        assert tiny_machine.snapshot_module_stats() == before

    def test_double_start_rejected(self, tiny_machine):
        prof = Profiler(tiny_machine)
        prof.start_window()
        with pytest.raises(RuntimeError, match="profiler window already open"):
            prof.start_window()

    def test_nested_window_rejected_and_outer_still_usable(self, tiny_machine):
        # An overlapping window is a methodology bug (double-counted
        # cycles); the profiler must reject it without corrupting the
        # outer window.
        prof = Profiler(tiny_machine)
        prof.start_window()
        run_some(tiny_machine, n=2)
        with pytest.raises(RuntimeError, match="profiler window already open"):
            prof.start_window()
        run_some(tiny_machine, n=1)
        window = prof.end_window()
        assert window.counters().transactions == 3

    def test_end_without_start_rejected(self, tiny_machine):
        with pytest.raises(RuntimeError, match="no profiler window open"):
            Profiler(tiny_machine).end_window()

    def test_end_twice_rejected(self, tiny_machine):
        prof = Profiler(tiny_machine)
        prof.start_window()
        prof.end_window()
        with pytest.raises(RuntimeError, match="no profiler window open"):
            prof.end_window()

    def test_attached_flag(self, tiny_machine):
        prof = Profiler(tiny_machine)
        assert not prof.attached
        prof.start_window()
        assert prof.attached
        prof.end_window()
        assert not prof.attached


class TestPerCoreFiltering:
    def test_filter_to_one_worker(self):
        m = Machine(TINY_SERVER, n_cores=2)
        prof = Profiler(m)
        prof.start_window()
        run_some(m, n=2, core=0)
        run_some(m, n=4, core=1)
        window = prof.end_window()
        assert window.counters([0]).transactions == 2
        assert window.counters([1]).transactions == 4
        assert window.counters().transactions == 6

    def test_mean_core_counters(self):
        m = Machine(TINY_SERVER, n_cores=2)
        prof = Profiler(m)
        prof.start_window()
        run_some(m, n=2, core=0)
        run_some(m, n=4, core=1)
        window = prof.end_window()
        mean = window.mean_core_counters()
        assert mean.transactions == 3

    def test_mean_core_counters_empty_core_list(self):
        # An explicit empty selection (no workers matched a filter) must
        # return all-zero counters, not divide by zero.
        m = Machine(TINY_SERVER, n_cores=2)
        prof = Profiler(m)
        prof.start_window()
        run_some(m, n=2, core=0)
        window = prof.end_window()
        mean = window.mean_core_counters([])
        assert mean.transactions == 0
        assert mean.instructions == 0
        assert mean.cycles == 0

    def test_counters_subset_is_sum_not_mean(self):
        m = Machine(TINY_SERVER, n_cores=2)
        prof = Profiler(m)
        prof.start_window()
        run_some(m, n=2, core=0)
        run_some(m, n=4, core=1)
        window = prof.end_window()
        assert window.counters([0, 1]).transactions == 6
        assert window.mean_core_counters([1]).transactions == 4
