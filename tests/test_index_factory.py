"""Index factory dispatch tests."""

import pytest

from repro.storage.art import AdaptiveRadixTree
from repro.storage.btree import BPlusTree
from repro.storage.cc_btree import CacheConsciousBTree
from repro.storage.hash_index import HashIndex
from repro.storage.index_factory import INDEX_KINDS, make_index
from repro.storage.layout_models import AnalyticART, AnalyticBTree, AnalyticHash

MATERIALISED = {
    "btree": BPlusTree,
    "cc_btree": CacheConsciousBTree,
    "art": AdaptiveRadixTree,
    "hash": HashIndex,
}
ANALYTIC = {
    "btree": AnalyticBTree,
    "cc_btree": AnalyticBTree,
    "art": AnalyticART,
    "hash": AnalyticHash,
}


@pytest.mark.parametrize("kind", INDEX_KINDS)
def test_small_populations_materialise(space, kind):
    idx = make_index(kind, f"t_{kind}", space, n_keys=500, key_to_value=lambda k: k * 2)
    assert isinstance(idx, MATERIALISED[kind])
    assert idx.probe(100) == 200
    assert idx.probe(500) is None


@pytest.mark.parametrize("kind", INDEX_KINDS)
def test_large_populations_use_layout_models(space, kind):
    idx = make_index(
        kind, f"b_{kind}", space, n_keys=10**9,
        key_to_value=lambda k: k if k < 10**9 else None,
    )
    assert isinstance(idx, ANALYTIC[kind])
    assert idx.probe(10**8) == 10**8

@pytest.mark.parametrize("kind", INDEX_KINDS)
def test_threshold_zero_forces_analytic(space, kind):
    idx = make_index(kind, f"z_{kind}", space, n_keys=100, materialize_threshold=0)
    assert isinstance(idx, ANALYTIC[kind])


def test_unknown_kind_rejected(space):
    with pytest.raises(ValueError):
        make_index("skiplist", "t", space, n_keys=10)


def test_nonpositive_keys_rejected(space):
    with pytest.raises(ValueError):
        make_index("btree", "t", space, n_keys=0)


def test_cc_btree_node_bytes_passthrough(space):
    idx = make_index("cc_btree", "cc", space, n_keys=100, node_bytes=512)
    assert idx.page_bytes == 512


def test_search_line_cap_passthrough(space):
    capped = make_index("btree", "cap", space, n_keys=10**9, search_line_cap=2)
    free = make_index("btree", "free", space, n_keys=10**9)
    assert len(capped.probe_lines(5000)) < len(free.probe_lines(5000))
