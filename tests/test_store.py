"""Run-store tests: fingerprints, round-trips, diffs, migration, API.

The store's core promise is the fingerprint contract: two same-seed
runs fingerprint identically no matter the execution plan (serial vs
``--jobs N``), the process (PYTHONHASHSEED), or when they ran — and
``diff`` on such runs reports zero drift.  The comparison engine's
thresholds are pinned against synthetic regressions so the CI gates
(``perf --check``, ``load --check``) fail exactly when they should.
"""

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.load import ArrivalSpec, LoadSpec, run_load
from repro.load.report import load_record, read_load_records
from repro.store import (
    BENCH,
    CHAOS,
    LOAD,
    P999_REGRESSION_TOLERANCE,
    RunRecord,
    RunStore,
    bench_run,
    canonical,
    chaos_run,
    check_load_regression,
    diff_runs,
    figure_run,
    fingerprint,
    load_run,
    metric_history,
    migrate_records,
    render_diff,
    render_history,
)
from repro.store.compare import extract_metric

REPO_ROOT = Path(__file__).resolve().parent.parent


def tiny_load_spec(**kw) -> LoadSpec:
    base = dict(
        system="hyper",
        arrival=ArrivalSpec(n_clients=500, n_events=60),
        multipliers=(1.0,),
        seed=11,
    )
    base.update(kw)
    return LoadSpec(**base)


def bench_record(events_per_sec=1_000_000.0, txns_per_sec=20_000.0, ts="2026-08-01T00:00:00"):
    """A synthetic legacy BENCH record (the shape perf.py appends)."""
    return {
        "date": ts[:10],
        "timestamp": ts,
        "quick": True,
        "provenance": {"git_sha": "deadbeef", "python": "3.12.0"},
        "replay": {
            "events_per_round": 3500,
            "rounds": 10,
            "best_round_s": 0.003,
            "events_per_sec": events_per_sec,
        },
        "engine": {"txns": 1000, "wall_s": 0.05, "txns_per_sec": txns_per_sec},
        "figure_sweep": {"figures": ["fig13"], "jobs": 1, "wall_s": 1.0},
    }


def synthetic_load_record(p999=1000.0, ts="2026-08-01T00:00:00", seed=42):
    return {
        "date": ts[:10],
        "timestamp": ts,
        "provenance": {"git_sha": "deadbeef"},
        "spec": {
            "system": "hyper", "mix": "read-write", "backend": "plain",
            "process": "poisson", "clients": 100, "streams": 4,
            "events_per_point": 40, "think_ms": 0.0, "servers": 1,
            "shards": 0, "replicas": 0, "ack": "quorum",
            "fault_rate": 0.0, "seed": seed,
        },
        "capacity_tps": 50_000.0,
        "base_rate_tps": 50_000.0,
        "points": [
            {
                "multiplier": 1.0, "offered_tps": 50_000.0,
                "achieved_tps": 49_000.0, "committed": 40, "aborted": 0,
                "events": 40, "mean_queueing_us": 1.0, "mean_service_us": 2.0,
                "p50_us": 100.0, "p99_us": 500.0, "p999_us": p999,
            }
        ],
    }


class TestFingerprint:
    def test_volatile_keys_do_not_enter(self):
        a = {"value": 3, "timestamp": "2026-01-01T00:00:00", "git_sha": "aaa"}
        b = {"value": 3, "timestamp": "2030-12-31T23:59:59", "git_sha": "bbb"}
        assert fingerprint(a) == fingerprint(b)

    def test_jobs_is_volatile(self):
        assert fingerprint({"x": 1, "jobs": 1}) == fingerprint({"x": 1, "jobs": 8})

    def test_payload_changes_move_the_fingerprint(self):
        assert fingerprint({"value": 3}) != fingerprint({"value": 4})

    def test_volatile_exclusion_is_recursive(self):
        a = {"points": [{"p999_us": 5.0, "wall_s": 1.0}]}
        b = {"points": [{"p999_us": 5.0, "wall_s": 9.0}]}
        assert fingerprint(a) == fingerprint(b)

    def test_integral_floats_match_ints(self):
        # JSON round-trips may turn 1.0 into 1; content is the same.
        assert canonical({"m": 1.0}) == canonical({"m": 1})
        assert fingerprint({"m": [2.0, 3.5]}) == fingerprint({"m": [2, 3.5]})

    def test_lists_and_tuples_are_one_container(self):
        assert fingerprint({"xs": [1, 2]}) == fingerprint({"xs": (1, 2)})

    def test_dict_order_is_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_stable_across_processes_and_hashseed(self):
        payload = {"spec": {"seed": 7}, "points": [{"p999_us": 12.5}]}
        expected = fingerprint(payload)
        code = (
            "import json, sys\n"
            "from repro.store import fingerprint\n"
            "print(fingerprint(json.loads(sys.argv[1])))\n"
        )
        for hashseed in ("0", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = str(REPO_ROOT / "src")
            out = subprocess.run(
                [sys.executable, "-c", code, json.dumps(payload)],
                capture_output=True, text=True, env=env, check=True,
            )
            assert out.stdout.strip() == expected


class TestRunRecord:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown run kind"):
            RunRecord(kind="vibes", spec={}, provenance={}, payload={})

    def test_fingerprint_ignores_created_and_run_id(self):
        a = load_run(synthetic_load_record(ts="2026-08-01T00:00:00"))
        b = load_run(synthetic_load_record(ts="2026-08-02T12:00:00"))
        assert a.fingerprint() == b.fingerprint()


class TestRunStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = RunStore(tmp_path)
        record = load_run(synthetic_load_record())
        run_id = store.put(record)
        assert run_id.startswith("load-2026-08-01-")
        got = store.get(run_id)
        assert got.kind == LOAD
        assert got.spec == record.spec
        assert got.payload == record.payload
        assert got.fingerprint() == record.fingerprint()
        meta = store.meta(run_id)
        assert meta["fingerprint"] == record.fingerprint()
        assert meta["summary"]["p999_us"] == 1000.0

    def test_run_ids_sort_by_date_then_sequence(self, tmp_path):
        store = RunStore(tmp_path)
        ids = [
            store.put(load_run(synthetic_load_record(ts="2026-08-02T00:00:00"))),
            store.put(bench_run(bench_record(ts="2026-08-01T00:00:00"))),
            store.put(load_run(synthetic_load_record(ts="2026-08-02T09:00:00"))),
        ]
        listed = store.run_ids()
        assert set(listed) == set(ids)
        assert listed[0].startswith("bench-2026-08-01")
        assert listed.index(ids[0]) < listed.index(ids[2])

    def test_every_section_lands_as_json(self, tmp_path):
        store = RunStore(tmp_path)
        record = chaos_run(
            {"quick": True},
            [{"system": "hyper", "workload": "micro", "seed": 1, "ok": True,
              "failed_invariants": [], "report": "... digest 123 ..."}],
            True,
            created="2026-08-01T00:00:00",
            provenance={"git_sha": "deadbeef"},
        )
        run_id = store.put(record)
        run_dir = tmp_path / run_id
        for name in ("meta.json", "spec.json", "provenance.json",
                     "result.json", "verdicts.json"):
            assert (run_dir / name).exists(), name
        verdicts = json.loads((run_dir / "verdicts.json").read_text())
        assert verdicts["cells"][0]["digest"] == 123

    def test_get_missing_run_raises(self, tmp_path):
        with pytest.raises(KeyError, match="no run"):
            RunStore(tmp_path).get("load-2026-01-01-001")

    def test_list_runs_unknown_kind_raises(self, tmp_path):
        with pytest.raises(KeyError, match="unknown run kind"):
            RunStore(tmp_path).list_runs("vibes")

    def test_has_fingerprint_dedup_key(self, tmp_path):
        store = RunStore(tmp_path)
        record = load_run(synthetic_load_record())
        store.put(record)
        assert store.has_fingerprint(LOAD, record.created, record.fingerprint())
        assert not store.has_fingerprint(
            LOAD, "2030-01-01T00:00:00", record.fingerprint()
        )
        assert not store.has_fingerprint(BENCH, record.created, record.fingerprint())


class TestSameSeedFingerprints:
    def test_serial_vs_jobs_fingerprint_identically(self):
        spec = tiny_load_spec()
        serial = load_run(load_record(run_load(spec, jobs=1)))
        fanned = load_run(load_record(run_load(spec, jobs=2)))
        assert serial.fingerprint() == fanned.fingerprint()
        diff = diff_runs(serial, fanned)
        assert diff.identical and diff.ok
        assert "zero drift" in render_diff(diff)

    def test_different_seeds_fingerprint_differently(self):
        a = load_run(load_record(run_load(tiny_load_spec(seed=11))))
        b = load_run(load_record(run_load(tiny_load_spec(seed=12))))
        assert a.fingerprint() != b.fingerprint()


class TestDiffEngine:
    def test_bench_perf_regression_flagged(self):
        a = bench_run(bench_record(events_per_sec=1_000_000.0))
        b = bench_run(bench_record(events_per_sec=600_000.0))
        diff = diff_runs(a, b)
        assert not diff.ok
        assert any("perf-regression" in flag for flag in diff.regressions)

    def test_bench_within_tolerance_passes(self):
        a = bench_run(bench_record(events_per_sec=1_000_000.0))
        b = bench_run(bench_record(events_per_sec=800_000.0))
        assert diff_runs(a, b).ok

    def test_wall_clock_sweep_never_flags(self):
        a = bench_run(bench_record())
        b_raw = bench_record()
        b_raw["figure_sweep"]["wall_s"] = 100.0
        assert diff_runs(a, bench_run(b_raw)).ok

    def test_load_p999_regression_flagged(self):
        a = load_run(synthetic_load_record(p999=1000.0))
        grown = 1000.0 * (1.0 + P999_REGRESSION_TOLERANCE) * 1.05
        b = load_run(synthetic_load_record(p999=grown))
        diff = diff_runs(a, b)
        assert not diff.ok
        assert any("p999-regression" in flag for flag in diff.regressions)

    def test_load_p999_improvement_passes(self):
        a = load_run(synthetic_load_record(p999=1000.0))
        b = load_run(synthetic_load_record(p999=500.0))
        assert diff_runs(a, b).ok

    def test_figure_drift_flagged(self):
        def panel_payload(value):
            return {
                "spec": {"figures": ["fig1"], "quick": True},
                "payload": {
                    "panels": [
                        {
                            "figure_id": "fig1", "title": "t", "metric": "m",
                            "x_label": "x", "x_values": [1], "systems": ["hyper"],
                            "cells": [{"system": "hyper", "x": 1, "value": value}],
                        }
                    ]
                },
            }

        a = RunRecord(kind="figure", provenance={}, **panel_payload(100.0))
        b = RunRecord(kind="figure", provenance={}, **panel_payload(104.0))
        diff = diff_runs(a, b)
        assert not diff.ok
        assert any("figure-drift" in flag for flag in diff.regressions)
        same = RunRecord(kind="figure", provenance={}, **panel_payload(100.0))
        assert diff_runs(a, same).identical

    def test_chaos_verdict_flip_flagged(self):
        def cells(ok, failed):
            return [{"system": "hyper", "workload": "micro", "seed": 1,
                     "ok": ok, "failed_invariants": failed,
                     "report": "... digest 42 ..."}]

        a = chaos_run({"quick": True}, cells(True, []), True)
        b = chaos_run({"quick": True}, cells(False, ["tpcc-consistency"]), False)
        diff = diff_runs(a, b)
        assert not diff.ok
        assert any("flipped PASS -> FAIL" in change for change in diff.regressions)

    def test_chaos_digest_change_flagged(self):
        def cells(digest):
            return [{"system": "hyper", "workload": "micro", "seed": 1,
                     "ok": True, "failed_invariants": [],
                     "report": f"... digest {digest} ..."}]

        a = chaos_run({"quick": True}, cells(42), True)
        b = chaos_run({"quick": True}, cells(43), True)
        diff = diff_runs(a, b)
        assert any("chaos-digest" in change for change in diff.regressions)

    def test_kind_mismatch_raises(self):
        a = bench_run(bench_record())
        b = load_run(synthetic_load_record())
        with pytest.raises(ValueError, match="cannot diff"):
            diff_runs(a, b)


class TestLoadCheckGate:
    def test_no_baseline_passes(self):
        fresh = load_run(synthetic_load_record())
        text, ok = check_load_regression(fresh, [])
        assert ok and "no comparable baseline" in text

    def test_matching_baseline_within_tolerance_passes(self):
        baseline = load_run(synthetic_load_record(p999=1000.0))
        fresh = load_run(synthetic_load_record(p999=1100.0, ts="2026-08-02T00:00:00"))
        text, ok = check_load_regression(fresh, [baseline])
        assert ok and "gate: p999 within" in text

    def test_regression_fails(self):
        baseline = load_run(synthetic_load_record(p999=1000.0))
        fresh = load_run(synthetic_load_record(p999=1500.0, ts="2026-08-02T00:00:00"))
        text, ok = check_load_regression(fresh, [baseline])
        assert not ok and "GATE FAILED" in text

    def test_different_spec_is_not_a_baseline(self):
        baseline = load_run(synthetic_load_record(p999=1000.0, seed=1))
        fresh = load_run(synthetic_load_record(p999=9000.0, seed=2))
        _, ok = check_load_regression(fresh, [baseline])
        assert ok  # different seed = different experiment, nothing to gate

    def test_most_recent_matching_baseline_wins(self):
        old = load_run(synthetic_load_record(p999=100.0, ts="2026-08-01T00:00:00"))
        new = load_run(synthetic_load_record(p999=1000.0, ts="2026-08-03T00:00:00"))
        fresh = load_run(synthetic_load_record(p999=1100.0, ts="2026-08-04T00:00:00"))
        _, ok = check_load_regression(fresh, [old, new])
        assert ok  # gated against the recent 1000, not the ancient 100


class TestMetricHistory:
    def test_history_across_kinds(self, tmp_path):
        store = RunStore(tmp_path)
        store.put(bench_run(bench_record(events_per_sec=1.0e6, ts="2026-08-01T00:00:00")))
        store.put(bench_run(bench_record(events_per_sec=2.0e6, ts="2026-08-02T00:00:00")))
        store.put(load_run(synthetic_load_record(p999=123.0)))
        history = metric_history(store, "events_per_sec")
        assert [value for _, value in history] == [1.0e6, 2.0e6]
        assert metric_history(store, "p999_us")[0][1] == 123.0
        text = render_history("events_per_sec", history)
        assert "2 run(s)" in text and "min" in text

    def test_dotted_path_fallback(self):
        record = bench_run(bench_record(txns_per_sec=777.0))
        assert extract_metric(record, "engine.txns_per_sec") == 777.0
        assert extract_metric(record, "engine.nope") is None

    def test_chaos_ok_metric(self, tmp_path):
        store = RunStore(tmp_path)
        store.put(
            chaos_run({"quick": True}, [], True, created="2026-08-01T00:00:00")
        )
        assert metric_history(store, "chaos_ok") [0][1] == 1.0


class TestMigration:
    def _records_dir(self, tmp_path):
        records_dir = tmp_path / "records"
        records_dir.mkdir()
        (records_dir / "BENCH_2026-08-01.json").write_text(
            json.dumps([bench_record(ts="2026-08-01T00:00:00"),
                        bench_record(ts="2026-08-01T01:00:00")])
        )
        (records_dir / "LOAD_2026-08-01.json").write_text(
            json.dumps([synthetic_load_record(ts="2026-08-01T02:00:00")])
        )
        return records_dir

    def test_migrates_every_legacy_entry(self, tmp_path):
        store = RunStore(tmp_path / "store")
        migrated, skipped = migrate_records(self._records_dir(tmp_path), store)
        assert len(migrated) == 3 and skipped == 0
        assert len(store.list_runs(BENCH)) == 2
        assert len(store.list_runs(LOAD)) == 1

    def test_migration_is_idempotent(self, tmp_path):
        records_dir = self._records_dir(tmp_path)
        store = RunStore(tmp_path / "store")
        migrate_records(records_dir, store)
        migrated, skipped = migrate_records(records_dir, store)
        assert migrated == [] and skipped == 3

    def test_legacy_readers_still_work(self, tmp_path):
        records_dir = self._records_dir(tmp_path)
        migrate_records(records_dir, RunStore(tmp_path / "store"))
        # The old blobs are untouched and the legacy reader still sees them.
        assert len(read_load_records(records_dir)) == 1
        assert (records_dir / "LOAD_2026-08-01.json").exists()

    def test_committed_repo_records_migrate_cleanly(self, tmp_path):
        store = RunStore(tmp_path / "store")
        migrated, _ = migrate_records(REPO_ROOT / "benchmarks" / "records", store)
        assert len(migrated) >= 2  # the repo ships BENCH and LOAD history
        assert store.list_runs(LOAD)  # the load baseline is queryable


class TestHttpApi:
    @pytest.fixture()
    def server(self, tmp_path):
        from repro.store.server import make_server

        store = RunStore(tmp_path)
        a = store.put(load_run(synthetic_load_record(ts="2026-08-01T00:00:00")))
        b = store.put(load_run(synthetic_load_record(ts="2026-08-02T00:00:00")))
        c = store.put(bench_run(bench_record()))
        server = make_server(store, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server, (a, b, c)
        server.shutdown()
        server.server_close()

    def _get(self, server, path):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server.server_address[1])
        try:
            conn.request("GET", path)
            resp = conn.getresponse()
            return resp.status, resp.read()
        finally:
            conn.close()

    def test_dashboard_html(self, server):
        srv, _ = server
        status, body = self._get(srv, "/")
        assert status == 200
        assert b"<title>repro run store</title>" in body
        assert b"sparkline" in body  # the inline-SVG chart code shipped

    def test_runs_listing(self, server):
        srv, (a, b, c) = server
        status, body = self._get(srv, "/runs")
        assert status == 200
        metas = json.loads(body)
        assert {m["run_id"] for m in metas} == {a, b, c}
        assert all("fingerprint" in m for m in metas)

    def test_single_run(self, server):
        srv, (a, _, _) = server
        status, body = self._get(srv, f"/runs/{a}")
        assert status == 200
        run = json.loads(body)
        assert run["kind"] == LOAD and run["payload"]["points"]

    def test_diff_same_seed_zero_drift(self, server):
        srv, (a, b, _) = server
        status, body = self._get(srv, f"/diff/{a}/{b}")
        assert status == 200
        diff = json.loads(body)
        assert diff["identical"] is True and diff["ok"] is True
        assert diff["fingerprint_a"] == diff["fingerprint_b"]

    def test_history_endpoint(self, server):
        srv, _ = server
        status, body = self._get(srv, "/history/p999_us")
        assert status == 200
        payload = json.loads(body)
        assert len(payload["history"]) == 2

    def test_unknown_run_is_404(self, server):
        srv, _ = server
        status, body = self._get(srv, "/runs/load-1999-01-01-001")
        assert status == 404 and b"error" in body

    def test_kind_mismatch_diff_is_400(self, server):
        srv, (a, _, c) = server
        status, body = self._get(srv, f"/diff/{a}/{c}")
        assert status == 400 and b"cannot diff" in body

    def test_unknown_route_is_404(self, server):
        srv, _ = server
        status, _ = self._get(srv, "/nope/nope/nope/nope")
        assert status == 404


class TestCli:
    def _main(self, argv):
        from repro.bench.cli import main

        return main(argv)

    def test_store_migrate_and_list(self, tmp_path, capsys):
        records_dir = tmp_path / "records"
        records_dir.mkdir()
        (records_dir / "LOAD_2026-08-01.json").write_text(
            json.dumps([synthetic_load_record()])
        )
        code = self._main(
            ["store", "migrate", "--records-dir", str(records_dir),
             "--store-dir", str(tmp_path / "store")]
        )
        assert code == 0
        assert "migrated 1 legacy record(s)" in capsys.readouterr().out
        code = self._main(["store", "list", "--store-dir", str(tmp_path / "store")])
        assert code == 0
        out = capsys.readouterr().out
        assert "load-2026-08-01-001" in out

    def test_diff_cli_exit_codes(self, tmp_path, capsys):
        store = RunStore(tmp_path)
        a = store.put(load_run(synthetic_load_record(p999=1000.0)))
        b = store.put(
            load_run(synthetic_load_record(p999=2000.0, ts="2026-08-02T00:00:00"))
        )
        assert self._main(["diff", a, a, "--store-dir", str(tmp_path)]) == 0
        assert "zero drift" in capsys.readouterr().out
        assert self._main(["diff", a, b, "--store-dir", str(tmp_path)]) == 1
        assert "p999-regression" in capsys.readouterr().out
        assert self._main(["diff", a, "nope", "--store-dir", str(tmp_path)]) == 2

    def test_history_cli(self, tmp_path, capsys):
        store = RunStore(tmp_path)
        store.put(load_run(synthetic_load_record()))
        assert self._main(["history", "p999_us", "--store-dir", str(tmp_path)]) == 0
        assert "1 run(s)" in capsys.readouterr().out

    def test_load_check_gate_end_to_end(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        args = ["load", "--clients", "200", "--events", "40", "--multipliers", "1",
                "--records-dir", str(tmp_path / "recs"),
                "--store-dir", str(tmp_path / "store")]
        # First run has nothing to gate against: loud exit 2, but the
        # run is still recorded so it becomes the next check's baseline.
        assert self._main(args + ["--check"]) == 2
        captured = capsys.readouterr()
        assert "no matching baseline" in captured.err
        assert "store: load-" in captured.out
        # Second identical run gates against it with zero drift.
        assert self._main(args + ["--check", "--no-save"]) == 0
        out = capsys.readouterr().out
        assert "fingerprints identical" in out
        assert "gate: p999 within" in out
