"""MVCC version-store tests."""

import pytest

from repro.core.trace import AccessTrace
from repro.storage.address_space import DataAddressSpace
from repro.storage.mvcc import MVCCStore, ValidationFailure


def make() -> MVCCStore:
    return MVCCStore("vs", DataAddressSpace())


class TestVisibility:
    def test_read_your_snapshot(self):
        vs = make()
        t1 = vs.begin_timestamp()
        vs.install("r", "v1", vs.begin_timestamp())
        t2 = vs.begin_timestamp()
        assert vs.read("r", t1) is None      # began before install
        assert vs.read("r", t2) == "v1"

    def test_chain_versions_visible_by_timestamp(self):
        vs = make()
        ts_a = vs.begin_timestamp()
        vs.install("r", "a", ts_a)
        reader_a = vs.begin_timestamp()
        ts_b = vs.begin_timestamp()
        vs.install("r", "b", ts_b)
        reader_b = vs.begin_timestamp()
        assert vs.read("r", reader_a) == "a"
        assert vs.read("r", reader_b) == "b"

    def test_default_for_unversioned(self):
        vs = make()
        assert vs.read("missing", 10, default="base") == "base"

    def test_chain_length(self):
        vs = make()
        for i in range(4):
            vs.install("r", i, vs.begin_timestamp())
        assert vs.chain_length("r") == 4
        assert vs.chain_length("other") == 0


class TestValidation:
    def test_clean_read_set_passes(self):
        vs = make()
        vs.install("r", 1, vs.begin_timestamp())
        begin = vs.begin_timestamp()
        seen = vs.latest_committed_ts("r")
        vs.validate(1, begin, {"r": seen})  # no raise

    def test_stale_read_fails_first_committer_wins(self):
        vs = make()
        vs.install("r", 1, vs.begin_timestamp())
        begin = vs.begin_timestamp()
        seen = vs.latest_committed_ts("r")
        # A concurrent committer installs a newer version.
        vs.install("r", 2, vs.begin_timestamp())
        with pytest.raises(ValidationFailure):
            vs.validate(1, begin, {"r": seen})
        assert vs.aborts == 1

    def test_unversioned_rows_validate_fine(self):
        vs = make()
        vs.validate(1, vs.begin_timestamp(), {"never-written": 0})


class TestGarbageCollection:
    def test_gc_drops_dead_versions(self):
        vs = make()
        for i in range(5):
            vs.install("r", i, vs.begin_timestamp())
        now = vs.begin_timestamp()
        dropped = vs.garbage_collect(now)
        assert dropped >= 1
        assert vs.chain_length("r") < 5
        assert vs.read("r", now) == 4  # newest survives

    def test_gc_preserves_visible_versions(self):
        vs = make()
        vs.install("r", "old", vs.begin_timestamp())
        old_reader = vs.begin_timestamp()
        vs.install("r", "new", vs.begin_timestamp())
        vs.garbage_collect(old_reader)
        assert vs.read("r", old_reader) == "old"


class TestEmission:
    def test_chain_walk_emits_serial_loads(self):
        vs = make()
        for i in range(3):
            vs.install("r", i, vs.begin_timestamp())
        t = AccessTrace()
        vs.read("r", 2, t, mod=1)  # old timestamp -> walks whole chain
        assert len(t) == 3

    def test_install_emits_stores(self):
        vs = make()
        t = AccessTrace()
        vs.install("r", 1, vs.begin_timestamp(), t)
        assert len(t) == 1
        t2 = AccessTrace()
        vs.install("r", 2, vs.begin_timestamp(), t2)
        assert len(t2) == 2  # new version + retired head's end_ts
