"""Observability layer tests: spans, metrics, exporters, top-down, wiring."""

import dataclasses
import json

import pytest

from repro import obs
from repro.core.counters import PerfCounters
from repro.obs.exporters import (
    chrome_trace,
    prometheus_text,
    validate_chrome_trace,
    validate_trace_file,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import Histogram, MetricsRegistry, bucket_index, merge_snapshots
from repro.obs.topdown import topdown
from repro.obs.tracing import NOOP_SPAN, Tracer


@pytest.fixture(autouse=True)
def _obs_disabled():
    """Every test starts and ends with observability off."""
    obs.disable()
    obs.REGISTRY.clear()
    yield
    obs.disable()
    obs.REGISTRY.clear()


def fake_clock(step_ns=1000):
    """A deterministic monotonic clock for tracer tests."""
    state = {"now": 0}

    def clock():
        state["now"] += step_ns
        return state["now"]

    return clock


class TestTracer:
    def test_span_records_complete_event(self):
        t = Tracer(clock=fake_clock())
        with t.span("work", track="core0", cat="core", n=3) as s:
            s.set(extra=1)
        assert len(t.events) == 1
        e = t.events[0]
        assert e.name == "work"
        assert e.track == "core0"
        assert e.cat == "core"
        assert e.phase == "X"
        assert e.dur_us > 0
        assert e.args == {"n": 3, "extra": 1}

    def test_nested_spans_record_in_close_order(self):
        t = Tracer(clock=fake_clock())
        with t.span("outer", track="a"):
            with t.span("inner", track="a"):
                pass
        assert [e.name for e in t.events] == ["inner", "outer"]
        inner, outer = t.events
        assert outer.ts_us <= inner.ts_us
        assert outer.ts_us + outer.dur_us >= inner.ts_us + inner.dur_us

    def test_instant_and_complete_fast_path(self):
        t = Tracer(clock=fake_clock())
        t.instant("mark", track="x", cat="c", k=1)
        start = t.clock()
        t.complete("fast", "x", "c", start, k=2)
        assert [e.phase for e in t.events] == ["i", "X"]
        assert t.events[1].dur_us > 0

    def test_drain_from_mark(self):
        t = Tracer(clock=fake_clock())
        t.instant("a")
        mark = t.mark()
        t.instant("b")
        t.instant("c")
        drained = t.drain(mark)
        assert [e.name for e in drained] == ["b", "c"]
        assert [e.name for e in t.events] == ["a"]


class TestAmbientSwitch:
    def test_disabled_by_default_and_noop(self):
        assert not obs.enabled()
        assert obs.tracer() is None
        span = obs.span("anything", track="t")
        assert span is NOOP_SPAN
        with span as s:
            s.set(ignored=True)
        obs.annotate("nothing")
        assert obs.drain_events() == []

    def test_using_obs_installs_and_restores(self):
        with obs.using_obs(True) as t:
            assert obs.enabled()
            assert obs.tracer() is t
            with obs.span("x", track="a"):
                pass
            assert len(t.events) == 1
        assert not obs.enabled()

    def test_nested_using_obs_keeps_buffers_separate(self):
        with obs.using_obs(True) as outer:
            obs.annotate("outer-event")
            with obs.using_obs(True) as inner:
                obs.annotate("inner-event")
                assert [e.name for e in inner.events] == ["inner-event"]
            assert obs.tracer() is outer
            assert [e.name for e in outer.events] == ["outer-event"]

    def test_gated_metrics_only_when_enabled(self):
        obs.inc("off.counter")
        assert obs.REGISTRY.counters == {}
        with obs.using_obs(True):
            obs.inc("on.counter", 2)
            obs.observe("on.hist", 5)
            obs.set_gauge("on.gauge", 1.5)
            snap = obs.drain_metrics()
        assert snap["counters"][("on.counter", ())] == 2
        assert obs.drain_metrics() == {}


class TestMetricsRegistry:
    def test_counter_gauge_histogram_roundtrip(self):
        reg = MetricsRegistry()
        reg.inc("c", 2, system="a")
        reg.inc("c", 3, system="a")
        reg.set_gauge("g", 7.5)
        reg.observe("h", 5)
        reg.observe("h", 300)
        snap = reg.snapshot()
        assert snap["counters"][("c", (("system", "a"),))] == 5
        assert snap["gauges"][("g", ())] == 7.5
        hist = snap["histograms"][("h", ())]
        assert hist["count"] == 2
        assert hist["sum"] == 305
        assert hist["buckets"] == {bucket_index(5): 1, bucket_index(300): 1}

    def test_log2_buckets_deterministic(self):
        # bucket i holds values with bit_length i: 5 -> 3, 300 -> 9.
        assert bucket_index(0) == 0
        assert bucket_index(1) == 1
        assert bucket_index(5) == 3
        assert bucket_index(300) == 9
        assert bucket_index(2**70) == 64  # overflow clamp

    def test_merge_snapshots_sums_counters_and_buckets(self):
        a = MetricsRegistry()
        a.inc("c")
        a.observe("h", 4)
        b = MetricsRegistry()
        b.inc("c", 2)
        b.observe("h", 4)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert merged["counters"][("c", ())] == 3
        assert merged["histograms"][("h", ())]["buckets"] == {bucket_index(4): 2}

    def test_histogram_merge(self):
        h1 = Histogram()
        h1.observe(3)
        h2 = Histogram()
        h2.observe(3)
        h2.observe(100)
        h1.merge(h2)
        assert h1.count == 3
        assert h1.sum == 106


class TestChromeExport:
    def _events(self):
        t = Tracer(clock=fake_clock())
        with t.span("outer", track="core0", cat="core"):
            t.instant("blip", track="core0", cat="core")
            with t.span("inner", track="worker0", cat="engine"):
                pass
        return t.events

    def test_valid_and_monotone(self):
        doc = chrome_trace([("rep0", self._events()), ("rep1", self._events())])
        assert validate_chrome_trace(doc) == []

    def test_one_pid_per_buffer_one_tid_per_track(self):
        doc = chrome_trace([("rep0", self._events())])
        rows = [r for r in doc["traceEvents"] if r["ph"] != "M"]
        assert {r["pid"] for r in rows} == {0}
        meta = [r for r in doc["traceEvents"] if r["ph"] == "M"]
        names = {(r["name"], r["args"]["name"]) for r in meta}
        assert ("process_name", "rep0") in names
        assert ("thread_name", "core0") in names
        assert ("thread_name", "worker0") in names

    def test_validator_rejects_backwards_ts(self):
        doc = {
            "traceEvents": [
                {"name": "a", "ph": "i", "pid": 0, "tid": 0, "ts": 5.0, "s": "t"},
                {"name": "b", "ph": "i", "pid": 0, "tid": 0, "ts": 1.0, "s": "t"},
            ]
        }
        problems = validate_chrome_trace(doc)
        assert any("backwards" in p for p in problems)

    def test_validator_rejects_bad_shapes(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": [{"ph": "?"}]}) != []
        missing_dur = {"traceEvents": [{"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": 0}]}
        assert any("dur" in p for p in validate_chrome_trace(missing_dur))

    def test_expected_categories(self):
        doc = chrome_trace([("rep0", self._events())])
        assert validate_chrome_trace(doc, expect_cats=("core", "engine")) == []
        problems = validate_chrome_trace(doc, expect_cats=("storage",))
        assert any("storage" in p for p in problems)

    def test_file_roundtrip_and_jsonl(self, tmp_path):
        buffers = [("rep0", self._events())]
        path = tmp_path / "trace.json"
        write_chrome_trace(path, buffers)
        assert validate_trace_file(path, expect_cats=("core",)) == []
        jsonl = tmp_path / "events.jsonl"
        n = write_jsonl(jsonl, buffers)
        lines = [json.loads(line) for line in jsonl.read_text().splitlines()]
        assert len(lines) == n == len(buffers[0][1])
        assert lines[0]["buffer"] == "rep0"

    def test_validate_trace_file_unreadable(self, tmp_path):
        assert validate_trace_file(tmp_path / "absent.json") != []
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert validate_trace_file(bad) != []


class TestPrometheusText:
    def test_exposition_format(self):
        reg = MetricsRegistry()
        reg.inc("wal.appends", 3, wal="shore")
        reg.set_gauge("jobs", 2)
        reg.observe("wal.record_bytes", 40)
        text = prometheus_text(reg.snapshot())
        assert '# TYPE wal_appends_total counter' in text
        assert 'wal_appends_total{wal="shore"} 3' in text
        assert "# TYPE jobs gauge" in text
        assert 'wal_record_bytes_bucket{le="63"} 1' in text
        assert 'wal_record_bytes_bucket{le="+Inf"} 1' in text
        assert "wal_record_bytes_sum 40" in text
        assert "wal_record_bytes_count 1" in text

    def test_empty_snapshot(self):
        assert prometheus_text(MetricsRegistry().snapshot()) == ""


class TestTopDown:
    def test_zero_window_is_all_zero(self):
        td = topdown(PerfCounters())
        assert td.as_dict() == {k: 0.0 for k in td.as_dict()}

    def test_level1_sums_to_one(self):
        c = PerfCounters(
            instructions=30_000,
            cycles=40_000,
            mispredicts=100,
            l1i_misses=200,
            l2i_misses=20,
            llci_misses=2,
            l1d_misses=150,
            l2d_misses=30,
            llcd_misses=10,
        )
        td = topdown(c)
        total = td.retiring + td.bad_speculation + td.frontend_bound + td.backend_bound
        assert total == pytest.approx(1.0)
        assert td.memory_bound + td.core_bound == pytest.approx(td.backend_bound)
        for value in td.as_dict().values():
            assert 0.0 <= value <= 1.0

    def test_ideal_loop_is_all_retiring(self):
        c = PerfCounters(instructions=30_000, cycles=10_000)
        td = topdown(c)
        assert td.retiring == pytest.approx(1.0)
        assert td.backend_bound == pytest.approx(0.0)

    def test_overshoot_rescaled_not_negative(self):
        # Degenerate counters (not produced by the cycle model): claimed
        # slots exceed elapsed cycles; the level-1 identity must survive.
        c = PerfCounters(instructions=60_000, cycles=10_000, l1i_misses=10_000)
        td = topdown(c)
        total = td.retiring + td.bad_speculation + td.frontend_bound + td.backend_bound
        assert total == pytest.approx(1.0)
        assert td.backend_bound >= 0.0


def tiny_spec(**kw):
    from repro.bench.runner import RunSpec

    defaults = dict(system="shore-mt", measure_events=2000, warmup_events=500, repetitions=1)
    defaults.update(kw)
    return RunSpec(**defaults)


def fingerprint(result):
    return (
        result.system,
        result.counters.as_dict(),
        result.module_cycles,
        result.module_groups,
        result.measured_txns,
    )


class TestRunnerIntegration:
    def test_results_identical_with_and_without_obs(self):
        from repro.bench.parallel import workload_spec
        from repro.bench.runner import run_repetition

        spec = tiny_spec()
        w = workload_spec("micro", db_bytes=1 << 20)
        plain = run_repetition(spec, w, spec.rep_seed(0))
        with obs.using_obs(True):
            traced = run_repetition(spec, w, spec.rep_seed(0))
        assert fingerprint(plain) == fingerprint(traced)
        assert plain.obs_buffers == []
        assert len(traced.obs_buffers) == 1

    def test_spans_cover_engine_storage_core_harness(self):
        from repro.bench.parallel import workload_spec
        from repro.bench.runner import run_repetition

        spec = tiny_spec()
        with obs.using_obs(True):
            result = run_repetition(
                spec, workload_spec("micro", db_bytes=1 << 20), spec.rep_seed(0)
            )
        events = result.obs_buffers[0]
        cats = {e.cat for e in events}
        assert {"engine", "storage", "core", "harness"} <= cats
        names = {e.name for e in events}
        assert {"execute_txn", "replay", "repetition", "wal.append"} <= names
        assert result.obs_metrics["counters"]  # commits, wal appends, ...

    def test_parallel_parity_with_obs_on(self):
        from repro.bench.parallel import CellTask, run_cells, workload_spec

        cells = [CellTask(tiny_spec(repetitions=2), workload_spec("micro", db_bytes=1 << 20))]
        serial_plain = run_cells(cells, jobs=1)[0]
        with obs.using_obs(True):
            serial_obs = run_cells(cells, jobs=1)[0]
            parallel_obs = run_cells(cells, jobs=2)[0]
        assert fingerprint(serial_plain) == fingerprint(serial_obs)
        assert fingerprint(serial_plain) == fingerprint(parallel_obs)
        # one buffer per repetition, merged in seed order, both paths
        assert len(serial_obs.obs_buffers) == 2
        assert len(parallel_obs.obs_buffers) == 2
        assert serial_obs.obs_metrics["counters"] == parallel_obs.obs_metrics["counters"]

    def test_buffers_export_to_valid_trace(self):
        from repro.bench.parallel import workload_spec
        from repro.bench.runner import run_repetition

        spec = tiny_spec()
        with obs.using_obs(True):
            result = run_repetition(
                spec, workload_spec("micro", db_bytes=1 << 20), spec.rep_seed(0)
            )
        doc = chrome_trace([("rep0", result.obs_buffers[0])])
        assert validate_chrome_trace(doc, expect_cats=("engine", "storage", "core")) == []


class TestEnginePhases:
    def test_compiled_engines_use_compile_phase(self):
        from repro.engines.registry import make_engine

        assert make_engine("hyper").begin_phase == "compile"
        assert make_engine("dbms-m").begin_phase == "compile"
        assert make_engine("voltdb").begin_phase == "plan_dispatch"
        assert make_engine("shore-mt").begin_phase == "parse_plan"
        assert make_engine("dbms-d").begin_phase == "parse_plan"


class TestChaosAnnotations:
    def test_injection_appears_as_instant_event(self):
        from repro.faults.chaos import ChaosRunner, ChaosSpec
        from repro.workloads.microbench import MicroBenchmark

        spec = ChaosSpec.quick("shore-mt", n_txns=40, n_crashes=1, seed=3)
        workload = MicroBenchmark(db_bytes=1 << 20, rows_per_txn=4, read_write=True)
        with obs.using_obs(True) as tracer:
            result = ChaosRunner(spec, workload).run()
            events = list(tracer.events)
        assert result.ok
        fault_events = [e for e in events if e.name.startswith("fault.")]
        assert len(fault_events) == len(result.crashes) >= 1
        assert all(e.phase == "i" for e in fault_events)
        names = {e.name for e in events}
        assert {"chaos.run", "chaos.recover", "recovery.replay"} <= names

    def test_chaos_digest_unchanged_by_tracing(self):
        from repro.faults.chaos import ChaosRunner, ChaosSpec
        from repro.workloads.microbench import MicroBenchmark

        def run():
            spec = ChaosSpec.quick("voltdb", n_txns=40, n_crashes=1, seed=5)
            workload = MicroBenchmark(db_bytes=1 << 20, rows_per_txn=4, read_write=True)
            return ChaosRunner(spec, workload).run().digest()

        plain = run()
        with obs.using_obs(True):
            traced = run()
        assert plain == traced


class TestCLI:
    def test_trace_subcommand_writes_valid_file(self, tmp_path, capsys):
        from repro.bench.cli import main
        from repro.obs.__main__ import main as validate_main

        out = tmp_path / "trace.json"
        assert main(["trace", "fig13", "--quick", "--out", str(out)]) == 0
        assert "layers:" in capsys.readouterr().out
        assert validate_main(["validate", str(out), "--expect-cats", "engine,core"]) == 0
        assert not obs.enabled()  # the CLI restores the ambient switch

    def test_trace_unknown_figure(self, capsys):
        from repro.bench.cli import main

        assert main(["trace", "nope", "--quick"]) == 2

    def test_top_subcommand_renders_attribution(self, capsys):
        from repro.bench.cli import main

        assert main(["top", "fig13", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "top-down attribution" in out
        assert "retiring" in out

    def test_obs_flag_keeps_figure_output_identical(self, capsys):
        from repro.bench.cli import main

        def figure_text(argv):
            assert main(argv) == 0
            out = capsys.readouterr().out
            # Drop the wall-clock line; it is timing, not results.
            return "\n".join(
                line for line in out.splitlines() if not line.startswith("[fig")
            )

        plain = figure_text(["fig13", "--quick"])
        traced = figure_text(["fig13", "--quick", "--obs"])
        traced_jobs = figure_text(["fig13", "--quick", "--obs", "--jobs", "2"])
        assert plain == traced == traced_jobs

    def test_validator_cli_rejects_bad_file(self, tmp_path, capsys):
        from repro.obs.__main__ import main as validate_main

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "?"}]}))
        assert validate_main(["validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().err


class TestPerfProvenance:
    def test_record_carries_provenance(self, tmp_path):
        from repro.bench.perf import provenance

        prov = provenance()
        assert prov["python"]
        assert isinstance(prov["cpu_count"], int) and prov["cpu_count"] >= 1
        assert prov["platform"]
        # inside this repo the SHA resolves; elsewhere None is allowed
        assert prov["git_sha"] is None or len(prov["git_sha"]) == 40


class TestReplayOverhead:
    def test_disabled_tracing_overhead_under_five_percent(self):
        """The acceptance gate: <5% on the replay hot loop when off.

        Compares the instrumented Machine.run_trace against itself (the
        pre-instrumentation baseline is gone), so what this actually
        guards is that the disabled path stays one null-check — the two
        timings must be statistically indistinguishable; 5% is slack
        for timer noise.
        """
        import time

        from repro.core.machine import Machine
        from repro.core.trace import AccessTrace

        machine = Machine()
        trace = AccessTrace()
        trace.ifetch_run(4096, 2000, module=0)
        trace.retire(0, 32_000, base_cycles=12_000)

        def best_of(n=7, rounds=40):
            best = float("inf")
            for _ in range(n):
                t0 = time.perf_counter()
                for _ in range(rounds):
                    machine.run_trace(trace)
                best = min(best, time.perf_counter() - t0)
            return best

        best_of(n=2)  # warm caches and code paths
        assert not obs.enabled()
        disabled = best_of()
        with obs.using_obs(True) as tracer:
            enabled = best_of()
            tracer.events.clear()
        # Not an assertion on `enabled` — tracing may cost more; the
        # gate is that the *disabled* path didn't regress vs itself.
        second_disabled = best_of()
        slower = max(disabled, second_disabled)
        faster = min(disabled, second_disabled)
        assert slower / faster < 1.25  # same code path, noise only
        assert enabled > 0  # tracing ran and recorded
