"""Machine replay tests: miss counting, cycles, module attribution."""

import pytest

from repro.core.machine import Machine
from repro.core.trace import AccessTrace
from tests.conftest import TINY_SERVER


def make_trace(*, ifetch_lines=(), loads=(), serial_loads=(), stores=(), instr=0, mod=0):
    t = AccessTrace()
    for line in ifetch_lines:
        t.ifetch(line, mod)
    for line in loads:
        t.load(line, mod)
    for line in serial_loads:
        t.load(line, mod, serial=True)
    for line in stores:
        t.store(line, mod)
    if instr:
        t.retire(mod, instr)
    return t


class TestMissCounting:
    def test_cold_ifetch_counts_all_levels(self, tiny_machine):
        d = tiny_machine.run_trace(make_trace(ifetch_lines=[1], instr=16))
        assert d.l1i_misses == 1
        assert d.l2i_misses == 1
        assert d.llci_misses == 1

    def test_warm_ifetch_counts_nothing(self, tiny_machine):
        tiny_machine.run_trace(make_trace(ifetch_lines=[1], instr=16))
        d = tiny_machine.run_trace(make_trace(ifetch_lines=[1], instr=16))
        assert d.l1i_misses == 0

    def test_serial_llc_misses_flagged(self, tiny_machine):
        d = tiny_machine.run_trace(make_trace(serial_loads=[1000], instr=10))
        assert d.llcd_misses == 1
        assert d.llcd_serial_misses == 1

    def test_parallel_loads_not_serial(self, tiny_machine):
        d = tiny_machine.run_trace(make_trace(loads=[1000], instr=10))
        assert d.llcd_misses == 1
        assert d.llcd_serial_misses == 0

    def test_stores_counted(self, tiny_machine):
        d = tiny_machine.run_trace(make_trace(stores=[1, 2], instr=10))
        assert d.stores == 2
        assert d.l1d_misses == 2

    def test_transactions_increment(self, tiny_machine):
        tiny_machine.run_trace(make_trace(instr=1))
        tiny_machine.run_trace(make_trace(instr=1))
        assert tiny_machine.counters[0].transactions == 2

    def test_cache_state_persists_across_traces(self, tiny_machine):
        tiny_machine.run_trace(make_trace(loads=[7], instr=1))
        d = tiny_machine.run_trace(make_trace(loads=[7], instr=1))
        assert d.l1d_misses == 0


class TestCycles:
    def test_cycles_accumulate(self, tiny_machine):
        d = tiny_machine.run_trace(make_trace(ifetch_lines=range(100), instr=1600))
        assert d.cycles > 0
        assert tiny_machine.counters[0].cycles == d.cycles

    def test_base_cycles_used_when_accounted(self, tiny_machine):
        t = AccessTrace()
        t.retire(0, 1000, base_cycles=450.0)
        d = tiny_machine.run_trace(t)
        assert d.cycles == 450

    def test_ideal_cpi_fallback(self, tiny_machine):
        t = AccessTrace()
        t.retire(0, 3000)
        d = tiny_machine.run_trace(t)
        assert d.cycles == pytest.approx(1000, rel=0.01)


class TestModuleAttribution:
    def test_misses_tallied_per_module(self, tiny_machine):
        t = AccessTrace()
        t.ifetch(1, 3)
        t.load(2000, 5, serial=True)
        t.retire(3, 100, base_cycles=50)
        tiny_machine.run_trace(t)
        cycles = tiny_machine.module_cycles()
        assert set(cycles) == {3, 5}
        assert cycles[3] > 0 and cycles[5] > 0

    def test_module_cycles_scale_with_misses(self, tiny_machine):
        t = AccessTrace()
        for i in range(10):
            t.load(5000 + i * 64, 1, serial=True)
        t.retire(2, 100, base_cycles=40)
        tiny_machine.run_trace(t)
        cycles = tiny_machine.module_cycles()
        assert cycles[1] > cycles[2]

    def test_snapshot_is_independent(self, tiny_machine):
        tiny_machine.run_trace(make_trace(ifetch_lines=[1], instr=16, mod=4))
        snap = tiny_machine.snapshot_module_stats()
        tiny_machine.run_trace(make_trace(ifetch_lines=[99], instr=16, mod=4))
        assert snap[4] != tiny_machine.module_stats[4]


class TestMultiCore:
    def test_per_core_counters(self):
        m = Machine(TINY_SERVER, n_cores=2)
        m.run_trace(make_trace(loads=[1], instr=10), core_id=0)
        m.run_trace(make_trace(loads=[2], instr=20), core_id=1)
        assert m.counters[0].instructions == 10
        assert m.counters[1].instructions == 20
        total = m.total_counters()
        assert total.instructions == 30
        assert total.transactions == 2

    def test_coherence_miss_counted(self):
        m = Machine(TINY_SERVER, n_cores=2)
        m.run_trace(make_trace(stores=[9], instr=1), core_id=0)
        d = m.run_trace(make_trace(loads=[9], instr=1), core_id=1)
        assert d.coherence_misses == 1

    def test_reset(self, tiny_machine):
        tiny_machine.run_trace(make_trace(loads=[1], instr=5))
        tiny_machine.reset()
        assert tiny_machine.counters[0].instructions == 0
        assert not tiny_machine.module_stats
        d = tiny_machine.run_trace(make_trace(loads=[1], instr=5))
        assert d.l1d_misses == 1  # cold again


class TestBatchedIfetchRuns:
    """The IFETCH_RUN fast path must be bit-identical to per-line replay."""

    def test_batched_run_matches_expanded_ifetches(self):
        import random

        from repro.core.machine import Machine as FullMachine

        rng = random.Random(7)
        batched, expanded = AccessTrace(), AccessTrace()
        for i in range(20):
            start = rng.randrange(100_000)
            n = rng.randrange(1, 700)
            batched.ifetch_run(start, n, module=i % 3)
            for line in range(start, start + n):
                expanded.ifetch(line, i % 3)
            for _ in range(15):
                addr = 10**8 + rng.randrange(10**5)
                serial = rng.random() < 0.5
                store = rng.random() < 0.3
                for t in (batched, expanded):
                    t.store(addr, 1) if store else t.load(addr, 1, serial=serial)
        for t in (batched, expanded):
            t.retire(0, 1000, branches=10, mispredicts=2, base_cycles=400)
        assert len(batched) == len(expanded)

        m1, m2 = FullMachine(n_cores=2), FullMachine(n_cores=2)
        d1 = m1.run_trace(batched, core_id=1)
        d2 = m2.run_trace(expanded, core_id=1)
        assert d1.as_dict() == d2.as_dict()
        assert m1.module_stats == m2.module_stats
        for c1, c2 in zip(m1.hierarchy.cores, m2.hierarchy.cores):
            assert c1.l1i._sets == c2.l1i._sets
            assert c1.l2._sets == c2.l2._sets
        assert m1.hierarchy.llc._sets == m2.hierarchy.llc._sets
        assert m1.hierarchy.cores[1].l1i.stats == m2.hierarchy.cores[1].l1i.stats
        assert m1.hierarchy.cores[1].l2.stats == m2.hierarchy.cores[1].l2.stats
        assert m1.hierarchy.llc.stats == m2.hierarchy.llc.stats
