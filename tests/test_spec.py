"""Server/cache specification tests (paper Table 1)."""

import pytest

from repro.core.spec import CACHE_LINE_BYTES, CacheSpec, IVY_BRIDGE, ServerSpec, table1_rows


class TestCacheSpec:
    def test_geometry(self):
        l1 = IVY_BRIDGE.l1i
        assert l1.size_bytes == 32 * 1024
        assert l1.n_lines == 512
        assert l1.n_sets == 64
        assert l1.line_bytes == CACHE_LINE_BYTES

    def test_llc_geometry(self):
        llc = IVY_BRIDGE.llc
        assert llc.size_bytes == 20 * 1024 * 1024
        assert llc.n_lines == 327_680
        assert llc.n_lines % llc.associativity == 0

    def test_size_must_be_line_multiple(self):
        with pytest.raises(ValueError):
            CacheSpec("bad", 1000, 2, miss_penalty_cycles=8)

    def test_lines_must_divide_into_sets(self):
        with pytest.raises(ValueError):
            CacheSpec("bad", 64 * 3, 2, miss_penalty_cycles=8)


class TestIvyBridge:
    def test_table1_penalties(self):
        assert IVY_BRIDGE.l1i.miss_penalty_cycles == 8
        assert IVY_BRIDGE.l1d.miss_penalty_cycles == 8
        assert IVY_BRIDGE.l2.miss_penalty_cycles == 19
        assert IVY_BRIDGE.llc.miss_penalty_cycles == 167

    def test_topology(self):
        assert IVY_BRIDGE.n_sockets == 2
        assert IVY_BRIDGE.cores_per_socket == 8
        assert IVY_BRIDGE.n_cores == 16

    def test_retirement(self):
        assert IVY_BRIDGE.retire_width == 4
        assert IVY_BRIDGE.ideal_ipc == 3.0
        assert IVY_BRIDGE.base_cpi == pytest.approx(1 / 3)

    def test_memory_and_clock(self):
        assert IVY_BRIDGE.memory_gb == 256
        assert IVY_BRIDGE.clock_ghz == 2.0


class TestTable1Rendering:
    def test_row_count_and_keys(self):
        rows = table1_rows()
        keys = [k for k, _ in rows]
        assert "Processor" in keys
        assert "#HW Contexts" in keys
        assert "LLC (shared)" in keys
        assert len(rows) == 10

    def test_values_match_spec(self):
        rows = dict(table1_rows())
        assert rows["#Sockets"] == "2"
        assert rows["Clock Speed"] == "2.00GHz"
        assert "20MB" in rows["LLC (shared)"]
        assert "167-cycle" in rows["LLC (shared)"]
        assert rows["Hyper-threading"] == "Off"
