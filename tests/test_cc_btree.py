"""Cache-conscious B+tree tests."""

import pytest

from repro.core.trace import AccessTrace
from repro.storage.address_space import DataAddressSpace
from repro.storage.btree import BPlusTree
from repro.storage.cc_btree import CacheConsciousBTree


def make(node_bytes=None) -> CacheConsciousBTree:
    return CacheConsciousBTree("cc", DataAddressSpace(), node_bytes=node_bytes)


class TestConstruction:
    def test_default_node_is_a_few_lines(self):
        tree = make()
        assert tree.page_bytes == 256

    def test_node_must_be_line_multiple(self):
        with pytest.raises(ValueError):
            make(node_bytes=200)

    def test_node_must_fit_two_entries(self):
        with pytest.raises(ValueError):
            make(node_bytes=64)

    def test_is_a_bplustree(self):
        assert isinstance(make(), BPlusTree)


class TestBehaviour:
    def test_roundtrip(self):
        tree = make()
        for k in range(3000):
            tree.insert(k, k + 1)
        assert tree.probe(2500) == 2501
        assert tree.probe(3001) is None

    def test_fewer_lines_per_level_than_disk_pages(self):
        """The VoltDB-vs-Shore index property (Figure 3)."""
        cc = make(node_bytes=256)
        disk = BPlusTree("d", DataAddressSpace(), page_bytes=8192)
        for k in range(20000):
            cc.insert(k, k)
            disk.insert(k, k)
        tc, td = AccessTrace(), AccessTrace()
        cc.probe(777, tc)
        disk.probe(777, td)
        assert len(tc) / cc.height < len(td) / disk.height

    def test_deeper_than_disk_tree(self):
        cc = make()
        disk = BPlusTree("d", DataAddressSpace(), page_bytes=8192)
        for k in range(20000):
            cc.insert(k, k)
            disk.insert(k, k)
        assert cc.height > disk.height
