"""Per-engine mechanism tests: locking, MVCC, partitioning, compilation."""

import pytest

from repro.engines.base import TransactionAborted
from repro.engines.common import TableSpec
from repro.engines.config import EngineConfig
from repro.engines.dbms_m import DBMSM
from repro.engines.hyper import HyPerEngine
from repro.engines.registry import make_engine
from repro.engines.shore_mt import ShoreMT
from repro.engines.voltdb import VoltDBEngine
from repro.storage.lock_manager import LockMode
from repro.storage.record import microbench_schema

SPEC = TableSpec("t", microbench_schema(), 2000, grows=True)


def build(cls_or_name, **kw):
    config = EngineConfig(materialize_threshold=0, **kw)
    engine = (
        make_engine(cls_or_name, config)
        if isinstance(cls_or_name, str)
        else cls_or_name(config)
    )
    engine.create_table(SPEC)
    return engine


class TestShoreMTLocking:
    def test_two_phase_locking_within_txn(self):
        engine = build(ShoreMT)
        txn = engine.begin()
        txn.read("t", 5)
        assert engine.locks.holds(txn.txn_id, ("row", "t", 5)) == LockMode.S
        assert engine.locks.holds(txn.txn_id, ("table", "t")) == LockMode.IS
        txn.commit()
        assert engine.locks.active_locks == 0

    def test_conflicting_writers_abort(self):
        engine = build(ShoreMT)
        t1 = engine.begin()
        t1.update("t", 5, "value", 1)
        t2 = engine.begin()
        with pytest.raises(TransactionAborted):
            t2.update("t", 5, "value", 2)
        t2.abort()
        t1.commit()
        assert engine.locks.active_locks == 0

    def test_readers_do_not_block_readers(self):
        engine = build(ShoreMT)
        t1, t2 = engine.begin(), engine.begin()
        t1.read("t", 5)
        t2.read("t", 5)  # no exception
        t1.commit()
        t2.commit()

    def test_abort_rolls_back_locks(self):
        engine = build(ShoreMT)
        t1 = engine.begin()
        t1.update("t", 5, "value", 9)
        t1.abort()
        t2 = engine.begin()
        t2.update("t", 5, "value", 10)  # lock is free again
        t2.commit()

    def test_wal_records_written(self):
        engine = build(ShoreMT)
        before = engine.wal.next_lsn
        engine.execute("p", lambda txn: txn.update("t", 1, "value", 2))
        assert engine.wal.next_lsn > before

    def test_buffer_pool_warms_up(self):
        engine = build(ShoreMT)
        for _ in range(3):
            engine.execute("p", lambda txn: txn.read("t", 42))
        assert engine.bpool.hit_ratio > 0.3


class TestDBMSMOptimisticMVCC:
    def test_write_set_buffered_until_commit(self):
        engine = build(DBMSM)
        txn = engine.begin()
        txn.update("t", 5, "value", 777)
        # Another reader before commit sees the old value.
        other = engine.begin()
        assert other.read("t", 5)[1] != 777
        other.commit()
        txn.commit()
        final = engine.begin()
        assert final.read("t", 5)[1] == 777
        final.commit()

    def test_first_committer_wins(self):
        engine = build(DBMSM)
        t1 = engine.begin()
        t1.update("t", 5, "value", 1)
        t2 = engine.begin()
        t2.update("t", 5, "value", 2)
        t1.commit()
        with pytest.raises(TransactionAborted):
            t2.commit()

    def test_execute_retries_validation_failures(self):
        engine = build(DBMSM)
        # Interleave by committing a conflicting txn from inside the body
        # exactly once.
        state = {"sabotaged": False}

        def body(txn):
            value = txn.read("t", 5)[1]
            if not state["sabotaged"]:
                state["sabotaged"] = True
                saboteur = engine.begin()
                saboteur.update("t", 5, "value", -1)
                saboteur.commit()
            txn.update("t", 5, "value", value + 1)

        engine.execute("p", body)
        assert engine.stats.commits == 1  # the retried attempt
        assert engine.stats.aborts == 1
        final = engine.begin()
        assert final.read("t", 5)[1] == 0  # -1 (saboteur) + 1 (retry)
        final.commit()

    def test_compilation_toggle(self):
        compiled = build(DBMSM)
        interpreted = build(DBMSM, compilation=False)
        assert compiled.compiled and not interpreted.compiled
        tc = compiled.execute("p", lambda txn: txn.read("t", 1))
        code_c = sum(1 for k, _, _ in tc.events() if k == 0)
        ti = interpreted.execute("p", lambda txn: txn.read("t", 1))
        code_i = sum(1 for k, _, _ in ti.events() if k == 0)
        assert code_i > code_c  # interpreter fetches more code

    def test_index_choice(self):
        hash_engine = build(DBMSM)
        btree_engine = build(DBMSM, index_kind="cc_btree")
        from repro.storage.layout_models import AnalyticBTree, AnalyticHash

        assert isinstance(hash_engine.table("t").index, AnalyticHash)
        assert isinstance(btree_engine.table("t").index, AnalyticBTree)


class TestVoltDBPartitioning:
    def test_partitioned_tables_when_configured(self):
        engine = build(VoltDBEngine, n_partitions=4)
        from repro.engines.common import PartitionedTable

        assert isinstance(engine.table("t"), PartitionedTable)
        assert engine.partition_of("t", 0) == 0
        assert engine.partition_of("t", 1999) == 3

    def test_single_partition_by_default(self):
        engine = build(VoltDBEngine)
        from repro.engines.common import EngineTable

        assert isinstance(engine.table("t"), EngineTable)

    def test_multipartition_coordination_costs_instructions(self):
        sited = build(VoltDBEngine)
        unsited = build(VoltDBEngine, single_sited=False)
        t_sited = sited.execute("p", lambda txn: txn.read("t", 1))
        t_unsited = unsited.execute("p", lambda txn: txn.read("t", 1))
        assert t_unsited.instructions > t_sited.instructions * 1.15

    def test_replicated_table_not_partitioned(self):
        engine = VoltDBEngine(EngineConfig(materialize_threshold=0, n_partitions=4))
        engine.create_table(TableSpec("item", microbench_schema(), 100, replicated=True))
        from repro.engines.common import EngineTable

        assert isinstance(engine.table("item"), EngineTable)

    def test_undo_log_on_update(self):
        engine = build(VoltDBEngine)
        before = engine.undo_log.next_lsn
        engine.execute("p", lambda txn: txn.update("t", 1, "value", 2))
        assert engine.undo_log.next_lsn > before


class TestHyPerCompilation:
    def test_compiled_module_cached_per_procedure(self):
        engine = build(HyPerEngine)
        a1 = engine.compiled_module("proc_a")
        a2 = engine.compiled_module("proc_a")
        b = engine.compiled_module("proc_b")
        assert a1 == a2
        assert a1 != b

    def test_no_locks_no_buffer_pool(self):
        engine = build(HyPerEngine)
        assert not hasattr(engine, "locks")
        assert not hasattr(engine, "bpool")

    def test_redo_log_written(self):
        engine = build(HyPerEngine)
        before = engine.redo_log.next_lsn
        engine.execute("p", lambda txn: txn.update("t", 1, "value", 2))
        assert engine.redo_log.next_lsn > before

    def test_instruction_stream_is_compiled_module(self):
        engine = build(HyPerEngine)
        trace = engine.execute("p", lambda txn: txn.read("t", 1))
        compiled = engine.compiled_module("p")
        code_mods = {m for k, _, m in trace.events() if k == 0}
        assert compiled in code_mods
