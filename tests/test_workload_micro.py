"""Micro-benchmark workload tests."""

import random

import pytest

from repro.engines.config import EngineConfig
from repro.engines.registry import make_engine
from repro.storage.record import LONG, STRING50
from repro.workloads.base import PAPER_DB_SIZES, size_label
from repro.workloads.microbench import BYTES_PER_ROW, MicroBenchmark


class TestScaling:
    def test_paper_sizes(self):
        assert list(PAPER_DB_SIZES) == ["1MB", "10MB", "10GB", "100GB"]

    def test_hundred_gb_is_over_a_billion_rows(self):
        """Section 5.1.2: the 100 GB table has >1e9 rows."""
        wl = MicroBenchmark(db_bytes=100 << 30)
        assert wl.n_rows > 1_000_000_000
        assert wl.n_rows == (100 << 30) // BYTES_PER_ROW

    def test_size_labels(self):
        assert size_label(1 << 20) == "1MB"
        assert size_label(100 << 30) == "100GB"

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            MicroBenchmark(db_bytes=1000)

    def test_rows_per_txn_validated(self):
        with pytest.raises(ValueError):
            MicroBenchmark(db_bytes=1 << 20, rows_per_txn=0)


class TestGeneration:
    def wl(self, **kw):
        return MicroBenchmark(db_bytes=1 << 20, **kw)

    def test_single_table_spec(self):
        specs = self.wl().table_specs()
        assert len(specs) == 1
        assert specs[0].schema.columns[0][1] is LONG

    def test_string_variant(self):
        specs = self.wl(column_type=STRING50).table_specs()
        assert specs[0].schema.columns[0][1] is STRING50

    def test_read_only_body_reads(self):
        wl = self.wl(rows_per_txn=10)
        rng = random.Random(0)
        engine = make_engine("hyper", EngineConfig(materialize_threshold=0))
        wl.setup(engine)
        proc, body = wl.next_transaction(rng)
        assert "ro" in proc
        engine.execute(proc, body)
        assert engine.stats.operations == 10

    def test_read_write_body_updates(self):
        wl = self.wl(read_write=True, rows_per_txn=3)
        rng = random.Random(0)
        engine = make_engine("voltdb", EngineConfig(materialize_threshold=0))
        wl.setup(engine)
        proc, body = wl.next_transaction(rng)
        assert "rw" in proc
        engine.execute(proc, body)
        # Updates persisted: at least one row was materialised.
        assert engine.table("micro").heap.materialized_rows == 3

    def test_keys_distinct_within_txn(self):
        wl = self.wl(rows_per_txn=100)
        rng = random.Random(7)
        keys: list[int] = []

        class Spy:
            def read(self, table, key):
                keys.append(key)
                return (key, 0)

        _, body = wl.next_transaction(rng)
        body(Spy())
        assert len(set(keys)) == 100

    def test_partition_homing(self):
        wl = self.wl()
        rng = random.Random(1)
        keys = []

        class Spy:
            def read(self, table, key):
                keys.append(key)
                return (key, 0)

        for _ in range(50):
            _, body = wl.next_transaction(rng, partition=2, n_partitions=4)
            body(Spy())
        per_part = -(-wl.n_rows // 4)
        assert all(2 * per_part <= k < 3 * per_part for k in keys)

    def test_generation_deterministic_under_seed(self):
        wl = self.wl(rows_per_txn=5)
        keys_a, keys_b = [], []

        class Spy:
            def __init__(self, sink):
                self.sink = sink

            def read(self, table, key):
                self.sink.append(key)
                return (key, 0)

        for sink in (keys_a, keys_b):
            rng = random.Random(42)
            for _ in range(10):
                _, body = wl.next_transaction(rng)
                body(Spy(sink))
        assert keys_a == keys_b
