"""Crash-recovery property tests (the `chaos` marker).

For every engine × workload: inject crashes at scheduled points, tear
the log, recover, and require zero verification mismatches and zero
TPC-C invariant violations — fully deterministically given the seed.

These run the same matrix as ``repro-bench chaos --quick`` and are
marked ``chaos`` so the tier-1 suite can include or skip them
explicitly (``pytest -m chaos``).
"""

import pytest

from repro.engines.registry import ALL_SYSTEMS
from repro.faults import (
    ChaosRunner,
    ChaosSpec,
    INDEX_INSERT,
    INJECTION_POINTS,
    LOCK_ACQUIRE,
    TXN_BODY,
)
from repro.faults.chaos import default_workload_factories

pytestmark = pytest.mark.chaos


def _workload(name):
    return default_workload_factories()[name]()


def _failures(result):
    return result.final_problems + [p for c in result.crashes for p in c.problems]


class TestCrashRecoveryProperty:
    @pytest.mark.parametrize("system", ALL_SYSTEMS)
    @pytest.mark.parametrize("workload", ["micro", "tpcc"])
    def test_recovery_clean_everywhere(self, system, workload):
        result = ChaosRunner(ChaosSpec.quick(system, seed=9), _workload(workload)).run()
        assert result.crashes, "no crash was injected"
        assert result.ok, _failures(result)
        assert result.stats.commits > 0

    @pytest.mark.parametrize("point", INJECTION_POINTS)
    def test_crash_at_every_point_shore_tpcc(self, point):
        """TPC-C on Shore-MT exercises all six points, one at a time."""
        spec = ChaosSpec(
            "shore-mt",
            n_txns=60,
            n_crashes=1,
            checkpoint_every=15,
            points=(point,),
            seed=23,
        )
        result = ChaosRunner(spec, _workload("tpcc")).run()
        assert [c.point for c in result.crashes] == [point]
        assert result.ok, _failures(result)

    def test_index_insert_point_skipped_without_inserts(self):
        """micro-rw never inserts; an index.insert schedule must simply
        never fire (and recovery still verifies at shutdown)."""
        spec = ChaosSpec(
            "hyper", n_txns=30, n_crashes=1, points=(INDEX_INSERT,), seed=3
        )
        result = ChaosRunner(spec, _workload("micro")).run()
        assert result.crashes == []
        assert result.ok, _failures(result)


class TestDeterminism:
    def _run(self, seed):
        return ChaosRunner(ChaosSpec.quick("shore-mt", seed=seed), _workload("tpcc")).run()

    def test_same_seed_same_recovered_states(self):
        a, b = self._run(17), self._run(17)
        assert a.digest() == b.digest()
        assert [(c.point, c.hit, c.txn_index) for c in a.crashes] == [
            (c.point, c.hit, c.txn_index) for c in b.crashes
        ]
        assert a.stats.commits == b.stats.commits

    def test_different_seed_diverges(self):
        assert self._run(17).digest() != self._run(18).digest()


class TestInjectedAborts:
    @pytest.mark.parametrize("system", ["shore-mt", "dbms-m"])
    def test_abort_storm_recovers_clean(self, system):
        spec = ChaosSpec(
            system,
            n_txns=120,
            n_crashes=2,
            abort_probability=0.15,
            checkpoint_every=25,
            seed=31,
        )
        result = ChaosRunner(spec, _workload("tpcc")).run()
        assert result.ok, _failures(result)
        assert result.stats.aborts_by_reason.get("injected-fault", 0) > 0
        assert result.stats.backoff_cycles > 0

    def test_lock_point_crash_with_contention(self):
        spec = ChaosSpec(
            "shore-mt",
            n_txns=80,
            n_crashes=2,
            points=(LOCK_ACQUIRE, TXN_BODY),
            seed=41,
        )
        result = ChaosRunner(spec, _workload("micro")).run()
        assert result.ok, _failures(result)
        assert {c.point for c in result.crashes} <= {LOCK_ACQUIRE, TXN_BODY}
