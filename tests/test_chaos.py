"""Crash-recovery property tests (the `chaos` marker).

For every engine × workload: inject crashes at scheduled points, tear
the log, recover, and require zero verification mismatches and zero
TPC-C invariant violations — fully deterministically given the seed.

These run the same matrix as ``repro-bench chaos --quick`` and are
marked ``chaos`` so the tier-1 suite can include or skip them
explicitly (``pytest -m chaos``).
"""

import pytest

from repro.engines.registry import ALL_SYSTEMS
from repro.faults import (
    ChaosRunner,
    ChaosSpec,
    INDEX_INSERT,
    INJECTION_POINTS,
    LOCK_ACQUIRE,
    TXN_BODY,
    invariant_names,
    run_chaos_suite,
)
from repro.faults.chaos import default_workload_factories

pytestmark = pytest.mark.chaos


def _workload(name):
    return default_workload_factories()[name]()


def _failures(result):
    return result.final_problems + [p for c in result.crashes for p in c.problems]


class TestCrashRecoveryProperty:
    @pytest.mark.parametrize("system", ALL_SYSTEMS)
    @pytest.mark.parametrize("workload", ["micro", "tpcc"])
    def test_recovery_clean_everywhere(self, system, workload):
        result = ChaosRunner(ChaosSpec.quick(system, seed=9), _workload(workload)).run()
        assert result.crashes, "no crash was injected"
        assert result.ok, _failures(result)
        assert result.stats.commits > 0

    @pytest.mark.parametrize("point", INJECTION_POINTS)
    def test_crash_at_every_point_shore_tpcc(self, point):
        """TPC-C on Shore-MT exercises all six points, one at a time."""
        spec = ChaosSpec(
            "shore-mt",
            n_txns=60,
            n_crashes=1,
            checkpoint_every=15,
            points=(point,),
            seed=23,
        )
        result = ChaosRunner(spec, _workload("tpcc")).run()
        assert [c.point for c in result.crashes] == [point]
        assert result.ok, _failures(result)

    def test_index_insert_point_skipped_without_inserts(self):
        """micro-rw never inserts; an index.insert schedule must simply
        never fire (and recovery still verifies at shutdown)."""
        spec = ChaosSpec(
            "hyper", n_txns=30, n_crashes=1, points=(INDEX_INSERT,), seed=3
        )
        result = ChaosRunner(spec, _workload("micro")).run()
        assert result.crashes == []
        assert result.ok, _failures(result)


class TestDeterminism:
    def _run(self, seed):
        return ChaosRunner(ChaosSpec.quick("shore-mt", seed=seed), _workload("tpcc")).run()

    def test_same_seed_same_recovered_states(self):
        a, b = self._run(17), self._run(17)
        assert a.digest() == b.digest()
        assert [(c.point, c.hit, c.txn_index) for c in a.crashes] == [
            (c.point, c.hit, c.txn_index) for c in b.crashes
        ]
        assert a.stats.commits == b.stats.commits

    def test_different_seed_diverges(self):
        assert self._run(17).digest() != self._run(18).digest()


class TestInjectedAborts:
    @pytest.mark.parametrize("system", ["shore-mt", "dbms-m"])
    def test_abort_storm_recovers_clean(self, system):
        spec = ChaosSpec(
            system,
            n_txns=120,
            n_crashes=2,
            abort_probability=0.15,
            checkpoint_every=25,
            seed=31,
        )
        result = ChaosRunner(spec, _workload("tpcc")).run()
        assert result.ok, _failures(result)
        assert result.stats.aborts_by_reason.get("injected-fault", 0) > 0
        assert result.stats.backoff_cycles > 0

    def test_lock_point_crash_with_contention(self):
        spec = ChaosSpec(
            "shore-mt",
            n_txns=80,
            n_crashes=2,
            points=(LOCK_ACQUIRE, TXN_BODY),
            seed=41,
        )
        result = ChaosRunner(spec, _workload("micro")).run()
        assert result.ok, _failures(result)
        assert {c.point for c in result.crashes} <= {LOCK_ACQUIRE, TXN_BODY}


class TestInvariantNaming:
    def test_invariant_names_extracts_prefixes(self):
        problems = [
            "no-acked-txn-lost: txn 3 acked at lsn 40",
            "replica-convergence: replica1 durable lsn 9 != primary tip 12",
            "no-acked-txn-lost: txn 9 acked at lsn 55",
            "unprefixed problem",
        ]
        assert invariant_names(problems) == [
            "no-acked-txn-lost", "replica-convergence",
        ]

    def test_failed_invariants_on_result(self):
        result = ChaosRunner(
            ChaosSpec.quick("shore-mt", seed=9), _workload("micro")
        ).run()
        assert result.ok
        assert result.failed_invariants() == []
        result.final_problems.append("replica-convergence: injected for test")
        assert not result.ok
        assert result.failed_invariants() == ["replica-convergence"]


class TestSpecValidation:
    def test_negative_replicas_rejected(self):
        with pytest.raises(ValueError, match="replicas"):
            ChaosSpec("shore-mt", replicas=-1)

    def test_unknown_ack_rejected(self):
        with pytest.raises(ValueError, match="ack mode"):
            ChaosSpec("shore-mt", ack="two-phase")

    def test_unknown_net_kind_rejected(self):
        with pytest.raises(ValueError, match="network fault kind"):
            ChaosSpec("shore-mt", net_kinds=("gamma-ray",))


class TestReplicatedChaos:
    @pytest.mark.parametrize("ack", ["async", "sync-one", "quorum"])
    def test_replicated_run_clean_in_every_ack_mode(self, ack):
        spec = ChaosSpec.quick("shore-mt", seed=9, replicas=2, ack=ack)
        result = ChaosRunner(spec, _workload("micro")).run()
        assert result.ok, result.all_problems()
        assert result.crashes, "no crash was injected"
        assert result.failovers == len(result.crashes)
        assert result.acked > 0
        assert len(set(result.replica_digests)) == 1  # byte-converged

    def test_partitioned_primary_quorum_failover(self):
        """The acceptance scenario: partition the primary mid-benchmark
        in quorum mode; failover must complete and every invariant hold."""
        spec = ChaosSpec.quick(
            "shore-mt", seed=3, replicas=2, ack="quorum",
            net_kinds=("partition",),
        )
        a = ChaosRunner(spec, _workload("tpcc")).run()
        b = ChaosRunner(spec, _workload("tpcc")).run()
        assert a.ok, a.all_problems()
        assert a.failovers >= 1
        assert a.net_faults.get("partition", 0) >= 1
        assert a.net_counters["partition_drops"] > 0
        assert a.failed_invariants() == []
        assert a.digest() == b.digest()  # same seed -> identical serial

    def test_crash_schedule_matches_replication_off(self):
        """Turning replication on must not shift the crash schedule."""
        off = ChaosRunner(
            ChaosSpec.quick("shore-mt", seed=9), _workload("tpcc")
        ).run()
        on = ChaosRunner(
            ChaosSpec.quick("shore-mt", seed=9, replicas=2, ack="quorum"),
            _workload("tpcc"),
        ).run()
        assert [(c.point, c.hit, c.txn_index) for c in off.crashes] == [
            (c.point, c.hit, c.txn_index) for c in on.crashes
        ]

    def test_replicated_digest_deterministic_across_ack_modes_runs(self):
        spec = ChaosSpec.quick("voltdb", seed=11, replicas=2, ack="sync-one")
        a = ChaosRunner(spec, _workload("micro")).run()
        b = ChaosRunner(spec, _workload("micro")).run()
        assert a.digest() == b.digest()
        assert a.replica_digests == b.replica_digests


class TestSuiteAndCLI:
    def test_suite_parallel_report_bit_identical(self):
        kwargs = dict(
            systems=["shore-mt"], workloads=["micro"], quick=True, seed=5,
            replicas=2, ack="quorum",
        )
        serial_text, serial_ok = run_chaos_suite(jobs=1, **kwargs)
        # One cell cannot fan out; add the second workload for a real pool.
        kwargs["workloads"] = ["micro", "tpcc"]
        t1, ok1 = run_chaos_suite(jobs=1, **kwargs)
        t2, ok2 = run_chaos_suite(jobs=2, **kwargs)
        assert serial_ok and ok1 and ok2
        assert t1 == t2  # --jobs N output byte-identical to serial
        assert serial_text.splitlines()[0] in t1

    def test_cli_exits_nonzero_and_names_invariants_on_failure(self, monkeypatch, capsys):
        from repro.bench.cli import main
        from repro.faults import chaos as chaos_module

        def fake_suite(**kwargs):
            return (
                "chaos shore-mt x micro: FAIL\n"
                "CHAOS FAILURES (see above) — failing invariants: "
                "no-acked-txn-lost, replica-convergence",
                False,
            )

        monkeypatch.setattr(chaos_module, "run_chaos_suite", fake_suite)
        status = main(["chaos", "--quick"])
        out = capsys.readouterr().out
        assert status == 1
        assert "no-acked-txn-lost" in out
        assert "replica-convergence" in out

    def test_cli_exits_zero_on_success(self, monkeypatch, capsys):
        from repro.bench.cli import main
        from repro.faults import chaos as chaos_module

        monkeypatch.setattr(
            chaos_module, "run_chaos_suite",
            lambda **kwargs: ("all chaos runs clean", True),
        )
        assert main(["chaos", "--quick"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_suite_verdict_names_failing_invariants(self, monkeypatch):
        from repro.faults import chaos as chaos_module

        monkeypatch.setattr(
            chaos_module, "_run_suite_task",
            lambda task: ("chaos cell: FAIL", False, ("no-acked-txn-lost",)),
        )
        text, ok = chaos_module.run_chaos_suite(
            systems=["shore-mt"], workloads=["micro"], quick=True
        )
        assert not ok
        assert text.splitlines()[-1] == (
            "CHAOS FAILURES (see above) — failing invariants: no-acked-txn-lost"
        )
