"""Replicated WAL shipping tests.

Covers the SimNetwork fabric (latency, FIFO delivery, injectable
drop/delay/duplicate/reorder/partition faults, partition auto-heal),
Replica log ingestion (out-of-order buffering, duplicate and torn-record
rejection, epoch fencing), the three client ack modes, deterministic
LSN-based failover with the no-acked-txn-lost check, and cross-node
convergence after retransmission repairs.
"""

import pytest

from repro.engines.base import COMMITTED
from repro.engines.common import TableSpec
from repro.engines.config import EngineConfig
from repro.engines.registry import make_engine
from repro.faults import (
    FaultInjector,
    FaultSpec,
    NET_DELAY,
    NET_DELIVER,
    NET_DROP,
    NET_DUPLICATE,
    NET_PARTITION,
    NET_REORDER,
    NET_SEND,
)
from repro.replication import (
    ASYNC,
    PRIMARY_NODE,
    QUORUM,
    Replica,
    ReplicationGroup,
    ReplicationSpec,
    SYNC_ONE,
    SimNetwork,
)
from repro.storage.record import microbench_schema
from repro.storage.wal import LogRecord, record_checksum, torn_copy

N_ROWS = 200


def _record(lsn, txn_id=1, kind="update", payload=("t", 0, (0, 0))):
    return LogRecord(
        lsn=lsn, txn_id=txn_id, kind=kind, payload_bytes=16, payload=payload,
        checksum=record_checksum(lsn, txn_id, kind, 16, payload),
    )


def _engine_factory(system="shore-mt"):
    def factory():
        engine = make_engine(system, EngineConfig(materialize_threshold=0))
        log = engine.recovery_log()
        log.retain_all = True
        engine.create_table(TableSpec("t", microbench_schema(), N_ROWS, grows=True))
        return engine, log

    return factory


def _group(ack=QUORUM, n_replicas=2, seed=1, **spec_overrides):
    spec = ReplicationSpec(n_replicas=n_replicas, ack=ack, **spec_overrides)
    return ReplicationGroup(spec, _engine_factory(), seed=seed)


class TestSimNetwork:
    def _fabric(self, specs=(), seed=1):
        net = SimNetwork()
        inbox = []
        net.register("a", inbox.append)
        net.register("b", inbox.append)
        if specs:
            net.injector = FaultInjector(list(specs), seed=seed)
        return net, inbox

    def test_delivers_after_latency_in_fifo_order(self):
        net, inbox = self._fabric()
        net.send("a", "b", "ship", (1,))
        net.send("a", "b", "ship", (2,))
        assert inbox == []  # nothing delivered before the latency elapses
        net.tick()
        assert [m.payload for m in inbox] == [(1,), (2,)]
        assert net.counters["delivered"] == 2

    def test_unknown_destination_rejected(self):
        net, _ = self._fabric()
        with pytest.raises(KeyError, match="unknown destination"):
            net.send("a", "nowhere", "ship", ())

    def test_drop_fault_loses_the_message(self):
        net, inbox = self._fabric([FaultSpec(NET_SEND, kind=NET_DROP, at_hit=1)])
        net.send("a", "b", "ship", (1,))
        net.run_until_quiet()
        assert inbox == []
        assert net.counters["dropped"] == 1

    def test_duplicate_fault_delivers_twice(self):
        net, inbox = self._fabric([FaultSpec(NET_SEND, kind=NET_DUPLICATE, at_hit=1)])
        net.send("a", "b", "ship", (1,))
        net.run_until_quiet()
        assert [m.payload for m in inbox] == [(1,), (1,)]

    def test_delay_fault_defers_delivery(self):
        net, inbox = self._fabric([FaultSpec(NET_SEND, kind=NET_DELAY, at_hit=1)])
        net.send("a", "b", "ship", (1,))
        net.tick()  # the regular latency elapses; the message is still out
        assert inbox == []
        net.run_until_quiet()
        assert [m.payload for m in inbox] == [(1,)]
        assert net.counters["delayed"] == 1

    def test_reorder_fault_lets_next_message_overtake(self):
        net, inbox = self._fabric([FaultSpec(NET_SEND, kind=NET_REORDER, at_hit=1)])
        net.send("a", "b", "ship", (1,))
        net.send("a", "b", "ship", (2,))
        net.run_until_quiet()
        assert [m.payload for m in inbox] == [(2,), (1,)]

    def test_partition_fault_isolates_sender_then_heals(self):
        net, inbox = self._fabric([FaultSpec(NET_SEND, kind=NET_PARTITION, at_hit=1)])
        net.send("a", "b", "ship", (1,))  # triggers the partition, msg lost
        assert net.partition_active
        assert net.partitioned("a", "b")
        net.send("a", "b", "ship", (2,))  # crosses the cut: dropped at send
        net.tick(30)  # partition lengths are 8..24 ticks: heal point passed
        assert inbox == []
        assert not net.partition_active
        net.send("a", "b", "ship", (3,))
        net.run_until_quiet()
        assert [m.payload for m in inbox] == [(3,)]

    def test_partition_severs_in_flight_traffic(self):
        net, inbox = self._fabric()
        net.send("a", "b", "ship", (1,))  # in flight
        net.partition({"a"}, ticks=5)
        net.tick()  # delivery attempt happens behind the cut
        assert inbox == []
        assert net.counters["partition_drops"] == 1

    def test_heal_clears_partition_immediately(self):
        net, _ = self._fabric()
        net.partition({"a"}, ticks=100)
        net.heal()
        assert not net.partition_active
        assert not net.partitioned("a", "b")

    def test_deliver_point_faults_fire_too(self):
        net, inbox = self._fabric([FaultSpec(NET_DELIVER, kind=NET_DROP, at_hit=1)])
        net.send("a", "b", "ship", (1,))
        net.run_until_quiet()
        assert inbox == []
        assert net.counters["dropped"] == 1


class TestReplica:
    def test_out_of_order_batches_buffer_until_contiguous(self):
        replica = Replica(0)
        assert replica.receive(1, (_record(2),)) == 0  # gap: buffered
        assert replica.pending
        assert replica.receive(1, (_record(1),)) == 2  # gap filled, both land
        assert [r.lsn for r in replica.records] == [1, 2]
        assert replica.applied_lsn == 2

    def test_duplicates_ignored(self):
        replica = Replica(0)
        replica.receive(1, (_record(1), _record(2)))
        assert replica.receive(1, (_record(1), _record(2))) == 2
        assert [r.lsn for r in replica.records] == [1, 2]

    def test_torn_in_flight_record_rejected(self):
        replica = Replica(0)
        assert replica.receive(1, (torn_copy(_record(1)),)) == 0
        assert replica.records == []

    def test_stale_epoch_ignored(self):
        replica = Replica(0)
        replica.receive(1, (_record(1),))
        replica.reset(2)
        assert replica.receive(1, (_record(2),)) == 0  # old-epoch ship
        assert replica.records == []

    def test_digest_tracks_content(self):
        a, b = Replica(0), Replica(1)
        a.receive(1, (_record(1),))
        b.receive(1, (_record(1),))
        assert a.digest() == b.digest()
        b.receive(1, (_record(2),))
        assert a.digest() != b.digest()


class TestReplicationSpec:
    def test_needs_a_replica(self):
        with pytest.raises(ValueError, match="n_replicas"):
            ReplicationSpec(n_replicas=0)

    def test_unknown_ack_mode_rejected(self):
        with pytest.raises(ValueError, match="ack mode"):
            ReplicationSpec(ack="paxos")

    def test_quorum_size_is_majority_including_primary(self):
        assert ReplicationSpec(n_replicas=1).quorum_size() == 2
        assert ReplicationSpec(n_replicas=2).quorum_size() == 2
        assert ReplicationSpec(n_replicas=4).quorum_size() == 3


class TestAckModes:
    def _submit_some(self, group, n=10):
        for i in range(n):
            outcome = group.submit(
                "p", lambda txn, v=i: txn.update("t", v % N_ROWS, "value", v)
            )
            assert outcome == COMMITTED

    @pytest.mark.parametrize("ack", [ASYNC, SYNC_ONE, QUORUM])
    def test_healthy_fabric_acks_and_converges(self, ack):
        group = _group(ack=ack)
        self._submit_some(group)
        assert group.acked_count == 10
        assert group.unacked_count == 0
        group.final_sync()
        assert group.convergence_problems() == []
        digests = group.replica_digests()
        assert len(set(digests)) == 1  # replicas byte-identical

    def test_durable_modes_track_acked_txns(self):
        group = _group(ack=QUORUM)
        self._submit_some(group, n=5)
        assert len(group.acked) == 5
        tip = group.log.last_commit_lsn
        assert max(group.acked.values()) <= tip

    def test_async_promises_nothing(self):
        group = _group(ack=ASYNC)
        self._submit_some(group, n=5)
        assert group.acked == {}  # nothing to check at failover

    def test_total_drop_exhausts_retries_and_backs_off(self):
        group = _group(ack=SYNC_ONE, deadline_ticks=4, max_ack_retries=2)
        group.net.injector = FaultInjector(
            [FaultSpec(NET_SEND, kind=NET_DROP, probability=1.0, times=-1)]
        )
        outcome = group.submit("p", lambda txn: txn.update("t", 0, "value", 1))
        assert outcome == COMMITTED  # locally committed, never acked
        assert group.unacked_count == 1
        assert group.ack_retries == 2
        assert group.backoff_ticks >= 2 + 4  # capped exponential: base, 2*base
        assert group.acked == {}  # unacked txns carry no durability promise

    def test_retransmission_repairs_a_dropped_ship(self):
        group = _group(ack=SYNC_ONE, n_replicas=1, deadline_ticks=4)
        # Drop exactly the first ship; the retry path must re-send it.
        group.net.injector = FaultInjector(
            [FaultSpec(NET_SEND, kind=NET_DROP, at_hit=1)]
        )
        outcome = group.submit("p", lambda txn: txn.update("t", 0, "value", 1))
        assert outcome == COMMITTED
        assert group.acked_count == 1
        assert group.ack_retries >= 1


class TestFailover:
    def test_election_prefers_highest_lsn_then_lowest_id(self):
        group = _group(n_replicas=3)
        group.replicas[0].durable_lsn = 5
        group.replicas[1].durable_lsn = 9
        group.replicas[2].durable_lsn = 9
        assert group._elect().replica_id == 1  # tie at 9 falls to lower id

    def test_failover_restores_acked_state_and_bumps_epoch(self):
        group = _group(ack=QUORUM)
        for i in range(8):
            group.submit("p", lambda txn, v=i: txn.update("t", v, "value", v + 100))
        acked_before = dict(group.acked)
        state, report = group.failover()
        assert report.problems == []
        assert report.acked_checked == len(acked_before)
        assert report.winner_lsn == max(report.candidate_lsns)
        assert group.epoch == 2
        for txn_id in acked_before:
            assert state.txn_status[txn_id] == "committed"
        # The new primary serves reads of every acked write.
        for i in range(8):
            assert group.engine.committed_row("t", i)[1] == i + 100
        # The group keeps working after the failover.
        group.submit("p", lambda txn: txn.update("t", 0, "value", 999))
        group.final_sync()
        assert group.convergence_problems() == []

    def test_lost_acked_txn_is_detected(self):
        group = _group(ack=QUORUM)
        group.submit("p", lambda txn: txn.update("t", 0, "value", 1))
        # Claim an ack the replicas never saw: failover must flag it.
        group.acked[9999] = 10_000_000
        _, report = group.failover()
        assert any(p.startswith("no-acked-txn-lost") for p in report.problems)

    def test_partitioned_majority_blocks_quorum_until_heal(self):
        group = _group(ack=QUORUM, deadline_ticks=4, max_ack_retries=1)
        group.net.partition({PRIMARY_NODE}, ticks=10_000)
        outcome = group.submit("p", lambda txn: txn.update("t", 0, "value", 1))
        assert outcome == COMMITTED
        assert group.unacked_count == 1  # no majority reachable
        # final_sync heals the cut and repairs the replicas.
        group.final_sync()
        assert group.convergence_problems() == []

    def test_failover_during_partition_elects_from_drained_state(self):
        group = _group(ack=SYNC_ONE)
        for i in range(5):
            group.submit("p", lambda txn, v=i: txn.update("t", v, "value", v))
        group.net.partition({PRIMARY_NODE}, ticks=10_000)
        group.submit("p", lambda txn: txn.update("t", 7, "value", 7))
        _, report = group.failover()  # drains, elects, recovers
        assert report.problems == []
        group.final_sync()
        assert group.convergence_problems() == []


class TestDeterminism:
    def _digests(self, seed):
        group = _group(ack=QUORUM, seed=seed)
        group.net.injector = FaultInjector(
            [FaultSpec(NET_SEND, kind=NET_DELAY, probability=0.2, times=-1)],
            seed=seed,
        )
        for i in range(12):
            group.submit("p", lambda txn, v=i: txn.update("t", v, "value", v))
        group.final_sync()
        assert group.convergence_problems() == []
        return group.replica_digests(), group.primary_log_digest()

    def test_same_seed_same_replica_logs(self):
        assert self._digests(5) == self._digests(5)
