"""Whole-program pass tests: fixtures, call-graph determinism, SARIF,
the stream-registry drift guard, and the CI delta gate."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint.callgraph import build_project
from repro.lint.cli import main as lint_main
from repro.lint.engine import LintConfig
from repro.lint.locks import LEAK_RULE, ORDER_RULE, LockOrderPass
from repro.lint.passes import default_passes, pass_names, run_passes, select_passes
from repro.lint.sarif import FINGERPRINT_KEY, to_sarif
from repro.lint.streams import (
    DYNAMIC_SITES,
    PREFIX_REGISTRY,
    STREAM_REGISTRY,
    StreamsPass,
    _purpose_of,
    _local_strings,
    _is_child_rng,
)
from repro.lint.taint import TaintPass
from repro.lint.units import UnitsPass
from repro.util import timeunits

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
SRC = REPO_ROOT / "src"

# Fixtures live under tests/, which both the sim classifier and the
# exclude list would skip; override both.
PASS_CONFIG = LintConfig(treat_as_sim=True, exclude_parts=("__pycache__",))


def pass_findings(fixture: str, pass_name: str | None = None):
    passes = select_passes([pass_name]) if pass_name else None
    return run_passes([FIXTURES / fixture], passes, PASS_CONFIG)


class TestPassCatalogue:
    def test_four_passes_registered(self):
        assert pass_names() == ["taint", "locks", "units", "streams"]

    def test_select_unknown_pass_raises(self):
        with pytest.raises(ValueError, match="unknown pass"):
            select_passes(["nope"])


class TestFixtureCorpus:
    @pytest.mark.parametrize(
        "fixture,pass_name,rules",
        [
            ("taint_launder_bad.py", "taint", {"taint-flow"}),
            ("lock_cycle_bad.py", "locks", {ORDER_RULE, LEAK_RULE}),
            ("units_bad.py", "units", {"unit-mismatch"}),
            ("stream_dup_bad.py", "streams", {"stream-purpose", "stream-scope"}),
        ],
    )
    def test_bad_fixture_trips_its_pass(self, fixture, pass_name, rules):
        findings = pass_findings(fixture, pass_name)
        assert findings, f"{fixture} should trip the {pass_name} pass"
        assert {f.rule for f in findings} == rules

    @pytest.mark.parametrize(
        "fixture",
        [
            "taint_launder_good.py",
            "lock_cycle_good.py",
            "units_good.py",
            "stream_dup_good.py",
        ],
    )
    def test_good_fixture_is_clean_under_every_pass(self, fixture):
        findings = pass_findings(fixture)
        assert findings == [], [f.render() for f in findings]

    def test_taint_laundering_is_interprocedural(self):
        # One finding at the attribute store, one at the call frontier
        # into the sinking helper parameter — neither is a direct
        # time.time() line, which is the point.
        findings = pass_findings("taint_launder_bad.py", "taint")
        messages = " / ".join(f.message for f in findings)
        assert "attribute store" in messages
        assert "_commit" in messages

    def test_planted_deadlock_reports_the_cycle(self):
        findings = pass_findings("lock_cycle_bad.py", "locks")
        cycles = [f for f in findings if f.rule == ORDER_RULE]
        assert len(cycles) == 1  # one canonical report per cycle
        assert "row" in cycles[0].message and "table" in cycles[0].message

    def test_pragma_suppresses_pass_findings(self, tmp_path):
        bad = "def f(a_ns, b_ticks):\n    return a_ns + b_ticks\n"
        path = tmp_path / "mod.py"
        path.write_text(bad)
        assert run_passes([path], [UnitsPass()], PASS_CONFIG)
        path.write_text(bad.replace(
            "b_ticks\n", "b_ticks  # repro-lint: disable=unit-mismatch\n", 1
        ))
        assert run_passes([path], [UnitsPass()], PASS_CONFIG) == []


class TestRepoIsClean:
    def test_all_passes_clean_over_src_and_tests(self):
        findings = run_passes(
            [SRC, REPO_ROOT / "tests"], config=LintConfig()
        )
        assert findings == [], [f.render() for f in findings]

    def test_baseline_file_is_empty(self):
        lines = [
            line
            for line in (REPO_ROOT / ".repro-lint-baseline").read_text().splitlines()
            if line.strip() and not line.lstrip().startswith("#")
        ]
        assert lines == []


class TestCallGraphDeterminism:
    def _dump(self, hashseed: str) -> str:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        env["PYTHONHASHSEED"] = hashseed
        out = subprocess.run(
            [sys.executable, "-m", "repro.lint", "src/repro/lint",
             "--dump-callgraph", "-"],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True, check=True,
        )
        return out.stdout

    def test_dump_is_byte_identical_across_processes(self):
        # Different PYTHONHASHSEED = different set/dict hash order; the
        # dump must not depend on either.
        assert self._dump("0") == self._dump("424242")

    def test_rebuild_hits_cache_and_agrees(self):
        paths = [SRC / "repro" / "lint"]
        first = build_project(paths, LintConfig()).to_dict()
        second = build_project(paths, LintConfig()).to_dict()
        assert first == second
        assert first["n_functions"] > 0

    def test_calls_resolve_through_the_project(self):
        project = build_project([FIXTURES / "taint_launder_bad.py"], PASS_CONFIG)
        fn = project.functions["taint_launder_bad.Engine.calibrate"]
        targets = {c.target for c in fn.calls if c.target}
        assert "taint_launder_bad._now_offset" in targets


class TestSarif:
    def test_sarif_shape_is_2_1_0(self):
        findings = pass_findings("units_bad.py", "units")
        log = to_sarif(findings)
        assert log["version"] == "2.1.0"
        assert log["$schema"].endswith("sarif-schema-2.1.0.json")
        assert len(log["runs"]) == 1
        run = log["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = [r["id"] for r in driver["rules"]]
        assert rule_ids == sorted(rule_ids)
        assert "unit-mismatch" in rule_ids
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
        assert len(run["results"]) == len(findings)
        for result, finding in zip(run["results"], findings):
            assert result["ruleId"] == finding.rule
            assert rule_ids[result["ruleIndex"]] == finding.rule
            assert result["level"] == "error"
            assert result["message"]["text"] == finding.message
            location = result["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"] == finding.path
            assert location["region"]["startLine"] == finding.line
            assert location["region"]["startColumn"] == finding.col + 1
            fingerprint = result["partialFingerprints"][FINGERPRINT_KEY]
            assert fingerprint == finding.fingerprint()

    def test_sarif_out_writes_the_artifact(self, tmp_path, capsys):
        # The CLI's default config excludes lint_fixtures/, so copy the
        # bad corpus to a neutral path first.
        mod = tmp_path / "units_mod.py"
        mod.write_text((FIXTURES / "units_bad.py").read_text())
        out = tmp_path / "report.sarif"
        code = lint_main([
            str(mod), "--no-baseline",
            "--sim-paths", "always", "--sarif-out", str(out),
        ])
        capsys.readouterr()
        assert code == 1
        log = json.loads(out.read_text())
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"]

    def test_format_sarif_on_stdout(self, tmp_path, capsys):
        mod = tmp_path / "stream_mod.py"
        mod.write_text((FIXTURES / "stream_dup_bad.py").read_text())
        code = lint_main([
            str(mod), "--no-baseline",
            "--sim-paths", "always", "--format", "sarif",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert json.loads(out)["version"] == "2.1.0"


class TestDeltaGate:
    """The CI contract: a new finding vs the committed baseline fails."""

    def test_new_finding_fails_then_baseline_pins_then_delta_fails(
        self, tmp_path, capsys
    ):
        mod = tmp_path / "sim_mod.py"
        baseline = tmp_path / "baseline"
        mod.write_text("import time\n\ndef f():\n    return time.time()\n")
        args = [str(mod), "--baseline", str(baseline), "--sim-paths", "always"]
        assert lint_main(args) == 1           # new finding, no baseline: gate trips
        assert lint_main(args + ["--update-baseline"]) == 0
        assert lint_main(args) == 0           # pinned: gate passes
        mod.write_text(
            mod.read_text() + "\n\ndef g(x_ns, y_ms):\n    return x_ns - y_ms\n"
        )
        assert lint_main(args) == 1           # synthetic NEW finding: gate trips
        capsys.readouterr()


class TestStreamRegistryDriftGuard:
    """Pinned inventory: the registry must match the purposes actually
    constructed in src/repro — greppable drift guard (satellite)."""

    def _extract(self):
        project = build_project([SRC / "repro"], LintConfig())
        literals: dict[str, int] = {}
        prefixes: dict[str, int] = {}
        dynamic: set[str] = set()
        for fn in project.sim_functions():
            module = project.module_of(fn.qualname)
            locals_ = _local_strings(fn)
            for site in fn.calls:
                if not _is_child_rng(site.raw):
                    continue
                if len(site.node.args) < 2:
                    continue
                kind, value = _purpose_of(
                    site.node.args[1], locals_, module, project
                )
                if kind == "literal":
                    literals[value] = literals.get(value, 0) + 1
                elif kind == "prefix":
                    prefixes[value] = prefixes.get(value, 0) + 1
                else:
                    dynamic.add(fn.qualname)
        return literals, prefixes, dynamic

    def test_registry_matches_the_purposes_in_use(self):
        literals, prefixes, dynamic = self._extract()
        # Pinned: renaming any of these changes seeded RNG streams and
        # therefore every pinned schedule digest.  Register new sites;
        # never rename.
        assert literals == {
            "2pc-client": 1, "client": 1, "image": 2, "net": 2, "stall": 1,
        }
        assert prefixes == {
            "chaos-load:": 1, "load-arrival:": 1, "load-cluster:": 1,
            "load-image:": 1, "load-retry:": 1,
        }
        assert dynamic == {"repro.faults.injector.FaultInjector.stream"}
        assert literals == STREAM_REGISTRY
        assert prefixes == PREFIX_REGISTRY
        assert dynamic == DYNAMIC_SITES


class TestTimeunits:
    """The helpers must be expression-identical to the inline
    arithmetic they replaced (pinned digests are bit-exact)."""

    def test_identities(self):
        # These asserts compare across units on purpose — they pin the
        # helpers to the inline arithmetic they replaced.
        for us in (0, 1, 250.5, 1e6):
            assert timeunits.us_to_ns(us) == int(us * 1000)  # repro-lint: disable=unit-mismatch
        for ms in (0.0, 20.0, 0.5, 1234.56):
            assert timeunits.ms_to_ns(ms) == int(ms * 1_000_000)  # repro-lint: disable=unit-mismatch
            assert timeunits.ms_to_ns_float(ms) == ms * 1_000_000  # repro-lint: disable=unit-mismatch
        for ns in (0, 999, 50_000, 123_456_789):
            assert timeunits.ns_to_us(ns) == ns / 1000.0  # repro-lint: disable=unit-mismatch
            assert timeunits.ns_to_ticks(ns) == ns // timeunits.TICK_NS
        assert timeunits.ticks_to_ns(7) == 7 * 50_000
        assert timeunits.TICK_NS == 50_000

    def test_driver_reexports_tick_ns(self):
        from repro.load import driver

        assert driver.TICK_NS is timeunits.TICK_NS


class TestPassNoiseControl:
    def test_clock_module_itself_is_clean_under_taint(self):
        findings = run_passes(
            [SRC / "repro" / "util" / "clock.py"], [TaintPass()], LintConfig()
        )
        assert findings == [], [f.render() for f in findings]

    def test_lock_manager_and_engines_are_clean_under_locks(self):
        findings = run_passes(
            [SRC / "repro" / "storage", SRC / "repro" / "engines"],
            [LockOrderPass()], LintConfig(),
        )
        assert findings == [], [f.render() for f in findings]

    def test_streams_pass_ignores_test_files(self):
        # tests construct ad-hoc purposes freely; the pass only audits
        # sim modules.
        findings = run_passes(
            [REPO_ROOT / "tests"], [StreamsPass()], LintConfig()
        )
        assert findings == [], [f.render() for f in findings]
