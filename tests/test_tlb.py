"""Data-TLB model tests."""

import pytest

from repro.core.machine import Machine
from repro.core.tlb import DataTLB, HUGE_PAGE_DTLB, IVY_BRIDGE_DTLB, TLBSpec
from repro.core.trace import AccessTrace
from tests.conftest import TINY_SERVER


class TestSpec:
    def test_ivy_bridge_geometry(self):
        assert IVY_BRIDGE_DTLB.l1_entries == 64
        assert IVY_BRIDGE_DTLB.stlb_entries == 512
        assert IVY_BRIDGE_DTLB.page_bytes == 4096
        assert IVY_BRIDGE_DTLB.lines_per_page == 64

    def test_validation(self):
        with pytest.raises(ValueError):
            TLBSpec(page_bytes=100)
        with pytest.raises(ValueError):
            TLBSpec(l1_entries=63)


class TestTranslation:
    def test_first_touch_walks_then_hits(self):
        tlb = DataTLB()
        line = 1 << 20
        assert tlb.translate(line) is True
        assert tlb.translate(line) is False
        assert tlb.translate(line + 1) is False  # same page
        assert tlb.walks == 1

    def test_same_page_lines_share_translation(self):
        tlb = DataTLB()
        tlb.translate(0)
        assert all(not tlb.translate(i) for i in range(1, 64))
        assert tlb.translate(64) is True  # next page

    def test_reach_exceeded_causes_walks(self):
        tlb = DataTLB()
        # Touch far more pages than L1+STLB can map, twice.
        pages = range(0, 4096 * 64, 64)
        for line in pages:
            tlb.translate(line)
        walks_first = tlb.walks
        for line in pages:
            tlb.translate(line)
        assert tlb.walks >= walks_first * 1.9  # cyclic LRU thrash

    def test_within_reach_no_steady_walks(self):
        tlb = DataTLB()
        pages = range(0, 32 * 64, 64)  # 32 pages: fits the L1 dTLB
        for line in pages:
            tlb.translate(line)
        before = tlb.walks
        for _ in range(5):
            for line in pages:
                tlb.translate(line)
        assert tlb.walks == before

    def test_huge_pages_extend_reach(self):
        small = DataTLB(IVY_BRIDGE_DTLB)
        huge = DataTLB(HUGE_PAGE_DTLB)
        # 100 MB of 4KB-page-spread accesses, twice.
        lines = range(0, (100 << 20) // 64, 997)
        for _ in range(2):
            for line in lines:
                small.translate(line)
                huge.translate(line)
        assert huge.walk_ratio < small.walk_ratio * 0.2

    def test_flush(self):
        tlb = DataTLB()
        tlb.translate(0)
        tlb.flush()
        assert tlb.walks == 0
        assert tlb.translate(0) is True


class TestMachineIntegration:
    def test_walks_counted_per_trace(self):
        machine = Machine(TINY_SERVER)
        t = AccessTrace()
        for i in range(200):
            t.load((1 << 22) + i * 64, 0, serial=True)  # one line per page
        t.retire(0, 1000)
        delta = machine.run_trace(t)
        assert delta.dtlb_walks > 100

    def test_measured_mode_charges_walks(self):
        constant = Machine(TINY_SERVER)
        measured = Machine(TINY_SERVER, tlb_mode="measured")
        t = AccessTrace()
        for i in range(300):
            t.load((1 << 22) + i * 64 * 64, 0, serial=True)
        t.retire(0, 1000)
        d_const = constant.run_trace(t)
        d_meas = measured.run_trace(t)
        assert d_meas.dtlb_walks == d_const.dtlb_walks
        assert d_meas.cycles != d_const.cycles  # different charging model

    def test_invalid_tlb_mode(self):
        with pytest.raises(ValueError):
            Machine(TINY_SERVER, tlb_mode="bogus")
