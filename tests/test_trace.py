"""AccessTrace tests."""

from repro.core.trace import (
    AccessTrace,
    DLOAD,
    DLOAD_SERIAL,
    DSTORE,
    IFETCH,
    IFETCH_RUN,
)


class TestAppending:
    def test_ifetch(self, trace):
        trace.ifetch(10, module=1)
        assert trace.kinds == [IFETCH]
        assert trace.addrs == [10]
        assert trace.mods == [1]

    def test_ifetch_run_batches(self, trace):
        trace.ifetch_run(100, 4, module=2)
        assert trace.kinds == [IFETCH_RUN]
        assert trace.addrs == [(100, 4)]
        assert len(trace) == 4
        assert list(trace.events()) == [(IFETCH, line, 2) for line in (100, 101, 102, 103)]

    def test_ifetch_run_of_one_is_plain_ifetch(self, trace):
        trace.ifetch_run(7, 1, module=3)
        trace.ifetch_run(9, 0, module=3)
        assert trace.kinds == [IFETCH]
        assert trace.addrs == [7]
        assert len(trace) == 1

    def test_clear_resets_run_batching(self, trace):
        trace.ifetch_run(100, 4, module=2)
        trace.clear()
        assert len(trace) == 0
        trace.ifetch(1, module=0)
        assert len(trace) == 1

    def test_load_serial_flag(self, trace):
        trace.load(5, 0)
        trace.load(6, 0, serial=True)
        assert trace.kinds == [DLOAD, DLOAD_SERIAL]

    def test_store_and_runs(self, trace):
        trace.store(1, 0)
        trace.load_run(10, 3, 0)
        trace.store_run(20, 2, 0)
        assert trace.kinds == [DSTORE, DLOAD, DLOAD, DLOAD, DSTORE, DSTORE]
        assert trace.addrs == [1, 10, 11, 12, 20, 21]


class TestRetirement:
    def test_instructions_accumulate_per_module(self, trace):
        trace.retire(0, 100)
        trace.retire(1, 50)
        trace.retire(0, 25)
        assert trace.instr_by_module == {0: 125, 1: 50}
        assert trace.instructions == 175

    def test_branches_and_mispredicts(self, trace):
        trace.retire(0, 100, branches=20, mispredicts=2)
        trace.retire(0, 100, branches=10, mispredicts=1)
        assert trace.branches == 30
        assert trace.mispredicts == 3

    def test_base_cycles_accumulate(self, trace):
        trace.retire(0, 100, base_cycles=45.0)
        trace.retire(1, 100, base_cycles=33.0)
        assert trace.base_cycles == 78.0
        assert trace.base_by_module == {0: 45.0, 1: 33.0}

    def test_base_cycles_optional(self, trace):
        trace.retire(0, 100)
        assert trace.base_cycles == 0.0


class TestLifecycle:
    def test_clear_resets_everything(self, trace):
        trace.ifetch(1, 0)
        trace.load(2, 0)
        trace.retire(0, 10, branches=1, mispredicts=1, base_cycles=5.0)
        trace.clear()
        assert len(trace) == 0
        assert trace.instructions == 0
        assert trace.base_cycles == 0.0
        assert trace.branches == 0
        assert trace.mispredicts == 0

    def test_events_iteration(self, trace):
        trace.ifetch(1, 7)
        trace.store(2, 8)
        assert list(trace.events()) == [(IFETCH, 1, 7), (DSTORE, 2, 8)]
