"""Model-checking the set-associative cache against a reference LRU.

Hypothesis drives random access sequences through the simulator's cache
and an obviously-correct reference implementation (per-set ordered
lists); hit/miss decisions must agree exactly on every access.
"""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.core.cache import SetAssociativeCache
from repro.core.spec import CacheSpec


class ReferenceLRU:
    """Per-set LRU built on OrderedDict — the specification."""

    def __init__(self, n_sets: int, assoc: int) -> None:
        self.n_sets = n_sets
        self.assoc = assoc
        self.sets = [OrderedDict() for _ in range(n_sets)]

    def lookup(self, line: int) -> bool:
        s = self.sets[line % self.n_sets]
        if line in s:
            s.move_to_end(line)
            return True
        if len(s) >= self.assoc:
            s.popitem(last=False)
        s[line] = True
        return False

    def invalidate(self, line: int) -> bool:
        s = self.sets[line % self.n_sets]
        return s.pop(line, None) is not None


ops = st.lists(
    st.tuples(
        st.sampled_from(["lookup", "write", "invalidate", "fill"]),
        st.integers(min_value=0, max_value=255),
    ),
    max_size=400,
)


@settings(max_examples=60, deadline=None)
@given(ops=ops, n_sets=st.sampled_from([1, 2, 8]), assoc=st.sampled_from([1, 2, 4]))
def test_cache_agrees_with_reference_lru(ops, n_sets, assoc):
    spec = CacheSpec("mc", n_sets * assoc * 64, assoc, miss_penalty_cycles=8)
    cache = SetAssociativeCache(spec)
    reference = ReferenceLRU(n_sets, assoc)
    for op, line in ops:
        if op == "invalidate":
            assert cache.invalidate(line) == reference.invalidate(line)
        elif op == "fill":
            # fill installs without counting; reference: lookup, ignore result
            cache.fill(line)
            reference.lookup(line)
        else:
            expected = reference.lookup(line)
            assert cache.lookup(line, write=(op == "write")) == expected


@settings(max_examples=40, deadline=None)
@given(ops=st.lists(st.integers(min_value=0, max_value=600), max_size=300))
def test_cache_stats_invariants(ops):
    spec = CacheSpec("mc", 8 * 2 * 64, 2, miss_penalty_cycles=8)
    cache = SetAssociativeCache(spec)
    for line in ops:
        cache.lookup(line)
    st_ = cache.stats
    assert st_.accesses == len(ops)
    assert st_.hits + st_.misses == st_.accesses
    assert cache.resident_lines() <= spec.n_lines
    assert st_.evictions <= st_.misses
