"""Buffer-pool tests."""

import pytest

from repro.core.trace import AccessTrace
from repro.storage.buffer_pool import BufferPool


def make(n_frames=4, space=None):
    from repro.storage.address_space import DataAddressSpace

    return BufferPool("bp", space or DataAddressSpace(), n_frames=n_frames)


class TestFixUnfix:
    def test_first_fix_misses_then_hits(self):
        bp = make()
        bp.fix(1, 10)
        bp.unfix(1, 10)
        bp.fix(1, 10)
        assert bp.stats.fixes == 2
        assert bp.stats.misses == 1
        assert bp.stats.hits == 1

    def test_hit_ratio(self):
        bp = make()
        for _ in range(4):
            bp.fix(1, 10)
            bp.unfix(1, 10)
        assert bp.hit_ratio == pytest.approx(0.75)

    def test_unfix_unpinned_rejected(self):
        bp = make()
        with pytest.raises(RuntimeError):
            bp.unfix(1, 10)

    def test_nested_pins(self):
        bp = make()
        bp.fix(1, 10)
        bp.fix(1, 10)
        bp.unfix(1, 10)
        bp.unfix(1, 10)
        with pytest.raises(RuntimeError):
            bp.unfix(1, 10)


class TestReplacement:
    def test_lru_eviction_of_unpinned(self):
        bp = make(n_frames=2)
        bp.fix(1, 1); bp.unfix(1, 1)
        bp.fix(1, 2); bp.unfix(1, 2)
        bp.fix(1, 3); bp.unfix(1, 3)  # evicts page 1
        assert not bp.is_resident(1, 1)
        assert bp.is_resident(1, 2)
        assert bp.stats.evictions == 1

    def test_pinned_pages_not_evicted(self):
        bp = make(n_frames=2)
        bp.fix(1, 1)  # stays pinned
        bp.fix(1, 2); bp.unfix(1, 2)
        bp.fix(1, 3); bp.unfix(1, 3)  # must evict page 2, not 1
        assert bp.is_resident(1, 1)
        assert not bp.is_resident(1, 2)

    def test_all_pinned_raises(self):
        bp = make(n_frames=2)
        bp.fix(1, 1)
        bp.fix(1, 2)
        with pytest.raises(RuntimeError):
            bp.fix(1, 3)

    def test_distinct_spaces_distinct_pages(self):
        bp = make()
        bp.fix(1, 10)
        bp.fix(2, 10)
        assert bp.is_resident(1, 10) and bp.is_resident(2, 10)
        assert bp.stats.misses == 2


class TestEmission:
    def test_fix_emits_pagetable_and_frame_traffic(self):
        bp = make()
        t = AccessTrace()
        bp.fix(1, 10, t, mod=3)
        assert len(t) == 3  # page-table probe + frame header RMW
        assert all(m == 3 for m in t.mods)

    def test_validation(self):
        from repro.storage.address_space import DataAddressSpace

        with pytest.raises(ValueError):
            BufferPool("bad", DataAddressSpace(), n_frames=0)
