"""Schema and column-type tests."""

import pytest

from repro.storage.record import LONG, STRING50, Schema, microbench_schema, string_type


class TestColumnTypes:
    def test_long_width(self):
        assert LONG.byte_size == 8

    def test_string_width(self):
        assert STRING50.byte_size == 50
        assert string_type(20).byte_size == 20

    def test_default_values_deterministic(self):
        assert LONG.default_value(7) == LONG.default_value(7)
        assert LONG.default_value(7) != LONG.default_value(8)

    def test_string_default_has_exact_width(self):
        v = STRING50.default_value(123)
        assert isinstance(v, str)
        assert len(v) == 50

    def test_nonpositive_width_rejected(self):
        with pytest.raises(ValueError):
            string_type(0)


class TestSchema:
    def test_row_bytes(self):
        s = microbench_schema(LONG)
        assert s.payload_bytes == 16
        assert s.row_bytes == 24  # 8-byte header
        assert s.n_columns == 2

    def test_string_schema_bytes(self):
        s = microbench_schema(STRING50)
        assert s.payload_bytes == 100
        assert s.row_bytes == 108

    def test_column_index(self):
        s = microbench_schema()
        assert s.column_index("key") == 0
        assert s.column_index("value") == 1
        with pytest.raises(KeyError):
            s.column_index("missing")

    def test_default_rows_deterministic_and_distinct(self):
        s = microbench_schema()
        assert s.default_row(5) == s.default_row(5)
        assert s.default_row(5) != s.default_row(6)
        assert len(s.default_row(5)) == 2

    def test_validate_row(self):
        s = microbench_schema()
        s.validate_row((1, 2))
        with pytest.raises(ValueError):
            s.validate_row((1, 2, 3))
