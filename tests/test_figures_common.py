"""Tests for the shared figure builders."""

import pytest

from repro.bench.figures.common import (
    MICRO_SIZES,
    MULTITHREADED_SYSTEMS,
    ROWS_SWEEP,
    engine_config_for,
    labels,
    micro_rows_sweep,
    micro_size_sweep,
    tpc_sweep,
)
from repro.bench.results import IPC, STALLS_PER_KI


class TestConfiguration:
    def test_paper_axes(self):
        assert MICRO_SIZES == ["1MB", "10MB", "10GB", "100GB"]
        assert ROWS_SWEEP == [1, 10, 100]

    def test_multithreaded_excludes_hyper(self):
        assert "hyper" not in MULTITHREADED_SYSTEMS
        assert len(MULTITHREADED_SYSTEMS) == 4

    def test_dbms_m_uses_btree_only_for_tpcc(self):
        """Section 3: hash for micro/TPC-B, B-tree for TPC-C."""
        assert engine_config_for("dbms-m", "tpcc").index_kind == "cc_btree"
        assert engine_config_for("dbms-m", "micro").index_kind is None
        assert engine_config_for("dbms-m", "tpcb").index_kind is None
        assert engine_config_for("voltdb", "tpcc").index_kind is None

    def test_engine_config_always_analytic(self):
        assert engine_config_for("hyper", "micro").materialize_threshold == 0

    def test_labels(self):
        assert labels(["shore-mt", "dbms-m"]) == ["Shore-MT", "DBMS M"]


class TestSweepBuilders:
    def test_micro_size_sweep_structure(self):
        fig = micro_size_sweep(
            "T", "t", IPC, read_write=False, quick=True,
            sizes=["1MB"], systems=["hyper"],
        )
        assert fig.x_values == ["1MB"]
        assert fig.systems == ["HyPer"]
        assert 0 < fig.value("HyPer", "1MB") < 4

    def test_micro_rows_sweep_structure(self):
        fig = micro_rows_sweep(
            "T", "t", STALLS_PER_KI, read_write=True, quick=True,
            rows_values=[1], systems=["voltdb"],
        )
        assert fig.x_values == ["1"]
        b = fig.breakdown("VoltDB", "1")
        assert b.total > 0

    def test_tpc_sweep_structure(self):
        fig = tpc_sweep(
            "T", "t", IPC, benchmark="tpcb", quick=True, systems=["dbms-m"]
        )
        assert fig.x_values == ["TPC-B"]
        assert 0 < fig.value("DBMS M", "TPC-B") < 4
