"""Integration tests: the paper's qualitative claims must hold.

These run real (quick-budget) experiment cells and assert the *shapes*
the paper reports — the acceptance criteria of EXPERIMENTS.md.  They are
the slowest tests in the suite (a few seconds each).
"""

import pytest

from repro.bench.figures.common import TPC_DB_BYTES, engine_config_for, run_cell
from repro.engines.config import EngineConfig
from repro.workloads.microbench import MicroBenchmark
from repro.workloads.tpcb import TPCB


def micro(db_bytes=TPC_DB_BYTES, rows=1, rw=False):
    return lambda: MicroBenchmark(db_bytes=db_bytes, rows_per_txn=rows, read_write=rw)


@pytest.fixture(scope="module")
def cells():
    """One measured cell per (system, size-class) pair, shared."""
    out = {}
    for system in ("shore-mt", "dbms-d", "voltdb", "hyper", "dbms-m"):
        out[system, "small"] = run_cell(system, micro(db_bytes=10 << 20), quick=True)
        out[system, "big"] = run_cell(system, micro(), quick=True)
    return out


class TestHeadlineClaims:
    def test_ipc_barely_reaches_one_on_a_four_wide_machine(self, cells):
        """Abstract: IPC barely reaches 1 (HyPer-in-LLC is the exception)."""
        for (system, size), result in cells.items():
            if system == "hyper" and size == "small":
                continue
            assert result.ipc < 1.25, (system, size, result.ipc)

    def test_more_than_half_the_cycles_are_memory_stalls(self, cells):
        from repro.core.metrics import memory_stall_fraction

        for (system, size), result in cells.items():
            if system == "hyper" and size == "small":
                continue
            assert memory_stall_fraction(result.counters) > 0.4, (system, size)

    def test_l1i_dominates_for_everyone_but_hyper(self, cells):
        """Figure 2: instruction stalls (mainly L1I) dominate."""
        for system in ("shore-mt", "dbms-d", "voltdb", "dbms-m"):
            b = cells[system, "big"].stalls_per_kilo_instruction
            assert b.l1i == max(b.as_dict().values()), system

    def test_hyper_is_data_dominated(self, cells):
        b = cells["hyper", "big"].stalls_per_kilo_instruction
        assert b.llcd == max(b.as_dict().values())
        assert b.l1i < 20

    def test_hyper_highest_ipc_when_data_fits_llc(self, cells):
        hyper = cells["hyper", "small"].ipc
        assert hyper > 1.8
        for system in ("shore-mt", "dbms-d", "voltdb", "dbms-m"):
            assert hyper > 1.8 * cells[system, "small"].ipc, system

    def test_hyper_lowest_ipc_when_data_exceeds_llc(self, cells):
        hyper = cells["hyper", "big"].ipc
        for system in ("shore-mt", "dbms-d", "voltdb", "dbms-m"):
            assert hyper < cells[system, "big"].ipc, system

    def test_hyper_llcd_several_times_everyone_else(self, cells):
        """Section 4.1.2: 5-10x more data stalls per kI at large sizes."""
        hyper = cells["hyper", "big"].stalls_per_kilo_instruction.llcd
        for system in ("shore-mt", "dbms-d", "voltdb", "dbms-m"):
            other = cells[system, "big"].stalls_per_kilo_instruction.llcd
            assert hyper > 3 * other, system

    def test_dbms_d_highest_instruction_stalls(self, cells):
        values = {
            system: cells[system, "big"].stalls_per_kilo_instruction.instruction_total
            for system in ("shore-mt", "dbms-d", "voltdb", "hyper", "dbms-m")
        }
        assert values["dbms-d"] == max(values.values())

    def test_shore_mt_instruction_stalls_below_dbms_d(self, cells):
        """Section 4.1.2: no SQL layers in Shore-MT."""
        shore = cells["shore-mt", "big"].stalls_per_kilo_instruction.instruction_total
        dbmsd = cells["dbms-d", "big"].stalls_per_kilo_instruction.instruction_total
        assert shore < 0.75 * dbmsd


class TestPerTransaction:
    def test_shore_mt_highest_llc_data_stalls_per_txn(self, cells):
        """Figure 3: the non-cache-conscious index."""
        shore = cells["shore-mt", "big"].stalls_per_transaction.llcd
        for system in ("dbms-d", "voltdb", "hyper", "dbms-m"):
            assert shore > cells[system, "big"].stalls_per_transaction.llcd, system

    def test_hyper_lowest_total_stalls_per_txn(self, cells):
        hyper = cells["hyper", "big"].stalls_per_transaction.total
        for system in ("shore-mt", "dbms-d", "voltdb", "dbms-m"):
            assert hyper < cells[system, "big"].stalls_per_transaction.total, system

    def test_dbms_m_l1i_above_other_in_memory(self, cells):
        """Figure 3: DBMS M's legacy code."""
        dbmsm = cells["dbms-m", "big"].stalls_per_transaction.l1i
        assert dbmsm > cells["voltdb", "big"].stalls_per_transaction.l1i
        assert dbmsm > cells["hyper", "big"].stalls_per_transaction.l1i


class TestWorkPerTransaction:
    def test_instruction_stalls_per_ki_decrease_with_rows(self):
        """Figure 5, all systems."""
        for system in ("shore-mt", "voltdb", "dbms-m"):
            one = run_cell(system, micro(rows=1), quick=True)
            hundred = run_cell(system, micro(rows=100), quick=True)
            assert (
                hundred.stalls_per_kilo_instruction.instruction_total
                < one.stalls_per_kilo_instruction.instruction_total
            ), system

    def test_data_stalls_per_txn_grow_with_rows(self):
        """Figure 6: LLC-D roughly linear in rows."""
        for system in ("shore-mt", "hyper"):
            one = run_cell(system, micro(rows=1), quick=True)
            hundred = run_cell(system, micro(rows=100), quick=True)
            ratio = (
                hundred.stalls_per_transaction.llcd / one.stalls_per_transaction.llcd
            )
            assert 30 < ratio < 300, (system, ratio)

    def test_in_memory_ipc_decreases_with_rows(self):
        """Figure 4: VoltDB and HyPer decline all the way to 100 rows;
        DBMS M's decline shows while its legacy per-statement segments
        still miss (by 10 rows) — at 100 rows its compiled/hash marginal
        path recovers, a documented deviation (EXPERIMENTS.md)."""
        for system in ("voltdb", "hyper"):
            one = run_cell(system, micro(rows=1), quick=True)
            hundred = run_cell(system, micro(rows=100), quick=True)
            assert hundred.ipc < one.ipc + 0.02, system
        one = run_cell("dbms-m", micro(rows=1), quick=True)
        ten = run_cell("dbms-m", micro(rows=10), quick=True)
        assert ten.ipc < one.ipc + 0.02


class TestCompilationAndIndexes:
    def test_compilation_cuts_instruction_stalls(self):
        """Figure 13: ~50% reduction (we accept 25%+)."""
        on = run_cell(
            "dbms-m", micro(rows=10), quick=True,
            engine_config=EngineConfig(index_kind="hash", compilation=True,
                                       materialize_threshold=0),
        )
        off = run_cell(
            "dbms-m", micro(rows=10), quick=True,
            engine_config=EngineConfig(index_kind="hash", compilation=False,
                                       materialize_threshold=0),
        )
        on_i = on.stalls_per_kilo_instruction.instruction_total
        off_i = off.stalls_per_kilo_instruction.instruction_total
        assert on_i < 0.75 * off_i

    def test_btree_data_stalls_exceed_hash(self):
        """Figure 13: 2-4x more LLC data stalls for the B-tree."""
        hash_cell = run_cell(
            "dbms-m", micro(rows=10), quick=True,
            engine_config=EngineConfig(index_kind="hash", materialize_threshold=0),
        )
        btree_cell = run_cell(
            "dbms-m", micro(rows=10), quick=True,
            engine_config=EngineConfig(index_kind="cc_btree", materialize_threshold=0),
        )
        ratio = (
            btree_cell.stalls_per_kilo_instruction.llcd
            / hash_cell.stalls_per_kilo_instruction.llcd
        )
        assert 1.5 < ratio < 5.0, ratio


class TestTPCB:
    def test_tpcb_ipc_above_micro_for_hyper(self):
        """Figures 1 vs 8: TPC-B's data locality rescues HyPer."""
        micro_cell = run_cell("hyper", micro(), quick=True)
        tpcb_cell = run_cell(
            "hyper", lambda: TPCB(db_bytes=TPC_DB_BYTES), quick=True,
            engine_config=engine_config_for("hyper", "tpcb"),
        )
        assert tpcb_cell.ipc > 1.5 * micro_cell.ipc
