"""Key-distribution generator tests."""

import random
from collections import Counter

import pytest

from repro.workloads.keys import (
    distinct_keys,
    nurand,
    nurand_customer,
    nurand_item,
    uniform_key,
    zipf_key,
)


class TestUniform:
    def test_in_range(self):
        rng = random.Random(0)
        assert all(0 <= uniform_key(rng, 100) < 100 for _ in range(1000))

    def test_covers_domain(self):
        rng = random.Random(1)
        seen = {uniform_key(rng, 8) for _ in range(500)}
        assert seen == set(range(8))


class TestNURand:
    def test_in_range(self):
        rng = random.Random(2)
        for _ in range(2000):
            assert 1 <= nurand(rng, 255, 1, 3000) <= 3000

    def test_customer_and_item_zero_based(self):
        rng = random.Random(3)
        assert all(0 <= nurand_customer(rng, 3000) < 3000 for _ in range(1000))
        assert all(0 <= nurand_item(rng, 100_000) < 100_000 for _ in range(1000))

    def test_skew_exists(self):
        """NURand is non-uniform: some values are far more popular."""
        rng = random.Random(4)
        counts = Counter(nurand_customer(rng, 3000) for _ in range(30_000))
        top = counts.most_common(1)[0][1]
        assert top > 3 * (30_000 / 3000)


class TestZipf:
    def test_in_range(self):
        rng = random.Random(5)
        assert all(0 <= zipf_key(rng, 10_000, 0.8) < 10_000 for _ in range(2000))

    def test_more_theta_more_skew(self):
        rng = random.Random(6)
        def head_mass(theta):
            hits = sum(1 for _ in range(5000) if zipf_key(rng, 100_000, theta) < 10_000)
            return hits / 5000
        assert head_mass(0.95) > head_mass(0.1) + 0.1

    def test_small_domain_falls_back_to_uniform(self):
        rng = random.Random(7)
        assert 0 <= zipf_key(rng, 10, 0.9) < 10

    def test_theta_validated(self):
        with pytest.raises(ValueError):
            zipf_key(random.Random(0), 100, 1.0)


class TestDistinct:
    def test_distinctness_and_range(self):
        rng = random.Random(8)
        keys = distinct_keys(rng, 10_000, 100)
        assert len(keys) == len(set(keys)) == 100
        assert all(0 <= k < 10_000 for k in keys)

    def test_dense_request_uses_sampling(self):
        rng = random.Random(9)
        keys = distinct_keys(rng, 10, 10)
        assert sorted(keys) == list(range(10))

    def test_impossible_request(self):
        with pytest.raises(ValueError):
            distinct_keys(random.Random(0), 5, 6)
