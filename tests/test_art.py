"""Adaptive Radix Tree tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.trace import AccessTrace, DLOAD_SERIAL
from repro.storage.address_space import DataAddressSpace
from repro.storage.art import (
    AdaptiveRadixTree,
    NODE4,
    NODE16,
    NODE48,
    NODE256,
    _Inner,
    key_to_bytes,
)


def make() -> AdaptiveRadixTree:
    return AdaptiveRadixTree("a", DataAddressSpace())


class TestKeyEncoding:
    def test_int_big_endian(self):
        assert key_to_bytes(1, 8) == b"\x00" * 7 + b"\x01"

    def test_order_preserved(self):
        assert key_to_bytes(100) < key_to_bytes(200)
        assert key_to_bytes(255) < key_to_bytes(256)

    def test_bytes_and_str_pass_through(self):
        assert key_to_bytes(b"ab") == b"ab"
        assert key_to_bytes("ab") == b"ab"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            key_to_bytes(-1)


class TestCorrectness:
    def test_roundtrip(self):
        art = make()
        for k in range(5000):
            art.insert(k, k * 2)
        for k in (0, 1234, 4999):
            assert art.probe(k) == k * 2
        assert art.probe(5000) is None
        assert len(art) == 5000

    def test_overwrite(self):
        art = make()
        art.insert(7, "a")
        art.insert(7, "b")
        assert art.probe(7) == "b"
        assert len(art) == 1

    def test_sparse_keys(self):
        art = make()
        keys = [0, 1, 255, 256, 65536, 2**40, 2**56 + 5]
        for k in keys:
            art.insert(k, k)
        for k in keys:
            assert art.probe(k) == k
        assert art.probe(2) is None

    def test_delete(self):
        art = make()
        for k in range(100):
            art.insert(k, k)
        assert art.delete(42)
        assert art.probe(42) is None
        assert not art.delete(42)
        assert len(art) == 99
        assert art.probe(41) == 41 and art.probe(43) == 43

    def test_delete_root_leaf(self):
        art = make()
        art.insert(5, 5)
        assert art.delete(5)
        assert art.probe(5) is None
        assert len(art) == 0

    def test_items_in_key_order(self):
        art = make()
        import random

        keys = random.Random(3).sample(range(100000), 500)
        for k in keys:
            art.insert(k, k)
        got = [kb for kb, _ in art.items()]
        assert got == sorted(got)

    def test_range_scan(self):
        art = make()
        for k in range(0, 100, 2):
            art.insert(k, k)
        result = art.range_scan(11, 3)
        assert [v for _, v in result] == [12, 14, 16]


class TestAdaptiveNodes:
    def _root_kind(self, art):
        assert isinstance(art._root, _Inner)
        return art._root.kind

    def test_node_growth_sequence(self):
        # Keys 0..n share 7 prefix bytes -> one inner node fanning out.
        art = make()
        for n, kind in [(4, NODE4), (16, NODE16), (48, NODE48), (255, NODE256)]:
            while len(art) < n:
                art.insert(len(art), 1)
            assert self._root_kind(art) == kind

    def test_path_compression_keeps_tree_shallow(self):
        art = make()
        for k in range(256):
            art.insert(k, k)
        # 8-byte keys but only the last byte differs: root + leaves.
        assert art.height() == 2

    def test_dense_keys_height_logarithmic(self):
        art = make()
        for k in range(70000):
            art.insert(k, k)
        assert art.height() <= 4  # ~log256(70000) inner levels + leaf


class TestTraceEmission:
    def test_probe_emits_one_serial_line_per_node(self):
        art = make()
        for k in range(70000):
            art.insert(k, k)
        t = AccessTrace()
        art.probe(54321, t)
        assert all(k == DLOAD_SERIAL for k in t.kinds)
        assert len(t) <= art.height() + 1

    def test_probe_path_matches_height(self):
        art = make()
        for k in range(70000):
            art.insert(k, k)
        assert len(art.probe_path(500)) == art.height()


@settings(max_examples=40, deadline=None)
@given(keys=st.lists(st.integers(min_value=0, max_value=2**60), min_size=1, max_size=300))
def test_art_matches_dict(keys):
    art = AdaptiveRadixTree("p", DataAddressSpace())
    reference = {}
    for i, k in enumerate(keys):
        art.insert(k, i)
        reference[k] = i
    assert len(art) == len(reference)
    for k in reference:
        assert art.probe(k) == reference[k]
    assert art.probe(2**61) is None


@settings(max_examples=25, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=100_000), min_size=5, max_size=150, unique=True)
)
def test_art_delete_matches_dict(keys):
    art = AdaptiveRadixTree("p", DataAddressSpace())
    for k in keys:
        art.insert(k, k)
    victims = keys[::2]
    for k in victims:
        assert art.delete(k)
    for k in keys:
        expected = None if k in victims else k
        assert art.probe(k) == expected
