"""Fault-injection subsystem tests.

Covers the injector's scheduling semantics, the hardened WAL (checksums,
crash images, size validation), recovery's torn-tail truncation /
checkpoint seeding / undo pass, transaction-outcome accounting, and the
runner's commits-only transaction counting.
"""

import random

import pytest

from repro.core.trace import AccessTrace
from repro.engines.base import (
    AbortReason,
    BACKOFF_BASE_CYCLES,
    COMMITTED,
    RETRIES_EXHAUSTED,
    TransactionAborted,
    USER_ABORTED,
    UserAbort,
)
from repro.engines.common import TableSpec
from repro.engines.config import EngineConfig
from repro.engines.registry import make_engine
from repro.faults import (
    ABORT,
    COORDINATOR_CRASH,
    CRASH,
    FaultInjector,
    FaultSpec,
    InjectedAbort,
    NET_DROP,
    NET_SEND,
    PARTICIPANT_CRASH,
    PREPARE_STALL,
    SimulatedCrash,
    TPC_COORDINATOR,
    TPC_PARTICIPANT,
    TPC_PREPARE,
    TXN_BODY,
    WAL_BEFORE_APPEND,
    WAL_GROUP_COMMIT,
)
from repro.storage.record import microbench_schema
from repro.storage.recovery import (
    CHECKPOINT,
    replay,
    restore_engine,
    take_checkpoint,
    valid_prefix,
    verify_against_engine,
)
from repro.storage.wal import LogImage, WriteAheadLog, torn_copy

N_ROWS = 500


def shore_with_log(system="shore-mt", **config):
    engine = make_engine(system, EngineConfig(materialize_threshold=0, **config))
    log = engine.recovery_log()
    log.retain_all = True
    engine.create_table(TableSpec("t", microbench_schema(), N_ROWS, grows=True))
    return engine


class TestFaultSpec:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown injection point"):
            FaultSpec("wal.nonsense", at_hit=1)

    def test_abort_only_at_rollbackable_points(self):
        with pytest.raises(ValueError, match="abort faults"):
            FaultSpec(WAL_BEFORE_APPEND, kind=ABORT, at_hit=1)
        FaultSpec(TXN_BODY, kind=ABORT, at_hit=1)  # fine

    def test_needs_trigger(self):
        with pytest.raises(ValueError, match="at_hit"):
            FaultSpec(TXN_BODY)
        with pytest.raises(ValueError, match="1-based"):
            FaultSpec(TXN_BODY, at_hit=0)

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(TXN_BODY, kind="explode", at_hit=1)


class TestInjector:
    def test_at_hit_fires_exactly_there(self):
        inj = FaultInjector([FaultSpec(TXN_BODY, at_hit=3)])
        inj.fire(TXN_BODY)
        inj.fire(TXN_BODY)
        with pytest.raises(SimulatedCrash) as exc:
            inj.fire(TXN_BODY)
        assert exc.value.point == TXN_BODY
        assert exc.value.hit == 3

    def test_crash_disarms(self):
        inj = FaultInjector([FaultSpec(TXN_BODY, at_hit=1)])
        with pytest.raises(SimulatedCrash):
            inj.fire(TXN_BODY)
        assert inj.crashed
        inj.fire(TXN_BODY)  # dead process: silent
        assert len(inj.fired) == 1

    def test_probability_deterministic_per_seed(self):
        def pattern(seed):
            inj = FaultInjector(
                [FaultSpec(TXN_BODY, kind=ABORT, probability=0.3, times=-1)], seed=seed
            )
            hits = []
            for i in range(50):
                try:
                    inj.fire(TXN_BODY)
                except InjectedAbort:
                    hits.append(i)
            return hits

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)

    def test_times_bounds_firing(self):
        inj = FaultInjector([FaultSpec(TXN_BODY, kind=ABORT, probability=1.0, times=2)])
        for _ in range(2):
            with pytest.raises(InjectedAbort):
                inj.fire(TXN_BODY)
        inj.fire(TXN_BODY)  # budget spent
        assert len(inj.fired) == 2

    def test_suspend_aborts_blocks_aborts_not_crashes(self):
        inj = FaultInjector(
            [
                FaultSpec(TXN_BODY, kind=ABORT, probability=1.0, times=-1),
                FaultSpec(TXN_BODY, at_hit=2),
            ]
        )
        with inj.suspend_aborts():
            inj.fire(TXN_BODY)  # abort suppressed
            with pytest.raises(SimulatedCrash):
                inj.fire(TXN_BODY)  # crash still fires

    def test_injected_abort_is_retryable_abort(self):
        exc = InjectedAbort(TXN_BODY, 1)
        assert isinstance(exc, TransactionAborted)
        assert exc.reason == AbortReason.INJECTED


class TestPerKindStreams:
    """Each fault kind draws from its own (seed, kind) child stream."""

    def test_streams_are_seeded_per_kind(self):
        inj, twin, other = (FaultInjector([], seed=5) for _ in range(3))
        assert inj.stream(CRASH) is inj.stream(CRASH)  # cached
        a = [inj.stream(ABORT).random() for _ in range(5)]
        b = [twin.stream(ABORT).random() for _ in range(5)]
        assert a == b  # same (seed, kind) -> same sequence
        assert a != [other.stream(CRASH).random() for _ in range(5)]  # kinds isolated

    def test_network_spec_does_not_shift_abort_schedule(self):
        """Adding network faults must not disturb existing kinds' draws —
        the property that keeps PR-1-era schedules stable."""

        def abort_hits(schedule):
            inj = FaultInjector(schedule, seed=11)
            hits = []
            for i in range(80):
                try:
                    inj.fire(TXN_BODY)
                except InjectedAbort:
                    hits.append(i)
                inj.network_fault(NET_SEND)
            return hits

        base = [FaultSpec(TXN_BODY, kind=ABORT, probability=0.25, times=-1)]
        with_net = base + [FaultSpec(NET_SEND, kind=NET_DROP, probability=0.5, times=-1)]
        assert abort_hits(base) == abort_hits(with_net)

    def test_schedule_digest_pinned(self):
        """Regression pin: this exact seed/schedule produced this fired
        sequence when per-kind streams landed.  A change to stream
        seeding or draw order will break this test — deliberately."""
        inj = FaultInjector(
            [
                FaultSpec(TXN_BODY, kind=ABORT, probability=0.2, times=-1),
                FaultSpec(WAL_GROUP_COMMIT, at_hit=3),
            ],
            seed=42,
        )
        for _ in range(60):
            try:
                inj.fire(TXN_BODY)
            except InjectedAbort:
                pass
        for _ in range(3):
            try:
                inj.fire(WAL_GROUP_COMMIT)
            except SimulatedCrash:
                pass
        assert inj.schedule_digest() == 2669772192

    def test_2pc_kinds_present_but_idle_keep_digest_pinned(self):
        """The 2PC fault kinds ride their own child streams: scheduling
        them (without their points ever being hit) must leave the
        PR-1-era pinned digest byte-identical."""
        inj = FaultInjector(
            [
                FaultSpec(TXN_BODY, kind=ABORT, probability=0.2, times=-1),
                FaultSpec(WAL_GROUP_COMMIT, at_hit=3),
                FaultSpec(TPC_COORDINATOR, kind=COORDINATOR_CRASH, at_hit=99),
                FaultSpec(TPC_PARTICIPANT, kind=PARTICIPANT_CRASH, at_hit=99),
                FaultSpec(TPC_PREPARE, kind=PREPARE_STALL, at_hit=99),
            ],
            seed=42,
        )
        for _ in range(60):
            try:
                inj.fire(TXN_BODY)
            except InjectedAbort:
                pass
        for _ in range(3):
            try:
                inj.fire(WAL_GROUP_COMMIT)
            except SimulatedCrash:
                pass
        assert inj.schedule_digest() == 2669772192

    def test_2pc_kinds_appear_in_digest_when_fired(self):
        """Once a 2PC fault actually fires it must be part of the digest."""
        base = FaultInjector([FaultSpec(TXN_BODY, kind=ABORT, at_hit=1)])
        with pytest.raises(InjectedAbort):
            base.fire(TXN_BODY)
        twopc = FaultInjector(
            [
                FaultSpec(TXN_BODY, kind=ABORT, at_hit=1),
                FaultSpec(TPC_COORDINATOR, kind=COORDINATOR_CRASH, at_hit=1),
            ]
        )
        with pytest.raises(InjectedAbort):
            twopc.fire(TXN_BODY)
        with pytest.raises(SimulatedCrash):
            twopc.fire(TPC_COORDINATOR)
        assert twopc.schedule_digest() != base.schedule_digest()

    def test_network_fault_returns_kind_without_raising(self):
        inj = FaultInjector([FaultSpec(NET_SEND, kind=NET_DROP, at_hit=2)])
        assert inj.network_fault(NET_SEND) is None
        assert inj.network_fault(NET_SEND) == NET_DROP
        assert inj.network_fault(NET_SEND) is None  # budget spent
        assert [(f.point, f.hit, f.kind) for f in inj.fired] == [(NET_SEND, 2, NET_DROP)]


class TestWALHardening:
    def test_oversize_record_rejected(self, space):
        log = WriteAheadLog("w", space, buffer_bytes=1024)
        with pytest.raises(ValueError, match="cannot fit"):
            log.append(1, "update", 2048)

    def test_negative_payload_rejected(self, space):
        log = WriteAheadLog("w", space)
        with pytest.raises(ValueError, match="negative"):
            log.append(1, "update", -1)

    def test_records_checksummed(self, space):
        log = WriteAheadLog("w", space)
        record = log.append(1, "update", 32, payload=("t", 0, (1, 2)))
        assert record.intact
        assert not torn_copy(record).intact

    def test_crash_image_requires_retained_log(self, space):
        log = WriteAheadLog("w", space)
        with pytest.raises(ValueError, match="retain_all"):
            log.crash_image()

    def test_crash_image_drops_unflushed_tail(self, space):
        log = WriteAheadLog("w", space, retain_all=True, group_commit_size=100)
        log.append(1, "update", 8)
        log.force()
        for _ in range(5):
            log.append(2, "update", 8)
        image = log.crash_image()  # rng=None: whole tail lost
        assert [r.lsn for r in image.records] == [1]
        assert image.lost_records == 5

    def test_crash_image_deterministic(self, space):
        log = WriteAheadLog("w", space, retain_all=True, group_commit_size=100)
        for _ in range(10):
            log.append(1, "update", 8)
        a = log.crash_image(random.Random(3))
        b = log.crash_image(random.Random(3))
        assert [r.lsn for r in a.records] == [r.lsn for r in b.records]
        assert a.torn_tail == b.torn_tail

    def test_group_commit_fault_point_loses_batch(self, space):
        log = WriteAheadLog("w", space, retain_all=True, group_commit_size=2)
        log.injector = FaultInjector([FaultSpec(WAL_GROUP_COMMIT, at_hit=1)])
        log.append(1, "commit", 8)
        with pytest.raises(SimulatedCrash):
            log.append(2, "commit", 8)
        assert log.flushed_lsn == 0  # the batch never became durable


class TestTornTail:
    def test_valid_prefix_truncates_at_torn_record(self, space):
        log = WriteAheadLog("w", space, retain_all=True)
        for _ in range(4):
            log.append(1, "update", 8)
        records = list(log.records)
        records[2] = torn_copy(records[2])
        prefix, dropped = valid_prefix(records)
        assert [r.lsn for r in prefix] == [1, 2]
        assert dropped == 2

    def test_replay_ignores_torn_suffix(self):
        engine = shore_with_log()
        engine.execute("p", lambda txn: txn.update("t", 5, "value", 111))
        engine.execute("p", lambda txn: txn.update("t", 5, "value", 222))
        log = engine.recovery_log()
        # Tear the second transaction's first record: its whole suffix
        # (including the commit) must vanish from replay.
        second_txn_first = next(
            i for i, r in enumerate(log.records) if r.payload and r.payload[2][1] == 222
        )
        log.records[second_txn_first] = torn_copy(log.records[second_txn_first])
        state = replay(log)
        assert state.truncated_records > 0
        assert state.row("t", 5)[1] == 111


class TestUndoPass:
    def test_crash_mid_rollback_completes_via_clrs(self):
        engine = shore_with_log()
        engine.execute("p", lambda txn: txn.update("t", 5, "value", 111))
        txn = engine.begin()
        txn.update("t", 5, "value", 222)
        txn.update("t", 6, "value", 333)
        # Crash on the second CLR append: the rollback dies half done.
        engine.attach_injector(FaultInjector([FaultSpec(WAL_BEFORE_APPEND, at_hit=2)]))
        with pytest.raises(SimulatedCrash):
            txn.abort()
        state = replay(engine.recovery_log())
        assert state.undo_applied >= 1
        # Undo entries are compensated in reverse: row 6's CLR landed
        # before the crash and restores its pre-transaction image.
        assert state.row("t", 6) == engine.table("t").heap.schema.default_row(6)
        # Row 5's committed image comes from redo, not the lost CLR.
        assert state.row("t", 5)[1] == 111


class TestCheckpoints:
    def _busy_engine(self):
        engine = shore_with_log()
        for i in range(10):
            engine.execute("p", lambda txn, v=i: txn.update("t", v, "value", v + 100))
        engine.execute("p", lambda txn: txn.insert("t", (9000, 1), key=9000))
        engine.execute("p", lambda txn: txn.delete("t", 3))
        return engine

    def test_checkpoint_replay_equals_full_replay(self):
        engine = self._busy_engine()
        log = engine.recovery_log()
        take_checkpoint(log)
        engine.execute("p", lambda txn: txn.update("t", 1, "value", 999))
        log.force()
        from_checkpoint = replay(log)
        assert from_checkpoint.checkpoint_lsn is not None
        full = replay(
            LogImage(records=[r for r in log.records if r.kind != CHECKPOINT])
        )
        assert full.checkpoint_lsn is None
        assert from_checkpoint.digest() == full.digest()

    def test_truncated_log_still_recovers_everything(self):
        engine = self._busy_engine()
        log = engine.recovery_log()
        reference = replay(LogImage(records=list(log.records)))
        take_checkpoint(log, truncate=True)
        assert log.records[0].kind == CHECKPOINT  # history reclaimed
        state = replay(log)
        assert state.digest() == reference.digest()
        assert verify_against_engine(state, engine) == []


class TestDeleteReinsertAcrossCrash:
    def test_reinserted_key_survives_recovery(self):
        engine = shore_with_log()
        engine.execute("p", lambda txn: txn.delete("t", 7))
        engine.recovery_log().force()
        state = replay(engine.recovery_log().crash_image())
        fresh = shore_with_log()
        restore_engine(state, fresh)
        assert fresh.table("t").probe(7, None, 0) is None
        # The restarted engine re-inserts the same key with new values.
        fresh.execute("p", lambda txn: txn.insert("t", (7, 4242), key=7))
        fresh.recovery_log().force()
        state2 = replay(fresh.recovery_log())
        assert verify_against_engine(state2, fresh) == []
        row_id = fresh.table("t").probe(7, None, 0)
        assert row_id is not None
        assert fresh.committed_row("t", row_id)[1] == 4242


class TestOutcomeAccounting:
    def test_commit_outcome(self):
        engine = shore_with_log()
        engine.execute("p", lambda txn: txn.update("t", 1, "value", 1))
        assert engine.last_outcome == COMMITTED
        assert engine.stats.commits_by_procedure == {"p": 1}

    def test_user_abort_outcome(self):
        engine = shore_with_log()

        def doomed(txn):
            raise UserAbort("no")

        engine.execute("p", doomed)
        assert engine.last_outcome == USER_ABORTED
        assert engine.stats.user_aborts == 1
        assert engine.stats.aborts_by_reason == {AbortReason.USER: 1}

    def test_retries_exhausted_with_backoff_accounting(self):
        engine = shore_with_log(max_retries=3)

        def conflicted(txn):
            raise TransactionAborted("fake conflict", reason=AbortReason.LOCK_CONFLICT)

        engine.execute("p", conflicted)
        assert engine.last_outcome == RETRIES_EXHAUSTED
        stats = engine.stats
        assert stats.retries_exhausted == 1
        assert stats.aborts_by_reason == {AbortReason.LOCK_CONFLICT: 4}
        # Exponential: 1x, 2x, 4x the base (the exhausted attempt has
        # no retry after it).
        assert stats.backoff_cycles == pytest.approx(BACKOFF_BASE_CYCLES * 7)
        assert stats.retries_by_procedure == {"p": 3}

    def test_stats_merge_accumulates(self):
        a = shore_with_log()
        b = shore_with_log()
        a.execute("p", lambda txn: txn.update("t", 1, "value", 1))
        b.execute("q", lambda txn: txn.update("t", 2, "value", 2))
        a.stats.merge(b.stats)
        assert a.stats.commits == 2
        assert a.stats.commits_by_procedure == {"p": 1, "q": 1}


class TestRunnerCounting:
    def test_run_trace_transactions_parameter(self, tiny_machine):
        trace = AccessTrace()
        assert tiny_machine.run_trace(trace).transactions == 1
        assert tiny_machine.run_trace(trace, transactions=0).transactions == 0

    def test_measured_txns_counts_only_commits(self):
        from repro.bench.runner import ExperimentRunner, RunSpec
        from repro.workloads.base import Workload

        class Flaky(Workload):
            name = "flaky"

            def table_specs(self):
                return [TableSpec("t", microbench_schema(), 1000)]

            def next_transaction(self, rng, *, partition=None, n_partitions=1):
                key = rng.randrange(1000)
                doomed = rng.random() < 0.5

                def body(txn):
                    txn.update("t", key, "value", 1)
                    if doomed:
                        raise UserAbort("flaky")

                return "flaky", body

        spec = RunSpec(
            system="hyper",
            measure_events=4000,
            warmup_events=1000,
            repetitions=1,
        )
        result = ExperimentRunner(spec, Flaky).run()
        # ~half the attempts abort; the commit count must still reach
        # the floor and every counted transaction must be a commit.
        assert result.measured_txns >= 24
        assert result.counters.transactions == result.measured_txns

    def test_run_phase_raises_when_workload_cannot_commit(self):
        from repro.bench.runner import ExperimentRunner, RunSpec
        from repro.workloads.base import Workload

        class Hopeless(Workload):
            name = "hopeless"

            def table_specs(self):
                return [TableSpec("t", microbench_schema(), 1000)]

            def next_transaction(self, rng, *, partition=None, n_partitions=1):
                def body(txn):
                    raise UserAbort("always")

                return "hopeless", body

        spec = RunSpec(system="hyper", measure_events=10, warmup_events=10, repetitions=1)
        with pytest.raises(RuntimeError, match="cannot make progress"):
            ExperimentRunner(spec, Hopeless).run()
