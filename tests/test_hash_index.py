"""Hash-index tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.trace import AccessTrace, DLOAD_SERIAL
from repro.storage.address_space import DataAddressSpace
from repro.storage.hash_index import HashIndex, fibonacci_hash


def make(expected=1000, lf=0.75) -> HashIndex:
    return HashIndex("h", DataAddressSpace(), expected_keys=expected, load_factor=lf)


class TestHashing:
    def test_fibonacci_hash_in_range(self):
        for k in range(1000):
            assert 0 <= fibonacci_hash(k, 97) < 97

    def test_spread(self):
        buckets = {fibonacci_hash(k, 64) for k in range(1000)}
        assert len(buckets) == 64


class TestCorrectness:
    def test_roundtrip(self):
        h = make()
        for k in range(2000):
            h.insert(k, -k)
        assert h.probe(1500) == -1500
        assert h.probe(2001) is None
        assert len(h) == 2000

    def test_overwrite(self):
        h = make()
        h.insert("k", 1)
        h.insert("k", 2)
        assert h.probe("k") == 2
        assert len(h) == 1

    def test_delete_head_and_middle_of_chain(self):
        h = HashIndex("h", DataAddressSpace(), expected_keys=4)  # force chains
        for k in range(200):
            h.insert(k, k)
        for k in (0, 100, 199):
            assert h.delete(k)
            assert h.probe(k) is None
        assert len(h) == 197
        assert not h.delete(0)

    def test_mixed_key_types(self):
        h = make()
        h.insert("alpha", 1)
        h.insert(42, 2)
        assert h.probe("alpha") == 1
        assert h.probe(42) == 2

    def test_range_scan_emulation(self):
        h = make()
        for k in range(100):
            h.insert(k, k * 10)
        assert h.range_scan(5, 3) == [(5, 50), (6, 60), (7, 70)]

    def test_items(self):
        h = make()
        for k in range(50):
            h.insert(k, k)
        assert sorted(h.items()) == [(k, k) for k in range(50)]

    def test_validation(self):
        with pytest.raises(ValueError):
            HashIndex("h", DataAddressSpace(), expected_keys=0)
        with pytest.raises(ValueError):
            make(lf=9.0)


class TestChainsAndEmission:
    def test_probe_emits_bucket_then_chain(self):
        h = make()
        h.insert(1, 1)
        t = AccessTrace()
        h.probe(1, t)
        assert len(t) >= 2  # bucket slot + entry
        assert all(k == DLOAD_SERIAL for k in t.kinds)

    def test_average_chain_short_at_design_load(self):
        h = make(expected=10_000)
        for k in range(10_000):
            h.insert(k, k)
        mean_chain = sum(h.chain_length(k) for k in range(0, 10_000, 97)) / len(
            range(0, 10_000, 97)
        )
        assert mean_chain < 1.6

    def test_fewer_lines_than_a_deep_tree(self):
        """The hash-vs-B-tree gap of Figure 13."""
        from repro.storage.btree import BPlusTree

        h = make(expected=20_000)
        tree = BPlusTree("b", DataAddressSpace(), page_bytes=8192)
        for k in range(20_000):
            h.insert(k, k)
            tree.insert(k, k)
        th, tt = AccessTrace(), AccessTrace()
        h.probe(777, th)
        tree.probe(777, tt)
        assert len(th) < len(tt)


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["put", "del"]), st.integers(min_value=0, max_value=500)),
        max_size=300,
    )
)
def test_hash_matches_dict(ops):
    h = HashIndex("p", DataAddressSpace(), expected_keys=64)
    reference: dict[int, int] = {}
    for i, (op, k) in enumerate(ops):
        if op == "put":
            h.insert(k, i)
            reference[k] = i
        else:
            assert h.delete(k) == (k in reference)
            reference.pop(k, None)
    assert len(h) == len(reference)
    for k in reference:
        assert h.probe(k) == reference[k]
