"""TPC-C workload tests."""

import random
from collections import Counter

import pytest

from repro.engines.config import EngineConfig
from repro.engines.registry import make_engine
from repro.workloads.tpcc import (
    CUSTOMERS_PER_DISTRICT,
    DISTRICTS_PER_WAREHOUSE,
    INITIAL_ORDERS_PER_DISTRICT,
    ITEMS,
    MIX,
    ORDER_CAP,
    TPCC,
    order_line_count,
)


@pytest.fixture
def wl() -> TPCC:
    return TPCC(warehouses=4)


@pytest.fixture
def engine(wl):
    engine = make_engine("dbms-m", EngineConfig(index_kind="cc_btree", materialize_threshold=0))
    wl.setup(engine)
    return engine


class TestSchema:
    def test_nine_tables(self, wl):
        assert len(wl.table_specs()) == 9

    def test_cardinalities(self, wl):
        specs = {s.name: s for s in wl.table_specs()}
        assert specs["warehouse"].n_rows == 4
        assert specs["district"].n_rows == 40
        assert specs["customer"].n_rows == 40 * CUSTOMERS_PER_DISTRICT
        assert specs["stock"].n_rows == 4 * ITEMS
        assert specs["item"].replicated

    def test_warehouses_scale_with_db_bytes(self):
        assert TPCC(db_bytes=100 << 30).n_warehouses == 1024

    def test_mix_sums_to_one(self):
        assert sum(p for _, p in MIX) == pytest.approx(1.0)
        read_only = sum(p for name, p in MIX if name in ("order_status", "stock_level"))
        assert read_only == pytest.approx(0.08)  # "2 of which... form 8%"


class TestKeyEncoding:
    def test_keys_dense_and_disjoint_across_districts(self, wl):
        d0 = wl.order_key(0, ORDER_CAP - 1)
        d1 = wl.order_key(1, 0)
        assert d1 == d0 + 1

    def test_order_line_nesting(self, wl):
        ok = wl.order_key(3, 10)
        assert wl.order_line_key(ok, 0) == ok * 15
        assert wl.order_line_key(ok, 14) == ok * 15 + 14

    def test_order_line_count_range(self):
        for seed in range(50):
            assert 5 <= order_line_count((0, 0, seed)) <= 15


class TestMix:
    def test_distribution_matches_deck(self, wl):
        rng = random.Random(0)
        counts = Counter(wl.next_transaction(rng)[0] for _ in range(4000))
        assert counts["new_order"] / 4000 == pytest.approx(0.45, abs=0.03)
        assert counts["payment"] / 4000 == pytest.approx(0.43, abs=0.03)
        for kind in ("order_status", "delivery", "stock_level"):
            assert counts[kind] / 4000 == pytest.approx(0.04, abs=0.015)


class TestTransactions:
    def run_kind(self, wl, engine, kind, rng, max_tries=400):
        for _ in range(max_tries):
            got, body = wl.next_transaction(rng)
            if got == kind:
                engine.execute(got, body)
                return True
        return False

    def test_new_order_inserts_order_and_lines(self, wl, engine):
        rng = random.Random(1)
        orders = engine.table("orders").heap
        lines = engine.table("order_line").heap
        before_orders, before_lines = orders.n_rows, lines.n_rows
        assert self.run_kind(wl, engine, "new_order", rng)
        assert orders.n_rows == before_orders + 1
        assert lines.n_rows >= before_lines + 5

    def test_new_order_advances_next_o_id(self, wl, engine):
        rng = random.Random(2)
        before = dict(wl._next_o_id)
        assert self.run_kind(wl, engine, "new_order", rng)
        changed = {k: v for k, v in wl._next_o_id.items() if before.get(k) != v}
        assert len(changed) == 1
        assert list(changed.values())[0] >= INITIAL_ORDERS_PER_DISTRICT + 1

    def test_payment_appends_history(self, wl, engine):
        rng = random.Random(3)
        history = engine.table("history").heap
        before = history.n_rows
        assert self.run_kind(wl, engine, "payment", rng)
        assert history.n_rows == before + 1

    def test_order_status_read_only(self, wl, engine):
        rng = random.Random(4)
        heaps = {name: t.heap.materialized_rows for name, t in engine.tables.items()}
        assert self.run_kind(wl, engine, "order_status", rng)
        after = {name: t.heap.materialized_rows for name, t in engine.tables.items()}
        assert heaps == after  # nothing written

    def test_stock_level_read_only(self, wl, engine):
        rng = random.Random(5)
        heaps = {name: t.heap.materialized_rows for name, t in engine.tables.items()}
        assert self.run_kind(wl, engine, "stock_level", rng)
        after = {name: t.heap.materialized_rows for name, t in engine.tables.items()}
        assert heaps == after

    def test_delivery_consumes_new_orders(self, wl, engine):
        rng = random.Random(6)
        assert self.run_kind(wl, engine, "delivery", rng)
        assert wl._next_delivery  # delivery pointers advanced

    def test_every_kind_executes_on_every_engine(self, wl):
        from repro.engines.registry import ALL_SYSTEMS

        rng = random.Random(7)
        for system in ALL_SYSTEMS:
            config = EngineConfig(
                index_kind="cc_btree" if system == "dbms-m" else None,
                materialize_threshold=0,
            )
            engine = make_engine(system, config)
            wl.setup(engine)
            seen = set()
            for _ in range(150):
                kind, body = wl.next_transaction(rng)
                engine.execute(kind, body)
                seen.add(kind)
                if len(seen) == 5:
                    break
            assert engine.stats.commits > 0

    def test_partition_homing_by_warehouse(self, wl):
        rng = random.Random(8)
        for _ in range(50):
            w = wl._pick_warehouse(rng, partition=1, n_partitions=4)
            assert w == 1  # 4 warehouses over 4 partitions

    def test_one_percent_rollback(self, wl):
        engine = make_engine("hyper", EngineConfig(materialize_threshold=0))
        wl.setup(engine)
        rng = random.Random(9)
        executed = 0
        for _ in range(600):
            kind, body = wl.next_transaction(rng)
            if kind != "new_order":
                continue
            engine.execute(kind, body)
            executed += 1
        assert executed > 100
        assert 0 < engine.stats.aborts < executed * 0.06
