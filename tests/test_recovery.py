"""Log-replay recovery tests: the WAL captures exactly the committed state."""

import random

import pytest

from repro.engines.base import UserAbort
from repro.engines.common import TableSpec
from repro.engines.config import EngineConfig
from repro.engines.registry import make_engine
from repro.faults import FaultInjector, FaultSpec, SimulatedCrash, WAL_AFTER_APPEND
from repro.storage.recovery import (
    ABORTED,
    CHECKPOINT,
    COMMITTED,
    analyse,
    replay,
    restore_engine,
    take_checkpoint,
    verify_against_engine,
)
from repro.storage.record import microbench_schema
from repro.storage.wal import WriteAheadLog, torn_copy
from repro.storage.address_space import DataAddressSpace

N_ROWS = 500


def shore_with_log(system="shore-mt"):
    engine = make_engine(system, EngineConfig(materialize_threshold=0))
    engine.wal.retain_all = True
    engine.create_table(TableSpec("t", microbench_schema(), N_ROWS, grows=True))
    return engine


class TestAnalysis:
    def test_status_classification(self, space):
        log = WriteAheadLog("w", space, retain_all=True)
        log.append(1, "begin", 8)
        log.append(1, "commit", 8)
        log.append(2, "begin", 8)
        log.append(2, "abort", 8)
        log.append(3, "begin", 8)
        status = analyse(log.records)
        assert status[1] == COMMITTED
        assert status[2] == ABORTED
        assert status[3] == "in-flight"

    def test_replay_requires_retained_log(self, space):
        log = WriteAheadLog("w", space)
        with pytest.raises(ValueError):
            replay(log)


class TestReplay:
    def test_committed_update_redone(self):
        engine = shore_with_log()
        engine.execute("p", lambda txn: txn.update("t", 5, "value", 777))
        state = replay(engine.wal)
        assert state.row("t", 5)[1] == 777
        assert state.redo_applied >= 1

    def test_aborted_update_skipped(self):
        engine = shore_with_log()

        def doomed(txn):
            txn.update("t", 5, "value", 999)
            raise UserAbort("rollback")

        engine.execute("p", doomed)
        state = replay(engine.wal)
        assert state.row("t", 5) is None  # nothing committed for row 5
        assert state.skipped >= 1

    def test_last_committed_image_wins(self):
        engine = shore_with_log()
        for value in (1, 2, 3):
            engine.execute("p", lambda txn, v=value: txn.update("t", 9, "value", v))
        state = replay(engine.wal)
        assert state.row("t", 9)[1] == 3

    def test_insert_and_delete_tracked(self):
        engine = shore_with_log()
        engine.execute("p", lambda txn: txn.insert("t", (9000, 1), key=9000))
        engine.execute("p", lambda txn: txn.delete("t", 7))
        state = replay(engine.wal)
        assert state.key_present("t", 9000) is True
        assert state.key_present("t", 7) is False
        assert state.key_present("t", 8) is None  # untouched: log can't know

    def test_in_flight_transaction_skipped(self):
        engine = shore_with_log()
        txn = engine.begin()  # crash before commit
        txn.update("t", 11, "value", 123)
        state = replay(engine.wal)
        assert state.row("t", 11) is None


class TestEndToEnd:
    @pytest.mark.parametrize("system", ["shore-mt", "dbms-d"])
    def test_recovered_state_matches_engine(self, system):
        """Random committed + aborted work; log replay must agree with
        the live engine on every committed effect."""
        engine = shore_with_log(system)
        rng = random.Random(42)
        next_key = N_ROWS + 100
        for i in range(60):
            kind = rng.choice(["update", "insert", "delete", "user_abort"])
            key = rng.randrange(N_ROWS)
            if kind == "update":
                engine.execute(
                    "p", lambda txn, k=key, v=i: txn.update("t", k, "value", v)
                )
            elif kind == "insert":
                engine.execute(
                    "p", lambda txn, k=next_key, v=i: txn.insert("t", (k, v), key=k)
                )
                next_key += 1
            elif kind == "delete":
                engine.execute("p", lambda txn, k=key: txn.delete("t", k))
            else:
                def doomed(txn, k=key):
                    txn.update("t", k, "value", -1)
                    raise UserAbort("rollback")

                engine.execute("p", doomed)
        state = replay(engine.wal)
        problems = verify_against_engine(state, engine)
        assert problems == []

    def test_clr_for_committed_txn_rejected(self, space):
        log = WriteAheadLog("w", space, retain_all=True)
        log.append(1, "clr", 8, payload=("update", "t", 0, (0, 0)))
        log.append(1, "commit", 8)
        with pytest.raises(ValueError):
            replay(log)


def engine_with_log(system):
    engine = make_engine(system, EngineConfig(materialize_threshold=0))
    log = engine.recovery_log()
    log.retain_all = True
    engine.create_table(TableSpec("t", microbench_schema(), N_ROWS, grows=True))
    return engine


class TestAllEngines:
    """Every engine's recovery log round-trips through crash + restore."""

    @pytest.mark.parametrize(
        "system", ["shore-mt", "dbms-d", "voltdb", "hyper", "dbms-m"]
    )
    def test_crash_restore_roundtrip(self, system):
        engine = engine_with_log(system)
        rng = random.Random(7)
        next_key = N_ROWS + 50
        for i in range(40):
            kind = rng.choice(["update", "insert", "delete"])
            key = rng.randrange(N_ROWS)
            if kind == "update":
                engine.execute(
                    "p", lambda txn, k=key, v=i: txn.update("t", k, "value", v)
                )
            elif kind == "insert":
                engine.execute(
                    "p", lambda txn, k=next_key, v=i: txn.insert("t", (k, v), key=k)
                )
                next_key += 1
            else:
                engine.execute("p", lambda txn, k=key: txn.delete("t", k))
        log = engine.recovery_log()
        log.force()
        state = replay(log.crash_image())
        fresh = engine_with_log(system)
        restore_engine(state, fresh)
        assert verify_against_engine(state, fresh) == []
        # The recovered engine agrees with the survivor row for row.
        for (table, row_id), values in state.rows.items():
            assert fresh.committed_row(table, row_id) == values

    def test_recovered_digest_deterministic(self):
        def digest():
            engine = engine_with_log("voltdb")
            for i in range(10):
                engine.execute(
                    "p", lambda txn, v=i: txn.update("t", v, "value", v * 3)
                )
            engine.recovery_log().force()
            return replay(engine.recovery_log()).digest()

        assert digest() == digest()


class TestMidCheckpointCrash:
    """A crash landing inside a checkpoint record must not poison replay:
    the torn checkpoint is truncated away and recovery proceeds from the
    previous (intact) checkpoint."""

    def _engine_with_two_checkpoint_attempts(self):
        engine = engine_with_log("shore-mt")
        for i in range(8):
            engine.execute("p", lambda txn, v=i: txn.update("t", v, "value", v + 100))
        log = engine.recovery_log()
        first = take_checkpoint(log)
        for i in range(8, 16):
            engine.execute("p", lambda txn, v=i: txn.update("t", v, "value", v + 100))
        log.force()
        return engine, log, first

    def test_torn_checkpoint_record_falls_back_to_previous(self):
        engine, log, first = self._engine_with_two_checkpoint_attempts()
        second = take_checkpoint(log)
        # The crash tore the second checkpoint's tail mid-write.
        index = next(i for i, r in enumerate(log.records) if r.lsn == second.lsn)
        log.records[index] = torn_copy(second)
        state = replay(log)
        assert state.truncated_records >= 1  # the torn record is gone
        assert state.checkpoint_lsn == first.lsn  # fell back one checkpoint
        # Every commit before the torn record is still recovered.
        for i in range(16):
            assert state.row("t", i)[1] == i + 100
        assert verify_against_engine(state, engine) == []

    def test_crash_during_checkpoint_append_recovers_from_previous(self):
        engine, log, first = self._engine_with_two_checkpoint_attempts()
        # Die right after the checkpoint record lands in the buffer —
        # before write_checkpoint's force makes it durable.
        log.injector = FaultInjector(
            [FaultSpec(WAL_AFTER_APPEND, at_hit=1)], seed=1
        )
        with pytest.raises(SimulatedCrash):
            take_checkpoint(log)
        log.injector = None
        state = replay(log.crash_image())  # unflushed tail lost wholesale
        assert state.checkpoint_lsn == first.lsn
        for i in range(16):
            assert state.row("t", i)[1] == i + 100
        assert verify_against_engine(state, engine) == []

    def test_truncating_checkpoint_tear_loses_nothing_before_it(self):
        engine, log, _ = self._engine_with_two_checkpoint_attempts()
        second = take_checkpoint(log, truncate=True)
        assert log.records[0].kind == CHECKPOINT
        index = next(i for i, r in enumerate(log.records) if r.lsn == second.lsn)
        assert index == 0  # truncation left the checkpoint at the head
        log.records[index] = torn_copy(second)
        state = replay(log)
        # The only checkpoint is torn: replay starts from nothing and
        # must recover nothing — but not crash or invent state.
        assert state.checkpoint_lsn is None
        assert state.rows == {}
