"""Heap-table tests: sparse materialisation, addressing, trace emission."""

import pytest

from repro.core.trace import AccessTrace, DLOAD_SERIAL, DSTORE
from repro.storage.heap import HeapTable
from repro.storage.record import LONG, STRING50, microbench_schema


@pytest.fixture
def heap(space):
    return HeapTable("t", microbench_schema(), 1000, space)


@pytest.fixture
def big_heap(space):
    """A '100 GB-class' logical table: addresses exist, values are lazy."""
    return HeapTable("big", microbench_schema(), 1_250_000_000, space)


class TestSemantics:
    def test_unwritten_rows_read_deterministic_defaults(self, heap):
        assert heap.read(3) == heap.read(3)
        assert heap.read(3) == heap.schema.default_row(3)

    def test_writes_stick(self, heap):
        heap.write(5, (50, 99))
        assert heap.read(5) == (50, 99)

    def test_update_column(self, heap):
        heap.write(5, (50, 99))
        row = heap.update_column(5, "value", 123)
        assert row == (50, 123)
        assert heap.read(5) == (50, 123)

    def test_update_column_callable(self, heap):
        heap.write(5, (50, 100))
        row = heap.update_column(5, "value", lambda v: v + 7)
        assert row == (50, 107)

    def test_update_column_on_default_row(self, heap):
        default = heap.schema.default_row(9)
        row = heap.update_column(9, "value", lambda v: v * 0 + 1)
        assert row == (default[0], 1)

    def test_append_grows(self, heap):
        before = heap.n_rows
        rid = heap.append((1, 2))
        assert rid == before
        assert heap.n_rows == before + 1
        assert heap.read(rid) == (1, 2)

    def test_bounds_checked(self, heap):
        with pytest.raises(IndexError):
            heap.read(heap.n_rows)
        with pytest.raises(IndexError):
            heap.read(-1)

    def test_schema_validated_on_write(self, heap):
        with pytest.raises(ValueError):
            heap.write(0, (1, 2, 3))

    def test_scan_returns_rows_in_order(self, heap):
        heap.write(10, (10, -1))
        rows = heap.scan(9, 3)
        assert len(rows) == 3
        assert rows[1] == (10, -1)

    def test_capacity_exhaustion(self, space):
        small = HeapTable("s", microbench_schema(), 1, space, capacity_rows=2)
        small.append((1, 1))
        with pytest.raises(MemoryError):
            small.append((2, 2))

    def test_materialized_count(self, heap):
        heap.write(1, (0, 0))
        heap.write(2, (0, 0))
        heap.write(1, (9, 9))
        assert heap.materialized_rows == 2


class TestAtScale:
    def test_billion_row_table_is_cheap(self, big_heap):
        assert big_heap.n_rows == 1_250_000_000
        assert big_heap.data_bytes == 1_250_000_000 * big_heap.slot_bytes
        assert big_heap.materialized_rows == 0
        assert len(big_heap.read(999_999_999)) == 2

    def test_distinct_rows_distinct_addresses(self, big_heap):
        assert set(big_heap.row_lines(0)).isdisjoint(big_heap.row_lines(10**9))


class TestTraceEmission:
    def test_read_emits_serial_first_line(self, heap, trace):
        heap.read(4, trace, mod=2)
        assert trace.kinds[0] == DLOAD_SERIAL
        assert trace.mods == [2] * len(trace)

    def test_wide_rows_skip_prefetched_neighbour(self, space, trace):
        wide = HeapTable("w", microbench_schema(STRING50), 100, space)
        wide.read(0, trace)
        # Row 0 (108 bytes) spans lines 0-1; line 1 is prefetched.
        assert len(trace) == 1
        trace.clear()
        wide.read(1, trace)  # straddles three lines -> two demand loads
        assert len(trace) <= 2

    def test_write_emits_stores(self, heap, trace):
        heap.write(4, (1, 2), trace)
        assert all(k == DSTORE for k in trace.kinds)

    def test_append_addresses_are_sequential(self, heap):
        t1, t2 = AccessTrace(), AccessTrace()
        heap.append((1, 1), t1)
        heap.append((2, 2), t2)
        assert max(t1.addrs) <= min(t2.addrs) <= max(t1.addrs) + 1

    def test_scan_emits_contiguous_run(self, heap, trace):
        heap.scan(0, 50, trace)
        assert trace.addrs == list(range(trace.addrs[0], trace.addrs[0] + len(trace)))

    def test_no_trace_no_emission(self, heap):
        heap.read(4)  # must not raise
