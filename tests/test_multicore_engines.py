"""Multi-core engine behaviour: the Section 7 execution mode."""

import random

import pytest

from repro.core.machine import Machine
from repro.core.spec import IVY_BRIDGE
from repro.engines.common import TableSpec
from repro.engines.config import EngineConfig
from repro.engines.registry import make_engine
from repro.storage.record import microbench_schema
from repro.workloads.microbench import MicroBenchmark


def run_multicore(system: str, n_cores: int = 2, txns: int = 40, partitioned=False):
    config = EngineConfig(
        materialize_threshold=0,
        n_partitions=n_cores if partitioned else 1,
    )
    engine = make_engine(system, config)
    wl = MicroBenchmark(db_bytes=1 << 20, read_write=True)
    wl.setup(engine)
    machine = Machine(IVY_BRIDGE, n_cores=n_cores)
    rng = random.Random(0)
    for i in range(txns):
        core = i % n_cores
        partition = core if partitioned else None
        proc, body = wl.next_transaction(
            rng, partition=partition, n_partitions=n_cores
        )
        machine.run_trace(engine.execute(proc, body, core_id=core), core_id=core)
    return engine, machine


class TestSharedStructures:
    def test_shared_engines_incur_coherence_traffic(self):
        """Shore-MT workers share the lock table and WAL buffer: writes
        from one core invalidate the other's copies."""
        _, machine = run_multicore("shore-mt")
        total = machine.total_counters()
        assert total.coherence_misses > 0

    def test_partitioned_voltdb_single_sited_avoids_sharing(self):
        """Each worker owns its partition; the command log is the only
        shared write target, so coherence traffic stays minimal."""
        _, shared_machine = run_multicore("shore-mt")
        _, part_machine = run_multicore("voltdb", partitioned=True)
        shared = shared_machine.total_counters()
        part = part_machine.total_counters()
        ratio_shared = shared.coherence_misses / max(1, shared.transactions)
        ratio_part = part.coherence_misses / max(1, part.transactions)
        assert ratio_part < ratio_shared

    def test_per_core_counters_both_active(self):
        _, machine = run_multicore("dbms-m")
        assert machine.counters[0].transactions == 20
        assert machine.counters[1].transactions == 20
        assert machine.counters[0].instructions > 0
        assert machine.counters[1].instructions > 0


class TestCorrectnessUnderInterleaving:
    @pytest.mark.parametrize("system", ["shore-mt", "dbms-m", "voltdb"])
    def test_round_robin_commits_all_visible(self, system):
        """Writes from both workers land; a final reader sees them all."""
        config = EngineConfig(materialize_threshold=0)
        engine = make_engine(system, config)
        engine.create_table(TableSpec("t", microbench_schema(), 1000))
        for i in range(30):
            key = i  # disjoint keys: no aborts expected
            engine.execute(
                "p", lambda txn, k=key, v=i: txn.update("t", k, "value", 1000 + v),
                core_id=i % 2,
            )
        results = {}
        engine.execute(
            "check", lambda txn: results.update({k: txn.read("t", k) for k in range(30)})
        )
        assert all(results[k][1] == 1000 + k for k in range(30))
        assert engine.stats.retries_exhausted == 0
