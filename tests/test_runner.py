"""Experiment-runner tests."""

import pytest

from repro.bench.runner import (
    ExperimentRunner,
    MIN_MEASURED_TXNS,
    QUICK_MEASURE_EVENTS,
    RunSpec,
    prewarm_llc,
)
from repro.core.machine import Machine
from repro.engines.base import UserAbort
from repro.engines.config import EngineConfig
from repro.engines.registry import make_engine
from repro.engines.common import TableSpec
from repro.storage.record import microbench_schema
from repro.workloads.base import Workload
from repro.workloads.microbench import MicroBenchmark


def micro_factory():
    return MicroBenchmark(db_bytes=1 << 20)


def tiny_spec(system="hyper", **kw) -> RunSpec:
    base = RunSpec(system=system, **kw).quick()
    return base


class TestRunSpec:
    def test_quick_reduces_budgets(self):
        full = RunSpec(system="hyper")
        quick = full.quick()
        assert quick.measure_events < full.measure_events
        assert quick.repetitions == 1
        assert quick.measure_events == QUICK_MEASURE_EVENTS

    def test_defaults_force_analytic_indexes(self):
        assert RunSpec(system="hyper").engine_config.materialize_threshold == 0


class TestPrewarm:
    def test_prewarm_fills_llc(self):
        engine = make_engine("hyper", EngineConfig(materialize_threshold=0))
        engine.create_table(TableSpec("t", microbench_schema(), 10**7))
        machine = Machine()
        prewarm_llc(machine, engine)
        llc = machine.hierarchy.llc
        assert llc.resident_lines() > llc.spec.n_lines * 0.5
        assert llc.stats.accesses == 0  # fills do not pollute counters

    def test_prewarm_prioritises_small_regions(self):
        engine = make_engine("hyper", EngineConfig(materialize_threshold=0))
        engine.create_table(TableSpec("t", microbench_schema(), 10**9))
        machine = Machine()
        prewarm_llc(machine, engine)
        # The index root level (smallest region) must be resident.
        index = engine.table("t").index
        root_region = index._level_regions[0]
        assert machine.hierarchy.llc.contains(root_region.base_line)


class TestRun:
    def test_single_threaded_run_produces_counters(self):
        result = ExperimentRunner(tiny_spec(), micro_factory).run()
        assert result.counters.transactions >= 24
        assert result.counters.instructions > 0
        assert 0 < result.ipc < 4
        assert result.instructions_per_txn > 0

    def test_stall_metrics_available(self):
        result = ExperimentRunner(tiny_spec(system="shore-mt"), micro_factory).run()
        spk = result.stalls_per_kilo_instruction
        assert spk.l1i > 0
        assert result.stalls_per_transaction.total > spk.total

    def test_module_attribution_covers_engine_and_other(self):
        result = ExperimentRunner(tiny_spec(system="voltdb"), micro_factory).run()
        groups = set(result.module_groups[name] for name in result.module_cycles)
        assert "engine" in groups and "other" in groups
        assert 0 < result.engine_time_fraction() < 1

    def test_repetitions_accumulate(self):
        one = RunSpec(system="hyper").quick()
        spec3 = RunSpec(
            system="hyper",
            measure_events=one.measure_events,
            warmup_events=one.warmup_events,
            repetitions=2,
        )
        r1 = ExperimentRunner(one, micro_factory).run()
        r2 = ExperimentRunner(spec3, micro_factory).run()
        assert r2.counters.transactions > r1.counters.transactions

    def test_deterministic_given_seed(self):
        a = ExperimentRunner(tiny_spec(), micro_factory).run()
        b = ExperimentRunner(tiny_spec(), micro_factory).run()
        assert a.counters.as_dict() == b.counters.as_dict()

    def test_multithreaded_run(self):
        spec = RunSpec(system="voltdb", n_cores=2).quick()
        result = ExperimentRunner(spec, micro_factory).run()
        assert result.counters.transactions > 0
        assert 0 < result.ipc < 4

    def test_multithreaded_partitions_match_cores(self):
        # Partitioned engines get one partition per worker automatically.
        spec = RunSpec(system="voltdb", n_cores=2, repetitions=1,
                       measure_events=5000, warmup_events=1000)
        result = ExperimentRunner(spec, micro_factory).run()
        assert result.counters.transactions >= 12


class _ColdStart(Workload):
    """Aborts every attempt until attempt ``thaw``, then always commits.

    With ``thaw`` past the warmup attempt cap (MIN_WARMUP_TXNS * 1000 =
    8000), the warmup phase can never reach its commit floor — the
    exact quick-spec edge: before the best-effort fix this workload
    made the runner raise during warmup even though the measure window
    would have been perfectly healthy."""

    name = "coldstart"

    def __init__(self, thaw: int = 9000) -> None:
        self.thaw = thaw
        self.attempts = 0

    def table_specs(self):
        return [TableSpec("t", microbench_schema(), 1000)]

    def next_transaction(self, rng, *, partition=None, n_partitions=1):
        self.attempts += 1
        frozen = self.attempts <= self.thaw
        key = rng.randrange(1000)

        def body(txn):
            txn.update("t", key, "value", 1)
            if frozen:
                raise UserAbort("still cold")

        return "coldstart", body


class _NeverCommits(Workload):
    name = "never"

    def table_specs(self):
        return [TableSpec("t", microbench_schema(), 1000)]

    def next_transaction(self, rng, *, partition=None, n_partitions=1):
        def body(txn):
            raise UserAbort("always aborts")

        return "never", body


class TestWarmupTermination:
    """The quick-spec warmup edge: MIN_WARMUP_TXNS can exceed what the
    warmup event budget produces.  Warmup must terminate (best-effort)
    and the measure window must never be empty (strict)."""

    def test_warmup_cap_is_best_effort_and_window_fills(self):
        spec = RunSpec(
            system="hyper", measure_events=2000, warmup_events=200, repetitions=1
        )
        result = ExperimentRunner(spec, _ColdStart).run()
        # Warmup stopped at its attempt cap without raising; the strict
        # measure phase still reached its commit floor — the measure
        # window is never empty.
        assert result.measured_txns >= MIN_MEASURED_TXNS
        assert result.counters.transactions == result.measured_txns

    def test_hopeless_workload_fails_in_measure_not_warmup(self):
        spec = RunSpec(
            system="hyper", measure_events=10, warmup_events=10, repetitions=1
        )
        with pytest.raises(RuntimeError, match="measure") as excinfo:
            ExperimentRunner(spec, _NeverCommits).run()
        # The failure is attributed to the measure phase: warmup no
        # longer dies first on a workload that cannot commit.
        assert "warmup" not in str(excinfo.value)
        assert "cannot make progress" in str(excinfo.value)
