"""Parallel-executor tests: descriptors, parity with serial, runner fixes."""

import dataclasses
import pickle

import pytest

from repro.bench.parallel import (
    CellTask,
    WorkloadSpec,
    default_jobs,
    get_jobs,
    map_repetitions,
    run_cells,
    using_jobs,
    workload_spec,
)
from repro.bench.runner import (
    ExperimentRunner,
    MIN_MEASURED_TXNS,
    RunSpec,
    run_repetition,
)
from repro.engines.config import EngineConfig
from repro.workloads.microbench import MicroBenchmark
from repro.workloads.tpcb import TPCB

MICRO_1MB = workload_spec("micro", db_bytes=1 << 20)


def quick_spec(system="hyper", **kw) -> RunSpec:
    return RunSpec(system=system, **kw).quick()


class TestWorkloadSpec:
    def test_builds_the_described_workload(self):
        spec = workload_spec("micro", db_bytes=1 << 20, rows_per_txn=3, read_write=True)
        workload = spec.make()
        assert isinstance(workload, MicroBenchmark)
        assert workload.rows_per_txn == 3
        assert workload.read_write is True

    def test_is_a_zero_argument_factory(self):
        assert isinstance(MICRO_1MB(), MicroBenchmark)
        assert isinstance(workload_spec("tpcb")(), TPCB)

    def test_round_trips_through_pickle(self):
        spec = workload_spec("micro", db_bytes=1 << 20, rows_per_txn=2)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.make().rows_per_txn == 2

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown workload kind"):
            workload_spec("nope")

    def test_param_order_does_not_matter(self):
        a = workload_spec("micro", db_bytes=1 << 20, rows_per_txn=2)
        b = workload_spec("micro", rows_per_txn=2, db_bytes=1 << 20)
        assert a == b


class TestJobsContext:
    def test_default_is_serial(self):
        assert get_jobs() == 1

    def test_context_installs_and_restores(self):
        with using_jobs(4) as n:
            assert n == 4
            assert get_jobs() == 4
            with using_jobs(2):
                assert get_jobs() == 2
            assert get_jobs() == 4
        assert get_jobs() == 1

    def test_none_and_zero_mean_serial(self):
        with using_jobs(None):
            assert get_jobs() == 1
        with using_jobs(0):
            assert get_jobs() == 1

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


def _result_fingerprint(result):
    return (
        result.system,
        result.counters.as_dict(),
        result.module_cycles,
        result.module_groups,
        result.measured_txns,
    )


class TestParallelParity:
    """--jobs N must be bit-identical to the serial path."""

    def test_two_cell_figure_parity(self):
        cells = [
            CellTask(quick_spec("hyper"), MICRO_1MB),
            CellTask(quick_spec("voltdb"), MICRO_1MB),
        ]
        serial = run_cells(cells, jobs=1)
        parallel = run_cells(cells, jobs=4)
        assert len(serial) == len(parallel) == 2
        for s, p in zip(serial, parallel):
            assert _result_fingerprint(s) == _result_fingerprint(p)

    def test_repetition_fanout_parity(self):
        spec = dataclasses.replace(quick_spec("hyper"), repetitions=2)
        serial = ExperimentRunner(spec, MICRO_1MB).run(jobs=1)
        parallel = ExperimentRunner(spec, MICRO_1MB).run(jobs=2)
        assert _result_fingerprint(serial) == _result_fingerprint(parallel)

    def test_unpicklable_factory_falls_back_to_serial(self):
        spec = quick_spec("hyper")
        closure = lambda: MicroBenchmark(db_bytes=1 << 20)  # noqa: E731
        result = run_cells([CellTask(spec, closure)], jobs=4)[0]
        reference = run_cells([CellTask(spec, MICRO_1MB)], jobs=1)[0]
        assert _result_fingerprint(result) == _result_fingerprint(reference)

    def test_map_repetitions_seed_order(self):
        spec = dataclasses.replace(quick_spec("hyper"), repetitions=2)
        reps = map_repetitions(spec, MICRO_1MB, jobs=1)
        a = run_repetition(spec, MICRO_1MB, spec.rep_seed(0))
        b = run_repetition(spec, MICRO_1MB, spec.rep_seed(1))
        assert [_result_fingerprint(r) for r in reps] == [
            _result_fingerprint(a),
            _result_fingerprint(b),
        ]


class TestMeasuredTxns:
    """Regression: multi-core runs must report the true committed total."""

    def test_two_core_total_not_per_worker_mean(self):
        spec = RunSpec(
            system="voltdb", n_cores=2, repetitions=1,
            measure_events=5000, warmup_events=1000,
        )
        result = ExperimentRunner(spec, MICRO_1MB).run()
        assert isinstance(result.measured_txns, int)
        assert result.measured_txns >= MIN_MEASURED_TXNS
        # counters hold the per-worker mean; the committed total must be
        # about n_cores times that, never equal to the scaled-down mean.
        mean = result.counters.transactions
        assert abs(result.measured_txns - 2 * mean) <= 1
        assert result.measured_txns > mean

    def test_repetitions_sum_totals(self):
        one = RunSpec(
            system="voltdb", n_cores=2, repetitions=1,
            measure_events=5000, warmup_events=1000,
        )
        two = dataclasses.replace(one, repetitions=2)
        r1 = ExperimentRunner(one, MICRO_1MB).run()
        r2 = ExperimentRunner(two, MICRO_1MB).run()
        assert r2.measured_txns > r1.measured_txns
        assert r2.measured_txns >= 2 * MIN_MEASURED_TXNS


class TestQuickPreservesFields:
    """Regression: quick() must carry over every non-budget field."""

    BUDGET_FIELDS = {"measure_events", "warmup_events", "repetitions"}

    def test_every_non_budget_field_preserved(self):
        from repro.core.cpu import OverlapModel
        from repro.core.spec import IVY_BRIDGE
        from repro.core.tlb import TLBSpec

        # Non-default value for every non-budget field; a field added to
        # RunSpec later is covered automatically by the fields() sweep.
        full = RunSpec(
            system="voltdb",
            engine_config=EngineConfig(materialize_threshold=0, n_partitions=3),
            n_cores=2,
            seed=777,
            server=IVY_BRIDGE,
            overlap=OverlapModel(l1d=0.5),
            serial_miss_extra_cycles=99,
            tlb_mode="measured",
            tlb_spec=TLBSpec(page_bytes=2 << 20),
        )
        quick = full.quick()
        for f in dataclasses.fields(RunSpec):
            if f.name in self.BUDGET_FIELDS:
                continue
            assert getattr(quick, f.name) == getattr(full, f.name), f.name

    def test_budget_fields_reduced(self):
        full = RunSpec(system="hyper")
        quick = full.quick()
        assert quick.measure_events < full.measure_events
        assert quick.warmup_events < full.warmup_events
        assert quick.repetitions == 1


class TestCLISubcommands:
    def test_figures_mixed_with_subcommand_rejected(self, capsys):
        from repro.bench.cli import main

        assert main(["fig1", "chaos"]) == 2
        err = capsys.readouterr().err
        assert "subcommand" in err
        assert "repro-bench chaos" in err

    def test_validate_mixed_with_figures_rejected(self, capsys):
        from repro.bench.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["validate", "fig1"])
        assert excinfo.value.code == 2
        assert "unrecognized arguments" in capsys.readouterr().err

    def test_perf_quick_writes_record(self, tmp_path, capsys):
        from repro.bench.cli import main

        records_dir = tmp_path / "records"
        assert main(["perf", "--quick", "--records-dir", str(records_dir)]) == 0
        out = capsys.readouterr().out
        assert "events/sec" in out
        records = list(records_dir.glob("BENCH_*.json"))
        assert len(records) == 1
        # The store run rides beside the redirected records dir — never
        # in the repo's benchmarks/store/.
        assert list((tmp_path / "store").glob("bench-*/meta.json"))

    def test_jobs_flag_accepted_for_figures(self, capsys):
        from repro.bench.cli import main

        assert main(["table1", "--quick", "--jobs", "2"]) == 0
        assert "Table 1" in capsys.readouterr().out
