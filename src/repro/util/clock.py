"""The one legal door to the host clock.

Simulation results must be a pure function of the seed: wall-clock
reads anywhere in a sim path are a determinism bug, and
``repro-lint``'s *wall-clock* rule flags every ``time.*`` /
``datetime.now`` reference outside this module.  Code with a
legitimate need — display timing on the CLI, the perf harness timing
itself, the tracer's monotonic clock, dated perf records — imports the
helper that names its purpose:

* :func:`wall_timer` — wall-clock seconds for *display* timing (how
  long a figure took to regenerate).  Never feed this into a result.
* :func:`perf_timer` / :func:`perf_timer_ns` — monotonic
  self-measurement (the perf suite measuring the simulator, the span
  tracer's timestamps).  Timing the simulator is not simulating.
* :func:`today` / :func:`timestamp` — dates for ``BENCH_<date>.json``
  record naming and provenance.

The helpers are trivial on purpose: the value of the module is the
chokepoint, not the code.  Grep for callers to audit every place the
repository touches real time.
"""

from __future__ import annotations

import time


def wall_timer() -> float:
    """Wall-clock seconds (``time.time``) for user-facing display timing."""
    return time.time()


def perf_timer() -> float:
    """Monotonic high-resolution seconds for self-measurement."""
    return time.perf_counter()


def perf_timer_ns() -> int:
    """Monotonic nanoseconds — the span tracer's timestamp source."""
    return time.perf_counter_ns()


def today() -> str:
    """Local date as ``YYYY-MM-DD`` (perf record file naming)."""
    return time.strftime("%Y-%m-%d")


def timestamp() -> str:
    """Local time as ``YYYY-MM-DDTHH:MM:SS`` (perf record provenance)."""
    return time.strftime("%Y-%m-%dT%H:%M:%S")
