"""Named time-unit conversions for the virtual timeline.

The simulation prices work in integer virtual nanoseconds, fabric
ticks (:data:`TICK_NS` each), and replayed CPU cycles.  Every
cross-unit conversion goes through a helper here — the ``a_to_b``
names are the declaration the :mod:`repro.lint.units` pass checks, so
``ms_to_ns(res.timeout_ms)`` typechecks dimensionally while
``res.timeout_ms * 1_000_000`` flags.

The helpers are deliberately expression-identical to the inline
arithmetic they replaced (``int(us * 1000)``, ``ns / 1000.0``): pinned
run digests and figure fixtures are bit-exact functions of these
values, so routing through this module must not change a single bit.
"""

from __future__ import annotations

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000

TICK_NS = 50_000
"""Virtual nanoseconds per SimNetwork fabric tick (50 us): a LAN-ish
round-trip unit, so replication acks and 2PC rounds land on the same
virtual-time axis as replayed CPU cycles."""


def us_to_ns(us: float) -> int:
    """Microseconds (possibly fractional) to whole virtual ns."""
    return int(us * NS_PER_US)


def ms_to_ns(ms: float) -> int:
    """Milliseconds (possibly fractional) to whole virtual ns."""
    return int(ms * NS_PER_MS)


def ms_to_ns_float(ms: float) -> float:
    """Milliseconds to ns *without* truncation — for quantities that
    stay fractional (backoff jitter folded into float arrival times)."""
    return ms * NS_PER_MS


def ns_to_us(ns: int) -> float:
    """Nanoseconds to fractional microseconds (trace-viewer axis).

    Divides by a float literal, exactly as the inline code it replaced
    did: int/float and int/int true division round identically for the
    sub-2**53 magnitudes a run produces, and the float form is what the
    pinned trace fixtures were built from.
    """
    return ns / 1000.0


def ticks_to_ns(ticks: int, tick_ns: int = TICK_NS) -> int:
    """Fabric ticks to virtual ns."""
    return ticks * tick_ns


def ns_to_ticks(ns: int, tick_ns: int = TICK_NS) -> int:
    """Virtual ns to whole fabric ticks (floor)."""
    return ns // tick_ns
