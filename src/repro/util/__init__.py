"""repro.util — small stdlib-only helpers shared across the package.

Four modules, all deliberately tiny and import-cycle-free (they import
nothing from the rest of ``repro``), so any layer — including
``repro.obs``, which must stay importable while the package is still
initialising — can use them:

* :mod:`repro.util.clock` — the **only** module where reading the host
  clock is legal.  ``repro-lint``'s wall-clock rule allowlists it;
  everything else must route display timing through
  :func:`~repro.util.clock.wall_timer` and self-measurement through
  :func:`~repro.util.clock.perf_timer`.
* :mod:`repro.util.rng` — the seeded-RNG factory idiom
  (:func:`~repro.util.rng.child_rng`, :func:`~repro.util.rng.root_rng`).
  ``repro-lint``'s rng-factory rule bans ``random.Random(...)``
  construction anywhere else in sim code.
* :mod:`repro.util.stablehash` — :func:`~repro.util.stablehash.stable_hash`,
  the process-stable ``hash()`` replacement for placement decisions
  keyed by strings (builtin str hashing is randomized per process).
* :mod:`repro.util.backoff` — the one capped-exponential-backoff +
  seeded-jitter schedule shared by the replication ack loop, the 2PC
  resend loop, the engine retry loop, and the load driver's client
  retry policy.
"""

from repro.util.backoff import capped_backoff, jittered_backoff
from repro.util.clock import perf_timer, perf_timer_ns, today, timestamp, wall_timer
from repro.util.rng import child_rng, root_rng
from repro.util.stablehash import stable_hash

__all__ = [
    "capped_backoff",
    "child_rng",
    "jittered_backoff",
    "perf_timer",
    "perf_timer_ns",
    "root_rng",
    "stable_hash",
    "timestamp",
    "today",
    "wall_timer",
]
