"""Capped exponential backoff with optional seeded jitter.

Three subsystems grew byte-identical inline copies of the same retry
schedule — the replication client ack loop, the 2PC coordinator resend
loop, and the engine's abort-retry loop.  This module is the single
home for that arithmetic so new layers (the load driver's client retry
policy, for one) share the exact schedule instead of a fourth copy.

Determinism contract: :func:`capped_backoff` is a pure function of its
arguments.  :func:`jittered_backoff` additionally draws **exactly one**
``randrange(0, int(base) + 1)`` from the caller-supplied RNG — the same
single draw the inline copies made — so migrating a call site changes
neither the RNG stream position nor the returned schedule.  Sanitizer
scoping stays at the call site, where the stream identity is known.
"""

from __future__ import annotations

from random import Random

__all__ = ["capped_backoff", "jittered_backoff"]


def capped_backoff(base: float, cap: float, attempt: int) -> float:
    """Return ``min(base * 2**(attempt-1), cap)`` for 1-indexed *attempt*.

    Works with ints (tick schedules) and floats (cycle schedules); the
    result type follows Python's numeric promotion, matching the inline
    expressions this replaces byte-for-byte.
    """
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    return min(base * 2 ** (attempt - 1), cap)


def jittered_backoff(base: int, cap: int, attempt: int, rng: Random) -> int:
    """Capped backoff plus one seeded jitter draw in ``[0, base]``.

    The jitter is a single ``rng.randrange(0, base + 1)`` — the exact
    draw width and count the replication and 2PC clients used, so
    pinned schedule-digest tests stay green across the consolidation.
    """
    jitter = rng.randrange(0, base + 1)
    return int(capped_backoff(base, cap, attempt)) + jitter
