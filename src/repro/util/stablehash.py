"""Process-stable hashing for simulated data placement.

Builtin ``hash()`` on ``str``/``bytes`` is randomized per process
(PYTHONHASHSEED), so feeding it into bucket or segment selection makes
*simulated results* differ run to run — the bug that made VoltDB's
figure rows wobble until the ``--sanitize`` parity gate caught it.
Every placement decision keyed by a string (lock-table buckets, plan
-fragment segments, buffer-tag spaces) must use :func:`stable_hash`
instead.

Integers hash to themselves (matching ``hash(int)`` for the word-sized
values the simulator uses), so int-keyed call sites can migrate without
changing any existing deterministic placement.
"""

from __future__ import annotations

import zlib

_MASK = 0xFFFFFFFFFFFFFFFF


def stable_hash(value) -> int:
    """Deterministic ``hash()`` replacement for placement decisions.

    Supports the key shapes the simulator uses: ints (identity, like
    ``hash()`` on word-sized ints), str/bytes (CRC-based, stable across
    processes), tuples (recursive mix), None, bools, floats.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray)):
        return zlib.crc32(bytes(value))
    if isinstance(value, tuple):
        h = 0x345678
        for item in value:
            h = ((h * 1000003) ^ stable_hash(item)) & _MASK
        return h
    if value is None:
        return 0x6E6F6E65  # "none"
    # Floats and other hash-stable scalars: builtin hash is fine.
    return hash(value)
