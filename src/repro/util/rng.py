"""The seeded-RNG factory idiom: every stream has a seed and a purpose.

All the determinism guarantees shipped so far — bit-identical
``--jobs N`` fan-out, byte-identical crash schedules with replication
on or off, obs-on/obs-off parity — reduce to one discipline: every
random stream is (a) seeded from the run's seed, (b) dedicated to one
purpose, and (c) never shared across purposes (so adding draws to one
stream cannot shift another).  This module is where that discipline
lives; ``repro-lint``'s *rng-factory* rule bans ``random.Random(...)``
construction anywhere else in sim code.

* :func:`root_rng` — a top-level stream seeded directly with the run
  seed (``random.Random(seed)``); *purpose* is a label for the
  sanitizer, not part of the seed derivation.
* :func:`child_rng` — a child stream seeded off ``(seed, purpose)``
  as ``random.Random(f"{seed}:{purpose}")``.  String seeding is
  deterministic across processes (no hash randomisation) and two
  purposes never collide, so adding a new child stream cannot perturb
  an existing one.

Both derivations are **pinned**: they reproduce the exact seeding the
call sites used before the factory existed, so every pinned digest
(``FaultInjector.schedule_digest``, chaos state digests, figure
fingerprints) is unchanged.

When the runtime sanitizer is armed (``repro-bench --sanitize`` or
``REPRO_SANITIZE=1``), the factories return a
:class:`repro.lint.sanitizer.TrackedRandom` — a ``random.Random``
subclass with the identical seeded state that additionally records
per-stream draw counts and flags cross-stream draws.  Sanitized runs
are bit-identical to plain runs.
"""

from __future__ import annotations

import random

from repro.lint import sanitizer


def _make(seed_value, purpose: str) -> random.Random:
    if sanitizer.enabled():
        return sanitizer.TrackedRandom(seed_value, purpose)
    return random.Random(seed_value)


def root_rng(seed, purpose: str = "root") -> random.Random:
    """A top-level stream: ``random.Random(seed)``, labelled *purpose*."""
    return _make(seed, purpose)


def child_rng(seed, purpose: str) -> random.Random:
    """A child stream seeded off ``(seed, purpose)``.

    Exactly ``random.Random(f"{seed}:{purpose}")`` — deterministic
    across processes and independent of every other purpose's stream.
    """
    return _make(f"{seed}:{purpose}", purpose)
