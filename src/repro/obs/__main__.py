"""Trace validator CLI: ``python -m repro.obs validate trace.json``.

Exits non-zero when the file fails the Chrome trace-event schema check
(used by the CI smoke job after ``repro-bench trace fig1 --quick``).
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.exporters import validate_trace_file


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.obs")
    sub = parser.add_subparsers(dest="command", required=True)
    val = sub.add_parser("validate", help="validate a Chrome trace-event JSON file")
    val.add_argument("trace", help="path to the trace file")
    val.add_argument(
        "--expect-cats",
        default="",
        help="comma-separated categories that must appear (e.g. engine,storage,core)",
    )
    args = parser.parse_args(argv)

    expect = tuple(c for c in args.expect_cats.split(",") if c)
    problems = validate_trace_file(args.trace, expect_cats=expect)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"{args.trace}: INVALID ({len(problems)} problem(s))", file=sys.stderr)
        return 1
    print(f"{args.trace}: valid Chrome trace-event JSON")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
