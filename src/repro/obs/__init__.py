"""repro.obs — unified observability: spans, metrics, top-down, exporters.

The package facade re-exports the span-tracing API and the gated metric
helpers.  Everything here is stdlib-only and imports nothing from the
rest of ``repro`` except the equally import-cycle-free leaf helpers
(``repro.util.clock``, ``repro.lint.sanitizer``) — instrumented modules
(``core.machine``, ``engines.base``, ``storage.wal`` ...) can safely do
``from repro import obs`` even while the ``repro`` package itself is
still initialising.

Heavier pieces are deliberately *not* imported here:

* ``repro.obs.topdown`` — TMAM-style cycle attribution (imports
  ``repro.core``);
* ``repro.obs.exporters`` — Chrome trace-event / JSONL / Prometheus
  writers and the trace validator.

Import those explicitly where needed (the CLI and report layer do).
"""

from __future__ import annotations

from repro.obs.metrics import (
    REGISTRY,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    nearest_rank,
)
from repro.obs.tracing import (
    NOOP_SPAN,
    PHASE_COMPLETE,
    PHASE_INSTANT,
    Span,
    SpanEvent,
    Tracer,
    annotate,
    disable,
    drain_events,
    enable,
    enabled,
    mark,
    span,
    tracer,
    using_obs,
)

__all__ = [
    "NOOP_SPAN",
    "PHASE_COMPLETE",
    "PHASE_INSTANT",
    "REGISTRY",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanEvent",
    "Tracer",
    "annotate",
    "disable",
    "drain_events",
    "drain_metrics",
    "enable",
    "enabled",
    "inc",
    "mark",
    "merge_snapshots",
    "nearest_rank",
    "observe",
    "set_gauge",
    "span",
    "tracer",
    "using_obs",
]


# -- gated metric helpers ----------------------------------------------------
# Metrics follow the tracing switch: when observability is off these are
# single-branch no-ops, so instrumented hot paths stay free.

def inc(name: str, value: float = 1.0, **labels) -> None:
    if enabled():
        REGISTRY.inc(name, value, **labels)


def set_gauge(name: str, value: float, **labels) -> None:
    if enabled():
        REGISTRY.set_gauge(name, value, **labels)


def observe(name: str, value: float, **labels) -> None:
    if enabled():
        REGISTRY.observe(name, value, **labels)


def drain_metrics() -> dict:
    """Snapshot-and-clear the ambient registry ({} when disabled/empty)."""
    if not enabled():
        return {}
    snap = REGISTRY.drain()
    if not (snap["counters"] or snap["gauges"] or snap["histograms"]):
        return {}
    return snap
