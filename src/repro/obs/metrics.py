"""Metrics registry: counters, gauges, and log-2-bucket histograms.

Unifies the scattered ad-hoc counters (engine commit/abort tallies,
fault-injector hit counts, WAL flush statistics) under one namespace
so a single Prometheus textfile snapshot describes a whole run.

Design constraints, in order:

* **Determinism** — histograms use fixed power-of-two buckets (bucket
  ``i`` counts observations with ``2**(i-1) < v <= 2**i - 1``, i.e.
  ``int(v).bit_length() == i``), so the same simulated run yields the
  same snapshot byte-for-byte regardless of host or timing.
* **Picklability** — ``snapshot()``/``drain()`` return plain dicts of
  plain types, so parallel workers ship their registries back to the
  parent, which merges them in seed order.
* **No dependencies** — stdlib only; importable before the rest of the
  ``repro`` package finishes initialising.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Values above 2**63 all land in the overflow bucket; simulated cycle
# counts never get near it.
MAX_BUCKET = 64

LabelItems = tuple[tuple[str, str], ...]
MetricKey = tuple[str, LabelItems]


def _key(name: str, labels: dict[str, str] | None) -> MetricKey:
    if not labels:
        return (name, ())
    return (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))


def bucket_index(value: float) -> int:
    """Fixed log-2 bucket for *value* (negative/zero values share bucket 0)."""
    v = int(value)
    if v <= 0:
        return 0
    return min(v.bit_length(), MAX_BUCKET)


@dataclass
class Histogram:
    """Deterministic log-2 histogram: counts per bucket plus sum/count."""

    buckets: dict[int, int] = field(default_factory=dict)
    sum: float = 0.0
    count: int = 0

    def observe(self, value: float) -> None:
        i = bucket_index(value)
        self.buckets[i] = self.buckets.get(i, 0) + 1
        self.sum += value
        self.count += 1

    def merge(self, other: "Histogram") -> None:
        for i, n in other.buckets.items():
            self.buckets[i] = self.buckets.get(i, 0) + n
        self.sum += other.sum
        self.count += other.count

    def upper_bound(self, index: int) -> float:
        """Inclusive upper edge of bucket *index* (0 -> 0, i -> 2**i - 1)."""
        if index <= 0:
            return 0.0
        return float((1 << index) - 1)

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile resolved to the bucket upper edge.

        The histogram only knows buckets, so the answer is conservative
        (the true sample is <= the reported edge) — but it is computed
        with the same integer nearest-rank arithmetic as
        :func:`nearest_rank`, so merging histograms in any order yields
        the same quantile.  Raises on an empty histogram.
        """
        if self.count <= 0:
            raise ValueError("quantile of an empty histogram")
        k = _nearest_rank_index(q, self.count) + 1  # 1-based target rank
        seen = 0
        for i in sorted(self.buckets):
            seen += self.buckets[i]
            if seen >= k:
                return self.upper_bound(i)
        return self.upper_bound(max(self.buckets))


def _nearest_rank_index(q: float, n: int) -> int:
    """0-based nearest-rank index for percentile *q* over *n* samples.

    Integer arithmetic throughout: *q* is snapped to basis points
    (p99.9 -> 9990) so ``ceil(q/100 * n)`` cannot pick up a
    float-rounding extra rank (0.99 * 100 is 99.00000000000001 in
    binary floating point; ceiling that would silently turn p99 of 100
    samples into the maximum).
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q!r}")
    if n < 1:
        raise ValueError("nearest rank needs at least one sample")
    q_bp = round(q * 100)  # basis points: exact integers for p50/p99/p999
    k = -(-(q_bp * n) // 10_000)  # ceil without floats
    return max(1, min(k, n)) - 1


def nearest_rank(values, q: float):
    """Deterministic nearest-rank percentile: an *actual sample*.

    Sorts a copy of *values* and selects the 1-based rank
    ``ceil(q/100 * n)`` (computed in integer arithmetic — see
    :func:`_nearest_rank_index`).  No interpolation and no running
    float sums, so the result is independent of the order the samples
    were merged in: serial and ``--jobs N`` runs that produce the same
    multiset of samples report byte-identical percentiles.
    """
    ordered = sorted(values)
    return ordered[_nearest_rank_index(q, len(ordered))]


class MetricsRegistry:
    """Counters, gauges, and histograms keyed by (name, sorted labels)."""

    def __init__(self) -> None:
        self.counters: dict[MetricKey, float] = {}
        self.gauges: dict[MetricKey, float] = {}
        self.histograms: dict[MetricKey, Histogram] = {}

    # -- recording -----------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        key = _key(name, labels)
        self.counters[key] = self.counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        self.gauges[_key(name, labels)] = value

    def observe(self, name: str, value: float, **labels) -> None:
        key = _key(name, labels)
        hist = self.histograms.get(key)
        if hist is None:
            hist = self.histograms[key] = Histogram()
        hist.observe(value)

    # -- shipping ------------------------------------------------------------

    def snapshot(self) -> dict:
        """A picklable, mergeable copy of every metric."""
        return {
            "counters": {k: v for k, v in sorted(self.counters.items())},
            "gauges": {k: v for k, v in sorted(self.gauges.items())},
            "histograms": {
                k: {"buckets": dict(sorted(h.buckets.items())), "sum": h.sum, "count": h.count}
                for k, h in sorted(self.histograms.items())
            },
        }

    def drain(self) -> dict:
        snap = self.snapshot()
        self.clear()
        return snap

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    def merge_snapshot(self, snap: dict) -> None:
        """Fold a snapshot (e.g. from a worker process) into this registry."""
        for key, value in snap.get("counters", {}).items():
            self.counters[key] = self.counters.get(key, 0.0) + value
        # Last write wins for gauges: snapshots are merged in seed order.
        for key, value in snap.get("gauges", {}).items():
            self.gauges[key] = value
        for key, data in snap.get("histograms", {}).items():
            hist = self.histograms.get(key)
            if hist is None:
                hist = self.histograms[key] = Histogram()
            hist.merge(Histogram(buckets=dict(data["buckets"]), sum=data["sum"], count=data["count"]))


def merge_snapshots(*snaps: dict) -> dict:
    """Merge snapshots (in the order given) into one combined snapshot."""
    registry = MetricsRegistry()
    for snap in snaps:
        if snap:
            registry.merge_snapshot(snap)
    return registry.snapshot()


# The ambient registry that obs.inc/observe/set_gauge feed (when tracing
# is enabled); drained per repetition alongside the span buffer.
REGISTRY = MetricsRegistry()
