"""Exporters: Chrome trace-event JSON (Perfetto), JSONL, Prometheus text.

The Chrome trace-event exporter is the centrepiece: the emitted file
loads directly in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``.  Layout convention:

* one *process* (pid) per event buffer — a buffer is one repetition's
  events from one worker process, so timestamps within it come from a
  single monotonic clock;
* one *thread* (tid) per track within a buffer (``core0``..``coreN``
  for simulated cores, ``worker0``.. for engine workers, plus ``wal``,
  ``locks``, ``recovery``, ``chaos``, ``harness``), named via ``M``
  metadata events.

Buffers must be supplied in deterministic (seed) order; pids and tids
are assigned by first appearance so the same run always exports the
same file modulo timestamps.

``validate_chrome_trace`` is the schema check the CI smoke job runs:
structural validity, known phases, integer pid/tid, non-negative
timestamps/durations, and per-(pid, tid) monotone start times.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.tracing import PHASE_COMPLETE, PHASE_INSTANT, SpanEvent

PHASE_METADATA = "M"
KNOWN_PHASES = (PHASE_COMPLETE, PHASE_INSTANT, PHASE_METADATA)


def chrome_trace(buffers: list[tuple[str, list[SpanEvent]]]) -> dict:
    """Build a Chrome trace-event document from labelled event buffers."""
    trace_events: list[dict] = []
    for pid, (label, events) in enumerate(buffers):
        trace_events.append(
            {
                "name": "process_name",
                "ph": PHASE_METADATA,
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
        tids: dict[str, int] = {}
        rows: list[dict] = []
        for event in events:
            tid = tids.get(event.track)
            if tid is None:
                tid = tids[event.track] = len(tids)
                trace_events.append(
                    {
                        "name": "thread_name",
                        "ph": PHASE_METADATA,
                        "pid": pid,
                        "tid": tid,
                        "args": {"name": event.track},
                    }
                )
            row = {
                "name": event.name,
                "cat": event.cat,
                "ph": event.phase,
                "pid": pid,
                "tid": tid,
                "ts": event.ts_us,
            }
            if event.phase == PHASE_COMPLETE:
                row["dur"] = event.dur_us
            if event.phase == PHASE_INSTANT:
                row["s"] = "t"  # thread-scoped instant
            if event.args:
                row["args"] = dict(event.args)
            rows.append(row)
        # Spans are appended at *end* time; Perfetto wants start order,
        # with enclosing spans before their children at equal ts.
        rows.sort(key=lambda r: (r["ts"], -r.get("dur", 0.0)))
        trace_events.extend(rows)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str | Path, buffers: list[tuple[str, list[SpanEvent]]]) -> dict:
    doc = chrome_trace(buffers)
    Path(path).write_text(json.dumps(doc, indent=None, separators=(",", ":")) + "\n")
    return doc


def write_jsonl(path: str | Path, buffers: list[tuple[str, list[SpanEvent]]]) -> int:
    """Write one JSON object per event (a greppable flat log). Returns count."""
    n = 0
    with Path(path).open("w") as fh:
        for label, events in buffers:
            for event in events:
                fh.write(
                    json.dumps(
                        {
                            "buffer": label,
                            "name": event.name,
                            "track": event.track,
                            "cat": event.cat,
                            "ts_us": event.ts_us,
                            "dur_us": event.dur_us,
                            "phase": event.phase,
                            "args": event.args,
                        },
                        separators=(",", ":"),
                    )
                    + "\n"
                )
                n += 1
    return n


# -- Prometheus textfile -----------------------------------------------------

def _prom_name(name: str) -> str:
    out = [c if (c.isalnum() or c == "_") else "_" for c in name]
    if out and out[0].isdigit():
        out.insert(0, "_")
    return "".join(out)


def _prom_labels(items: tuple, extra: dict | None = None) -> str:
    pairs = [(k, v) for k, v in items] + sorted((extra or {}).items())
    if not pairs:
        return ""
    body = ",".join(f'{_prom_name(k)}="{v}"' for k, v in pairs)
    return "{" + body + "}"


def prometheus_text(snapshot: dict) -> str:
    """Render a MetricsRegistry snapshot in Prometheus exposition format."""
    lines: list[str] = []
    seen_types: set[str] = set()

    def header(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for (name, labels), value in snapshot.get("counters", {}).items():
        pname = _prom_name(name) + "_total"
        header(pname, "counter")
        lines.append(f"{pname}{_prom_labels(labels)} {value:g}")
    for (name, labels), value in snapshot.get("gauges", {}).items():
        pname = _prom_name(name)
        header(pname, "gauge")
        lines.append(f"{pname}{_prom_labels(labels)} {value:g}")
    for (name, labels), data in snapshot.get("histograms", {}).items():
        pname = _prom_name(name)
        header(pname, "histogram")
        cumulative = 0
        for index in sorted(data["buckets"]):
            cumulative += data["buckets"][index]
            le = float((1 << index) - 1) if index > 0 else 0.0
            lines.append(f"{pname}_bucket{_prom_labels(labels, {'le': f'{le:g}'})} {cumulative}")
        lines.append(f"{pname}_bucket{_prom_labels(labels, {'le': '+Inf'})} {data['count']}")
        lines.append(f"{pname}_sum{_prom_labels(labels)} {data['sum']:g}")
        lines.append(f"{pname}_count{_prom_labels(labels)} {data['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(path: str | Path, snapshot: dict) -> str:
    text = prometheus_text(snapshot)
    Path(path).write_text(text)
    return text


# -- validation --------------------------------------------------------------

def validate_chrome_trace(doc, expect_cats: tuple[str, ...] = ()) -> list[str]:
    """Check *doc* against the Chrome trace-event schema.

    Returns a list of problems (empty = valid): structural shape, known
    phases, integer pid/tid, numeric non-negative ts (and dur for ``X``
    events), monotone start timestamps per (pid, tid) lane, and —
    optionally — that every category in *expect_cats* appears.
    """
    problems: list[str] = []
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return ["document must be an object with a 'traceEvents' list"]

    last_ts: dict[tuple[int, int], float] = {}
    cats_seen: set[str] = set()
    for i, row in enumerate(doc["traceEvents"]):
        where = f"traceEvents[{i}]"
        if not isinstance(row, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = row.get("ph")
        if phase not in KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if not isinstance(row.get("pid"), int) or not isinstance(row.get("tid"), int):
            problems.append(f"{where}: pid/tid must be integers")
            continue
        if phase == PHASE_METADATA:
            continue
        ts = row.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: ts must be a non-negative number, got {ts!r}")
            continue
        if phase == PHASE_COMPLETE:
            dur = row.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: 'X' event needs non-negative dur, got {dur!r}")
        lane = (row["pid"], row["tid"])
        if ts < last_ts.get(lane, 0.0):
            problems.append(
                f"{where}: ts {ts} goes backwards on pid={lane[0]} tid={lane[1]}"
            )
        last_ts[lane] = ts
        if "cat" in row:
            cats_seen.add(row["cat"])
    for cat in expect_cats:
        if cat not in cats_seen:
            problems.append(f"expected category {cat!r} absent from trace")
    return problems


def validate_trace_file(path: str | Path, expect_cats: tuple[str, ...] = ()) -> list[str]:
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"cannot read trace: {exc}"]
    return validate_chrome_trace(doc, expect_cats)
