"""Lightweight nested span tracing (the repo-wide observability spine).

The rest of the codebase reports into this module through three calls:

* ``obs.span("execute_txn", track="worker0", cat="engine", **args)`` —
  a context manager recording one *complete* span (Chrome trace-event
  phase ``X``) with wall-clock start and duration;
* ``obs.annotate("fault.crash", ...)`` — an *instant* event (phase
  ``i``), used for point-in-time facts such as fault injections;
* ``Tracer.complete(...)`` — the allocation-free fast path for hot
  call sites (the replay loop records one span per transaction without
  a context-manager frame).

Tracing is **off by default and zero-cost when off**: the module-level
``span``/``annotate`` helpers check one global and return a shared
no-op handle, so instrumented code pays a function call and a branch —
nothing is allocated, no clock is read, and simulation results are
bit-identical either way (spans never touch RNG state, traces, or
counters).

Tracks are plain strings (``core0``, ``worker1``, ``wal``,
``recovery``, ``chaos``, ``harness``).  Within one process every track
is driven by a single thread, so spans on a track are properly nested
and their timestamps monotone; per-process buffers collected from
parallel workers are kept separate (one Chrome ``pid`` per buffer) so
the monotonicity guarantee survives merging.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.util.clock import perf_timer_ns
from repro.util.timeunits import ns_to_us

PHASE_COMPLETE = "X"
PHASE_INSTANT = "i"


@dataclass
class SpanEvent:
    """One recorded event (picklable: crosses process boundaries)."""

    name: str
    track: str
    cat: str
    ts_us: float
    dur_us: float = 0.0
    phase: str = PHASE_COMPLETE
    args: dict = field(default_factory=dict)


class Span:
    """Live handle for an open span; ``set(**args)`` attaches metadata."""

    __slots__ = ("_tracer", "name", "track", "cat", "args", "_start_ns")

    def __init__(self, tracer: "Tracer", name: str, track: str, cat: str, args: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.track = track
        self.cat = cat
        self.args = args
        self._start_ns = 0

    def set(self, **args) -> None:
        self.args.update(args)

    def __enter__(self) -> "Span":
        self._start_ns = self._tracer.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._finish(self)
        return False


class _NoopSpan:
    """Shared do-nothing handle returned while tracing is disabled."""

    __slots__ = ()

    def set(self, **args) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class Tracer:
    """An append-only buffer of span events with one monotonic clock."""

    def __init__(self, clock: Callable[[], int] = perf_timer_ns) -> None:
        self.clock = clock
        self.epoch_ns = clock()
        self.events: list[SpanEvent] = []

    # -- recording -----------------------------------------------------------

    def span(self, name: str, track: str = "main", cat: str = "misc", **args) -> Span:
        return Span(self, name, track, cat, args)

    def instant(self, name: str, track: str = "main", cat: str = "misc", **args) -> None:
        self.events.append(
            SpanEvent(name, track, cat, self._us(self.clock()), 0.0, PHASE_INSTANT, args)
        )

    def complete(self, name: str, track: str, cat: str, start_ns: int, **args) -> None:
        """Record a finished span from a raw start timestamp (hot path)."""
        end_ns = self.clock()
        self.events.append(
            SpanEvent(
                name, track, cat,
                self._us(start_ns), ns_to_us(end_ns - start_ns), PHASE_COMPLETE, args,
            )
        )

    def _finish(self, span: Span) -> None:
        end_ns = self.clock()
        self.events.append(
            SpanEvent(
                span.name, span.track, span.cat,
                self._us(span._start_ns), ns_to_us(end_ns - span._start_ns),
                PHASE_COMPLETE, span.args,
            )
        )

    def _us(self, ns: int) -> float:
        return ns_to_us(ns - self.epoch_ns)

    # -- draining ------------------------------------------------------------

    def mark(self) -> int:
        return len(self.events)

    def drain(self, mark: int = 0) -> list[SpanEvent]:
        """Remove and return every event recorded at or after *mark*."""
        drained = self.events[mark:]
        del self.events[mark:]
        return drained


# -- ambient tracer ----------------------------------------------------------

_ACTIVE: Tracer | None = None


def tracer() -> Tracer | None:
    """The active tracer, or None while tracing is disabled."""
    return _ACTIVE


def enabled() -> bool:
    return _ACTIVE is not None


def enable() -> Tracer:
    """Install (and return) a fresh ambient tracer."""
    global _ACTIVE
    _ACTIVE = Tracer()
    return _ACTIVE


def disable() -> None:
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def using_obs(on: bool = True) -> Iterator[Tracer | None]:
    """Scoped enable/disable; restores the previous state on exit."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = Tracer() if on else None
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


def span(name: str, track: str = "main", cat: str = "misc", **args):
    """Open a span on the ambient tracer (no-op handle when disabled)."""
    t = _ACTIVE
    return t.span(name, track, cat, **args) if t is not None else NOOP_SPAN


def annotate(name: str, track: str = "main", cat: str = "misc", **args) -> None:
    """Record an instant event on the ambient tracer (no-op when disabled)."""
    t = _ACTIVE
    if t is not None:
        t.instant(name, track, cat, **args)


def mark() -> int:
    t = _ACTIVE
    return t.mark() if t is not None else 0


def drain_events(mark: int = 0) -> list[SpanEvent]:
    t = _ACTIVE
    return t.drain(mark) if t is not None else []
