"""TMAM-style top-down cycle attribution from a PerfCounters delta.

The paper reports a six-way *stall* breakdown (misses x penalty, which
deliberately over-counts because components overlap); the follow-up
OLAP study (Sirin & Ailamaki, VLDB 2020) instead uses Intel's top-down
method (TMAM), which partitions *elapsed* cycles into four level-1
slots that sum to one:

* **retiring** — cycles doing useful work, ``(instructions /
  ideal_ipc) / cycles``;
* **bad speculation** — branch-misprediction recovery;
* **frontend bound** — instruction-fetch starvation (L1I/L2/LLC
  instruction misses through the overlap model's refill factor);
* **backend bound** — the remainder, split into **memory bound**
  (data/coherence/serial-miss stalls) and **core bound**.

The fractions reuse exactly the constants :class:`~repro.core.cpu.CycleModel`
uses to *produce* elapsed cycles, so on this simulator the slots are an
accounting identity rather than an estimate — which makes the report a
useful cross-check: if backend-bound goes negative the cycle model and
the attribution have diverged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.counters import PerfCounters
from repro.core.cpu import (
    DEFAULT_OVERLAP,
    FRONTEND_REFILL_FACTOR,
    SERIAL_MISS_EXTRA_CYCLES,
    OverlapModel,
)
from repro.core.spec import IVY_BRIDGE, ServerSpec


@dataclass(frozen=True)
class TopDown:
    """Level-1 TMAM slots (fractions of elapsed cycles; sum to 1.0)."""

    retiring: float
    bad_speculation: float
    frontend_bound: float
    backend_bound: float
    # Level-2 split of backend_bound:
    memory_bound: float
    core_bound: float

    def as_dict(self) -> dict[str, float]:
        return {
            "retiring": self.retiring,
            "bad_speculation": self.bad_speculation,
            "frontend_bound": self.frontend_bound,
            "backend_bound": self.backend_bound,
            "memory_bound": self.memory_bound,
            "core_bound": self.core_bound,
        }


ZERO = TopDown(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)


def topdown(
    delta: PerfCounters,
    spec: ServerSpec = IVY_BRIDGE,
    overlap: OverlapModel = DEFAULT_OVERLAP,
    *,
    frontend_refill_factor: float = FRONTEND_REFILL_FACTOR,
    serial_miss_extra_cycles: int = SERIAL_MISS_EXTRA_CYCLES,
) -> TopDown:
    """Attribute *delta*'s elapsed cycles to the four level-1 TMAM slots."""
    cycles = float(delta.cycles)
    if cycles <= 0:
        return ZERO

    retiring = min(1.0, (delta.instructions / spec.ideal_ipc) / cycles)
    bad_spec = delta.mispredicts * spec.branch_misprediction_penalty / cycles

    p1 = spec.l1i.miss_penalty_cycles
    p2 = spec.l2.miss_penalty_cycles
    p3 = spec.llc.miss_penalty_cycles
    frontend = (
        (delta.l1i_misses * p1 + delta.l2i_misses * p2 + delta.llci_misses * p3)
        * overlap.instr
        * frontend_refill_factor
        / cycles
    )

    # The first three slots can overshoot 1.0 on degenerate windows
    # (e.g. counters not produced by the cycle model); rescale so the
    # level-1 identity holds and backend stays non-negative.
    used = retiring + bad_spec + frontend
    if used > 1.0:
        retiring, bad_spec, frontend = (x / used for x in (retiring, bad_spec, frontend))
        used = 1.0
    backend = 1.0 - used

    llcd_parallel = delta.llcd_misses - delta.llcd_serial_misses
    memory_stalls = (
        delta.l1d_misses * p1 * overlap.l1d
        + delta.l2d_misses * p2 * overlap.l2d
        + llcd_parallel * p3 * overlap.llcd
        + delta.llcd_serial_misses * p3 * overlap.llcd_serial
        + delta.coherence_misses * p3 * overlap.coherence
        + delta.llcd_serial_misses * serial_miss_extra_cycles
    )
    memory = min(backend, memory_stalls / cycles)
    core = backend - memory

    return TopDown(retiring, bad_spec, frontend, backend, memory, core)
