"""Result containers for regenerated figures."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.runner import RunResult
from repro.core.metrics import StallBreakdown

IPC = "ipc"
STALLS_PER_KI = "stalls_per_kilo_instruction"
STALLS_PER_TXN = "stalls_per_transaction"
PERCENT_ENGINE = "percent_in_engine"

METRIC_KINDS = (IPC, STALLS_PER_KI, STALLS_PER_TXN, PERCENT_ENGINE)


@dataclass
class FigureResult:
    """One regenerated figure: systems x x-axis values of one metric."""

    figure_id: str
    title: str
    metric: str
    x_label: str
    x_values: list[str]
    systems: list[str]
    cells: dict[tuple[str, str], RunResult] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add(self, system: str, x: str, result: RunResult) -> None:
        self.cells[(system, x)] = result

    def result(self, system: str, x: str) -> RunResult:
        return self.cells[(system, x)]

    def value(self, system: str, x: str) -> float:
        """Scalar value of the figure's metric for one cell."""
        r = self.cells[(system, x)]
        if self.metric == IPC:
            return r.ipc
        if self.metric == PERCENT_ENGINE:
            return 100.0 * r.engine_time_fraction()
        return self.breakdown(system, x).total

    def breakdown(self, system: str, x: str) -> StallBreakdown:
        r = self.cells[(system, x)]
        if self.metric == STALLS_PER_KI:
            return r.stalls_per_kilo_instruction
        if self.metric == STALLS_PER_TXN:
            return r.stalls_per_transaction
        raise ValueError(f"metric {self.metric} has no stall breakdown")

    def series(self, system: str) -> list[float]:
        return [self.value(system, x) for x in self.x_values]
