"""Text rendering of regenerated figures.

The harness prints the same rows/series the paper's figures plot:
IPC tables, six-component stall breakdowns (side by side, the paper's
convention), and the Figure 7 engine-time percentages.
"""

from __future__ import annotations

from repro.bench.results import FigureResult, IPC, PERCENT_ENGINE, STALLS_PER_KI
from repro.core.metrics import COMPONENT_LABELS, STALL_COMPONENTS
from repro.core.spec import ServerSpec, table1_rows


def _rule(width: int) -> str:
    return "-" * width


def render_table1(spec: ServerSpec) -> str:
    rows = table1_rows(spec)
    key_width = max(len(k) for k, _ in rows)
    lines = ["Table 1: Server Parameters", _rule(60)]
    lines += [f"{k:<{key_width}}  {v}" for k, v in rows]
    return "\n".join(lines)


def render_figure(figure: FigureResult) -> str:
    """Render a figure as aligned text tables."""
    if figure.metric in (IPC, PERCENT_ENGINE):
        body = _render_scalar(figure)
    else:
        body = _render_stalls(figure)
    header = f"{figure.figure_id}: {figure.title}"
    parts = [header, _rule(len(header)), body]
    if figure.notes:
        parts.append("")
        parts.extend(f"note: {n}" for n in figure.notes)
    return "\n".join(parts)


def _render_scalar(figure: FigureResult) -> str:
    unit = "IPC" if figure.metric == IPC else "% in engine"
    sys_width = max(len(s) for s in figure.systems + ["system"])
    col_width = max(7, max(len(x) for x in figure.x_values) + 1)
    head = f"{'system':<{sys_width}}" + "".join(f"{x:>{col_width}}" for x in figure.x_values)
    lines = [f"metric: {unit} (x: {figure.x_label})", head]
    for system in figure.systems:
        cells = "".join(f"{figure.value(system, x):>{col_width}.2f}" for x in figure.x_values)
        lines.append(f"{system:<{sys_width}}{cells}")
    return "\n".join(lines)


def _render_stalls(figure: FigureResult) -> str:
    per = "1000 instructions" if figure.metric == STALLS_PER_KI else "transaction"
    sys_width = max(len(s) for s in figure.systems + ["system"]) + 1
    x_width = max(len(x) for x in figure.x_values + [figure.x_label]) + 1
    comp_width = 9
    head = (
        f"{'system':<{sys_width}}{figure.x_label:<{x_width}}"
        + "".join(f"{COMPONENT_LABELS[c]:>{comp_width}}" for c in STALL_COMPONENTS)
        + f"{'total':>{comp_width}}"
    )
    lines = [f"metric: stall cycles per {per} (components side by side)", head]
    for system in figure.systems:
        for x in figure.x_values:
            b = figure.breakdown(system, x)
            cells = "".join(f"{getattr(b, c):>{comp_width}.0f}" for c in STALL_COMPONENTS)
            lines.append(f"{system:<{sys_width}}{x:<{x_width}}{cells}{b.total:>{comp_width}.0f}")
    return "\n".join(lines)


def render_topdown(figure: FigureResult) -> str:
    """TMAM-style top-down attribution for every cell of a figure.

    Rendered alongside the paper's six-way stall split (``repro-bench
    top <fig>``): the four level-1 slots sum to 100% of elapsed cycles,
    with backend-bound split into memory/core at level 2.
    """
    from repro.obs.topdown import topdown

    sys_width = max(len(s) for s in figure.systems + ["system"]) + 1
    x_width = max(len(x) for x in figure.x_values + [figure.x_label]) + 1
    col = 10
    head = (
        f"{'system':<{sys_width}}{figure.x_label:<{x_width}}"
        + "".join(
            f"{label:>{col}}"
            for label in ("retiring", "bad-spec", "frontend", "backend", "(mem", "core)")
        )
    )
    lines = [
        "top-down attribution (% of elapsed cycles; TMAM level 1, backend split)",
        head,
    ]
    for system in figure.systems:
        for x in figure.x_values:
            r = figure.result(system, x)
            td = topdown(r.counters, r.server)
            cells = "".join(
                f"{100.0 * v:>{col}.1f}"
                for v in (
                    td.retiring, td.bad_speculation, td.frontend_bound,
                    td.backend_bound, td.memory_bound, td.core_bound,
                )
            )
            lines.append(f"{system:<{sys_width}}{x:<{x_width}}{cells}")
    return "\n".join(lines)


def render_summary_line(figure: FigureResult) -> str:
    """One-line digest (used by the benchmark harness logs)."""
    spans = []
    for system in figure.systems:
        values = figure.series(system)
        spans.append(f"{system}={min(values):.2f}..{max(values):.2f}")
    return f"{figure.figure_id} [{figure.metric}] " + "  ".join(spans)


# -- latency percentiles ------------------------------------------------------

PERCENTILES = (50.0, 99.0, 99.9)
"""The percentiles every latency report states: median, tail, far tail."""


def percentile_label(q: float) -> str:
    """p50 / p99 / p999-style label for a percentile value."""
    text = f"{q:g}".replace(".", "")
    return f"p{text}"


def render_latency_percentiles(
    samples, *, unit_ns: int = 1000, unit: str = "us",
    percentiles: tuple[float, ...] = PERCENTILES,
) -> str:
    """One aligned line of nearest-rank percentiles for *samples* (ns).

    Selection goes through :func:`repro.obs.nearest_rank` — an actual
    sample, no interpolation — so the same multiset of samples renders
    the same line no matter how it was merged (serial vs ``--jobs N``).
    """
    from repro.obs import nearest_rank

    if not samples:
        return "  ".join(f"{percentile_label(q)}=-" for q in percentiles)
    parts = []
    for q in percentiles:
        value = nearest_rank(samples, q) / unit_ns
        parts.append(f"{percentile_label(q)}={value:,.1f}{unit}")
    return "  ".join(parts)


# -- engine statistics and chaos runs ----------------------------------------


def render_engine_stats(stats) -> str:
    """Per-procedure commit/abort/retry/backoff table for an
    :class:`repro.engines.base.EngineStats`."""
    procedures = sorted(
        set(stats.commits_by_procedure)
        | set(stats.aborts_by_procedure)
        | set(stats.retries_by_procedure)
    )
    name_width = max([len(p) for p in procedures] + [len("procedure")])
    head = (
        f"{'procedure':<{name_width}}{'commits':>9}{'aborts':>8}"
        f"{'retries':>9}{'backoff-cyc':>13}"
    )
    lines = [head, _rule(len(head))]
    for procedure in procedures:
        lines.append(
            f"{procedure:<{name_width}}"
            f"{stats.commits_by_procedure.get(procedure, 0):>9}"
            f"{stats.aborts_by_procedure.get(procedure, 0):>8}"
            f"{stats.retries_by_procedure.get(procedure, 0):>9}"
            f"{stats.backoff_by_procedure.get(procedure, 0.0):>13.0f}"
        )
    lines.append(
        f"{'total':<{name_width}}{stats.commits:>9}{stats.aborts:>8}"
        f"{sum(stats.retries_by_procedure.values()):>9}{stats.backoff_cycles:>13.0f}"
    )
    if stats.aborts_by_reason:
        reasons = ", ".join(
            f"{reason}={count}"
            for reason, count in sorted(stats.aborts_by_reason.items())
        )
        lines.append(f"abort reasons: {reasons}")
    return "\n".join(lines)


def render_chaos_result(result) -> str:
    """Human-readable report for one :class:`repro.faults.ChaosResult`."""
    repl = f" [replicas={result.replicas} ack={result.ack}]" if result.replicas else ""
    header = (
        f"chaos {result.system} x {result.workload}{repl}: "
        f"{'PASS' if result.ok else 'FAIL'}"
    )
    lines = [header, _rule(len(header))]
    stats = result.stats
    lines.append(
        f"attempted {result.attempted}  committed {stats.commits}  "
        f"aborted {stats.aborts}  crashes {len(result.crashes)}"
    )
    for crash in result.crashes:
        tail = " torn" if crash.torn_tail else ""
        ckpt = (
            f" from ckpt lsn {crash.checkpoint_lsn}"
            if crash.checkpoint_lsn is not None
            else ""
        )
        lines.append(
            f"  crash @ {crash.point} (hit {crash.hit}, txn {crash.txn_index}): "
            f"lost {crash.lost_records}{tail}, truncated {crash.truncated_records}, "
            f"redo {crash.redo_applied}, undo {crash.undo_applied}{ckpt}"
        )
        if crash.winner_id is not None:
            lines.append(
                f"    failover -> replica{crash.winner_id} "
                f"(durable lsn {crash.winner_lsn}, epoch {crash.epoch})"
            )
        for problem in crash.problems:
            lines.append(f"    VIOLATION: {problem}")
    for problem in result.final_problems:
        lines.append(f"  FINAL VIOLATION: {problem}")
    if result.replicas:
        lines.append(
            f"  acks: {result.acked} acked, {result.unacked} unacked; "
            f"replica digests {list(result.replica_digests)}"
        )
        if result.net_faults:
            fired = "  ".join(
                f"{kind}={count}" for kind, count in sorted(result.net_faults.items())
            )
            lines.append(f"  net faults fired: {fired}")
        if result.net_counters:
            moved = "  ".join(
                f"{key}={value}"
                for key, value in sorted(result.net_counters.items())
                if value
            )
            lines.append(f"  net traffic: {moved}")
    if not result.ok:
        lines.append(
            "  failing invariants: " + ", ".join(result.failed_invariants())
        )
    lines.append(f"  digest {result.digest()}")
    lines.append(render_engine_stats(stats))
    return "\n".join(lines)


def render_sharded_chaos_result(result) -> str:
    """Report for one :class:`repro.sharding.ShardedChaosResult`."""
    repl = f" replicas={result.replicas} ack={result.ack}" if result.replicas else ""
    header = (
        f"sharded chaos {result.system} x tpcc "
        f"[shards={result.n_shards} remote={result.remote_pct:g}%{repl} "
        f"seed={result.seed}]: {'PASS' if result.ok else 'FAIL'}"
    )
    c = result.counters
    lines = [header, _rule(len(header))]
    lines.append(
        f"attempted {result.attempted}  committed {result.committed}  "
        f"local {c['local']}  cross-shard {c['cross']} "
        f"(global: {c['committed_global']} committed, "
        f"{c['aborted_global']} aborted, {c['acked_global']} acked, "
        f"{c['unacked_global']} unacked)"
    )
    lines.append(
        f"  crashes {len(result.crashes)}  recoveries {c['recoveries']}  "
        f"in-doubt resolved {c['in_doubt_resolved']}  "
        f"re-prepares {c['reprepares']}  prepare stalls {c['prepare_stalls']}"
    )
    for point, hit, shard in result.crashes:
        lines.append(f"  crash @ {point} (hit {hit}) on shard {shard}")
    if result.fired:
        fired = "  ".join(
            f"{kind}={count}" for kind, count in sorted(result.fired.items())
        )
        lines.append(f"  faults fired: {fired}")
    moved = "  ".join(
        f"{key}={value}"
        for key, value in sorted(result.net_counters.items())
        if value
    )
    if moved:
        lines.append(f"  2pc fabric: {moved}")
    for problem in result.problems:
        lines.append(f"  VIOLATION: {problem}")
    if not result.ok:
        lines.append(
            "  failing invariants: " + ", ".join(result.failed_invariants())
        )
    lines.append(f"  digest {result.digest()}")
    return "\n".join(lines)
