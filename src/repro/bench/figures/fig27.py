"""Figure 27: String vs Long data types, micro-benchmark (read-write).

Appendix A.3's read-write counterpart of Figure 15; the String/Long
data-stall gap narrows because the update's write re-uses the line the
read just fetched.
"""

from __future__ import annotations

from repro.bench.figures.fig15 import run_variant
from repro.bench.results import FigureResult


def run(quick: bool = False) -> list[FigureResult]:
    return [
        run_variant(
            "Figure 27",
            "Stalls/kI for String and Long data types (micro, read-write)",
            read_write=True,
            quick=quick,
        )
    ]
