"""Figure 21: Stall cycles per 1000 instructions vs database size (read-write, appendix).

Micro-benchmark, 1 row per transaction, all five systems.
"""

from __future__ import annotations

from repro.bench.figures.common import micro_size_sweep
from repro.bench.results import FigureResult, STALLS_PER_KI


def run(quick: bool = False) -> list[FigureResult]:
    return [
        micro_size_sweep(
            "Figure 21",
            "Stall cycles per 1000 instructions vs database size (read-write, appendix)",
            STALLS_PER_KI,
            read_write=True,
            quick=quick,
            sizes=None,
        )
    ]
