"""Shared builders for the per-figure regeneration modules.

Every figure in the paper is a sweep of (systems x one x-axis) reporting
one metric; these helpers build those sweeps so each ``figNN`` module
only states *what the figure varies*.
"""

from __future__ import annotations

from typing import Callable

from repro.bench.results import FigureResult
from repro.bench.runner import ExperimentRunner, RunResult, RunSpec
from repro.engines.config import EngineConfig
from repro.engines.registry import ALL_SYSTEMS, PAPER_LABELS, canonical_name
from repro.storage.record import ColumnType, LONG
from repro.workloads.base import PAPER_DB_SIZES
from repro.workloads.microbench import MicroBenchmark
from repro.workloads.tpcb import TPCB
from repro.workloads.tpcc import TPCC

MICRO_SIZES = list(PAPER_DB_SIZES)  # ["1MB", "10MB", "10GB", "100GB"]
ROWS_SWEEP = [1, 10, 100]
TPC_DB_BYTES = 100 << 30
MULTITHREADED_SYSTEMS = ["shore-mt", "dbms-d", "voltdb", "dbms-m"]
"""Section 7 drops HyPer (its demo is single-threaded only)."""

MULTITHREADED_CORES = 4
"""Workers per multi-threaded run (one partition per worker)."""


def engine_config_for(system: str, workload: str, **overrides) -> EngineConfig:
    """The paper's per-system configuration for a workload.

    DBMS M uses its hash index for the micro-benchmarks and TPC-B and
    its cache-conscious B-tree for TPC-C (Section 3).
    """
    kwargs: dict = {"materialize_threshold": 0}
    if canonical_name(system) == "dbms-m" and workload == "tpcc":
        kwargs["index_kind"] = "cc_btree"
    kwargs.update(overrides)
    return EngineConfig(**kwargs)


def run_cell(
    system: str,
    workload_factory: Callable,
    *,
    quick: bool = False,
    engine_config: EngineConfig | None = None,
    n_cores: int = 1,
) -> RunResult:
    spec = RunSpec(
        system=canonical_name(system),
        engine_config=engine_config or EngineConfig(materialize_threshold=0),
        n_cores=n_cores,
    )
    if quick:
        spec = spec.quick()
    return ExperimentRunner(spec, workload_factory).run()


def labels(systems: list[str]) -> list[str]:
    return [PAPER_LABELS[canonical_name(s)] for s in systems]


def micro_size_sweep(
    figure_id: str,
    title: str,
    metric: str,
    *,
    read_write: bool,
    quick: bool = False,
    sizes: list[str] | None = None,
    systems: list[str] | None = None,
) -> FigureResult:
    """Figures 1-3 / 20-22: database-size sweep of the micro-benchmark."""
    sizes = sizes or MICRO_SIZES
    systems = systems or list(ALL_SYSTEMS)
    figure = FigureResult(
        figure_id=figure_id,
        title=title,
        metric=metric,
        x_label="database size",
        x_values=sizes,
        systems=labels(systems),
    )
    for system in systems:
        for size in sizes:
            db_bytes = PAPER_DB_SIZES[size]
            factory = lambda b=db_bytes: MicroBenchmark(
                db_bytes=b, rows_per_txn=1, read_write=read_write
            )
            result = run_cell(
                system, factory, quick=quick,
                engine_config=engine_config_for(system, "micro"),
            )
            figure.add(PAPER_LABELS[canonical_name(system)], size, result)
    return figure


def micro_rows_sweep(
    figure_id: str,
    title: str,
    metric: str,
    *,
    read_write: bool,
    quick: bool = False,
    rows_values: list[int] | None = None,
    systems: list[str] | None = None,
    column_type: ColumnType = LONG,
    engine_config_fn: Callable[[str], EngineConfig] | None = None,
) -> FigureResult:
    """Figures 4-7 / 23-25: work-per-transaction sweep at 100 GB."""
    rows_values = rows_values or ROWS_SWEEP
    systems = systems or list(ALL_SYSTEMS)
    figure = FigureResult(
        figure_id=figure_id,
        title=title,
        metric=metric,
        x_label="rows per txn",
        x_values=[str(r) for r in rows_values],
        systems=labels(systems),
    )
    for system in systems:
        config = (
            engine_config_fn(system) if engine_config_fn
            else engine_config_for(system, "micro")
        )
        for rows in rows_values:
            factory = lambda r=rows: MicroBenchmark(
                db_bytes=TPC_DB_BYTES, rows_per_txn=r,
                read_write=read_write, column_type=column_type,
            )
            result = run_cell(system, factory, quick=quick, engine_config=config)
            figure.add(PAPER_LABELS[canonical_name(system)], str(rows), result)
    return figure


def tpc_sweep(
    figure_id: str,
    title: str,
    metric: str,
    *,
    benchmark: str,
    quick: bool = False,
    systems: list[str] | None = None,
    n_cores: int = 1,
) -> FigureResult:
    """Figures 8-12 / 16-19: TPC-B or TPC-C at 100 GB scale."""
    systems = systems or list(ALL_SYSTEMS)
    figure = FigureResult(
        figure_id=figure_id,
        title=title,
        metric=metric,
        x_label="benchmark",
        x_values=[benchmark.upper().replace("TPC", "TPC-")],
        systems=labels(systems),
    )
    x = figure.x_values[0]
    for system in systems:
        if benchmark == "tpcb":
            factory = lambda: TPCB(db_bytes=TPC_DB_BYTES)
        else:
            factory = lambda: TPCC(db_bytes=TPC_DB_BYTES)
        result = run_cell(
            system, factory, quick=quick,
            engine_config=engine_config_for(system, benchmark),
            n_cores=n_cores,
        )
        figure.add(PAPER_LABELS[canonical_name(system)], x, result)
    return figure
