"""Shared builders for the per-figure regeneration modules.

Every figure in the paper is a sweep of (systems x one x-axis) reporting
one metric; these helpers build those sweeps so each ``figNN`` module
only states *what the figure varies*.

Sweeps are built as a flat list of cells first and then dispatched
through :func:`repro.bench.parallel.run_cells`, so an ambient ``--jobs``
setting fans the independent cells (and their repetitions) out across
worker processes.  Workloads are described with picklable
:func:`~repro.bench.parallel.workload_spec` descriptors for exactly that
reason.  Results are bit-identical to a serial run either way.
"""

from __future__ import annotations

from typing import Callable

from repro.bench.parallel import CellTask, run_cells, workload_spec
from repro.bench.results import FigureResult
from repro.bench.runner import ExperimentRunner, RunResult, RunSpec
from repro.engines.config import EngineConfig
from repro.engines.registry import ALL_SYSTEMS, PAPER_LABELS, canonical_name
from repro.storage.record import ColumnType, LONG
from repro.workloads.base import PAPER_DB_SIZES

MICRO_SIZES = list(PAPER_DB_SIZES)  # ["1MB", "10MB", "10GB", "100GB"]
ROWS_SWEEP = [1, 10, 100]
TPC_DB_BYTES = 100 << 30
MULTITHREADED_SYSTEMS = ["shore-mt", "dbms-d", "voltdb", "dbms-m"]
"""Section 7 drops HyPer (its demo is single-threaded only)."""

MULTITHREADED_CORES = 4
"""Workers per multi-threaded run (one partition per worker)."""


def engine_config_for(system: str, workload: str, **overrides) -> EngineConfig:
    """The paper's per-system configuration for a workload.

    DBMS M uses its hash index for the micro-benchmarks and TPC-B and
    its cache-conscious B-tree for TPC-C (Section 3).
    """
    kwargs: dict = {"materialize_threshold": 0}
    if canonical_name(system) == "dbms-m" and workload == "tpcc":
        kwargs["index_kind"] = "cc_btree"
    kwargs.update(overrides)
    return EngineConfig(**kwargs)


def cell_spec(
    system: str,
    *,
    quick: bool = False,
    engine_config: EngineConfig | None = None,
    n_cores: int = 1,
) -> RunSpec:
    """The RunSpec for one figure cell."""
    spec = RunSpec(
        system=canonical_name(system),
        engine_config=engine_config or EngineConfig(materialize_threshold=0),
        n_cores=n_cores,
    )
    return spec.quick() if quick else spec


def run_cell(
    system: str,
    workload_factory: Callable,
    *,
    quick: bool = False,
    engine_config: EngineConfig | None = None,
    n_cores: int = 1,
) -> RunResult:
    spec = cell_spec(system, quick=quick, engine_config=engine_config, n_cores=n_cores)
    return ExperimentRunner(spec, workload_factory).run()


def labels(systems: list[str]) -> list[str]:
    return [PAPER_LABELS[canonical_name(s)] for s in systems]


def fill_figure(
    figure: FigureResult, keyed_cells: list[tuple[str, str, CellTask]]
) -> FigureResult:
    """Run *keyed_cells* ((system label, x, cell)) and add every result."""
    results = run_cells([cell for _, _, cell in keyed_cells])
    for (system_label, x, _), result in zip(keyed_cells, results):
        figure.add(system_label, x, result)
    return figure


def micro_size_sweep(
    figure_id: str,
    title: str,
    metric: str,
    *,
    read_write: bool,
    quick: bool = False,
    sizes: list[str] | None = None,
    systems: list[str] | None = None,
) -> FigureResult:
    """Figures 1-3 / 20-22: database-size sweep of the micro-benchmark."""
    sizes = sizes or MICRO_SIZES
    systems = systems or list(ALL_SYSTEMS)
    figure = FigureResult(
        figure_id=figure_id,
        title=title,
        metric=metric,
        x_label="database size",
        x_values=sizes,
        systems=labels(systems),
    )
    keyed_cells = []
    for system in systems:
        for size in sizes:
            workload = workload_spec(
                "micro",
                db_bytes=PAPER_DB_SIZES[size],
                rows_per_txn=1,
                read_write=read_write,
            )
            spec = cell_spec(
                system, quick=quick, engine_config=engine_config_for(system, "micro")
            )
            keyed_cells.append(
                (PAPER_LABELS[canonical_name(system)], size, CellTask(spec, workload))
            )
    return fill_figure(figure, keyed_cells)


def micro_rows_sweep(
    figure_id: str,
    title: str,
    metric: str,
    *,
    read_write: bool,
    quick: bool = False,
    rows_values: list[int] | None = None,
    systems: list[str] | None = None,
    column_type: ColumnType = LONG,
    engine_config_fn: Callable[[str], EngineConfig] | None = None,
) -> FigureResult:
    """Figures 4-7 / 23-25: work-per-transaction sweep at 100 GB."""
    rows_values = rows_values or ROWS_SWEEP
    systems = systems or list(ALL_SYSTEMS)
    figure = FigureResult(
        figure_id=figure_id,
        title=title,
        metric=metric,
        x_label="rows per txn",
        x_values=[str(r) for r in rows_values],
        systems=labels(systems),
    )
    keyed_cells = []
    for system in systems:
        config = (
            engine_config_fn(system) if engine_config_fn
            else engine_config_for(system, "micro")
        )
        for rows in rows_values:
            workload = workload_spec(
                "micro",
                db_bytes=TPC_DB_BYTES,
                rows_per_txn=rows,
                read_write=read_write,
                column_type=column_type,
            )
            spec = cell_spec(system, quick=quick, engine_config=config)
            keyed_cells.append(
                (PAPER_LABELS[canonical_name(system)], str(rows), CellTask(spec, workload))
            )
    return fill_figure(figure, keyed_cells)


def tpc_sweep(
    figure_id: str,
    title: str,
    metric: str,
    *,
    benchmark: str,
    quick: bool = False,
    systems: list[str] | None = None,
    n_cores: int = 1,
) -> FigureResult:
    """Figures 8-12 / 16-19: TPC-B or TPC-C at 100 GB scale."""
    systems = systems or list(ALL_SYSTEMS)
    figure = FigureResult(
        figure_id=figure_id,
        title=title,
        metric=metric,
        x_label="benchmark",
        x_values=[benchmark.upper().replace("TPC", "TPC-")],
        systems=labels(systems),
    )
    x = figure.x_values[0]
    keyed_cells = []
    for system in systems:
        workload = workload_spec(benchmark, db_bytes=TPC_DB_BYTES)
        spec = cell_spec(
            system,
            quick=quick,
            engine_config=engine_config_for(system, benchmark),
            n_cores=n_cores,
        )
        keyed_cells.append(
            (PAPER_LABELS[canonical_name(system)], x, CellTask(spec, workload))
        )
    return fill_figure(figure, keyed_cells)


def multithreaded_sweep(
    figure_id: str,
    title: str,
    metric: str,
    *,
    workload,
    x_value: str,
    quick: bool = False,
    workload_kind: str = "micro",
    systems: list[str] | None = None,
) -> FigureResult:
    """Figures 16-19: Section 7's one-worker-per-core runs.

    *workload* is a picklable workload descriptor shared by every
    system; *workload_kind* picks the per-system engine config.
    """
    systems = systems or list(MULTITHREADED_SYSTEMS)
    figure = FigureResult(
        figure_id=figure_id,
        title=title,
        metric=metric,
        x_label="benchmark",
        x_values=[x_value],
        systems=labels(systems),
    )
    keyed_cells = []
    for system in systems:
        spec = cell_spec(
            system,
            quick=quick,
            engine_config=engine_config_for(system, workload_kind),
            n_cores=MULTITHREADED_CORES,
        )
        keyed_cells.append(
            (PAPER_LABELS[canonical_name(system)], x_value, CellTask(spec, workload))
        )
    return fill_figure(figure, keyed_cells)
