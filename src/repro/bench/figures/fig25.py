"""Figure 25: Stall cycles per transaction vs rows per transaction (read-write, appendix).

Micro-benchmark on the 100 GB database, rows/txn swept over 1, 10, 100.
"""

from __future__ import annotations

from repro.bench.figures.common import micro_rows_sweep
from repro.bench.results import FigureResult, STALLS_PER_TXN


def run(quick: bool = False) -> list[FigureResult]:
    return [
        micro_rows_sweep(
            "Figure 25",
            "Stall cycles per transaction vs rows per transaction (read-write, appendix)",
            STALLS_PER_TXN,
            read_write=True,
            quick=quick,
        )
    ]
