"""Table 1: server parameters of the simulated machine.

Not an experiment — it prints the hardware configuration every other
figure runs on, mirroring the paper's Table 1 exactly.
"""

from __future__ import annotations

from repro.bench.report import render_table1
from repro.core.spec import IVY_BRIDGE


def run(quick: bool = False) -> str:
    return render_table1(IVY_BRIDGE)
