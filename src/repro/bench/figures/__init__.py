"""Figure registry: every table and figure of the paper by id."""

from __future__ import annotations

from importlib import import_module

REGISTRY: dict[str, str] = {
    "table1": "repro.bench.figures.table1",
    **{f"fig{i}": f"repro.bench.figures.fig{i:02d}" for i in range(1, 29)},
}

ALL_IDS = list(REGISTRY)


def load(figure_id: str):
    """Return the figure module for *figure_id* (e.g. ``fig1``/``fig01``)."""
    key = figure_id.lower().replace("figure", "fig").replace(" ", "")
    if key.startswith("fig") and key[3:].isdigit():
        key = f"fig{int(key[3:])}"
    if key not in REGISTRY:
        raise KeyError(f"unknown figure {figure_id!r}; known: {', '.join(ALL_IDS)}")
    return import_module(REGISTRY[key])


def run_figure(figure_id: str, quick: bool = False, jobs: int | None = None):
    """Run one figure; returns a list of FigureResult (or a string for table1).

    *jobs* > 1 fans the figure's independent cells/repetitions out over
    a process pool (see :mod:`repro.bench.parallel`); output is
    bit-identical to the serial default.
    """
    from repro.bench.parallel import using_jobs

    with using_jobs(jobs):
        return load(figure_id).run(quick=quick)
