"""Figure 23: Effect of work per transaction on the IPC value (read-write, appendix).

Micro-benchmark on the 100 GB database, rows/txn swept over 1, 10, 100.
"""

from __future__ import annotations

from repro.bench.figures.common import micro_rows_sweep
from repro.bench.results import FigureResult, IPC


def run(quick: bool = False) -> list[FigureResult]:
    return [
        micro_rows_sweep(
            "Figure 23",
            "Effect of work per transaction on the IPC value (read-write, appendix)",
            IPC,
            read_write=True,
            quick=quick,
        )
    ]
