"""Figure 18: Stall cycles per 1000 instructions, multi-threaded micro-benchmark.

Section 7: one worker per core, whole transactions interleaved
round-robin, partitioned engines homed single-sited, and counters
averaged per worker.  HyPer is excluded (its demo is single-threaded).
"""

from __future__ import annotations

from repro.bench.figures.common import TPC_DB_BYTES, multithreaded_sweep
from repro.bench.parallel import workload_spec
from repro.bench.results import FigureResult, STALLS_PER_KI


def run(quick: bool = False) -> list[FigureResult]:
    return [
        multithreaded_sweep(
            "Figure 18",
            "Stall cycles per 1000 instructions, multi-threaded micro-benchmark",
            STALLS_PER_KI,
            workload=workload_spec(
                "micro", db_bytes=TPC_DB_BYTES, rows_per_txn=1, read_write=False
            ),
            x_value="micro (RO, 1 row)",
            quick=quick,
        )
    ]
