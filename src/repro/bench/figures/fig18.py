"""Figure 18: Stall cycles per 1000 instructions, multi-threaded micro-benchmark.

Section 7: one worker per core, whole transactions interleaved
round-robin, partitioned engines homed single-sited, and counters
averaged per worker.  HyPer is excluded (its demo is single-threaded).
"""

from __future__ import annotations

from repro.bench.figures.common import (
    MULTITHREADED_CORES,
    MULTITHREADED_SYSTEMS,
    TPC_DB_BYTES,
    engine_config_for,
    labels,
    run_cell,
)
from repro.bench.results import FigureResult, STALLS_PER_KI
from repro.engines.registry import PAPER_LABELS, canonical_name
from repro.workloads.microbench import MicroBenchmark


def run(quick: bool = False) -> list[FigureResult]:
    figure = FigureResult(
        figure_id="Figure 18",
        title="Stall cycles per 1000 instructions, multi-threaded micro-benchmark",
        metric=STALLS_PER_KI,
        x_label="benchmark",
        x_values=["micro (RO, 1 row)"],
        systems=labels(list(MULTITHREADED_SYSTEMS)),
    )
    x = figure.x_values[0]
    for system in MULTITHREADED_SYSTEMS:
        factory = lambda: MicroBenchmark(db_bytes=TPC_DB_BYTES, rows_per_txn=1, read_write=False)
        result = run_cell(
            system,
            factory,
            quick=quick,
            engine_config=engine_config_for(system, "micro"),
            n_cores=MULTITHREADED_CORES,
        )
        figure.add(PAPER_LABELS[canonical_name(system)], x, result)
    return [figure]
