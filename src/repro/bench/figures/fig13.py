"""Figure 13: index type x compilation, micro-benchmark (read-only).

Section 6.1: DBMS M is the one system that exposes both knobs — hash
index vs cache-conscious B-tree, compilation on vs off.  Workload is
the read-only micro-benchmark probing 10 rows per transaction over the
100 GB database.  Expected shapes: compilation roughly halves the
instruction stalls for either index, and the B-tree's LLC data stalls
run 2-4x the hash index's (a tree probe chases many more pointers than
a bucket lookup).
"""

from __future__ import annotations

from repro.bench.figures.common import TPC_DB_BYTES, cell_spec, fill_figure
from repro.bench.parallel import CellTask, workload_spec
from repro.bench.results import FigureResult, STALLS_PER_KI
from repro.engines.config import EngineConfig

CONFIGS = [
    ("Hash w/ compilation", "hash", True),
    ("Hash w/o compilation", "hash", False),
    ("B-tree w/ compilation", "cc_btree", True),
    ("B-tree w/o compilation", "cc_btree", False),
]

ROWS_PER_TXN = 10


def run_variant(
    figure_id: str, title: str, *, read_write: bool, quick: bool = False
) -> FigureResult:
    figure = FigureResult(
        figure_id=figure_id,
        title=title,
        metric=STALLS_PER_KI,
        x_label="configuration",
        x_values=[label for label, _, _ in CONFIGS],
        systems=["DBMS M"],
    )
    workload = workload_spec(
        "micro", db_bytes=TPC_DB_BYTES, rows_per_txn=ROWS_PER_TXN, read_write=read_write
    )
    keyed_cells = []
    for label, index_kind, compilation in CONFIGS:
        config = EngineConfig(
            index_kind=index_kind, compilation=compilation, materialize_threshold=0
        )
        spec = cell_spec("dbms-m", quick=quick, engine_config=config)
        keyed_cells.append(("DBMS M", label, CellTask(spec, workload)))
    return fill_figure(figure, keyed_cells)


def run(quick: bool = False) -> list[FigureResult]:
    return [
        run_variant(
            "Figure 13",
            "Stalls/kI for index structures with/without compilation (micro, read-only)",
            read_write=False,
            quick=quick,
        )
    ]
