"""Figure 9: Stall cycles per 1000 instructions while running TPC-B.

100 GB-scale TPC-B database, single worker thread.
"""

from __future__ import annotations

from repro.bench.figures.common import tpc_sweep
from repro.bench.results import FigureResult, STALLS_PER_KI


def run(quick: bool = False) -> list[FigureResult]:
    return [
        tpc_sweep(
            "Figure 9",
            "Stall cycles per 1000 instructions while running TPC-B",
            STALLS_PER_KI,
            benchmark="tpcb",
            quick=quick,
        )
    ]
