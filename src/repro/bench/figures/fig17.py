"""Figure 17: IPC, multi-threaded TPC-C.

Section 7: one worker per core, whole transactions interleaved
round-robin, partitioned engines homed single-sited, and counters
averaged per worker.  HyPer is excluded (its demo is single-threaded).
"""

from __future__ import annotations

from repro.bench.figures.common import TPC_DB_BYTES, multithreaded_sweep
from repro.bench.parallel import workload_spec
from repro.bench.results import FigureResult, IPC


def run(quick: bool = False) -> list[FigureResult]:
    return [
        multithreaded_sweep(
            "Figure 17",
            "IPC, multi-threaded TPC-C",
            IPC,
            workload=workload_spec("tpcc", db_bytes=TPC_DB_BYTES),
            x_value="TPC-C",
            quick=quick,
            workload_kind="tpcc",
        )
    ]
