"""Figure 10: The IPC values while running TPC-C.

100 GB-scale TPC-C database, single worker thread.
"""

from __future__ import annotations

from repro.bench.figures.common import tpc_sweep
from repro.bench.results import FigureResult, IPC


def run(quick: bool = False) -> list[FigureResult]:
    return [
        tpc_sweep(
            "Figure 10",
            "The IPC values while running TPC-C",
            IPC,
            benchmark="tpcc",
            quick=quick,
        )
    ]
