"""Figure 19: Stall cycles per 1000 instructions, multi-threaded TPC-C.

Section 7: one worker per core, whole transactions interleaved
round-robin, partitioned engines homed single-sited, and counters
averaged per worker.  HyPer is excluded (its demo is single-threaded).
"""

from __future__ import annotations

from repro.bench.figures.common import (
    MULTITHREADED_CORES,
    MULTITHREADED_SYSTEMS,
    TPC_DB_BYTES,
    engine_config_for,
    labels,
    run_cell,
)
from repro.bench.results import FigureResult, STALLS_PER_KI
from repro.engines.registry import PAPER_LABELS, canonical_name
from repro.workloads.tpcc import TPCC


def run(quick: bool = False) -> list[FigureResult]:
    figure = FigureResult(
        figure_id="Figure 19",
        title="Stall cycles per 1000 instructions, multi-threaded TPC-C",
        metric=STALLS_PER_KI,
        x_label="benchmark",
        x_values=["TPC-C"],
        systems=labels(list(MULTITHREADED_SYSTEMS)),
    )
    x = figure.x_values[0]
    for system in MULTITHREADED_SYSTEMS:
        factory = lambda: TPCC(db_bytes=TPC_DB_BYTES)
        result = run_cell(
            system,
            factory,
            quick=quick,
            engine_config=engine_config_for(system, "tpcc"),
            n_cores=MULTITHREADED_CORES,
        )
        figure.add(PAPER_LABELS[canonical_name(system)], x, result)
    return [figure]
