"""Figure 26: index type x compilation, micro-benchmark (read-write).

Appendix A.3's read-write counterpart of Figure 13.
"""

from __future__ import annotations

from repro.bench.figures.fig13 import run_variant
from repro.bench.results import FigureResult


def run(quick: bool = False) -> list[FigureResult]:
    return [
        run_variant(
            "Figure 26",
            "Stalls/kI for index structures with/without compilation (micro, read-write)",
            read_write=True,
            quick=quick,
        )
    ]
