"""Figure 20: Effect of database size on the IPC value (read-write, appendix).

Micro-benchmark, 1 row per transaction, all five systems.
"""

from __future__ import annotations

from repro.bench.figures.common import micro_size_sweep
from repro.bench.results import FigureResult, IPC


def run(quick: bool = False) -> list[FigureResult]:
    return [
        micro_size_sweep(
            "Figure 20",
            "Effect of database size on the IPC value (read-write, appendix)",
            IPC,
            read_write=True,
            quick=quick,
            sizes=None,
        )
    ]
