"""Figure 7: percentage of execution time inside the OLTP engine.

Micro-benchmark (read-only) at 100 GB, rows/txn swept over 1, 10, 100;
the paper shows DBMS D, VoltDB and DBMS M.  The percentage comes from
the profiler's per-code-module cycle attribution, grouping modules into
engine vs everything outside it (best-effort categorisation, like the
paper's VTune module breakdown).
"""

from __future__ import annotations

from repro.bench.figures.common import micro_rows_sweep
from repro.bench.results import FigureResult, PERCENT_ENGINE

SYSTEMS = ["dbms-d", "voltdb", "dbms-m"]


def run(quick: bool = False) -> list[FigureResult]:
    return [
        micro_rows_sweep(
            "Figure 7",
            "% of time inside the OLTP engine vs rows per transaction",
            PERCENT_ENGINE,
            read_write=False,
            quick=quick,
            systems=SYSTEMS,
        )
    ]
