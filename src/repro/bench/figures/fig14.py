"""Figure 14: index type x compilation while running TPC-C.

Section 6.1's TPC-C counterpart of Figure 13 (DBMS M only).  Expected
shapes: compilation cuts instruction stalls for both index types — and
without compilation the B-tree's instruction stalls are much higher
than the hash index's; data stalls stay small because TPC-C makes far
fewer random reads than the micro-benchmark.
"""

from __future__ import annotations

from repro.bench.figures.common import TPC_DB_BYTES, cell_spec, fill_figure
from repro.bench.figures.fig13 import CONFIGS
from repro.bench.parallel import CellTask, workload_spec
from repro.bench.results import FigureResult, STALLS_PER_KI
from repro.engines.config import EngineConfig


def run(quick: bool = False) -> list[FigureResult]:
    figure = FigureResult(
        figure_id="Figure 14",
        title="Stalls/kI for index structures with/without compilation (TPC-C)",
        metric=STALLS_PER_KI,
        x_label="configuration",
        x_values=[label for label, _, _ in CONFIGS],
        systems=["DBMS M"],
    )
    workload = workload_spec("tpcc", db_bytes=TPC_DB_BYTES)
    keyed_cells = []
    for label, index_kind, compilation in CONFIGS:
        config = EngineConfig(
            index_kind=index_kind, compilation=compilation, materialize_threshold=0
        )
        spec = cell_spec("dbms-m", quick=quick, engine_config=config)
        keyed_cells.append(("DBMS M", label, CellTask(spec, workload)))
    return [fill_figure(figure, keyed_cells)]
