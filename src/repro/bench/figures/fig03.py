"""Figure 3: Stall cycles per transaction, 100GB database (read-only).

Micro-benchmark, 1 row per transaction, all five systems.
"""

from __future__ import annotations

from repro.bench.figures.common import micro_size_sweep
from repro.bench.results import FigureResult, STALLS_PER_TXN


def run(quick: bool = False) -> list[FigureResult]:
    return [
        micro_size_sweep(
            "Figure 3",
            "Stall cycles per transaction, 100GB database (read-only)",
            STALLS_PER_TXN,
            read_write=False,
            quick=quick,
            sizes=['100GB'],
        )
    ]
