"""Figure 12: Stall cycles per transaction while running TPC-C.

100 GB-scale TPC-C database, single worker thread.
"""

from __future__ import annotations

from repro.bench.figures.common import tpc_sweep
from repro.bench.results import FigureResult, STALLS_PER_TXN


def run(quick: bool = False) -> list[FigureResult]:
    return [
        tpc_sweep(
            "Figure 12",
            "Stall cycles per transaction while running TPC-C",
            STALLS_PER_TXN,
            benchmark="tpcc",
            quick=quick,
        )
    ]
