"""Figure 8: The IPC values while running TPC-B.

100 GB-scale TPC-B database, single worker thread.
"""

from __future__ import annotations

from repro.bench.figures.common import tpc_sweep
from repro.bench.results import FigureResult, IPC


def run(quick: bool = False) -> list[FigureResult]:
    return [
        tpc_sweep(
            "Figure 8",
            "The IPC values while running TPC-B",
            IPC,
            benchmark="tpcb",
            quick=quick,
        )
    ]
