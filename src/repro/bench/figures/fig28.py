"""Figure 28: local vs multisite transactions on a sharded cluster.

Repro extension, not from the source paper: the Hardware-Islands
companion view of the OLTP-on-islands discussion.  TPC-C is
partitioned by warehouse across shard primaries and the multisite
fraction of NewOrder/Payment is swept 0-100%.  Each cell reports the
deterministic 2PC cost in fabric ticks — prepare-phase latency,
client-visible commit latency, and the local/cross mix — so the
figure shows what the distributed-transaction tax buys relative to a
perfectly partitionable (0% remote) workload.

Like table1 this figure renders to a string (its metric is fabric
ticks, not stall cycles, so the micro-architectural FigureResult
shape does not apply).
"""

from __future__ import annotations

from repro.sharding.cluster import COMMITTED, ShardSpec, ShardedCluster
from repro.util.rng import root_rng

REMOTE_PCTS = (0.0, 10.0, 25.0, 50.0, 100.0)


def _mean(values: list[int]) -> float:
    return sum(values) / len(values) if values else 0.0


def run_cell(
    remote_pct: float,
    *,
    n_shards: int = 3,
    n_txns: int = 200,
    seed: int = 1,
) -> dict[str, float]:
    """Drive one fault-free sharded cluster at *remote_pct*."""
    cluster = ShardedCluster(
        ShardSpec(n_shards=n_shards, remote_pct=remote_pct, seed=seed)
    )
    rng = root_rng(seed + 1, "workload")
    committed = 0
    for _ in range(n_txns):
        if cluster.submit_next(rng) == COMMITTED:
            committed += 1
    cluster.resolve_all()
    c = cluster.counters
    return {
        "remote_pct": remote_pct,
        "committed": committed,
        "local": c["local"],
        "cross": c["cross"],
        "global_commits": c["committed_global"],
        "global_aborts": c["aborted_global"],
        "prepare_ticks": _mean(cluster.prepare_ticks),
        "commit_ticks": _mean(cluster.commit_ticks),
    }


def run(quick: bool = False) -> str:
    n_txns = 60 if quick else 200
    lines = [
        "Figure 28: local vs multisite transactions "
        f"(TPC-C by warehouse, 3 shards, {n_txns} txns/cell)",
        "",
        f"{'remote%':>8} {'local':>6} {'cross':>6} {'committed':>10} "
        f"{'2pc-commits':>12} {'prepare-ticks':>14} {'commit-ticks':>13}",
    ]
    for remote_pct in REMOTE_PCTS:
        cell = run_cell(remote_pct, n_txns=n_txns)
        lines.append(
            f"{cell['remote_pct']:>7.0f}% {cell['local']:>6.0f} "
            f"{cell['cross']:>6.0f} {cell['committed']:>10.0f} "
            f"{cell['global_commits']:>12.0f} {cell['prepare_ticks']:>14.2f} "
            f"{cell['commit_ticks']:>13.2f}"
        )
    lines.append("")
    lines.append(
        "Local transactions commit without fabric round-trips; every "
        "multisite transaction pays the two-phase prepare+decision "
        "latency, so commit ticks step up with the remote fraction."
    )
    return "\n".join(lines)
