"""Figure 22: Stall cycles per transaction, 100GB database (read-write, appendix).

Micro-benchmark, 1 row per transaction, all five systems.
"""

from __future__ import annotations

from repro.bench.figures.common import micro_size_sweep
from repro.bench.results import FigureResult, STALLS_PER_TXN


def run(quick: bool = False) -> list[FigureResult]:
    return [
        micro_size_sweep(
            "Figure 22",
            "Stall cycles per transaction, 100GB database (read-write, appendix)",
            STALLS_PER_TXN,
            read_write=True,
            quick=quick,
            sizes=['100GB'],
        )
    ]
