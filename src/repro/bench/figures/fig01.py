"""Figure 1: Effect of database size on the IPC value (read-only).

Micro-benchmark, 1 row per transaction, all five systems.
"""

from __future__ import annotations

from repro.bench.figures.common import micro_size_sweep
from repro.bench.results import FigureResult, IPC


def run(quick: bool = False) -> list[FigureResult]:
    return [
        micro_size_sweep(
            "Figure 1",
            "Effect of database size on the IPC value (read-only)",
            IPC,
            read_write=False,
            quick=quick,
            sizes=None,
        )
    ]
