"""Figure 15: String vs Long data types, micro-benchmark (read-only).

Section 6.2: the micro-benchmark's two Long columns are swapped for two
50-byte Strings (VoltDB, HyPer, DBMS M; 1 row per transaction, 100 GB).
Expected shapes: LLC data stalls are *lower* for String than Long on
the tree-indexed systems — a 50-byte value spans most of a cache line,
so comparisons re-use fetched lines (better spatial locality) — while
hash-indexed DBMS M shows no significant difference.
"""

from __future__ import annotations

from repro.bench.figures.common import (
    TPC_DB_BYTES,
    cell_spec,
    engine_config_for,
    fill_figure,
)
from repro.bench.parallel import CellTask, workload_spec
from repro.bench.results import FigureResult, STALLS_PER_KI
from repro.engines.registry import PAPER_LABELS
from repro.storage.record import LONG, STRING50

SYSTEMS = ["voltdb", "hyper", "dbms-m"]
TYPES = [("String", STRING50), ("Long", LONG)]


def run_variant(
    figure_id: str, title: str, *, read_write: bool, quick: bool = False
) -> FigureResult:
    figure = FigureResult(
        figure_id=figure_id,
        title=title,
        metric=STALLS_PER_KI,
        x_label="data type",
        x_values=[label for label, _ in TYPES],
        systems=[PAPER_LABELS[s] for s in SYSTEMS],
    )
    keyed_cells = []
    for system in SYSTEMS:
        for label, column_type in TYPES:
            workload = workload_spec(
                "micro",
                db_bytes=TPC_DB_BYTES,
                rows_per_txn=1,
                read_write=read_write,
                column_type=column_type,
            )
            spec = cell_spec(
                system, quick=quick, engine_config=engine_config_for(system, "micro")
            )
            keyed_cells.append((PAPER_LABELS[system], label, CellTask(spec, workload)))
    return fill_figure(figure, keyed_cells)


def run(quick: bool = False) -> list[FigureResult]:
    return [
        run_variant(
            "Figure 15",
            "Stalls/kI for String and Long data types (micro, read-only)",
            read_write=False,
            quick=quick,
        )
    ]
