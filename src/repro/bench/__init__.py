"""Benchmark harness: experiment runner, figure registry, reporting."""

from repro.bench.results import (
    FigureResult,
    IPC,
    PERCENT_ENGINE,
    STALLS_PER_KI,
    STALLS_PER_TXN,
)
from repro.bench.runner import (
    ExperimentRunner,
    RunResult,
    RunSpec,
    prewarm_llc,
)
from repro.bench.report import render_figure, render_summary_line, render_table1
from repro.bench.validate import Check, render_checks, validate_all, validate_figure

__all__ = [
    "Check",
    "ExperimentRunner",
    "FigureResult",
    "IPC",
    "PERCENT_ENGINE",
    "RunResult",
    "RunSpec",
    "STALLS_PER_KI",
    "STALLS_PER_TXN",
    "prewarm_llc",
    "render_figure",
    "render_checks",
    "render_summary_line",
    "render_table1",
    "validate_all",
    "validate_figure",
]
