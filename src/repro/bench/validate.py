"""Machine-checkable acceptance criteria for every regenerated figure.

EXPERIMENTS.md records the paper-vs-measured comparison in prose; this
module encodes the same per-figure shape criteria as predicates over
:class:`~repro.bench.results.FigureResult`, so a single command audits
the whole reproduction:

```
python -m repro.bench validate --quick
```

Checks assert *shapes* (orderings, dominant components, trends), never
absolute values — the matching standard of EXPERIMENTS.md.  Known
deviations (EXPERIMENTS.md "Summary of deviations") are not asserted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.bench.results import FigureResult

IN_MEMORY = ("VoltDB", "HyPer", "DBMS M")
INTERPRETED = ("Shore-MT", "DBMS D", "VoltDB", "DBMS M")


@dataclass(frozen=True)
class Check:
    """One verified claim about one figure."""

    figure_id: str
    claim: str
    passed: bool
    details: str = ""

    def render(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        tail = f"  ({self.details})" if self.details and not self.passed else ""
        return f"[{mark}] {self.figure_id}: {self.claim}{tail}"


def _check(figure: FigureResult, claim: str, predicate: Callable[[], bool]) -> Check:
    try:
        ok = bool(predicate())
        details = ""
    except Exception as exc:  # a crashed predicate is a failed check
        ok = False
        details = f"{type(exc).__name__}: {exc}"
    return Check(figure.figure_id, claim, ok, details)


def _series(figure: FigureResult, system: str) -> list[float]:
    return figure.series(system)


def _decreasing(values: list[float], slack: float = 0.02) -> bool:
    return all(b <= a + slack for a, b in zip(values, values[1:]))


def _increasing(values: list[float], slack: float = 0.02) -> bool:
    return all(b >= a - slack for a, b in zip(values, values[1:]))


# -- per-figure criteria ------------------------------------------------------


def _validate_ipc_size(figure: FigureResult) -> list[Check]:
    """Figures 1 / 20."""
    small, big = figure.x_values[0], figure.x_values[-1]
    return [
        _check(figure, "IPC does not rise as data outgrows the LLC", lambda: all(
            figure.value(s, big) <= figure.value(s, small) + 0.03 for s in figure.systems
        )),
        _check(figure, "HyPer ~2x everyone when data fits the LLC", lambda: all(
            figure.value("HyPer", small) > 1.8 * figure.value(s, small)
            for s in figure.systems if s != "HyPer"
        )),
        _check(figure, "HyPer lowest IPC when data exceeds the LLC", lambda: all(
            figure.value("HyPer", big) < figure.value(s, big)
            for s in figure.systems if s != "HyPer"
        )),
        _check(figure, "IPC barely reaches 1 on the 4-wide machine", lambda: all(
            figure.value(s, big) < 1.25 for s in figure.systems
        )),
        _check(figure, "VoltDB above DBMS M", lambda: all(
            figure.value("VoltDB", x) > figure.value("DBMS M", x) - 0.02
            for x in figure.x_values
        )),
    ]


def _validate_stalls_size(figure: FigureResult) -> list[Check]:
    """Figures 2 / 21."""
    small, big = figure.x_values[0], figure.x_values[-1]
    checks = [
        _check(figure, "L1I dominates every interpreted system", lambda: all(
            figure.breakdown(s, big).l1i == max(figure.breakdown(s, big).as_dict().values())
            for s in INTERPRETED
        )),
        _check(figure, "HyPer is data-only (no instruction stalls)", lambda: (
            figure.breakdown("HyPer", big).l1i < 20
            and figure.breakdown("HyPer", big).llcd
            == max(figure.breakdown("HyPer", big).as_dict().values())
        )),
        _check(figure, "no LLC data stalls while data fits the LLC", lambda: all(
            figure.breakdown(s, small).llcd < 20 for s in figure.systems
        )),
        _check(figure, "DBMS D has the worst instruction stalls", lambda: all(
            1.05 * figure.breakdown("DBMS D", big).instruction_total
            >= figure.breakdown(s, big).instruction_total
            for s in figure.systems
        )),
        _check(figure, "Shore-MT instruction stalls well below DBMS D", lambda: (
            figure.breakdown("Shore-MT", big).instruction_total
            < 0.75 * figure.breakdown("DBMS D", big).instruction_total
        )),
    ]
    return checks


def _validate_stalls_txn_100gb(figure: FigureResult) -> list[Check]:
    """Figures 3 / 22."""
    x = figure.x_values[0]
    return [
        _check(figure, "Shore-MT has the highest LLC-D per transaction", lambda: all(
            figure.breakdown("Shore-MT", x).llcd >= figure.breakdown(s, x).llcd
            for s in figure.systems
        )),
        _check(figure, "DBMS D has the highest instruction stalls per txn", lambda: all(
            figure.breakdown("DBMS D", x).l1i >= figure.breakdown(s, x).l1i
            for s in figure.systems
        )),
        _check(figure, "HyPer has the lowest total stalls per txn", lambda: all(
            figure.breakdown("HyPer", x).total <= figure.breakdown(s, x).total
            for s in figure.systems
        )),
        _check(figure, "DBMS M's L1I exceeds the other in-memory systems'", lambda: (
            figure.breakdown("DBMS M", x).l1i > figure.breakdown("VoltDB", x).l1i
            and figure.breakdown("DBMS M", x).l1i > figure.breakdown("HyPer", x).l1i
        )),
    ]


def _validate_ipc_rows(figure: FigureResult) -> list[Check]:
    """Figures 4 / 23 (DBMS M's 100-row recovery is a known deviation)."""
    return [
        _check(figure, "VoltDB IPC declines with rows", lambda: _decreasing(
            _series(figure, "VoltDB"), slack=0.03
        )),
        _check(figure, "HyPer IPC declines with rows", lambda: _decreasing(
            _series(figure, "HyPer")
        )),
        _check(figure, "disk-based IPC does not decline materially", lambda: (
            _series(figure, "DBMS D")[-1] >= _series(figure, "DBMS D")[0] - 0.03
            and _series(figure, "Shore-MT")[-1] >= _series(figure, "Shore-MT")[0] - 0.1
        )),
        _check(figure, "DBMS M declines from 1 to 10 rows", lambda: (
            figure.value("DBMS M", "10") < figure.value("DBMS M", "1") + 0.02
        )),
    ]


def _validate_stalls_rows(figure: FigureResult) -> list[Check]:
    """Figures 5 / 24."""
    first, last = figure.x_values[0], figure.x_values[-1]
    return [
        _check(figure, "instruction stalls per kI fall with rows", lambda: all(
            figure.breakdown(s, last).instruction_total
            <= figure.breakdown(s, first).instruction_total + 5
            for s in figure.systems
        )),
        _check(figure, "data stalls per kI grow with rows", lambda: all(
            figure.breakdown(s, last).llcd >= figure.breakdown(s, first).llcd
            for s in figure.systems
        )),
        _check(figure, "HyPer's data stalls are the highest throughout", lambda: all(
            figure.breakdown("HyPer", x).llcd >= figure.breakdown(s, x).llcd
            for x in figure.x_values for s in figure.systems
        )),
        _check(figure, "DBMS M instruction stalls still high at 10 rows", lambda: (
            figure.breakdown("DBMS M", "10").l1i
            > figure.breakdown("VoltDB", "10").l1i
        )),
    ]


def _validate_stalls_txn_rows(figure: FigureResult) -> list[Check]:
    """Figures 6 / 25."""
    return [
        _check(figure, "LLC-D per txn grows ~linearly with rows", lambda: all(
            30 < figure.breakdown(s, "100").llcd / max(1.0, figure.breakdown(s, "1").llcd) < 300
            for s in figure.systems
        )),
        _check(figure, "Shore-MT's data stalls per txn are the largest at 100 rows",
               lambda: all(
                   figure.breakdown("Shore-MT", "100").llcd
                   >= figure.breakdown(s, "100").llcd for s in figure.systems
               )),
        _check(figure, "instruction stalls per txn rise with rows (disk-based)", lambda: all(
            figure.breakdown(s, "100").l1i > figure.breakdown(s, "1").l1i
            for s in ("Shore-MT", "DBMS D")
        )),
        _check(figure, "HyPer's instruction stalls stay ~zero", lambda: all(
            figure.breakdown("HyPer", x).instruction_total < 100 for x in figure.x_values
        )),
    ]


def _validate_fig7(figure: FigureResult) -> list[Check]:
    return [
        _check(figure, "engine share rises with rows for every system", lambda: all(
            _increasing(_series(figure, s), slack=1.0) for s in figure.systems
        )),
        _check(figure, "DBMS M has the lowest engine share at each row count", lambda: all(
            figure.value("DBMS M", x) <= figure.value(s, x) + 1.0
            for x in figure.x_values for s in figure.systems
        )),
    ]


def _validate_tpc_ipc(figure: FigureResult) -> list[Check]:
    x = figure.x_values[0]
    checks = [
        _check(figure, "IPC stays in the sub-1.25 regime", lambda: all(
            figure.value(s, x) < 1.25 for s in figure.systems
        )),
    ]
    if x == "TPC-C":
        checks.append(
            _check(figure, "HyPer has the lowest TPC-C IPC", lambda: all(
                figure.value("HyPer", x) < figure.value(s, x)
                for s in figure.systems if s != "HyPer"
            ))
        )
    return checks


def _validate_tpc_stalls(figure: FigureResult) -> list[Check]:
    x = figure.x_values[0]
    # TPC-B is instruction-dominated for every interpreted system; in
    # TPC-C the lean in-memory engines amortise their code so far that
    # data stalls catch up (Section 5.2.2) — assert dominance only for
    # the SQL-stack disk-based systems there.
    dominated = INTERPRETED if x == "TPC-B" else ("Shore-MT", "DBMS D")
    checks = [
        _check(figure, "instruction stalls dominate the disk-based stacks", lambda: all(
            figure.breakdown(s, x).instruction_total > figure.breakdown(s, x).data_total
            for s in dominated if s in figure.systems
        )),
    ]
    if "HyPer" in figure.systems:
        if x == "TPC-B":
            checks.append(
                _check(figure, "no interpreted system suffers severe LLC-D", lambda: all(
                    figure.breakdown(s, x).llcd < 150
                    for s in INTERPRETED
                ))
            )
        else:
            checks.append(
                _check(figure, "HyPer's LLC-D is high again for TPC-C", lambda: (
                    figure.breakdown("HyPer", x).llcd > 500
                ))
            )
    return checks


def _validate_fig12(figure: FigureResult) -> list[Check]:
    x = figure.x_values[0]
    return [
        _check(figure, "DBMS D's instruction stalls per txn are the highest", lambda: all(
            figure.breakdown("DBMS D", x).l1i >= figure.breakdown(s, x).l1i
            for s in figure.systems
        )),
        _check(figure, "Shore-MT second, DBMS M third (but still large)", lambda: (
            figure.breakdown("Shore-MT", x).l1i > figure.breakdown("DBMS M", x).l1i
            > figure.breakdown("VoltDB", x).l1i
        )),
    ]


def _validate_index_compilation(figure: FigureResult) -> list[Check]:
    """Figures 13 / 26 (micro) and 14 (TPC-C)."""
    hash_on, hash_off = "Hash w/ compilation", "Hash w/o compilation"
    bt_on, bt_off = "B-tree w/ compilation", "B-tree w/o compilation"
    sys = figure.systems[0]
    checks = [
        _check(figure, "compilation cuts instruction stalls (hash)", lambda: (
            figure.breakdown(sys, hash_on).instruction_total
            < 0.8 * figure.breakdown(sys, hash_off).instruction_total
        )),
        _check(figure, "compilation cuts instruction stalls (B-tree)", lambda: (
            figure.breakdown(sys, bt_on).instruction_total
            < 0.8 * figure.breakdown(sys, bt_off).instruction_total
        )),
    ]
    if figure.figure_id == "Figure 14":
        checks.append(
            _check(figure, "uncompiled B-tree has the worst instruction stalls", lambda: (
                figure.breakdown(sys, bt_off).l1i
                > 1.2 * figure.breakdown(sys, hash_off).l1i
            ))
        )
    else:
        checks.append(
            _check(figure, "B-tree data stalls 1.5x+ the hash index's", lambda: (
                figure.breakdown(sys, bt_on).llcd
                > 1.5 * figure.breakdown(sys, hash_on).llcd
            ))
        )
    return checks


def _validate_data_types(figure: FigureResult) -> list[Check]:
    """Figures 15 / 27."""
    strict = figure.figure_id == "Figure 15"
    margin = 0.0 if strict else 25.0
    return [
        _check(figure, "HyPer: String data stalls not above Long's", lambda: (
            figure.breakdown("HyPer", "String").llcd
            <= figure.breakdown("HyPer", "Long").llcd + margin
        )),
        _check(figure, "DBMS M shows no significant difference", lambda: (
            abs(
                figure.breakdown("DBMS M", "String").llcd
                - figure.breakdown("DBMS M", "Long").llcd
            )
            < 40
        )),
    ]


def _validate_multithreaded_ipc(figure: FigureResult) -> list[Check]:
    x = figure.x_values[0]
    return [
        _check(figure, "multi-threaded IPC stays below ~1", lambda: all(
            figure.value(s, x) < 1.25 for s in figure.systems
        )),
    ]


def _validate_multithreaded_stalls(figure: FigureResult) -> list[Check]:
    x = figure.x_values[0]
    return [
        _check(figure, "instruction stalls still dominate the legacy systems", lambda: all(
            figure.breakdown(s, x).l1i > figure.breakdown(s, x).llcd
            for s in ("Shore-MT", "DBMS D")
        )),
    ]


_VALIDATORS: dict[str, Callable[[FigureResult], list[Check]]] = {
    "Figure 1": _validate_ipc_size,
    "Figure 20": _validate_ipc_size,
    "Figure 2": _validate_stalls_size,
    "Figure 21": _validate_stalls_size,
    "Figure 3": _validate_stalls_txn_100gb,
    "Figure 22": _validate_stalls_txn_100gb,
    "Figure 4": _validate_ipc_rows,
    "Figure 23": _validate_ipc_rows,
    "Figure 5": _validate_stalls_rows,
    "Figure 24": _validate_stalls_rows,
    "Figure 6": _validate_stalls_txn_rows,
    "Figure 25": _validate_stalls_txn_rows,
    "Figure 7": _validate_fig7,
    "Figure 8": _validate_tpc_ipc,
    "Figure 10": _validate_tpc_ipc,
    "Figure 9": _validate_tpc_stalls,
    "Figure 11": _validate_tpc_stalls,
    "Figure 12": _validate_fig12,
    "Figure 13": _validate_index_compilation,
    "Figure 26": _validate_index_compilation,
    "Figure 14": _validate_index_compilation,
    "Figure 15": _validate_data_types,
    "Figure 27": _validate_data_types,
    "Figure 16": _validate_multithreaded_ipc,
    "Figure 17": _validate_multithreaded_ipc,
    "Figure 18": _validate_multithreaded_stalls,
    "Figure 19": _validate_multithreaded_stalls,
}


def validate_figure(figure: FigureResult) -> list[Check]:
    """Run the acceptance criteria registered for one figure."""
    validator = _VALIDATORS.get(figure.figure_id)
    if validator is None:
        return []
    return validator(figure)


def validate_all(quick: bool = True, figure_ids: list[str] | None = None) -> list[Check]:
    """Regenerate figures and run every registered criterion."""
    from repro.bench.figures import ALL_IDS, run_figure

    ids = figure_ids or [i for i in ALL_IDS if i != "table1"]
    checks: list[Check] = []
    for figure_id in ids:
        result = run_figure(figure_id, quick=quick)
        if isinstance(result, str):
            continue
        for panel in result:
            checks.extend(validate_figure(panel))
    return checks


def render_checks(checks: list[Check]) -> str:
    lines = [check.render() for check in checks]
    passed = sum(1 for c in checks if c.passed)
    lines.append("")
    lines.append(f"{passed}/{len(checks)} checks passed")
    return "\n".join(lines)
