"""Process-pool fan-out for experiment cells and repetitions.

The paper's methodology is embarrassingly parallel: every figure is a
grid of independent cells (system x workload x configuration), each
repeated with fresh seeds.  This module fans that grid out across
cores with a :class:`~concurrent.futures.ProcessPoolExecutor` while
keeping the results **bit-identical** to the serial path:

* the unit of work is one *(cell, repetition)* pair, executed by the
  same :func:`repro.bench.runner.run_repetition` function the serial
  path calls;
* each repetition's seed comes from :meth:`RunSpec.rep_seed`, so the
  seed a repetition sees does not depend on which worker runs it;
* results are collected in submission order and folded with
  :func:`repro.bench.runner.aggregate_repetitions`, so floating-point
  summation order matches the serial path exactly.

Workloads cross process boundaries as :class:`WorkloadSpec` descriptors
— a picklable ``(kind, params)`` pair that builds the workload inside
the worker — because the closures the figure modules historically used
cannot be pickled.  A ``WorkloadSpec`` is itself callable, so it drops
into every API that expects a zero-argument workload factory.

``--jobs N`` on the CLI installs an ambient jobs setting via
:func:`using_jobs`; code that cannot prove its tasks are picklable
silently falls back to serial execution, never to an error.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from repro import obs
from repro.bench.runner import (
    RunResult,
    RunSpec,
    aggregate_repetitions,
    run_repetition,
)
from repro.workloads.microbench import MicroBenchmark
from repro.workloads.tpcb import TPCB
from repro.workloads.tpcc import TPCC
from repro.workloads.tpce_lite import TPCELite

WORKLOAD_KINDS = {
    "micro": MicroBenchmark,
    "tpcb": TPCB,
    "tpcc": TPCC,
    "tpce": TPCELite,
}


@dataclass(frozen=True)
class WorkloadSpec:
    """Picklable workload descriptor: registry kind + constructor params."""

    kind: str
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ValueError(
                f"unknown workload kind {self.kind!r}; known: {', '.join(WORKLOAD_KINDS)}"
            )

    def make(self):
        """Instantiate the workload (inside whichever process runs it)."""
        return WORKLOAD_KINDS[self.kind](**dict(self.params))

    def __call__(self):
        return self.make()


def workload_spec(kind: str, **params) -> WorkloadSpec:
    """Convenience constructor: ``workload_spec("micro", db_bytes=...)``."""
    return WorkloadSpec(kind, tuple(sorted(params.items())))


@dataclass(frozen=True)
class CellTask:
    """One experiment cell queued for execution."""

    spec: RunSpec
    workload: Any  # WorkloadSpec or any zero-argument factory


# -- ambient jobs setting ----------------------------------------------------

_JOBS = 1


def default_jobs() -> int:
    """One worker per core, the ``--jobs 0`` meaning."""
    return os.cpu_count() or 1


def get_jobs() -> int:
    """The ambient fan-out width (1 = serial, the default)."""
    return _JOBS


@contextmanager
def using_jobs(jobs: int | None) -> Iterator[int]:
    """Install an ambient jobs setting for the duration of the block."""
    global _JOBS
    previous = _JOBS
    _JOBS = max(1, jobs if jobs else 1)
    try:
        yield _JOBS
    finally:
        _JOBS = previous


# -- execution ---------------------------------------------------------------


def _run_rep(task: tuple[RunSpec, Any, int, bool]) -> RunResult:
    """Worker entry point: one repetition of one cell.

    The trailing flag carries the parent's observability state into
    worker processes (module globals do not cross the fork/spawn);
    events stay in the repetition's ``RunResult.obs_buffers`` either
    way, so results are bit-identical with tracing on or off.
    """
    spec, workload_factory, seed, obs_on = task
    if obs_on and not obs.enabled():
        with obs.using_obs(True):
            return run_repetition(spec, workload_factory, seed)
    return run_repetition(spec, workload_factory, seed)


def _picklable(obj: Any) -> bool:
    if isinstance(obj, WorkloadSpec):
        return True
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


def run_cells(cells: Sequence[CellTask], jobs: int | None = None) -> list[RunResult]:
    """Run every cell (all repetitions) and return results in cell order.

    With *jobs* > 1 the flattened *(cell, repetition)* tasks are fanned
    out over a process pool; otherwise (or when any task is not
    picklable) everything runs serially in this process.  Both paths
    produce bit-identical :class:`RunResult` values.
    """
    n_jobs = get_jobs() if jobs is None else max(1, jobs)
    obs_on = obs.enabled()
    tasks: list[tuple[RunSpec, Any, int, bool]] = []
    rep_slices: list[tuple[int, int]] = []
    for cell in cells:
        start = len(tasks)
        for rep in range(cell.spec.repetitions):
            tasks.append((cell.spec, cell.workload, cell.spec.rep_seed(rep), obs_on))
        rep_slices.append((start, len(tasks)))

    parallel = (
        n_jobs > 1
        and len(tasks) > 1
        and all(_picklable(cell.workload) for cell in cells)
    )
    if parallel:
        with ProcessPoolExecutor(max_workers=min(n_jobs, len(tasks))) as pool:
            rep_results = list(pool.map(_run_rep, tasks, chunksize=1))
    else:
        rep_results = [_run_rep(task) for task in tasks]

    return [
        aggregate_repetitions(cell.spec, rep_results[start:stop])
        for cell, (start, stop) in zip(cells, rep_slices)
    ]


def map_repetitions(
    spec: RunSpec, workload_factory, jobs: int | None = None
) -> list[RunResult]:
    """All repetitions of one cell, in seed order (parallel when asked)."""
    n_jobs = get_jobs() if jobs is None else max(1, jobs)
    seeds = [spec.rep_seed(rep) for rep in range(spec.repetitions)]
    if n_jobs > 1 and len(seeds) > 1 and _picklable(workload_factory):
        tasks = [(spec, workload_factory, seed, obs.enabled()) for seed in seeds]
        with ProcessPoolExecutor(max_workers=min(n_jobs, len(tasks))) as pool:
            return list(pool.map(_run_rep, tasks, chunksize=1))
    return [run_repetition(spec, workload_factory, seed) for seed in seeds]
