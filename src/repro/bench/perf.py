"""Performance tracking: ``repro-bench perf``.

Measures the simulator's own speed — the numbers the bench suite
guards — and appends them to a dated JSON record so the repository
accumulates a performance trajectory that future PRs can be judged
against:

* **events/sec** through ``Machine.run_trace`` (the replay hot loop,
  same trace shape as ``test_trace_replay_throughput``);
* **txns/sec** end-to-end through the leanest engine (HyPer executing
  single-row reads, same as ``test_engine_transaction_throughput``);
* **wall-clock** for a quick figure sweep, honouring ``--jobs`` so the
  parallel runner's turnaround is part of the record.

Records live in ``benchmarks/records/BENCH_<date>.json`` (a JSON list;
same-day runs append).  ``--check`` compares the fresh events/sec
against the best previously recorded value and fails on a >30 %
regression — the CI gate for the replay fast path.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from pathlib import Path

from repro.util.clock import perf_timer, timestamp, today
from repro.util.rng import root_rng

DEFAULT_RECORDS_DIR = Path("benchmarks") / "records"
REGRESSION_TOLERANCE = 0.30
"""Fail ``--check`` when events/sec drops by more than this fraction."""

QUICK_SWEEP_FIGURES = ["fig13"]
FULL_SWEEP_FIGURES = ["fig1", "fig9", "fig13"]


def bench_replay_events_per_sec(*, min_seconds: float = 0.5) -> dict:
    """Events/second through Machine.run_trace (the replay hot loop)."""
    from repro.core.machine import Machine
    from repro.core.trace import AccessTrace

    machine = Machine()
    rng = root_rng(0, "perf-replay")
    trace = AccessTrace()
    trace.ifetch_run(4096, 3000, module=0)
    for _ in range(500):
        trace.load(10**8 + rng.randrange(10**6), 0, serial=True)
    trace.retire(0, 48_000, base_cycles=20_000)
    events = len(trace)

    # Warm the caches to steady state before timing.
    for _ in range(5):
        machine.run_trace(trace)
    rounds = 0
    best = float("inf")
    started = perf_timer()
    while perf_timer() - started < min_seconds:
        t0 = perf_timer()
        machine.run_trace(trace)
        elapsed = perf_timer() - t0
        best = min(best, elapsed)
        rounds += 1
    return {
        "events_per_round": events,
        "rounds": rounds,
        "best_round_s": best,
        "events_per_sec": events / best if best > 0 else 0.0,
    }


def bench_engine_txns_per_sec(*, n_txns: int = 3000) -> dict:
    """End-to-end transactions/second for the leanest engine (HyPer)."""
    from repro.engines.common import TableSpec
    from repro.engines.config import EngineConfig
    from repro.engines.registry import make_engine
    from repro.storage.record import microbench_schema

    engine = make_engine("hyper", EngineConfig(materialize_threshold=0))
    engine.create_table(TableSpec("t", microbench_schema(), 10**9))
    rng = root_rng(2, "perf-engine")
    for _ in range(50):
        engine.execute("p", lambda txn: txn.read("t", rng.randrange(10**9)))
    started = perf_timer()
    for _ in range(n_txns):
        key = rng.randrange(10**9)
        engine.execute("p", lambda txn: txn.read("t", key))
    elapsed = perf_timer() - started
    return {
        "txns": n_txns,
        "wall_s": elapsed,
        "txns_per_sec": n_txns / elapsed if elapsed > 0 else 0.0,
    }


def bench_figure_sweep(figures: list[str], *, jobs: int | None = None) -> dict:
    """Wall-clock for regenerating *figures* with --quick budgets."""
    from repro.bench.figures import run_figure

    started = perf_timer()
    for figure_id in figures:
        run_figure(figure_id, quick=True, jobs=jobs)
    elapsed = perf_timer() - started
    return {"figures": figures, "jobs": jobs or 1, "wall_s": elapsed}


def _git_sha() -> str | None:
    """The repository HEAD, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def provenance() -> dict:
    """Who/where/what produced a record, so BENCH trajectories are
    attributable (same-machine comparisons only, commit lookup)."""
    return {
        "git_sha": _git_sha(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
    }


def collect_record(*, quick: bool = False, jobs: int | None = None) -> dict:
    """Run every perf bench and assemble one dated record."""
    replay = bench_replay_events_per_sec(min_seconds=0.25 if quick else 0.5)
    engine = bench_engine_txns_per_sec(n_txns=1000 if quick else 3000)
    sweep = bench_figure_sweep(
        QUICK_SWEEP_FIGURES if quick else FULL_SWEEP_FIGURES, jobs=jobs
    )
    return {
        "date": today(),
        "timestamp": timestamp(),
        "quick": quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "provenance": provenance(),
        "replay": replay,
        "engine": engine,
        "figure_sweep": sweep,
    }


def load_records(records_dir: Path) -> list[dict]:
    """Every record across all BENCH_*.json files, oldest file first."""
    records: list[dict] = []
    if not records_dir.is_dir():
        return records
    for path in sorted(records_dir.glob("BENCH_*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(data, list):
            records.extend(r for r in data if isinstance(r, dict))
        elif isinstance(data, dict):
            records.append(data)
    return records


def baseline_events_per_sec(records: list[dict]) -> float | None:
    """The best previously recorded replay throughput (the CI baseline)."""
    values = [
        r.get("replay", {}).get("events_per_sec")
        for r in records
    ]
    values = [v for v in values if isinstance(v, (int, float)) and v > 0]
    return max(values) if values else None


def append_record(record: dict, records_dir: Path) -> Path:
    """Append *record* to today's BENCH_<date>.json (creating it)."""
    records_dir.mkdir(parents=True, exist_ok=True)
    path = records_dir / f"BENCH_{record['date']}.json"
    existing: list[dict] = []
    if path.exists():
        try:
            data = json.loads(path.read_text())
            existing = data if isinstance(data, list) else [data]
        except (OSError, json.JSONDecodeError):
            existing = []
    existing.append(record)
    path.write_text(json.dumps(existing, indent=2) + "\n")
    return path


def render_record(record: dict, *, baseline: float | None = None) -> str:
    lines = [
        "perf record",
        f"  replay     : {record['replay']['events_per_sec']:,.0f} events/sec "
        f"({record['replay']['events_per_round']} events/round, "
        f"{record['replay']['rounds']} rounds)",
        f"  engine     : {record['engine']['txns_per_sec']:,.0f} txns/sec "
        f"({record['engine']['txns']} txns)",
        f"  fig sweep  : {record['figure_sweep']['wall_s']:.1f}s "
        f"({', '.join(record['figure_sweep']['figures'])}, "
        f"jobs={record['figure_sweep']['jobs']}, --quick)",
    ]
    if baseline is not None:
        current = record["replay"]["events_per_sec"]
        delta = (current - baseline) / baseline
        lines.append(f"  vs baseline: {delta:+.1%} events/sec (best prior {baseline:,.0f})")
    return "\n".join(lines)


def run_perf(
    *,
    quick: bool = False,
    jobs: int | None = None,
    records_dir: Path = DEFAULT_RECORDS_DIR,
    check: bool = False,
    save: bool = True,
    store_dir: Path | None = None,
) -> tuple[str, bool]:
    """Run the perf suite; returns (report text, ok).

    *ok* is False only when *check* is set and the fresh events/sec
    regressed more than :data:`REGRESSION_TOLERANCE` below the best
    previously committed record.  When *save* is set the record lands
    both in the legacy BENCH_<date>.json blob (old readers keep
    working) and as a ``bench`` run in :mod:`repro.store`.
    """
    baseline = baseline_events_per_sec(load_records(records_dir))
    record = collect_record(quick=quick, jobs=jobs)
    lines = [render_record(record, baseline=baseline)]
    if save:
        path = append_record(record, records_dir)
        lines.append(f"  recorded   : {path}")
        from repro.store import RunStore, bench_run

        # The store sits beside the records dir, so a caller that
        # redirects records (tests, CI sandboxes) never writes into the
        # repo's benchmarks/store/.
        store = RunStore(store_dir or Path(records_dir).parent / "store")
        run_id = store.put(bench_run(record))
        lines.append(f"  store      : {run_id}")
    ok = True
    if check and baseline is not None:
        floor = baseline * (1.0 - REGRESSION_TOLERANCE)
        current = record["replay"]["events_per_sec"]
        if current < floor:
            ok = False
            lines.append(
                f"  REGRESSION : {current:,.0f} events/sec is below the "
                f"{1.0 - REGRESSION_TOLERANCE:.0%} floor of the best prior "
                f"record ({floor:,.0f})"
            )
        else:
            lines.append("  check      : within tolerance")
    elif check:
        lines.append("  check      : no prior records, nothing to compare against")
    return "\n".join(lines), ok
