"""Experiment runner: the paper's measurement methodology, simulated.

The paper's procedure (Section 3, "Measurements"): populate from
scratch, run a 60-second warm-up, profile a 30-second steady-state
window filtered to the worker thread(s), repeat three times and average.
The simulator's equivalent:

* build a fresh engine + workload per repetition (populate);
* **prewarm** the shared LLC with the workload's hot data regions
  (steady state on real hardware has the hot set resident; replaying
  enough transactions to fill a 20 MB LLC from cold would dominate
  simulation time, so residency is installed directly — hottest
  regions last, i.e. most-recently-used);
* run warm-up transactions until the private caches and branch state
  reach steady state (an *event* budget, so code-heavy engines get the
  same cache pressure as lean ones);
* open a profiler window and run measured transactions for the
  measurement budget;
* repeat with fresh seeds and average counters.

Multi-threaded runs (Section 7) place one worker per simulated core,
interleave whole transactions round-robin, home partitioned engines'
transactions to the worker's partition (single-sited, as the paper
configures VoltDB), and report per-worker average counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro import obs
from repro.lint import sanitizer
from repro.util.rng import root_rng
from repro.core.counters import PerfCounters
from repro.core.cpu import DEFAULT_OVERLAP, OverlapModel
from repro.core.machine import Machine
from repro.core.metrics import (
    StallBreakdown,
    ipc as ipc_of,
    stalls_per_kilo_instruction,
    stalls_per_transaction,
)
from repro.core.profiler import Profiler
from repro.core.spec import IVY_BRIDGE, ServerSpec
from repro.engines.base import COMMITTED
from repro.engines.config import EngineConfig
from repro.engines.registry import make_engine
from repro.workloads.base import Workload

DEFAULT_MEASURE_EVENTS = 220_000
DEFAULT_WARMUP_EVENTS = 90_000
QUICK_MEASURE_EVENTS = 70_000
QUICK_WARMUP_EVENTS = 30_000
MIN_MEASURED_TXNS = 24
MIN_WARMUP_TXNS = 8


@dataclass(frozen=True)
class RunSpec:
    """One experiment cell: a system running a workload configuration."""

    system: str
    engine_config: EngineConfig = field(default_factory=lambda: EngineConfig(materialize_threshold=0))
    n_cores: int = 1
    measure_events: int = DEFAULT_MEASURE_EVENTS
    warmup_events: int = DEFAULT_WARMUP_EVENTS
    repetitions: int = 3
    seed: int = 42
    server: ServerSpec = IVY_BRIDGE
    overlap: OverlapModel = DEFAULT_OVERLAP
    # dTLB/page-walk surcharge per serial LLC miss; None = model default.
    serial_miss_extra_cycles: int | None = None
    # "constant" charges the calibrated surcharge; "measured" charges
    # simulated dTLB page walks instead (see repro.core.tlb).
    tlb_mode: str = "constant"
    tlb_spec: object | None = None

    def quick(self) -> "RunSpec":
        """Reduced-budget variant for tests and --quick runs.

        ``dataclasses.replace`` carries every other field over, so
        fields added to RunSpec later are preserved automatically.
        """
        return replace(
            self,
            measure_events=QUICK_MEASURE_EVENTS,
            warmup_events=QUICK_WARMUP_EVENTS,
            repetitions=1,
        )

    def rep_seed(self, rep: int) -> int:
        """Deterministic seed for repetition *rep* (0-based).

        This derivation is the parallel runner's determinism contract:
        serial and fanned-out executions run the same repetition with
        the same seed, so their results are bit-identical.
        """
        return self.seed + 1000 * rep


@dataclass
class RunResult:
    """Averaged measurement-window results for one cell.

    ``counters`` follow the paper's reporting convention (per-worker
    average for multi-threaded runs); ``measured_txns`` is always the
    *true total* number of committed transactions inside the
    measurement window(s), summed over all workers and repetitions —
    never the per-worker mean.
    """

    system: str
    counters: PerfCounters
    module_cycles: dict[str, float]
    module_groups: dict[str, str]
    server: ServerSpec
    measured_txns: int
    # Observability payloads (empty unless tracing was enabled for the
    # run): one span-event list per repetition, in seed order, and the
    # merged metrics snapshot.  Deliberately excluded from result
    # fingerprints — measurements are bit-identical with or without.
    obs_buffers: list = field(default_factory=list)
    obs_metrics: dict = field(default_factory=dict)
    # RNG provenance (empty unless --sanitize): per-stream draw counts
    # ("purpose@seed" -> draws), shipped back from worker processes so
    # serial and --jobs N runs can be diffed stream by stream.  Like
    # the obs payloads, excluded from result fingerprints.
    rng_draws: dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return ipc_of(self.counters)

    @property
    def stalls_per_kilo_instruction(self) -> StallBreakdown:
        return stalls_per_kilo_instruction(self.counters, self.server)

    @property
    def stalls_per_transaction(self) -> StallBreakdown:
        return stalls_per_transaction(self.counters, self.server)

    @property
    def instructions_per_txn(self) -> float:
        c = self.counters
        return c.instructions / c.transactions if c.transactions else 0.0

    def engine_time_fraction(self) -> float:
        """Fraction of attributed cycles inside the OLTP engine (Fig 7)."""
        engine = sum(
            cyc for name, cyc in self.module_cycles.items()
            if self.module_groups.get(name) == "engine"
        )
        total = sum(self.module_cycles.values())
        return engine / total if total else 0.0


def prewarm_llc(machine: Machine, engine) -> None:
    """Install the workload's hot data set into the shared LLC.

    Regions come hottest-first from the engine; they are replayed
    coldest-first so the hottest lines end most-recently-used.  Regions
    wider than the remaining budget are stride-sampled, approximating
    the random residency steady state leaves behind.
    """
    llc = machine.hierarchy.llc
    budget = llc.spec.n_lines
    picks: list[tuple[int, int, int]] = []  # (base, count, step)
    for base, n_lines in engine.hot_regions():
        if budget <= 0:
            break
        take = min(n_lines, budget)
        step = max(1, n_lines // take)
        picks.append((base, take, step))
        budget -= take
    for base, take, step in reversed(picks):
        fill = llc.fill
        for i in range(take):
            fill(base + i * step)


def run_repetition(spec: RunSpec, workload_factory, seed: int) -> RunResult:
    """One repetition of one cell: populate, warm up, measure.

    Module-level (not a method) so the parallel executor can ship the
    call to a worker process; the serial path runs the very same
    function, which is what makes ``--jobs N`` bit-identical to serial.
    """
    workload: Workload = workload_factory()
    config = spec.engine_config
    if spec.n_cores > 1 and config.n_partitions == 1:
        # Partitioned engines get one partition per worker (paper
        # Section 3: VoltDB generates one worker per partition).
        config = replace(config, n_partitions=spec.n_cores)
    engine = make_engine(spec.system, config)
    workload.setup(engine)
    machine = Machine(
        spec.server,
        n_cores=spec.n_cores,
        overlap=spec.overlap,
        serial_miss_extra_cycles=spec.serial_miss_extra_cycles,
        tlb_mode=spec.tlb_mode,
        tlb_spec=spec.tlb_spec,
    )
    prewarm_llc(machine, engine)

    rng = root_rng(seed, "workload")
    partitioned = engine.is_partitioned and spec.n_cores > 1

    def run_phase(
        event_budget: int, min_txns: int, *, phase: str = "measure",
        strict: bool = True,
    ) -> int:
        """Run until the event budget AND the commit floor are both met.

        The commit floor keeps the attempt loop honest, but a workload
        that cannot commit (every attempt aborts — a hostile fault
        schedule, or a quick-spec budget too small to reach
        ``min_txns``) must not spin forever: after ``attempt_cap``
        attempts a *strict* phase raises with the phase name, while a
        best-effort phase (warmup) stops with whatever it warmed —
        warmup exists to heat caches, and aborted attempts heat them
        too.  The measure phase stays strict so a window with zero
        committed transactions is an error, never a silent zero-row
        report.
        """
        events = 0
        txns = 0
        attempts = 0
        core = 0
        attempt_cap = max(min_txns, 1) * 1000
        while events < event_budget or txns < min_txns:
            partition = core if partitioned else None
            procedure, body = workload.next_transaction(
                rng, partition=partition, n_partitions=spec.n_cores
            )
            trace = engine.execute(procedure, body, core_id=core)
            # Only commits count as transactions; aborted attempts'
            # events still replay (the hardware saw that work) but
            # must not dilute per-transaction metrics.
            committed = engine.last_outcome == COMMITTED
            machine.run_trace(
                trace, core_id=core, transactions=1 if committed else 0
            )
            events += len(trace)
            attempts += 1
            if committed:
                txns += 1
            core = (core + 1) % spec.n_cores
            if attempts >= attempt_cap and txns < min_txns:
                if strict:
                    raise RuntimeError(
                        f"{spec.system} {phase}: {attempts} attempts produced "
                        f"only {txns}/{min_txns} commits — workload cannot "
                        f"make progress"
                    )
                break
        return txns

    obs_mark = obs.mark()
    with obs.span(
        "repetition", track="harness", cat="harness", system=spec.system, seed=seed
    ) as rep_span:
        with obs.span("warmup", track="harness", cat="harness"):
            run_phase(
                spec.warmup_events, MIN_WARMUP_TXNS, phase="warmup", strict=False
            )
        profiler = Profiler(machine)
        profiler.start_window()
        with obs.span("measure", track="harness", cat="harness"):
            measured_txns = run_phase(spec.measure_events, MIN_MEASURED_TXNS)
        window = profiler.end_window()
        rep_span.set(measured_txns=measured_txns)

    # Per-worker average, as the paper reports multi-threaded runs —
    # but measured_txns stays the true total committed count across all
    # workers (scaling it down with the mean would report a per-worker
    # float that summation over repetitions silently mixes up).
    counters = window.mean_core_counters() if spec.n_cores > 1 else window.counters()
    layout = engine.layout
    named_cycles = {
        layout.name_of(mod): cycles for mod, cycles in window.module_cycles.items()
    }
    groups = {layout.name_of(m): layout.group_of(m) for m in layout.ids()}
    return RunResult(
        system=spec.system,
        counters=counters,
        module_cycles=named_cycles,
        module_groups=groups,
        server=spec.server,
        measured_txns=measured_txns,
        # Each repetition ships its own event buffer (one process, one
        # clock) so merged traces keep per-buffer timestamp monotonicity.
        obs_buffers=[obs.drain_events(obs_mark)] if obs.enabled() else [],
        obs_metrics=obs.drain_metrics(),
        rng_draws=sanitizer.drain_draws() if sanitizer.enabled() else {},
    )


def aggregate_repetitions(spec: RunSpec, rep_results: list[RunResult]) -> RunResult:
    """Fold per-repetition results into one cell result.

    Pure and order-dependent only on the list order; both execution
    paths pass repetitions in seed order, so serial and parallel
    aggregation are bit-identical.
    """
    total = PerfCounters()
    module_cycles: dict[str, float] = {}
    module_groups: dict[str, str] = {}
    measured_txns = 0
    obs_buffers: list = []
    metric_snaps: list[dict] = []
    rng_draws: dict = {}
    # The fold below is seed-order-dependent; an unordered container
    # reaching it would be a determinism bug the sanitizer flags.
    rep_results = sanitizer.checked_merge(rep_results, "aggregate_repetitions")
    for rep_result in rep_results:
        total.add(rep_result.counters)
        measured_txns += rep_result.measured_txns
        for name, cycles in rep_result.module_cycles.items():
            module_cycles[name] = module_cycles.get(name, 0.0) + cycles
        module_groups.update(rep_result.module_groups)
        obs_buffers.extend(rep_result.obs_buffers)
        if rep_result.obs_metrics:
            metric_snaps.append(rep_result.obs_metrics)
        sanitizer.merge_draws(rng_draws, rep_result.rng_draws)
    return RunResult(
        system=spec.system,
        counters=total,
        module_cycles=module_cycles,
        module_groups=module_groups,
        server=spec.server,
        measured_txns=measured_txns,
        obs_buffers=obs_buffers,
        obs_metrics=obs.merge_snapshots(*metric_snaps) if metric_snaps else {},
        rng_draws=rng_draws,
    )


class ExperimentRunner:
    """Runs one cell: engine x workload x budgets x repetitions."""

    def __init__(self, spec: RunSpec, workload_factory) -> None:
        self.spec = spec
        self.workload_factory = workload_factory

    def run(self, jobs: int | None = None) -> RunResult:
        """Run every repetition and aggregate.

        *jobs* > 1 fans repetitions out across worker processes when
        the workload factory is a picklable descriptor (see
        :mod:`repro.bench.parallel`); results are bit-identical to the
        serial path.  ``None`` means the ambient jobs setting.
        """
        spec = self.spec
        from repro.bench.parallel import map_repetitions

        rep_results = map_repetitions(spec, self.workload_factory, jobs=jobs)
        return aggregate_repetitions(spec, rep_results)

    # -- single repetition ----------------------------------------------------

    def _run_once(self, seed: int) -> RunResult:
        return run_repetition(self.spec, self.workload_factory, seed)
