"""Command-line entry point: regenerate any table or figure.

Usage::

    python -m repro.bench fig1 [fig2 ...] [--quick]
    python -m repro.bench all --quick
    python -m repro.bench validate --quick   # audit every figure's shape
    python -m repro.bench chaos --quick      # fault-injection suite
    repro-bench table1
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.figures import ALL_IDS, run_figure
from repro.bench.report import render_figure


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description=(
            "Regenerate tables/figures of 'Micro-architectural Analysis of "
            "In-memory OLTP' (SIGMOD 2016) on the simulated server."
        ),
    )
    parser.add_argument(
        "figures",
        nargs="+",
        help=f"figure ids ({', '.join(ALL_IDS)}), 'all', 'validate', or 'chaos'",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced budgets and a single repetition (tests / smoke runs)",
    )
    parser.add_argument(
        "--systems",
        nargs="+",
        default=None,
        help="chaos: systems to run (default: all five)",
    )
    parser.add_argument(
        "--workloads",
        nargs="+",
        default=None,
        help="chaos: workloads to run (micro, tpcc; default: both)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="chaos: fault-schedule seed"
    )
    parser.add_argument(
        "--txns", type=int, default=None, help="chaos: transactions per run"
    )
    parser.add_argument(
        "--crashes", type=int, default=None, help="chaos: crashes per run"
    )
    args = parser.parse_args(argv)

    if args.figures == ["chaos"]:
        from repro.faults.chaos import run_chaos_suite

        text, ok = run_chaos_suite(
            systems=args.systems,
            workloads=args.workloads,
            quick=args.quick,
            seed=args.seed,
            n_txns=args.txns,
            n_crashes=args.crashes,
        )
        print(text)
        return 0 if ok else 1

    if args.figures == ["validate"]:
        from repro.bench.validate import render_checks, validate_all

        checks = validate_all(quick=args.quick)
        print(render_checks(checks))
        return 0 if all(c.passed for c in checks) else 1

    ids = ALL_IDS if "all" in args.figures else args.figures
    status = 0
    for figure_id in ids:
        started = time.time()
        try:
            output = run_figure(figure_id, quick=args.quick)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            status = 2
            continue
        if isinstance(output, str):
            print(output)
        else:
            for panel in output:
                print(render_figure(panel))
                print()
        print(f"[{figure_id} regenerated in {time.time() - started:.1f}s]")
        print()
    return status


def console_main() -> int:  # pragma: no cover - thin wrapper
    """Entry point that tolerates closed pipes (``repro-bench ... | head``)."""
    try:
        return main()
    except BrokenPipeError:
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), 1)
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(console_main())
