"""Command-line entry point: regenerate any table or figure.

Usage::

    python -m repro.bench fig1 [fig2 ...] [--quick] [--jobs N] [--obs]
    python -m repro.bench all --quick --jobs 4
    python -m repro.bench validate --quick    # audit every figure's shape
    python -m repro.bench chaos --quick       # fault-injection suite
    python -m repro.bench perf --quick        # simulator perf record
    python -m repro.bench load --clients 1000000 --arrival flash   # open loop
    python -m repro.bench trace fig1 --out trace.json   # Perfetto trace
    python -m repro.bench top fig1            # TMAM top-down report
    python -m repro.bench store migrate       # promote legacy records
    python -m repro.bench diff RUN_A RUN_B    # compare two stored runs
    python -m repro.bench history p999_us     # one metric's trajectory
    python -m repro.bench serve               # dashboard on :8642
    repro-bench table1

``chaos``, ``validate``, ``perf``, ``load``, ``trace``, ``top``,
``serve``, ``diff``, ``history`` and ``store`` are proper subcommands
with their own options; mixing them with figure ids is rejected with a
clear message instead of falling through to the figure registry.
Out-of-range option values (a negative ``--remote-pct``, ``--shards 0``,
...) are rejected with exit code 2 before any work runs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.figures import ALL_IDS, run_figure
from repro.bench.report import render_figure
from repro.util.clock import wall_timer

SUBCOMMANDS = (
    "chaos", "validate", "perf", "load", "trace", "top",
    "serve", "diff", "history", "store",
)


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "fan independent cells/repetitions out over N worker processes "
            "(0 = one per core; results are bit-identical to serial)"
        ),
    )


def _resolve_jobs(jobs: int) -> int:
    if jobs == 0:
        from repro.bench.parallel import default_jobs

        return default_jobs()
    return max(1, jobs)


def _add_sanitize_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help=(
            "arm the RNG-stream sanitizer (repro.lint.sanitizer): stdout is "
            "bit-identical, violations go to stderr and fail the run"
        ),
    )


def _add_store_dir_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store-dir",
        type=Path,
        default=None,
        help="run-store root (default: benchmarks/store)",
    )


def _open_store(store_dir: Path | None):
    from repro.store import DEFAULT_STORE_DIR, RunStore

    return RunStore(store_dir or DEFAULT_STORE_DIR)


def _report_sanitizer(label: str) -> int:
    """Print the armed sanitizer's verdict to stderr; non-zero on violations."""
    from repro.lint import sanitizer

    print(f"[sanitize {label}: {sanitizer.summary()}]", file=sys.stderr)
    if sanitizer.ok():
        return 0
    for violation in sanitizer.violations():
        print(f"sanitize: {violation}", file=sys.stderr)
    return 1


def _chaos_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench chaos",
        description="Fault-injection & crash-recovery suite.",
    )
    parser.add_argument("--quick", action="store_true", help="reduced budgets")
    parser.add_argument(
        "--systems", nargs="+", default=None, help="systems to run (default: all five)"
    )
    parser.add_argument(
        "--workloads", nargs="+", default=None,
        help="workloads to run (micro, tpcc; default: both)",
    )
    parser.add_argument("--seed", type=int, default=1, help="fault-schedule seed")
    parser.add_argument("--txns", type=int, default=None, help="transactions per run")
    parser.add_argument("--crashes", type=int, default=None, help="crashes per run")
    parser.add_argument(
        "--replicas", type=int, default=0,
        help="WAL-shipping replicas per run (0 = replication off)",
    )
    parser.add_argument(
        "--ack", default="async", choices=("async", "sync-one", "quorum"),
        help="client acknowledgement mode when --replicas > 0",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="run the sharded 2PC chaos suite on N >= 1 shard primaries "
        "(omit for the classic single-node suite)",
    )
    parser.add_argument(
        "--remote-pct", type=float, default=20.0,
        help="multisite fraction of NewOrder/Payment when --shards is given",
    )
    parser.add_argument(
        "--seeds", type=int, default=1,
        help="number of seeds to sweep, starting at --seed (sharded suite)",
    )
    _add_jobs_argument(parser)
    _add_sanitize_argument(parser)
    parser.add_argument(
        "--record",
        action="store_true",
        help=(
            "persist the suite verdicts as a chaos run in the store "
            "(opt-in: the report on stdout stays byte-identical)"
        ),
    )
    _add_store_dir_argument(parser)
    args = parser.parse_args(argv)
    # Validate before any work: a nonsensical value must die with exit
    # code 2 and a usage line, not crash three suites in or silently run
    # a misconfigured sweep (a 150% remote fraction used to be accepted).
    if args.shards is not None and args.shards < 1:
        parser.error(
            f"--shards must be >= 1 (got {args.shards}); "
            "omit --shards for the classic single-node suite"
        )
    if not 0.0 <= args.remote_pct <= 100.0:
        parser.error(
            f"--remote-pct is a percentage and must be in [0, 100] "
            f"(got {args.remote_pct:g})"
        )
    if args.replicas < 0:
        parser.error(f"--replicas must be >= 0 (got {args.replicas})")
    if args.seeds < 1:
        parser.error(f"--seeds must be >= 1 (got {args.seeds})")
    if args.txns is not None and args.txns < 1:
        parser.error(f"--txns must be >= 1 (got {args.txns})")
    if args.crashes is not None and args.crashes < 0:
        parser.error(f"--crashes must be >= 0 (got {args.crashes})")
    if args.jobs < 0:
        parser.error(f"--jobs must be >= 0 (got {args.jobs})")

    from contextlib import nullcontext

    from repro.lint import sanitizer

    # The sanitizer only watches (TrackedRandom draws bit-identically),
    # so the report on stdout matches the unsanitized run byte-for-byte.
    cells: list | None = [] if args.record else None
    with sanitizer.sanitizing(True) if args.sanitize else nullcontext():
        if args.shards is not None:
            from repro.sharding import run_sharded_chaos_suite

            system = (args.systems or ["shore-mt"])[0]
            text, ok = run_sharded_chaos_suite(
                system=system,
                n_shards=args.shards,
                remote_pct=args.remote_pct,
                replicas=args.replicas,
                ack=args.ack,
                seeds=range(args.seed, args.seed + args.seeds),
                n_txns=args.txns,
                n_crashes=args.crashes,
                jobs=_resolve_jobs(args.jobs),
                collect=cells,
            )
        else:
            from repro.faults.chaos import run_chaos_suite

            text, ok = run_chaos_suite(
                systems=args.systems,
                workloads=args.workloads,
                quick=args.quick,
                seed=args.seed,
                n_txns=args.txns,
                n_crashes=args.crashes,
                replicas=args.replicas,
                ack=args.ack,
                jobs=_resolve_jobs(args.jobs),
                collect=cells,
            )
        print(text)
        if args.sanitize and _report_sanitizer("chaos"):
            ok = False
    if cells is not None:
        from repro.bench.perf import provenance
        from repro.store import chaos_run
        from repro.util.clock import timestamp

        spec = {
            "quick": args.quick,
            "systems": sorted(args.systems) if args.systems else None,
            "workloads": sorted(args.workloads) if args.workloads else None,
            "seed": args.seed,
            "seeds": args.seeds,
            "txns": args.txns,
            "crashes": args.crashes,
            "replicas": args.replicas,
            "ack": args.ack,
            "shards": args.shards,
            "remote_pct": args.remote_pct,
        }
        run_id = _open_store(args.store_dir).put(
            chaos_run(
                spec, cells, ok, created=timestamp(), provenance=provenance()
            )
        )
        print(f"store: {run_id}", file=sys.stderr)
    return 0 if ok else 1


def _validate_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench validate",
        description="Audit every figure's shape against the paper's claims.",
    )
    parser.add_argument("--quick", action="store_true", help="reduced budgets")
    _add_jobs_argument(parser)
    args = parser.parse_args(argv)

    from repro.bench.parallel import using_jobs
    from repro.bench.validate import render_checks, validate_all

    with using_jobs(_resolve_jobs(args.jobs)):
        checks = validate_all(quick=args.quick)
    print(render_checks(checks))
    return 0 if all(c.passed for c in checks) else 1


def _perf_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench perf",
        description=(
            "Measure simulator throughput (events/sec, txns/sec, figure "
            "wall-clock) and append a BENCH_<date>.json record."
        ),
    )
    parser.add_argument("--quick", action="store_true", help="shorter timing runs")
    _add_jobs_argument(parser)
    parser.add_argument(
        "--records-dir",
        type=Path,
        default=None,
        help="where BENCH_*.json records live (default: benchmarks/records)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero on a >30%% events/sec regression vs the best prior record",
    )
    parser.add_argument(
        "--no-save", action="store_true", help="measure and report without recording"
    )
    _add_store_dir_argument(parser)
    args = parser.parse_args(argv)

    from repro.bench.perf import DEFAULT_RECORDS_DIR, run_perf

    text, ok = run_perf(
        quick=args.quick,
        jobs=_resolve_jobs(args.jobs),
        records_dir=args.records_dir or DEFAULT_RECORDS_DIR,
        check=args.check,
        save=not args.no_save,
        store_dir=args.store_dir,
    )
    print(text)
    return 0 if ok else 1


def _load_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench load",
        description=(
            "Open-loop load driver: N simulated clients (seeded arrival "
            "streams, not threads) offer transactions at a rate the system "
            "does not control; reports p50/p99/p999 latency and the "
            "throughput-vs-offered-load saturation curve."
        ),
    )
    parser.add_argument(
        "--clients", type=int, default=1000,
        metavar="N", help="simulated clients (arrival streams scale O(1) in N)",
    )
    parser.add_argument(
        "--arrival", default="poisson", choices=("poisson", "burst", "flash"),
        help="arrival process shaping the offered rate over virtual time",
    )
    parser.add_argument(
        "--mix", default="read-write",
        choices=("read-only", "read-write", "write-only", "incremental-write"),
        help="transaction mix the clients submit",
    )
    parser.add_argument(
        "--rate", type=float, default=None, metavar="R",
        help="base offered rate in txns/s of virtual time "
        "(default: probe the backend's capacity)",
    )
    parser.add_argument(
        "--system", default="hyper", help="engine under load (default: hyper)"
    )
    parser.add_argument(
        "--events", type=int, default=600, metavar="N",
        help="timeline events per sweep point",
    )
    parser.add_argument(
        "--streams", type=int, default=None, metavar="N",
        help="arrival streams (client cohorts); default 32",
    )
    parser.add_argument(
        "--think-ms", type=float, default=0.0,
        help="mean per-client think time (exponential), milliseconds",
    )
    parser.add_argument(
        "--servers", type=int, default=1,
        help="virtual service slots draining the queue",
    )
    parser.add_argument(
        "--shards", type=int, default=0,
        help="drive a ShardedCluster of N primaries (its own TPC-C "
        "distributed mix; 0 = no sharding)",
    )
    parser.add_argument(
        "--replicas", type=int, default=0,
        help="WAL-shipping replicas (per shard when --shards > 0)",
    )
    parser.add_argument(
        "--ack", default="quorum", choices=("async", "sync-one", "quorum"),
        help="client acknowledgement mode when --replicas > 0",
    )
    parser.add_argument(
        "--remote-pct", type=float, default=10.0,
        help="cross-shard fraction when --shards > 0",
    )
    parser.add_argument(
        "--fault-rate", type=float, default=0.0,
        help="per-transaction probability of an injected abort",
    )
    parser.add_argument(
        "--multipliers", type=float, nargs="+", default=None,
        metavar="M", help="offered-load multipliers (default: 0.25 0.5 1 2 4)",
    )
    parser.add_argument("--seed", type=int, default=42, help="arrival-stream seed")
    chaos_group = parser.add_argument_group(
        "chaos under load",
        "seeded fault windows merged into the sweep timeline, plus the "
        "client-side resilience policy layer (repro.load.resilience)",
    )
    chaos_group.add_argument(
        "--chaos", default=None, metavar="SUITE",
        help="fault suite to fire during the sweep (crash, partition, "
        "coordinator-crash, prepare-stall, brownout, slow-shard, mixed)",
    )
    chaos_group.add_argument(
        "--chaos-windows", type=int, default=1, metavar="N",
        help="fault windows per kind across each point's horizon",
    )
    chaos_group.add_argument(
        "--timeout-ms", type=float, default=0.0, metavar="T",
        help="per-request client timeout in virtual ms (0 = none)",
    )
    chaos_group.add_argument(
        "--retry", type=int, default=0, metavar="N",
        help="client retries per request (capped-exponential + seeded "
        "jitter backoff; 0 = fail fast)",
    )
    chaos_group.add_argument(
        "--shed", type=int, default=0, metavar="DEPTH",
        help="admission control: reject arrivals when the queue is this "
        "deep (0 = never shed)",
    )
    chaos_group.add_argument(
        "--breaker", type=int, default=0, metavar="N",
        help="circuit breaker: open after N consecutive failures "
        "(0 = no breaker)",
    )
    _add_jobs_argument(parser)
    _add_sanitize_argument(parser)
    parser.add_argument(
        "--records-dir", type=Path, default=None,
        help="where LOAD_*.json records live (default: benchmarks/records)",
    )
    parser.add_argument(
        "--no-save", action="store_true", help="report without recording"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "exit non-zero on a >30%% p999 regression vs the most recent "
            "committed baseline with an identical spec (the latency-SLO "
            "CI gate; passes when no comparable baseline exists)"
        ),
    )
    _add_store_dir_argument(parser)
    args = parser.parse_args(argv)
    # Same validation rigor as chaos: die with exit 2 before any work.
    if args.clients < 1:
        parser.error(f"--clients must be >= 1 (got {args.clients})")
    if args.rate is not None and args.rate <= 0:
        parser.error(f"--rate must be > 0 (got {args.rate:g})")
    if args.events < 1:
        parser.error(f"--events must be >= 1 (got {args.events})")
    if args.streams is not None and args.streams < 1:
        parser.error(f"--streams must be >= 1 (got {args.streams})")
    if args.think_ms < 0:
        parser.error(f"--think-ms must be >= 0 (got {args.think_ms:g})")
    if args.servers < 1:
        parser.error(f"--servers must be >= 1 (got {args.servers})")
    if args.shards < 0:
        parser.error(f"--shards must be >= 0 (got {args.shards})")
    if args.replicas < 0:
        parser.error(f"--replicas must be >= 0 (got {args.replicas})")
    if not 0.0 <= args.remote_pct <= 100.0:
        parser.error(
            f"--remote-pct is a percentage and must be in [0, 100] "
            f"(got {args.remote_pct:g})"
        )
    if not 0.0 <= args.fault_rate < 1.0:
        parser.error(f"--fault-rate must be in [0, 1) (got {args.fault_rate:g})")
    if args.multipliers is not None and any(m <= 0 for m in args.multipliers):
        parser.error("--multipliers must all be > 0")
    if args.jobs < 0:
        parser.error(f"--jobs must be >= 0 (got {args.jobs})")
    if args.chaos_windows < 1:
        parser.error(f"--chaos-windows must be >= 1 (got {args.chaos_windows})")
    if args.timeout_ms < 0:
        parser.error(f"--timeout-ms must be >= 0 (got {args.timeout_ms:g})")
    if args.retry < 0:
        parser.error(f"--retry must be >= 0 (got {args.retry})")
    if args.shed < 0:
        parser.error(f"--shed must be >= 0 (got {args.shed})")
    if args.breaker < 0:
        parser.error(f"--breaker must be >= 0 (got {args.breaker})")

    from contextlib import nullcontext

    from repro.lint import sanitizer
    from repro.load import ArrivalSpec, LoadSpec, run_load
    from repro.load.report import (
        DEFAULT_RECORDS_DIR,
        append_load_record,
        load_record,
        read_load_records,
        render_load_report,
    )

    arrival_kwargs = dict(
        process=args.arrival,
        n_clients=args.clients,
        n_events=args.events,
        think_ms=args.think_ms,
    )
    if args.streams is not None:
        arrival_kwargs["n_streams"] = args.streams
    spec_kwargs = dict(
        system=args.system,
        mix=args.mix,
        arrival=ArrivalSpec(**arrival_kwargs),
        rate=args.rate,
        servers=args.servers,
        shards=args.shards,
        replicas=args.replicas,
        ack=args.ack,
        remote_pct=args.remote_pct,
        fault_rate=args.fault_rate,
        seed=args.seed,
    )
    if args.multipliers is not None:
        spec_kwargs["multipliers"] = tuple(args.multipliers)
    if args.chaos is not None:
        from repro.load.resilience import chaos_suite

        try:
            spec_kwargs["chaos"] = chaos_suite(
                args.chaos, windows_per_kind=args.chaos_windows
            )
        except ValueError as exc:
            parser.error(str(exc))
    if any((args.timeout_ms, args.retry, args.shed, args.breaker)):
        from repro.load.resilience import ResilienceSpec

        spec_kwargs["resilience"] = ResilienceSpec(
            timeout_ms=args.timeout_ms,
            max_retries=args.retry,
            shed_depth=args.shed,
            breaker_threshold=args.breaker,
        )
    try:
        spec = LoadSpec(**spec_kwargs)
    except ValueError as exc:
        parser.error(str(exc))
    # Stdout is a pure function of the seed (no wall clock, no host
    # facts) so serial vs --jobs N and sanitized vs plain runs byte-diff
    # clean; timestamps/provenance live only in the LOAD_<date> record.
    with sanitizer.sanitizing(True) if args.sanitize else nullcontext():
        result = run_load(spec, jobs=_resolve_jobs(args.jobs))
        print(render_load_report(result))
        status = 0
        if args.sanitize and _report_sanitizer("load"):
            status = 1
    record = load_record(result)
    records_dir = args.records_dir or DEFAULT_RECORDS_DIR
    # The store rides beside the records dir unless placed explicitly,
    # so redirecting --records-dir (tests, CI sandboxes) never writes
    # into the repo's benchmarks/store/.
    store_dir = args.store_dir or Path(records_dir).parent / "store"
    if args.check:
        from repro.store import (
            LOAD,
            check_load_regression,
            find_load_baseline,
            load_run,
        )

        store = _open_store(store_dir)
        candidates = [load_run(r) for r in read_load_records(records_dir)]
        candidates.extend(
            store.get(meta["run_id"]) for meta in store.list_runs(LOAD)
        )
        fresh = load_run(record)
        if find_load_baseline(fresh.spec, candidates) is None:
            # A gate that silently passes because nothing matched is a
            # gate that never fires: make the missing baseline loud and
            # distinguishable (exit 2) from a real regression (exit 1).
            # This run is still recorded below, so it becomes the
            # baseline the next invocation gates against.
            print(
                "load check: no matching baseline — no committed record "
                "shares this spec (system/mix/backend/chaos/resilience/"
                "seed); this run is recorded as the baseline unless "
                "--no-save was given",
                file=sys.stderr,
            )
            status = 2
        else:
            check_text, check_ok = check_load_regression(fresh, candidates)
            print(check_text)
            if not check_ok:
                status = 1
    if not args.no_save:
        from repro.store import load_run

        path = append_load_record(record, records_dir)
        print(f"recorded: {path}")
        run_id = _open_store(store_dir).put(load_run(record))
        print(f"store: {run_id}")
    return status


def _collect_obs_buffers(panels) -> list:
    """Per-repetition event buffers from figure panels, in seed order.

    One buffer per (panel, cell, repetition) — buffers keep their own
    clocks, so the exporter gives each its own pid and timestamp
    monotonicity holds per lane.
    """
    buffers = []
    for panel in panels:
        for (system, x), result in panel.cells.items():
            for rep, events in enumerate(result.obs_buffers):
                label = f"{panel.figure_id} {system} {panel.x_label}={x} rep{rep}"
                buffers.append((label, events))
    return buffers


def _trace_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench trace",
        description=(
            "Run a figure with span tracing enabled and export a Chrome "
            "trace-event JSON (open in https://ui.perfetto.dev or "
            "chrome://tracing)."
        ),
    )
    parser.add_argument("figure", help=f"figure id ({', '.join(ALL_IDS)})")
    parser.add_argument("--quick", action="store_true", help="reduced budgets")
    _add_jobs_argument(parser)
    parser.add_argument(
        "--out", type=Path, default=Path("trace.json"),
        help="Chrome trace-event output path (default: trace.json)",
    )
    parser.add_argument(
        "--jsonl", type=Path, default=None, help="also write a flat JSONL event log"
    )
    parser.add_argument(
        "--prom", type=Path, default=None,
        help="also write a Prometheus textfile snapshot of the metrics registry",
    )
    args = parser.parse_args(argv)

    from repro import obs
    from repro.bench.parallel import using_jobs
    from repro.obs.exporters import (
        validate_chrome_trace,
        write_chrome_trace,
        write_jsonl,
        write_prometheus,
    )

    with obs.using_obs(True):
        with using_jobs(_resolve_jobs(args.jobs)):
            try:
                output = run_figure(args.figure, quick=args.quick)
            except KeyError as exc:
                print(exc.args[0], file=sys.stderr)
                return 2
        stray = obs.drain_events()
    panels = output if isinstance(output, list) else []
    buffers = _collect_obs_buffers(panels)
    if stray:
        buffers.append(("harness", stray))
    if not buffers:
        print(f"{args.figure} produced no span events (nothing to trace)", file=sys.stderr)
        return 1

    doc = write_chrome_trace(args.out, buffers)
    n_events = sum(len(events) for _, events in buffers)
    cats = sorted({e.cat for _, events in buffers for e in events})
    problems = validate_chrome_trace(doc)
    print(
        f"wrote {args.out}: {n_events} events, {len(buffers)} buffer(s), "
        f"layers: {', '.join(cats)}"
    )
    if args.jsonl is not None:
        print(f"wrote {args.jsonl}: {write_jsonl(args.jsonl, buffers)} lines")
    if args.prom is not None:
        snaps = [
            r.obs_metrics
            for panel in panels
            for r in panel.cells.values()
            if r.obs_metrics
        ]
        write_prometheus(args.prom, obs.merge_snapshots(*snaps))
        print(f"wrote {args.prom}")
    if problems:
        for problem in problems:
            print(f"trace validation: {problem}", file=sys.stderr)
        return 1
    return 0


def _top_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench top",
        description=(
            "Regenerate figures and render the TMAM-style top-down cycle "
            "attribution alongside the paper's stall breakdown."
        ),
    )
    parser.add_argument("figures", nargs="+", help=f"figure ids ({', '.join(ALL_IDS)})")
    parser.add_argument("--quick", action="store_true", help="reduced budgets")
    _add_jobs_argument(parser)
    args = parser.parse_args(argv)

    from repro.bench.report import render_topdown

    jobs = _resolve_jobs(args.jobs)
    ids = ALL_IDS if "all" in args.figures else args.figures
    status = 0
    for figure_id in ids:
        try:
            output = run_figure(figure_id, quick=args.quick, jobs=jobs)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            status = 2
            continue
        if isinstance(output, str):
            print(f"{figure_id} has no per-cell counters to attribute", file=sys.stderr)
            continue
        for panel in output:
            print(render_figure(panel))
            print()
            print(render_topdown(panel))
            print()
    return status


def _serve_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench serve",
        description=(
            "Serve the run-store dashboard + JSON API (stdlib http.server): "
            "/runs, /runs/<id>, /diff/<a>/<b>, /history/<metric>."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8642, help="port (default 8642)")
    parser.add_argument(
        "--no-migrate",
        action="store_true",
        help="skip the idempotent legacy-record migration on startup",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log requests to stderr"
    )
    _add_store_dir_argument(parser)
    args = parser.parse_args(argv)
    if not 0 <= args.port <= 65535:
        parser.error(f"--port must be in [0, 65535] (got {args.port})")

    from repro.store import migrate_records
    from repro.store.migrate import render_migration
    from repro.store.server import serve

    store = _open_store(args.store_dir)
    if not args.no_migrate:
        migrated, skipped = migrate_records(store=store)
        if migrated or skipped:
            print(render_migration(migrated, skipped), file=sys.stderr)
    print(
        f"serving {store.root} on http://{args.host}:{args.port}/ (Ctrl-C stops)",
        file=sys.stderr,
    )
    serve(store, args.host, args.port, verbose=args.verbose)
    return 0


def _diff_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench diff",
        description=(
            "Compare two stored runs of the same kind: perf deltas, "
            "latency-percentile regressions, figure drift and chaos-verdict "
            "changes, each against its explicit threshold.  Exit 1 when any "
            "threshold trips."
        ),
    )
    parser.add_argument("run_a", help="baseline run id (repro-bench store list)")
    parser.add_argument("run_b", help="candidate run id")
    _add_store_dir_argument(parser)
    args = parser.parse_args(argv)

    from repro.store import diff_runs, render_diff

    store = _open_store(args.store_dir)
    try:
        diff = diff_runs(store.get(args.run_a), store.get(args.run_b))
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(render_diff(diff))
    return 0 if diff.ok else 1


def _history_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench history",
        description=(
            "One metric's trajectory across every stored run: named metrics "
            "(events_per_sec, txns_per_sec, capacity_tps, p50_us, p99_us, "
            "p999_us, chaos_ok) or a dotted payload path."
        ),
    )
    parser.add_argument("metric", help="named metric or dotted payload path")
    parser.add_argument(
        "--kind", default=None, choices=("bench", "load", "chaos", "figure"),
        help="only consider runs of this kind",
    )
    _add_store_dir_argument(parser)
    args = parser.parse_args(argv)

    from repro.store import metric_history, render_history

    history = metric_history(_open_store(args.store_dir), args.metric, kind=args.kind)
    print(render_history(args.metric, history))
    return 0


def _store_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench store",
        description="Run-store maintenance: migrate legacy records, list runs.",
    )
    parser.add_argument(
        "action", choices=("migrate", "list"),
        help="migrate: promote benchmarks/records/*.json (idempotent); "
        "list: every stored run, oldest first",
    )
    parser.add_argument(
        "--records-dir", type=Path, default=None,
        help="legacy records to migrate (default: benchmarks/records)",
    )
    _add_store_dir_argument(parser)
    args = parser.parse_args(argv)

    store = _open_store(args.store_dir)
    if args.action == "migrate":
        from repro.store import migrate_records
        from repro.store.migrate import DEFAULT_RECORDS_DIR, render_migration

        migrated, skipped = migrate_records(
            args.records_dir or DEFAULT_RECORDS_DIR, store=store
        )
        print(render_migration(migrated, skipped))
        return 0
    for meta in store.list_runs():
        summary = meta.get("summary") or {}
        parts = "  ".join(
            f"{key}={value}" for key, value in summary.items()
            if value not in (None, [], "")
        )
        print(
            f"{meta.get('run_id', '?'):<24} {meta.get('kind', '?'):<7} "
            f"{meta.get('fingerprint', '')[:8]:<9} {parts}"
        )
    return 0


def _figures_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description=(
            "Regenerate tables/figures of 'Micro-architectural Analysis of "
            "In-memory OLTP' (SIGMOD 2016) on the simulated server."
        ),
        epilog="Subcommands: " + ", ".join(SUBCOMMANDS) + " (run e.g. 'repro-bench perf --help').",
    )
    parser.add_argument(
        "figures",
        nargs="+",
        help=f"figure ids ({', '.join(ALL_IDS)}) or 'all'",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced budgets and a single repetition (tests / smoke runs)",
    )
    _add_jobs_argument(parser)
    parser.add_argument(
        "--obs",
        action="store_true",
        help=(
            "run with span tracing enabled (figure output is bit-identical; "
            "a span-count note goes to stderr)"
        ),
    )
    _add_sanitize_argument(parser)
    parser.add_argument(
        "--record",
        action="store_true",
        help=(
            "persist the regenerated panels as a figure run in the store "
            "(opt-in: stdout stays byte-identical)"
        ),
    )
    _add_store_dir_argument(parser)
    args = parser.parse_args(argv)

    mixed = sorted(set(args.figures) & set(SUBCOMMANDS))
    if mixed:
        print(
            f"'{mixed[0]}' is a subcommand, not a figure id; run it on its own: "
            f"'repro-bench {mixed[0]} [options]'",
            file=sys.stderr,
        )
        return 2

    from contextlib import nullcontext

    from repro import obs
    from repro.lint import sanitizer

    jobs = _resolve_jobs(args.jobs)
    ids = ALL_IDS if "all" in args.figures else args.figures
    status = 0
    recorded_panels: list = []
    # Like --obs, --sanitize must not change stdout: TrackedRandom draws
    # bit-identically and the verdict goes to stderr.
    with sanitizer.sanitizing(True) if args.sanitize else nullcontext():
        for figure_id in ids:
            started = wall_timer()
            try:
                # Figure output is bit-identical with or without --obs; the
                # span tally goes to stderr so stdout stays comparable.
                with obs.using_obs(True) if args.obs else nullcontext():
                    output = run_figure(figure_id, quick=args.quick, jobs=jobs)
            except KeyError as exc:
                print(exc.args[0], file=sys.stderr)
                status = 2
                continue
            if isinstance(output, list):
                recorded_panels.extend(output)
            if isinstance(output, str):
                print(output)
            else:
                for panel in output:
                    print(render_figure(panel))
                    print()
                if args.obs:
                    n_spans = sum(
                        len(events)
                        for panel in output
                        for r in panel.cells.values()
                        for events in r.obs_buffers
                    )
                    print(f"[{figure_id}: {n_spans} span events recorded]", file=sys.stderr)
            print(f"[{figure_id} regenerated in {wall_timer() - started:.1f}s]")
            print()
        if args.sanitize and _report_sanitizer("figures") and status == 0:
            status = 1
    if args.record and recorded_panels:
        from repro.bench.perf import provenance
        from repro.store import figure_run
        from repro.util.clock import timestamp

        run_id = _open_store(args.store_dir).put(
            figure_run(
                recorded_panels,
                quick=args.quick,
                created=timestamp(),
                provenance=provenance(),
            )
        )
        print(f"store: {run_id}", file=sys.stderr)
    return status


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    first_positional = next((a for a in argv if not a.startswith("-")), None)
    if first_positional in SUBCOMMANDS:
        rest = list(argv)
        rest.remove(first_positional)
        dispatch = {
            "chaos": _chaos_main,
            "validate": _validate_main,
            "perf": _perf_main,
            "load": _load_main,
            "trace": _trace_main,
            "top": _top_main,
            "serve": _serve_main,
            "diff": _diff_main,
            "history": _history_main,
            "store": _store_main,
        }
        return dispatch[first_positional](rest)
    return _figures_main(argv)


def console_main() -> int:  # pragma: no cover - thin wrapper
    """Entry point that tolerates closed pipes (``repro-bench ... | head``)."""
    try:
        return main()
    except BrokenPipeError:
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), 1)
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(console_main())
