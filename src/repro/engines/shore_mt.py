"""Shore-MT: the open-source disk-based storage manager [Johnson 2009].

What the paper says about it (Sections 3, 4.1.2, 4.1.3):

* it is *only* a storage manager — no query parser, optimiser or
  communication layers; benchmarks are hard-coded C++ plans through
  Shore-Kits, so its instruction stalls are significantly lower than
  the full-stack commercial DBMS D;
* it keeps the full traditional machinery: centralised two-phase
  locking, page latching, a buffer pool on the access path of every
  page touch, and ARIES-style logging;
* its B+tree uses disk-sized (8 KB) pages and is **not**
  cache-conscious, which is why it shows the highest LLC data stalls
  per transaction of all five systems (Figure 3).
"""

from __future__ import annotations

from repro.codegen.module import ENGINE, OTHER
from repro.core.trace import AccessTrace
from repro.engines.base import AbortReason, Engine, Transaction, TransactionAborted
from repro.engines.config import EngineConfig
from repro.storage.buffer_pool import BufferPool
from repro.storage.index_factory import BTREE
from repro.storage.lock_manager import LockConflict, LockManager, LockMode
from repro.storage.wal import WriteAheadLog
from repro.util.stablehash import stable_hash


class ShoreMTTransaction(Transaction):
    """2PL transaction over the Shore-MT storage manager."""

    def __init__(self, engine: "ShoreMT", trace: AccessTrace, txn_id: int, procedure: str) -> None:
        super().__init__(engine, trace, txn_id, procedure)
        self._tables_locked: set[str] = set()
        # Before-images for ARIES-style rollback: (kind, table, ...).
        self._undo: list[tuple] = []
        eng = engine
        eng._txn_begin_walk(trace)
        eng._w(trace, "txn_mgr", 0.30)
        eng.wal.append(txn_id, "begin", 16, trace, eng.mods["log"])
        eng._w(trace, "log", 0.10)

    # -- internal helpers -----------------------------------------------------

    def _lock(self, resource, mode: LockMode) -> None:
        eng = self.engine
        eng._w(self.trace, "lock_mgr", 0.24)
        try:
            eng.locks.acquire(self.txn_id, resource, mode, self.trace, eng.mods["lock_mgr"])
        except LockConflict as exc:
            raise TransactionAborted(str(exc), reason=AbortReason.LOCK_CONFLICT) from exc

    def _intent_lock(self, table: str, write: bool) -> None:
        if table not in self._tables_locked:
            self._lock(("table", table), LockMode.IX if write else LockMode.IS)
            self._tables_locked.add(table)

    def _fix_index_pages(self, table_name: str, key: int) -> None:
        """Buffer-pool fix + latch for every index page on the probe path."""
        eng = self.engine
        trace = self.trace
        table = eng.table(table_name)
        for page_no in eng.index_page_path(table, key):
            eng._w(trace, "bpool", 0.11)
            eng.bpool.fix(stable_hash(table_name) & 0xFFFF, page_no, trace, eng.mods["bpool"])
            eng._w(trace, "latch", 0.28)
            eng.bpool.unfix(stable_hash(table_name) & 0xFFFF, page_no, trace, eng.mods["bpool"])

    def _fix_row_page(self, table_name: str, row_id: int) -> None:
        eng = self.engine
        table = eng.table(table_name)
        page_bytes = eng.config.page_bytes
        page_no = table.heap.row_offset(row_id) // page_bytes
        eng._w(self.trace, "bpool", 0.11)
        eng.bpool.fix(0x10000 | (stable_hash(table_name) & 0xFFFF), page_no, self.trace, eng.mods["bpool"])
        eng._w(self.trace, "latch", 0.25)
        # Slotted page: the slot array at the page head is read before
        # the tuple itself (one more dependent line on a random page).
        slot_line = table.heap.region.base_line + (page_no * page_bytes) // 64
        self.trace.load(slot_line, eng.mods["heap_code"], serial=True)
        eng.bpool.unfix(0x10000 | (stable_hash(table_name) & 0xFFFF), page_no, self.trace, eng.mods["bpool"])

    # -- operations -------------------------------------------------------------

    def read(self, table: str, key: int) -> tuple | None:
        eng = self.engine
        eng._per_statement_walk(self.trace)
        eng.stats.operations += 1
        self._intent_lock(table, write=False)
        eng._w(self.trace, "btree", 0.34)
        self._fix_index_pages(table, key)
        row_id = eng.table(table).probe(key, self.trace, eng.mods["btree"])
        eng._retire_comparisons(self.trace, table, eng.mods["btree"])
        if row_id is None:
            return None
        self._lock(("row", table, key), LockMode.S)
        self._fix_row_page(table, row_id)
        eng._w(self.trace, "heap_code", 0.24)
        return eng.table(table).heap.read(row_id, self.trace, eng.mods["heap_code"])

    def update(self, table: str, key: int, column: str, value) -> tuple:
        eng = self.engine
        eng._per_statement_walk(self.trace)
        eng.stats.operations += 1
        self._intent_lock(table, write=True)
        eng._w(self.trace, "btree", 0.34)
        self._fix_index_pages(table, key)
        row_id = eng.table(table).probe(key, self.trace, eng.mods["btree"])
        eng._retire_comparisons(self.trace, table, eng.mods["btree"])
        if row_id is None:
            raise KeyError(f"update of missing key {key} in {table!r}")
        self._lock(("row", table, key), LockMode.X)
        self._fix_row_page(table, row_id)
        eng._w(self.trace, "heap_code", 0.30)
        heap = eng.table(table).heap
        self._undo.append(("update", table, row_id, heap.read(row_id)))
        new_row = heap.update_column(row_id, column, value, self.trace, eng.mods["heap_code"])
        eng._w(self.trace, "log", 0.30)
        eng.wal.append(
            self.txn_id, "update", heap.schema.row_bytes, self.trace, eng.mods["log"],
            payload=(table, row_id, new_row),
        )
        return new_row

    def insert(self, table: str, values: tuple, key: int | None = None) -> int:
        eng = self.engine
        eng._per_statement_walk(self.trace)
        eng.stats.operations += 1
        self._intent_lock(table, write=True)
        eng._w(self.trace, "btree", 0.38)
        eng._w(self.trace, "heap_code", 0.40)
        tbl = eng.table(table)
        row_id = tbl.insert_row(values, key, self.trace, eng.mods["heap_code"])
        self._undo.append(("insert", table, key if key is not None else row_id))
        self._lock(("row", table, key if key is not None else row_id), LockMode.X)
        self._fix_row_page(table, row_id)
        eng._w(self.trace, "log", 0.35)
        eng.wal.append(
            self.txn_id, "insert", tbl.heap.schema.row_bytes, self.trace, eng.mods["log"],
            payload=(table, key if key is not None else row_id, row_id, tuple(values)),
        )
        return row_id

    def scan(self, table: str, key: int, n: int) -> list:
        eng = self.engine
        eng._per_statement_walk(self.trace)
        eng.stats.operations += 1
        self._intent_lock(table, write=False)
        self._lock(("range", table, key // 1024), LockMode.S)
        eng._w(self.trace, "btree", 0.30)
        self._fix_index_pages(table, key)
        tbl = eng.table(table)
        results = tbl.index.range_scan(key, n, self.trace, eng.mods["btree"])
        # One fix + short latch per visited leaf page.
        entries_per_page = max(8, eng.config.page_bytes // 16)
        for page in range(-(-max(1, n) // entries_per_page)):
            eng._w(self.trace, "bpool", 0.10)
            eng._w(self.trace, "latch", 0.20)
        out = []
        for scan_key, row_id in results:
            out.append((scan_key, tbl.heap.read(row_id, self.trace, eng.mods["heap_code"])))
        if out:
            eng._w(self.trace, "heap_code", 0.25)
        return out

    def delete(self, table: str, key: int) -> bool:
        eng = self.engine
        eng._per_statement_walk(self.trace)
        eng.stats.operations += 1
        self._intent_lock(table, write=True)
        self._lock(("row", table, key), LockMode.X)
        eng._w(self.trace, "btree", 0.36)
        self._fix_index_pages(table, key)
        tbl = eng.table(table)
        row_id = tbl.probe(key, None, eng.mods["btree"])
        present = tbl.index.delete(key, self.trace, eng.mods["btree"])
        if present:
            self._undo.append(("delete", table, key, row_id))
            eng._w(self.trace, "log", 0.30)
            eng.wal.append(
                self.txn_id, "delete", 24, self.trace, eng.mods["log"],
                payload=(table, key),
            )
        return present

    # -- completion ------------------------------------------------------------------

    def commit(self) -> None:
        self._finish()
        eng = self.engine
        eng._txn_commit_walk(self.trace)
        eng._w(self.trace, "txn_mgr", 0.25)
        eng._w(self.trace, "log", 0.25)
        eng.wal.append(self.txn_id, "commit", 24, self.trace, eng.mods["log"])
        eng._w(self.trace, "lock_mgr", 0.28)
        eng.locks.release_all(self.txn_id, self.trace, eng.mods["lock_mgr"])

    def abort(self) -> None:
        self._finish()
        eng = self.engine
        eng._w(self.trace, "txn_mgr", 0.30)
        eng._w(self.trace, "log", 0.35)  # rollback walks the log tail
        self._rollback()
        eng.wal.append(self.txn_id, "abort", 24, self.trace, eng.mods["log"])
        eng.locks.release_all(self.txn_id, self.trace, eng.mods["lock_mgr"])

    def _rollback(self) -> None:
        """Apply before-images in reverse (compensation writes)."""
        eng = self.engine
        mod = eng.mods["heap_code"]
        for entry in reversed(self._undo):
            kind = entry[0]
            if kind == "update":
                _, table, row_id, old_row = entry
                eng.table(table).heap.write(row_id, old_row, self.trace, mod)
                eng.wal.append(
                    self.txn_id, "clr", 24, self.trace, eng.mods["log"],
                    payload=("update", table, row_id, old_row),
                )
            elif kind == "insert":
                _, table, key = entry
                eng.table(table).index.delete(key, self.trace, mod)
                eng.wal.append(
                    self.txn_id, "clr", 24, self.trace, eng.mods["log"],
                    payload=("uninsert", table, key),
                )
            else:  # deleted key: restore the index entry
                _, table, key, row_id = entry
                if row_id is not None:
                    eng.table(table).index.insert(key, row_id, self.trace, mod)
                    eng.wal.append(
                        self.txn_id, "clr", 24, self.trace, eng.mods["log"],
                        payload=("undelete", table, key, row_id),
                    )
        self._undo.clear()


class ShoreMT(Engine):
    """The Shore-MT storage manager with Shore-Kits hard-coded plans."""

    system = "Shore-MT"
    default_index_kind = BTREE
    is_partitioned = False

    def __init__(self, config: EngineConfig | None = None) -> None:
        super().__init__(config)
        self.locks = LockManager("shore", self.space)
        self.bpool = BufferPool("shore", self.space, page_bytes=self.config.page_bytes)
        self.wal = WriteAheadLog("shore", self.space, buffer_bytes=2 << 20)

    def _register_modules(self) -> None:
        # Shore-Kits drives hard-coded transaction plans: the only code
        # outside the storage manager is the thin driver.
        self._module("kits", OTHER, 12, instructions_per_line=14)
        self._module("txn_mgr", ENGINE, 16, base_cpi=0.48)
        self._module("lock_mgr", ENGINE, 30, branches_per_kilo_instruction=220,
                     mispredict_rate=0.05, base_cpi=0.52)
        self._module("latch", ENGINE, 8, base_cpi=0.48)
        self._module("bpool", ENGINE, 30, branches_per_kilo_instruction=200, base_cpi=0.52)
        self._module("btree", ENGINE, 36, branches_per_kilo_instruction=210,
                     mispredict_rate=0.05, base_cpi=0.50)
        self._module("heap_code", ENGINE, 13, base_cpi=0.48)
        self._module("log", ENGINE, 18, base_cpi=0.48)

    # -- layer hooks (overridden by the full-stack DBMS D) -------------------

    def _txn_begin_walk(self, trace: AccessTrace) -> None:
        """Code outside the storage manager at transaction start."""
        self._w(trace, "kits", 0.25)

    def _txn_commit_walk(self, trace: AccessTrace) -> None:
        self._w(trace, "kits", 0.12)

    def _per_statement_walk(self, trace: AccessTrace) -> None:
        """Hard-coded plans: no per-statement SQL layer in Shore-Kits."""
        self._w(trace, "kits", 0.06)

    def index_page_path(self, table, key: int) -> list[int]:
        """Distinct page numbers an index probe fixes, root to leaf."""
        index = getattr(table, "index", None)
        if index is None:  # partitioned tables are not used by Shore-MT
            return []
        lines_per_page = max(1, self.config.page_bytes // 64)
        if hasattr(index, "probe_lines"):
            pages: list[int] = []
            for line in index.probe_lines(key):
                page = line // lines_per_page
                if not pages or pages[-1] != page:
                    pages.append(page)
            return pages
        if hasattr(index, "probe_path"):
            return [offset // self.config.page_bytes for offset in index.probe_path(key)]
        return []

    def begin(self, trace: AccessTrace | None = None, procedure: str = "adhoc") -> ShoreMTTransaction:
        if trace is None:
            trace = AccessTrace()
        return ShoreMTTransaction(self, trace, self._new_txn_id(), procedure)

    def recovery_log(self) -> WriteAheadLog:
        return self.wal

    def _aux_hot_regions(self) -> list[tuple[int, int]]:
        return [
            (self.locks._region.base_line, self.locks._region.n_lines),
            (self.bpool._pt_region.base_line, self.bpool._pt_region.n_lines),
            (self.bpool._frame_region.base_line, self.bpool._frame_region.n_lines),
        ]

    def _aux_cold_regions(self) -> list[tuple[int, int]]:
        return [(self.wal._region.base_line, self.wal._region.n_lines)]
