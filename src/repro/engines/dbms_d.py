"""DBMS D: the closed-source commercial disk-based DBMS.

The paper cannot name it; what it measures is the *shape* of a
traditional full-stack commercial system (Sections 4.1.2, 4.2.2, 5.2.2):

* the complete SQL stack sits on the critical path — communication,
  parser, optimiser, plan executor — decades of legacy code with "many
  branch statements and patches", giving DBMS D the highest instruction
  stalls of all five systems;
* the storage engine underneath is traditional: centralised 2PL,
  latches, buffer pool, ARIES logging, and a B-tree with 8 KB pages
  that is, as far as public information goes, not cache-conscious;
* because so much time goes to instruction fetch, its throughput is
  lower and its random data accesses less frequent — the paper notes
  its LLC data stalls per kilo-instruction are the *lowest* (4.2.2).

The storage-manager mechanics are shared with Shore-MT (that is what
"traditional disk-based architecture" means); what differs is the code
the engine walks around every statement.
"""

from __future__ import annotations

from repro.codegen.module import ENGINE, OTHER
from repro.core.trace import AccessTrace
from repro.engines.shore_mt import ShoreMT


class DBMSD(ShoreMT):
    """Full-stack commercial disk-based DBMS model.

    The fault surface is inherited from Shore-MT unchanged: the same
    ARIES WAL is the recovery log, lock acquisition and WAL appends are
    injection points, and rollback writes CLRs — so the chaos harness
    (repro.faults) exercises DBMS D through the identical storage-layer
    hooks while the SQL stack above differs.
    """

    system = "DBMS D"
    # Decades-old commercial B-trees use key-prefix truncation /
    # normalised keys: the in-node search stays within the first lines
    # of the page, which is why the paper measures low LLC data stalls
    # per transaction for DBMS D despite its 8 KB pages (Figure 3).
    default_search_line_cap = 3

    def _register_modules(self) -> None:
        # The SQL stack: large, branchy, executed around every statement.
        legacy = dict(
            instructions_per_line=12.5,
            branches_per_kilo_instruction=230,
            mispredict_rate=0.05,
            base_cpi=0.55,
        )
        self._module("comm", OTHER, 30, **legacy)
        self._module("parser", OTHER, 48, **legacy)
        self._module("optimizer", OTHER, 52, **legacy)
        self._module("plan_exec", OTHER, 34, **legacy)
        self._module("catalog", OTHER, 16, **legacy)
        # Storage engine: same architecture as Shore-MT, heavier builds.
        self._module("txn_mgr", ENGINE, 16, **legacy)
        self._module("lock_mgr", ENGINE, 24, **legacy)
        self._module("latch", ENGINE, 8, base_cpi=0.48)
        self._module("bpool", ENGINE, 24, **legacy)
        self._module("btree", ENGINE, 28, **legacy)
        self._module("heap_code", ENGINE, 12, base_cpi=0.48)
        self._module("log", ENGINE, 18, **legacy)
        # Alias used by the shared Shore-MT transaction code paths.
        self.mods["kits"] = self.mods["comm"]

    # -- SQL-layer hooks -----------------------------------------------------------

    def _txn_begin_walk(self, trace: AccessTrace) -> None:
        """Request arrival: network receive + session + parse + optimise."""
        self._w(trace, "comm", 0.35)
        self._w(trace, "parser", 0.55)
        self._w(trace, "optimizer", 0.40)
        self._w(trace, "catalog", 0.45)

    def _txn_commit_walk(self, trace: AccessTrace) -> None:
        """Result marshalling + network reply."""
        self._w(trace, "comm", 0.25)
        self._w(trace, "plan_exec", 0.20)

    def _per_statement_walk(self, trace: AccessTrace) -> None:
        """Every statement re-enters the SQL executor (and, for the
        ad-hoc interfaces the paper used, part of the parser)."""
        # Prepared-plan execution: a thin slice of the executor; the
        # heavyweight parse/optimise happened at transaction start, so a
        # long transaction's repeated statements stay L1I-resident (the
        # TPC-C amortisation of Section 5.2.2).
        self._w(trace, "plan_exec", 0.15)
        self._w(trace, "parser", 0.05)
        self._w(trace, "optimizer", 0.02)
