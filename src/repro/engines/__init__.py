"""The five OLTP engine models under analysis.

Disk-based: :class:`ShoreMT`, :class:`DBMSD`.
In-memory: :class:`VoltDBEngine`, :class:`HyPerEngine`, :class:`DBMSM`.
"""

from repro.engines.base import Engine, EngineStats, Transaction, TransactionAborted
from repro.engines.common import EngineTable, PartitionedTable, TableSpec, index_hot_regions
from repro.engines.config import EngineConfig
from repro.engines.dbms_d import DBMSD
from repro.engines.dbms_m import DBMSM, DBMSMTransaction
from repro.engines.hyper import HyPerEngine, HyPerTransaction
from repro.engines.registry import (
    ALL_SYSTEMS,
    DISK_BASED,
    ENGINE_CLASSES,
    IN_MEMORY,
    PAPER_LABELS,
    canonical_name,
    make_engine,
)
from repro.engines.shore_mt import ShoreMT, ShoreMTTransaction
from repro.engines.voltdb import VoltDBEngine, VoltDBTransaction

__all__ = [
    "ALL_SYSTEMS",
    "DBMSD",
    "DBMSM",
    "DBMSMTransaction",
    "DISK_BASED",
    "ENGINE_CLASSES",
    "Engine",
    "EngineConfig",
    "EngineStats",
    "EngineTable",
    "HyPerEngine",
    "HyPerTransaction",
    "IN_MEMORY",
    "PAPER_LABELS",
    "PartitionedTable",
    "ShoreMT",
    "ShoreMTTransaction",
    "TableSpec",
    "Transaction",
    "TransactionAborted",
    "VoltDBEngine",
    "VoltDBTransaction",
    "canonical_name",
    "index_hot_regions",
    "make_engine",
]
