"""DBMS M: main-memory OLTP engine of a commercial disk-based vendor.

The paper's characterisation (Sections 3, 4.1.3, 4.2.2, 6):

* it is the in-memory engine bolted into a traditional disk-based
  product (like Hekaton-in-SQL-Server or solidDB), so everything
  *outside* the storage engine — communication, SQL front end, session
  management — is legacy code, giving DBMS M the largest instruction
  footprint of the in-memory systems; only when a transaction probes
  ~100 rows does the storage engine dominate (Figure 7);
* concurrency control is optimistic multi-versioning (no partitioning,
  no locks): reads walk version chains, commits validate the read set;
* two index structures are available — a hash index (used for the
  micro-benchmarks and TPC-B) and a cache-conscious B-tree variant
  (used for TPC-C); Figures 13/14 toggle between them;
* stored procedures are compiled "similar to, but less aggressively
  than, HyPer"; compilation can be disabled, which roughly doubles
  instruction stalls (Figure 13).
"""

from __future__ import annotations

from contextlib import nullcontext

from repro.codegen.compiler import DBMS_M_COMPILER, TransactionCompiler
from repro.codegen.module import CodeModule, ENGINE, OTHER
from repro.core.trace import AccessTrace
from repro.engines.base import AbortReason, Engine, Transaction, TransactionAborted
from repro.engines.config import EngineConfig
from repro.storage.index_factory import HASH
from repro.storage.mvcc import MVCCStore, ValidationFailure
from repro.storage.wal import WriteAheadLog

_GC_INTERVAL = 1024  # commits between version-chain garbage collections


class DBMSMTransaction(Transaction):
    """Optimistic multi-version transaction."""

    def __init__(self, engine: "DBMSM", trace: AccessTrace, txn_id: int, procedure: str) -> None:
        super().__init__(engine, trace, txn_id, procedure)
        self.begin_ts = engine.versions.begin_timestamp()
        self._stmt_counter = 0
        self.read_set: dict = {}
        self.write_set: dict = {}
        self._inserts: list[tuple[str, tuple, int | None]] = []
        self._deletes: list[tuple[str, int]] = []
        eng = engine
        # Legacy request path: network, SQL front end, session manager.
        eng._w(trace, "comm", 0.35)
        eng._w(trace, "sql_fe", 0.45)
        eng._w(trace, "session", 0.35)
        if eng.compiled:
            self._compiled = eng.compiled_module(procedure)
            eng.walker.run_segment(trace, self._compiled, 0.0, 0.12)
        else:
            self._compiled = None
            eng._w(trace, "interp_exec", 0.30)

    # -- engine-code helpers ----------------------------------------------------

    def _engine_op_walk(self, kind: str) -> None:
        """Per-operation storage-engine code."""
        eng = self.engine
        if self._compiled is not None:
            eng.walker.run_segment(self.trace, self._compiled, 0.12, 0.30)
        else:
            # The interpreter dispatches through opcode handlers spread
            # across the executor: successive operations touch different
            # handler regions, which is what compilation flattens into
            # one short straight-line stream (Section 6.1).
            seg = self._stmt_counter % 4
            start = 0.25 * seg
            eng._wseg(self.trace, "interp_exec", start, min(1.0, start + 0.25))
            eng._w(self.trace, "interp_exec", 0.18)
            # The interpreted B-tree traversal (descend/compare/latch-free
            # retry loops) is much more code than a hash-bucket probe —
            # "instruction stalls are much higher for the B-tree index
            # ... without compilation" (Section 6.1, Figure 14).
            if self.engine.index_kind_for(None) == "cc_btree":
                eng._w(self.trace, "idx_interp", 1.0)
                eng._wseg(self.trace, "interp_exec", 0.5, 0.85)
            else:
                eng._w(self.trace, "idx_interp", 0.45)
        eng._w(self.trace, "mvcc_code", 0.10)

    _STMT_SEGMENTS = 6

    def _per_statement_outer(self) -> None:
        """Legacy per-statement overhead in the SQL layer.

        Successive statements exercise *different* slices of the legacy
        executor (cursor state machines, expression services), so a
        multi-row transaction keeps missing the L1I until the slices
        have all been touched — the paper's "dominance of the legacy
        code overhead" that only ~100-row transactions amortise
        (Sections 4.2.2, 4.2.4).
        """
        eng = self.engine
        seg = min(self._stmt_counter, self._STMT_SEGMENTS - 1)
        self._stmt_counter += 1
        start = 0.34 + 0.11 * seg
        eng._wseg(self.trace, "sql_fe", start, min(1.0, start + 0.11))
        eng._w(self.trace, "session", 0.03)

    def _data_mod(self) -> int:
        eng = self.engine
        return self._compiled if self._compiled is not None else eng.mods["idx_interp"]

    # -- operations ----------------------------------------------------------------

    def _read_visible(self, table: str, key: int) -> tuple | None:
        """Index probe + version-chain visibility (no layer walks)."""
        eng = self.engine
        if (table, key) in self.write_set:
            return self.write_set[(table, key)]
        mod = self._data_mod()
        row_id = eng.table(table).probe(key, self.trace, mod)
        eng._retire_comparisons(self.trace, table, mod)
        if row_id is None:
            return None
        # Version-chain visibility check, then the base row.
        chained = eng.versions.read(
            (table, key), self.begin_ts, self.trace, eng.mods["mvcc_code"], default=None
        )
        # Record the *first* observed version; a later conflicting
        # commit must fail validation (non-repeatable read).
        self.read_set.setdefault((table, key), eng.versions.latest_committed_ts((table, key)))
        if chained is not None:
            return chained
        return eng.table(table).heap.read(row_id, self.trace, mod)

    def read(self, table: str, key: int) -> tuple | None:
        self.engine.stats.operations += 1
        self._per_statement_outer()
        self._engine_op_walk("read")
        return self._read_visible(table, key)

    def update(self, table: str, key: int, column: str, value) -> tuple:
        eng = self.engine
        eng.stats.operations += 1
        self._per_statement_outer()
        self._engine_op_walk("update")
        row = self._read_visible(table, key)
        if row is None:
            raise KeyError(f"update of missing key {key} in {table!r}")
        col = eng.table(table).heap.schema.column_index(column)
        new_value = value(row[col]) if callable(value) else value
        new_row = tuple(new_value if i == col else v for i, v in enumerate(row))
        self.write_set[(table, key)] = new_row
        return new_row

    def insert(self, table: str, values: tuple, key: int | None = None) -> int:
        eng = self.engine
        eng.stats.operations += 1
        self._per_statement_outer()
        self._engine_op_walk("insert")
        # Inserts materialise at commit (new version + index entry); the
        # row id is provisional but stable because appends are serial.
        heap = eng.table(table).heap
        row_id = heap.n_rows + len(self._inserts)
        self._inserts.append((table, values, key))
        return row_id

    def scan(self, table: str, key: int, n: int) -> list:
        eng = self.engine
        eng.stats.operations += 1
        self._per_statement_outer()
        self._engine_op_walk("scan")
        tbl = eng.table(table)
        mod = self._data_mod()
        index = tbl.index
        results = index.range_scan(key, n, self.trace, mod)
        out = []
        for scan_key, row_id in results:
            self.read_set.setdefault(
                (table, scan_key), eng.versions.latest_committed_ts((table, scan_key))
            )
            chained = eng.versions.read((table, scan_key), self.begin_ts)
            row = chained if chained is not None else tbl.heap.read(row_id, self.trace, mod)
            out.append((scan_key, row))
        return out

    def delete(self, table: str, key: int) -> bool:
        eng = self.engine
        eng.stats.operations += 1
        self._per_statement_outer()
        self._engine_op_walk("delete")
        mod = self._data_mod()
        row_id = eng.table(table).probe(key, self.trace, mod)
        eng._retire_comparisons(self.trace, table, mod)
        present = row_id is not None and (table, key) not in self._deletes
        if present:
            self.read_set[(table, key)] = eng.versions.latest_committed_ts((table, key))
            self._deletes.append((table, key))
        return present

    # -- completion ------------------------------------------------------------------

    def commit(self) -> None:
        self._finish()
        eng = self.engine
        eng._w(self.trace, "mvcc_code", 0.40)
        try:
            eng.versions.validate(
                self.txn_id, self.begin_ts, self.read_set, self.trace, eng.mods["mvcc_code"]
            )
        except ValidationFailure as exc:
            self.done = False
            raise TransactionAborted(str(exc), reason=AbortReason.VALIDATION) from exc
        commit_ts = eng.versions.begin_timestamp()
        injector = eng.injector
        # Commit is past the point of no return: injected *aborts* make
        # no sense here (crash faults still fire).
        guard = injector.suspend_aborts() if injector is not None else nullcontext()
        with guard:
            for (table, key), new_row in self.write_set.items():
                eng.versions.install(
                    (table, key), new_row, commit_ts, self.trace, eng.mods["mvcc_code"]
                )
                row_id = eng.table(table).probe(key, None, 0)
                eng.wal.append(
                    self.txn_id, "update", eng.table(table).heap.schema.row_bytes,
                    self.trace, eng.mods["log"],
                    payload=(table, row_id, new_row),
                )
                eng._row_images[(table, row_id)] = tuple(new_row)
            mod = self._data_mod()
            for table, values, key in self._inserts:
                row_id = eng.table(table).insert_row(values, key, self.trace, mod)
                eng.wal.append(
                    self.txn_id, "insert", 24, self.trace, eng.mods["log"],
                    payload=(table, key if key is not None else row_id, row_id, tuple(values)),
                )
            for table, key in self._deletes:
                eng.table(table).index.delete(key, self.trace, mod)
                eng.wal.append(
                    self.txn_id, "delete", 24, self.trace, eng.mods["log"],
                    payload=(table, key),
                )
            eng._w(self.trace, "log", 0.25)
            eng.wal.append(self.txn_id, "commit", 16, self.trace, eng.mods["log"])
        eng._w(self.trace, "session", 0.15)
        eng._w(self.trace, "comm", 0.20)
        eng._maybe_gc()

    def abort(self) -> None:
        self._finish()
        eng = self.engine
        eng._w(self.trace, "mvcc_code", 0.25)
        eng._w(self.trace, "session", 0.12)


class DBMSM(Engine):
    """Commercial main-memory engine with a legacy SQL stack around it."""

    system = "DBMS M"
    default_index_kind = HASH
    is_partitioned = False
    # The cache-conscious B-tree variant "similar to the Bw-tree":
    # page-sized nodes with a search confined to the first lines.
    default_node_bytes = 8192
    default_search_line_cap = 3

    def __init__(self, config: EngineConfig | None = None) -> None:
        super().__init__(config)
        self.versions = MVCCStore("dbmsm", self.space)
        self.wal = WriteAheadLog("dbmsm", self.space, buffer_bytes=2 << 20)
        self._compiler = TransactionCompiler(DBMS_M_COMPILER)
        self._compiled_mods: dict[str, int] = {}
        self._commits_since_gc = 0
        # Committed after-images by (table, row_id): updates live in the
        # version store, not the heap, so the committed view needs a map.
        self._row_images: dict[tuple[str, int], tuple] = {}
        self.begin_phase = "compile" if self.compiled else "parse_plan"

    @property
    def compiled(self) -> bool:
        """Compilation defaults to on, as in the paper's main runs."""
        return True if self.config.compilation is None else self.config.compilation

    def _register_modules(self) -> None:
        legacy = dict(
            instructions_per_line=12.5,
            branches_per_kilo_instruction=220,
            mispredict_rate=0.05,
            base_cpi=0.55,
        )
        self._module("comm", OTHER, 28, **legacy)
        self._module("sql_fe", OTHER, 52, instructions_per_line=10.5,
                     branches_per_kilo_instruction=230, mispredict_rate=0.06, base_cpi=0.55)
        self._module("session", OTHER, 28, **legacy)
        # The from-scratch in-memory engine: lean, low-branch code.
        lean = dict(instructions_per_line=15.0, branches_per_kilo_instruction=130,
                    mispredict_rate=0.03, base_cpi=0.42)
        self._module("interp_exec", ENGINE, 48, instructions_per_line=9.5,
                     branches_per_kilo_instruction=220, mispredict_rate=0.05, base_cpi=0.50)
        self._module("idx_interp", ENGINE, 14, **lean)
        self._module("mvcc_code", ENGINE, 16, **lean)
        self._module("log", ENGINE, 10, **lean)

    def compiled_module(self, procedure: str) -> int:
        mod = self._compiled_mods.get(procedure)
        if mod is None:
            templates = [
                CodeModule("tpl:m_exec", ENGINE, 36 * 1024),
                CodeModule("tpl:m_index", ENGINE, 14 * 1024),
                CodeModule("tpl:m_access", ENGINE, 12 * 1024),
            ]
            mod = self._compiler.compile(self.layout, procedure, templates)
            self._compiled_mods[procedure] = mod
        return mod

    def begin(self, trace: AccessTrace | None = None, procedure: str = "adhoc") -> DBMSMTransaction:
        if trace is None:
            trace = AccessTrace()
        return DBMSMTransaction(self, trace, self._new_txn_id(), procedure)

    def recovery_log(self) -> WriteAheadLog:
        return self.wal

    def committed_row(self, table: str, row_id: int) -> tuple:
        image = self._row_images.get((table, row_id))
        return image if image is not None else self.table(table).heap.read(row_id)

    def _maybe_gc(self) -> None:
        self._commits_since_gc += 1
        if self._commits_since_gc >= _GC_INTERVAL:
            self._commits_since_gc = 0
            self.versions.garbage_collect(self.versions.begin_timestamp() - 1)

    def _aux_hot_regions(self) -> list[tuple[int, int]]:
        return [
            (self.versions._arena.region.base_line, max(1, self.versions._arena.used_bytes // 64)),
        ]

    def _aux_cold_regions(self) -> list[tuple[int, int]]:
        return [(self.wal._region.base_line, self.wal._region.n_lines)]
