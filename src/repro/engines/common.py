"""Shared engine plumbing: table specs, engine tables, partitioning.

Workloads declare *what* tables exist (:class:`TableSpec`); each engine
decides *how* to store and index them (:class:`EngineTable`,
:class:`PartitionedTable`) — the disk engines use 8 KB-page B+trees,
VoltDB a cache-line-tuned tree, HyPer an ART, DBMS M a hash index or a
cache-conscious B-tree (paper Section 3, "Analyzed Systems").

Keys are dense integers ``0..n_rows-1`` for pre-populated rows (composite
TPC-C keys are encoded into that space by the workload); the identity
mapping key -> row id defines initial contents, and inserts grow the
heap beyond it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.trace import AccessTrace
from repro.storage.address_space import DataAddressSpace
from repro.storage.heap import HeapTable
from repro.storage.index_factory import make_index
from repro.storage.record import Schema


@dataclass(frozen=True)
class TableSpec:
    """A workload table, independent of any engine's storage choices."""

    name: str
    schema: Schema
    n_rows: int
    # Appended rows beyond the dense key range (History, Order...) need
    # heap headroom; workloads mark such tables.
    grows: bool = False
    # Hot tables the runner should try to keep LLC-resident first
    # (low-cardinality TPC-B Branch/Teller); bigger = hotter.
    warm_priority: int = 0
    # Replicated read-mostly tables (TPC-C Item) stay unpartitioned on
    # partitioned engines, as VoltDB replicates them to every site.
    replicated: bool = False

    def __post_init__(self) -> None:
        if self.n_rows < 1:
            raise ValueError(f"table {self.name!r} needs at least one row")

    @property
    def logical_bytes(self) -> int:
        return self.n_rows * self.schema.row_bytes


class EngineTable:
    """One engine's storage for a table: heap + primary index."""

    # Optional FaultInjector threaded in by Engine.attach_injector.
    injector = None

    def __init__(
        self,
        spec: TableSpec,
        space: DataAddressSpace,
        *,
        index_kind: str,
        page_bytes: int = 8192,
        node_bytes: int | None = None,
        materialize_threshold: int | None = None,
        search_line_cap: int | None = None,
        name_suffix: str = "",
    ) -> None:
        self.spec = spec
        name = spec.name + name_suffix
        self.heap = HeapTable(name, spec.schema, spec.n_rows, space)
        kwargs = {"search_line_cap": search_line_cap}
        if materialize_threshold is not None:
            kwargs["materialize_threshold"] = materialize_threshold
        n_rows = spec.n_rows
        self.index = make_index(
            index_kind,
            name,
            space,
            n_keys=n_rows,
            # Dense pre-population: key == row id inside the domain,
            # absent outside it (sparse key encodings probe as misses).
            key_to_value=lambda k: k if 0 <= k < n_rows else None,
            page_bytes=page_bytes,
            node_bytes=node_bytes,
            **kwargs,
        )

    def probe(self, key: int, trace: AccessTrace | None, mod: int):
        """Index probe; returns the row id or None."""
        return self.index.probe(key, trace, mod)

    def insert_row(self, values: tuple, key: int | None, trace: AccessTrace | None, mod: int) -> int:
        if self.injector is not None:
            self.injector.fire("index.insert", table=self.spec.name, key=key)
        row_id = self.heap.append(values, trace, mod)
        self.index.insert(key if key is not None else row_id, row_id, trace, mod)
        return row_id

    def insert_key(self, key: int, row_id: int, trace: AccessTrace | None = None, mod: int = 0) -> None:
        """(Re-)point *key* at *row_id* in the index (recovery restore)."""
        self.index.insert(key, row_id, trace, mod)

    def delete_key(self, key: int, trace: AccessTrace | None = None, mod: int = 0) -> bool:
        """Remove *key* from the index (recovery restore)."""
        return self.index.delete(key, trace, mod)

    def hot_regions(self) -> list[tuple[int, int]]:
        """(base_line, n_lines) ranges, hottest first, for cache prewarm."""
        regions = index_hot_regions(self.index)
        data_lines = max(1, self.heap.data_bytes // 64)
        regions.append((self.heap.region.base_line, data_lines))
        return regions


class PartitionedTable:
    """Range-partitioned table (VoltDB / HyPer deployment style).

    Partition *p* owns the key range ``[p*N/P, (p+1)*N/P)`` with its own
    index; the heap stays logically global so row ids equal keys across
    engines.  Composite TPC-C keys encode the warehouse in their high
    component, so range partitioning doubles as partition-by-warehouse.
    """

    # Optional FaultInjector threaded in by Engine.attach_injector.
    injector = None

    def __init__(
        self,
        spec: TableSpec,
        space: DataAddressSpace,
        n_partitions: int,
        *,
        index_kind: str,
        page_bytes: int = 8192,
        node_bytes: int | None = None,
        materialize_threshold: int | None = None,
        search_line_cap: int | None = None,
    ) -> None:
        if n_partitions < 1:
            raise ValueError("n_partitions must be >= 1")
        self.spec = spec
        self.n_partitions = n_partitions
        self.heap = HeapTable(spec.name, spec.schema, spec.n_rows, space)
        self._bases: list[int] = []
        self._indexes = []
        per_part = -(-spec.n_rows // n_partitions)
        kwargs = {"search_line_cap": search_line_cap}
        if materialize_threshold is not None:
            kwargs["materialize_threshold"] = materialize_threshold
        for p in range(n_partitions):
            base = p * per_part
            n_keys = max(1, min(per_part, spec.n_rows - base))
            self._bases.append(base)
            self._indexes.append(
                make_index(
                    index_kind,
                    f"{spec.name}:p{p}",
                    space,
                    n_keys=n_keys,
                    key_to_value=(lambda k, b=base, n=n_keys: k + b if 0 <= k < n else None),
                    page_bytes=page_bytes,
                    node_bytes=node_bytes,
                    **kwargs,
                )
            )
        self._per_part = per_part

    def partition_of(self, key: int) -> int:
        return min(self.n_partitions - 1, max(0, key // self._per_part))

    def probe(self, key: int, trace: AccessTrace | None, mod: int):
        p = self.partition_of(key)
        return self._indexes[p].probe(key - self._bases[p], trace, mod)

    def insert_row(self, values: tuple, key: int | None, trace: AccessTrace | None, mod: int) -> int:
        if self.injector is not None:
            self.injector.fire("index.insert", table=self.spec.name, key=key)
        row_id = self.heap.append(values, trace, mod)
        key = key if key is not None else row_id
        p = self.partition_of(key)
        self._indexes[p].insert(key - self._bases[p], row_id, trace, mod)
        return row_id

    def insert_key(self, key: int, row_id: int, trace: AccessTrace | None = None, mod: int = 0) -> None:
        """(Re-)point *key* at *row_id* in its partition's index."""
        p = self.partition_of(key)
        self._indexes[p].insert(key - self._bases[p], row_id, trace, mod)

    def delete_key(self, key: int, trace: AccessTrace | None = None, mod: int = 0) -> bool:
        """Remove *key* from its partition's index (recovery restore)."""
        p = self.partition_of(key)
        return self._indexes[p].delete(key - self._bases[p], trace, mod)

    def hot_regions(self) -> list[tuple[int, int]]:
        regions: list[tuple[int, int]] = []
        for index in self._indexes:
            regions.extend(index_hot_regions(index))
        regions.append((self.heap.region.base_line, max(1, self.heap.data_bytes // 64)))
        return regions


def index_hot_regions(index) -> list[tuple[int, int]]:
    """(base_line, n_lines) ranges of an index, hottest (root-most) first.

    Works across all index flavours by duck-typing their region
    attributes: analytic indexes expose per-level regions, materialised
    ones a node arena, hash variants a bucket array + entry storage.
    """
    regions: list[tuple[int, int]] = []
    level_regions = getattr(index, "_level_regions", None)
    if level_regions is not None:
        regions.extend((r.base_line, r.n_lines) for r in level_regions)
        leaf_region = getattr(index, "_leaf_region", None)
        if leaf_region is not None:
            regions.append((leaf_region.base_line, leaf_region.n_lines))
    else:
        arena = getattr(index, "_arena", None)
        if arena is not None:
            regions.append((arena.region.base_line, max(1, arena.used_bytes // 64)))
    bucket_region = getattr(index, "_bucket_region", None)
    if bucket_region is not None:
        regions.insert(0, (bucket_region.base_line, bucket_region.n_lines))
    entry_region = getattr(index, "_entry_region", None)
    if entry_region is not None:
        regions.append((entry_region.base_line, entry_region.n_lines))
    return regions
