"""Engine configuration knobs.

Most fields default to "the engine's own choice" (None) so experiments
only override what a figure varies: Figure 13/14 toggle DBMS M's index
kind and compilation, Section 7 raises ``n_partitions``, the node-size
ablation overrides ``node_bytes``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EngineConfig:
    """Per-instance engine settings."""

    # Index structure override ('btree' | 'cc_btree' | 'art' | 'hash');
    # None picks the engine's documented default for the workload.
    index_kind: str | None = None
    # Disk-style page size for B+tree nodes and buffer-pool pages.
    page_bytes: int = 8192
    # Cache-conscious node size override.
    node_bytes: int | None = None
    # Stored-procedure compilation; None = engine default (HyPer: always
    # on, VoltDB / disk engines: always off, DBMS M: on but toggleable).
    compilation: bool | None = None
    # Data partitions (VoltDB/HyPer); single-threaded runs use 1.
    n_partitions: int = 1
    # VoltDB's single-sited optimisation: when False every transaction
    # pays the multi-partition coordination path (paper's ~60% note).
    single_sited: bool = True
    # Index materialisation threshold; None = factory default, 0 forces
    # the analytic layout models (what the experiment harness uses).
    materialize_threshold: int | None = None
    # Transaction retry budget on abort (lock conflict / validation).
    max_retries: int = 5

    def __post_init__(self) -> None:
        if self.n_partitions < 1:
            raise ValueError("n_partitions must be >= 1")
        if self.page_bytes < 256:
            raise ValueError("page_bytes must be >= 256")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
