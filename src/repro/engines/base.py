"""Engine framework: the abstract OLTP engine and its transaction API.

Every system under analysis implements this interface.  A workload
drives an engine exclusively through :meth:`Engine.execute`, handing it
a *transaction body* — a callable that uses the uniform
:class:`Transaction` operations (read / update / insert / scan).  The
engine executes the body for real (values returned are the stored
values; writes persist or roll back) while walking its own code modules
and data structures, so the trace it returns carries the system's
characteristic instruction and data access stream.

The five concrete engines differ exactly where the paper says they do:
component structure (outer layers vs storage manager), concurrency
control, index structures and compilation (Sections 2.1, 3).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro import obs
from repro.codegen.layout import CodeLayout
from repro.codegen.module import CodeModule
from repro.codegen.walker import CodeWalker
from repro.core.trace import AccessTrace
from repro.engines.common import EngineTable, PartitionedTable, TableSpec
from repro.engines.config import EngineConfig
from repro.storage.address_space import DataAddressSpace
from repro.util.backoff import capped_backoff


class AbortReason:
    """Structured abort taxonomy (who killed the transaction)."""

    LOCK_CONFLICT = "lock-conflict"
    VALIDATION = "validation"
    INJECTED = "injected-fault"
    USER = "user-abort"
    UNSPECIFIED = "unspecified"


class TransactionAborted(Exception):
    """Raised inside a transaction body when the engine must abort.

    The engine's execute loop rolls back and retries; the aborted
    attempt's trace events remain (wasted work is real work).
    """

    def __init__(self, message: str = "", reason: str = AbortReason.UNSPECIFIED) -> None:
        super().__init__(message)
        self.reason = reason


class UserAbort(Exception):
    """A benchmark-mandated rollback (TPC-C's 1% NewOrder aborts).

    Unlike :class:`TransactionAborted` it is not retried.
    """


# Transaction outcomes recorded by Engine.execute (Engine.last_outcome).
COMMITTED = "committed"
USER_ABORTED = "user-aborted"
RETRIES_EXHAUSTED = "retries-exhausted"

# Simulated exponential-backoff spin before retry k: BASE * 2**(k-1)
# cycles, capped.  Accounted on EngineStats, not emitted into the trace:
# the paper's methodology measures the work the core performs, and a
# backoff spin retires no instructions worth modelling.
BACKOFF_BASE_CYCLES = 500.0
BACKOFF_CAP_CYCLES = BACKOFF_BASE_CYCLES * 64


@dataclass
class EngineStats:
    commits: int = 0
    aborts: int = 0
    retries_exhausted: int = 0
    operations: int = 0
    user_aborts: int = 0
    backoff_cycles: float = 0.0
    commits_by_procedure: dict = field(default_factory=dict)
    aborts_by_procedure: dict = field(default_factory=dict)
    retries_by_procedure: dict = field(default_factory=dict)
    backoff_by_procedure: dict = field(default_factory=dict)
    aborts_by_reason: dict = field(default_factory=dict)

    def record_commit(self, procedure: str) -> None:
        self.commits += 1
        self.commits_by_procedure[procedure] = self.commits_by_procedure.get(procedure, 0) + 1

    def record_abort(self, procedure: str, reason: str) -> None:
        self.aborts += 1
        self.aborts_by_procedure[procedure] = self.aborts_by_procedure.get(procedure, 0) + 1
        self.aborts_by_reason[reason] = self.aborts_by_reason.get(reason, 0) + 1

    def record_retry(self, procedure: str, backoff_cycles: float) -> None:
        self.retries_by_procedure[procedure] = self.retries_by_procedure.get(procedure, 0) + 1
        self.backoff_cycles += backoff_cycles
        self.backoff_by_procedure[procedure] = (
            self.backoff_by_procedure.get(procedure, 0.0) + backoff_cycles
        )

    def merge(self, other: "EngineStats") -> None:
        """Accumulate *other* into self (chaos runs sum across restarts)."""
        self.commits += other.commits
        self.aborts += other.aborts
        self.retries_exhausted += other.retries_exhausted
        self.operations += other.operations
        self.user_aborts += other.user_aborts
        self.backoff_cycles += other.backoff_cycles
        for mine, theirs in (
            (self.commits_by_procedure, other.commits_by_procedure),
            (self.aborts_by_procedure, other.aborts_by_procedure),
            (self.retries_by_procedure, other.retries_by_procedure),
            (self.backoff_by_procedure, other.backoff_by_procedure),
            (self.aborts_by_reason, other.aborts_by_reason),
        ):
            for key, value in theirs.items():
                mine[key] = mine.get(key, 0) + value


class Transaction(ABC):
    """Uniform transactional operations over an engine's tables."""

    def __init__(self, engine: "Engine", trace: AccessTrace, txn_id: int, procedure: str) -> None:
        self.engine = engine
        self.trace = trace
        self.txn_id = txn_id
        self.procedure = procedure
        self.done = False

    # -- operations (implemented per engine) ---------------------------------

    @abstractmethod
    def read(self, table: str, key: int) -> tuple | None:
        """Point read via the primary index; None if the key is absent."""

    @abstractmethod
    def update(self, table: str, key: int, column: str, value) -> tuple:
        """Read-modify-write one column; returns the new row."""

    @abstractmethod
    def insert(self, table: str, values: tuple, key: int | None = None) -> int:
        """Insert a row (appended); returns its row id."""

    @abstractmethod
    def scan(self, table: str, key: int, n: int) -> list:
        """Ordered scan of up to *n* entries starting at *key*."""

    @abstractmethod
    def delete(self, table: str, key: int) -> bool:
        """Remove *key* from the table's index; True if it was present."""

    @abstractmethod
    def commit(self) -> None: ...

    @abstractmethod
    def abort(self) -> None: ...

    def _finish(self) -> None:
        if self.done:
            raise RuntimeError("transaction already finished")
        self.done = True


class Engine(ABC):
    """Base class for the five analysed systems."""

    system = "abstract"
    default_index_kind = "btree"
    is_partitioned = False
    # Name of the span covering Transaction construction in execute():
    # interpreted engines parse and plan per statement; compiled engines
    # (HyPer, DBMS-M in compiled mode) override with "compile".
    begin_phase = "parse_plan"
    # Distinct lines an in-node B-tree search touches (None = the full
    # binary-search path); commercial trees with prefix truncation keep
    # the search within the first lines of the page.
    default_search_line_cap: int | None = None
    # Cache-conscious node size the engine uses when its index kind is
    # 'cc_btree' (None = the structure's own default).
    default_node_bytes: int | None = None

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config or EngineConfig()
        self.space = DataAddressSpace()
        self.layout = CodeLayout()
        self.walker = CodeWalker(self.layout)
        self.mods: dict[str, int] = {}
        self.tables: dict[str, EngineTable | PartitionedTable] = {}
        self.stats = EngineStats()
        # Fault-injection plumbing (repro.faults): the attached injector
        # and the outcome of the last execute() call.
        self.injector = None
        self.last_outcome: str | None = None
        self._cmp_instr_cache: dict[str, int] = {}
        self._trace = AccessTrace()
        self._next_txn_id = 1
        self._register_modules()

    # -- module registration ----------------------------------------------------

    @abstractmethod
    def _register_modules(self) -> None:
        """Subclasses declare their code modules here via :meth:`_module`."""

    def _module(
        self,
        name: str,
        group: str,
        footprint_kb: float,
        *,
        instructions_per_line: float = 14.0,
        branches_per_kilo_instruction: float = 180.0,
        mispredict_rate: float = 0.04,
        base_cpi: float = 0.45,
    ) -> int:
        mod_id = self.layout.add(
            CodeModule(
                name=name,
                group=group,
                footprint_bytes=int(footprint_kb * 1024),
                instructions_per_line=instructions_per_line,
                branches_per_kilo_instruction=branches_per_kilo_instruction,
                mispredict_rate=mispredict_rate,
                base_cpi=base_cpi,
            )
        )
        self.mods[name] = mod_id
        return mod_id

    def _w(self, trace: AccessTrace, name: str, fraction: float) -> int:
        """Walk the leading *fraction* of module *name*."""
        return self.walker.run(trace, self.mods[name], fraction)

    def _wseg(self, trace: AccessTrace, name: str, start: float, end: float) -> int:
        return self.walker.run_segment(trace, self.mods[name], start, end)

    # -- table management ----------------------------------------------------------

    def index_kind_for(self, spec: TableSpec) -> str:
        return self.config.index_kind or self.default_index_kind

    def create_table(self, spec: TableSpec) -> None:
        if spec.name in self.tables:
            raise ValueError(f"table {spec.name!r} already exists")
        kind = self.index_kind_for(spec)
        kwargs = dict(
            index_kind=kind,
            page_bytes=self.config.page_bytes,
            node_bytes=self.config.node_bytes or self.default_node_bytes,
            materialize_threshold=self.config.materialize_threshold,
            search_line_cap=self.default_search_line_cap,
        )
        if self.is_partitioned and self.config.n_partitions > 1 and not spec.replicated:
            self.tables[spec.name] = PartitionedTable(
                spec, self.space, self.config.n_partitions, **kwargs
            )
        else:
            self.tables[spec.name] = EngineTable(spec, self.space, **kwargs)
        if self.injector is not None:
            self.tables[spec.name].injector = self.injector

    def create_tables(self, specs: list[TableSpec]) -> None:
        for spec in specs:
            self.create_table(spec)

    def table(self, name: str) -> EngineTable | PartitionedTable:
        return self.tables[name]

    def comparison_instructions(self, name: str) -> int:
        """Extra instructions an index probe retires for wide keys.

        Comparing two 50-byte Strings is a word-by-word loop per visited
        node, whereas two Longs compare in one instruction.  The extra
        work re-uses already-fetched lines, so wide keys *lower* the
        data stalls per kilo-instruction — the Figure 15 effect.
        """
        cached = self._cmp_instr_cache.get(name)
        if cached is not None:
            return cached
        table = self.tables[name]
        key_bytes = table.spec.schema.columns[0][1].byte_size
        words = -(-key_bytes // 8)
        if words <= 1:
            extra = 0
        else:
            index = getattr(table, "index", None)
            if index is None:
                index = table._indexes[0]
            height = index.height if isinstance(index.height, int) else index.height()
            extra = (words - 1) * max(2, height) * 11
        self._cmp_instr_cache[name] = extra
        return extra

    def _retire_comparisons(self, trace: AccessTrace, name: str, mod: int) -> None:
        extra = self.comparison_instructions(name)
        if extra:
            trace.retire(mod, extra, base_cycles=extra * 0.40)

    # -- execution ---------------------------------------------------------------------

    @abstractmethod
    def begin(self, trace: AccessTrace | None = None, procedure: str = "adhoc") -> Transaction:
        """Open a transaction (harness path uses :meth:`execute` instead)."""

    def execute(self, procedure: str, body, core_id: int = 0) -> AccessTrace:
        """Run one transaction; returns its access trace.

        Aborts (lock conflicts, validation failures) are retried up to
        the configured budget with exponential backoff accounting; the
        aborted attempts' events stay in the trace because the wasted
        work is part of what the hardware sees.  The outcome —
        COMMITTED, USER_ABORTED or RETRIES_EXHAUSTED — is recorded on
        :attr:`last_outcome` so callers can tell a commit from a
        transaction that merely ran out of retries.
        """
        trace = self._trace
        trace.clear()
        attempts = 0
        stats = self.stats
        track = f"worker{core_id}" if obs.enabled() else ""
        with obs.span(
            "execute_txn", track=track, cat="engine", system=self.system, procedure=procedure
        ) as txn_span:
            while True:
                with obs.span(self.begin_phase, track=track, cat="engine"):
                    txn = self.begin(trace, procedure)
                try:
                    if self.injector is not None:
                        self.injector.fire("txn.body", procedure=procedure, txn_id=txn.txn_id)
                    with obs.span("execute", track=track, cat="engine"):
                        body(txn)
                    with obs.span("commit", track=track, cat="engine"):
                        txn.commit()  # may abort (OCC validation failure)
                except TransactionAborted as exc:
                    reason = getattr(exc, "reason", AbortReason.UNSPECIFIED)
                    with obs.span("rollback", track=track, cat="engine", reason=reason):
                        if not txn.done:
                            txn.abort()
                    stats.record_abort(procedure, reason)
                    obs.inc("engine.aborts", system=self.system, reason=reason)
                    attempts += 1
                    if attempts > self.config.max_retries:
                        stats.retries_exhausted += 1
                        self.last_outcome = RETRIES_EXHAUSTED
                        txn_span.set(outcome=RETRIES_EXHAUSTED, attempts=attempts)
                        obs.inc("engine.retries_exhausted", system=self.system)
                        return trace
                    backoff = capped_backoff(BACKOFF_BASE_CYCLES, BACKOFF_CAP_CYCLES, attempts)
                    stats.record_retry(procedure, backoff)
                    obs.annotate(
                        "backoff", track=track, cat="engine",
                        attempt=attempts, cycles=backoff,
                    )
                    obs.observe("engine.backoff_cycles", backoff, system=self.system)
                    continue
                except UserAbort:
                    txn.abort()
                    stats.record_abort(procedure, AbortReason.USER)
                    stats.user_aborts += 1
                    self.last_outcome = USER_ABORTED
                    txn_span.set(outcome=USER_ABORTED, attempts=attempts + 1)
                    obs.inc("engine.user_aborts", system=self.system)
                    return trace
                stats.record_commit(procedure)
                self.last_outcome = COMMITTED
                txn_span.set(outcome=COMMITTED, attempts=attempts + 1)
                obs.inc("engine.commits", system=self.system, procedure=procedure)
                return trace

    def _new_txn_id(self) -> int:
        txn_id = self._next_txn_id
        self._next_txn_id += 1
        return txn_id

    # -- fault / recovery surface -------------------------------------------------------

    def recovery_log(self):
        """The durability log recovery replays, or None if the engine
        keeps no value-logged durable history."""
        return None

    def fault_logs(self) -> list:
        """Logs that participate in fault injection (WAL points)."""
        log = self.recovery_log()
        return [log] if log is not None else []

    def attach_injector(self, injector) -> None:
        """Thread a :class:`repro.faults.FaultInjector` through this
        engine's fault surfaces: logs, lock manager, and table indexes.
        Pass ``None`` to detach."""
        self.injector = injector
        for log in self.fault_logs():
            log.injector = injector
        locks = getattr(self, "locks", None)
        if locks is not None:
            locks.injector = injector
        for table in self.tables.values():
            table.injector = injector

    def committed_row(self, table: str, row_id: int) -> tuple:
        """The engine's committed view of a row (heap by default; MVCC
        engines override to consult their version store)."""
        return self.table(table).heap.read(row_id)

    # -- prewarm support ----------------------------------------------------------------

    def hot_regions(self) -> list[tuple[int, int]]:
        """Data regions to prewarm, hottest first (see runner.prewarm).

        Small regions are the hot ones: index roots and upper levels,
        low-cardinality tables, metadata.  Sorting every table's regions
        by size (with the workload's table priority as tiebreaker)
        approximates the residency steady-state LRU converges to; log
        buffers come last — they are streams, not working set.
        """
        sized: list[tuple[int, int, tuple[int, int]]] = []
        for table in self.tables.values():
            for base, n_lines in table.hot_regions():
                sized.append((n_lines, -table.spec.warm_priority, (base, n_lines)))
        for base, n_lines in self._aux_hot_regions():
            sized.append((n_lines, 0, (base, n_lines)))
        sized.sort(key=lambda item: (item[0], item[1]))
        regions = [entry for _, _, entry in sized]
        regions.extend(self._aux_cold_regions())
        return regions

    def _aux_hot_regions(self) -> list[tuple[int, int]]:
        """Engine-private hot structures (lock table, page table, ...)."""
        return []

    def _aux_cold_regions(self) -> list[tuple[int, int]]:
        """Engine-private streaming structures (log buffers)."""
        return []

    def describe(self) -> str:
        parts = [f"{self.system}:"]
        for name, mod_id in self.mods.items():
            module = self.layout.module(mod_id)
            parts.append(f"  {name} [{module.group}] {module.footprint_bytes >> 10}KB")
        return "\n".join(parts)
