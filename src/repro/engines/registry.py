"""Engine registry: the five analysed systems by name.

Names match the paper's labels, with normalised aliases for CLI use.
"""

from __future__ import annotations

from repro.engines.base import Engine
from repro.engines.config import EngineConfig
from repro.engines.dbms_d import DBMSD
from repro.engines.dbms_m import DBMSM
from repro.engines.hyper import HyPerEngine
from repro.engines.shore_mt import ShoreMT
from repro.engines.voltdb import VoltDBEngine

ENGINE_CLASSES: dict[str, type[Engine]] = {
    "shore-mt": ShoreMT,
    "dbms-d": DBMSD,
    "voltdb": VoltDBEngine,
    "hyper": HyPerEngine,
    "dbms-m": DBMSM,
}

DISK_BASED = ("shore-mt", "dbms-d")
IN_MEMORY = ("voltdb", "hyper", "dbms-m")
ALL_SYSTEMS = DISK_BASED + IN_MEMORY
"""Paper ordering: disk-based systems first, then in-memory."""

PAPER_LABELS = {
    "shore-mt": "Shore-MT",
    "dbms-d": "DBMS D",
    "voltdb": "VoltDB",
    "hyper": "HyPer",
    "dbms-m": "DBMS M",
}

_ALIASES = {
    "shore": "shore-mt",
    "shoremt": "shore-mt",
    "shore_mt": "shore-mt",
    "dbmsd": "dbms-d",
    "dbms_d": "dbms-d",
    "d": "dbms-d",
    "volt": "voltdb",
    "dbmsm": "dbms-m",
    "dbms_m": "dbms-m",
    "m": "dbms-m",
}


def canonical_name(system: str) -> str:
    key = system.strip().lower()
    key = _ALIASES.get(key, key)
    if key not in ENGINE_CLASSES:
        raise KeyError(f"unknown system {system!r}; known: {', '.join(ALL_SYSTEMS)}")
    return key


def make_engine(system: str, config: EngineConfig | None = None) -> Engine:
    """Instantiate a system by (paper) name."""
    return ENGINE_CLASSES[canonical_name(system)](config)
