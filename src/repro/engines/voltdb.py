"""VoltDB (Community Edition 4.8): partitioned in-memory OLTP.

Design features the paper relies on (Sections 2.1, 3, 7):

* extreme physical partitioning — one data partition per core, one
  worker thread per partition, serial execution within a partition, so
  no locks or latches at all for single-partition transactions;
* a tree index "with node size tuned to the last-level cache line
  size" [Stonebraker 2007] — cache-conscious, few lines per level;
* stored procedures dispatched through the Java front end: planning,
  transaction initiation and serialisation happen outside the C++
  execution engine (EE), which is why the time inside the engine is
  small for 1-row transactions and grows past 2x for 10/100 rows
  (Figure 7);
* no transaction compilation;
* a "single-sited" optimisation: when every transaction is known to
  touch one partition the coordination path is skipped — disabling it
  raises instruction stalls by ~60 % (Section 7's side note).

Durability is command logging (asynchronous here, per the paper's
setup) plus an in-memory undo log released at commit.
"""

from __future__ import annotations

from repro.codegen.module import ENGINE, OTHER
from repro.core.trace import AccessTrace
from repro.engines.base import Engine, Transaction
from repro.engines.config import EngineConfig
from repro.storage.index_factory import CC_BTREE
from repro.storage.wal import WriteAheadLog
from repro.util.stablehash import stable_hash


class VoltDBTransaction(Transaction):
    """Serial single-partition stored-procedure invocation."""

    def __init__(self, engine: "VoltDBEngine", trace: AccessTrace, txn_id: int, procedure: str) -> None:
        super().__init__(engine, trace, txn_id, procedure)
        self._undo_entries: list[tuple] = []
        eng = engine
        # Client request: network receive, procedure dispatch, parameter
        # deserialisation, transaction initiation in the Java layer.
        eng._w(trace, "network", 0.35)
        eng._w(trace, "java_fe", 0.50)
        eng._w(trace, "serde", 0.45)
        if not eng.config.single_sited:
            # Multi-partition path: initiate + coordinate via the MPI.
            eng._w(trace, "coordinator", 0.60)
        eng.command_log.append(txn_id, "invoke", 48, trace, eng.mods["java_fe"])

    def _enter_ee(self, table: str = "") -> None:
        """Plan-fragment dispatch into the C++ execution engine.

        Different statements execute different plan fragments; slicing
        the EE by target table models TPC-C's multi-statement procedures
        touching more executor code than the single-statement micro."""
        eng = self.engine
        eng._w(self.trace, "java_fe", 0.06)  # plan cache lookup
        seg = (stable_hash(table) & 0xFFFF) % 5
        start = 0.3 + 0.14 * seg
        eng._wseg(self.trace, "ee_exec", start, min(1.0, start + 0.14))
        eng._w(self.trace, "ee_exec", 0.15)
        # Per-statement Java stored-procedure code (distinct per table).
        jstart = 0.5 + 0.1 * seg
        eng._wseg(self.trace, "java_fe", jstart, min(1.0, jstart + 0.1))

    def read(self, table: str, key: int) -> tuple | None:
        eng = self.engine
        eng.stats.operations += 1
        self._enter_ee(table)
        eng._w(self.trace, "index_code", 0.30)
        row_id = eng.table(table).probe(key, self.trace, eng.mods["index_code"])
        eng._retire_comparisons(self.trace, table, eng.mods["index_code"])
        if row_id is None:
            return None
        eng._w(self.trace, "table_code", 0.20)
        return eng.table(table).heap.read(row_id, self.trace, eng.mods["table_code"])

    def update(self, table: str, key: int, column: str, value) -> tuple:
        eng = self.engine
        eng.stats.operations += 1
        self._enter_ee(table)
        eng._w(self.trace, "index_code", 0.30)
        row_id = eng.table(table).probe(key, self.trace, eng.mods["index_code"])
        eng._retire_comparisons(self.trace, table, eng.mods["index_code"])
        if row_id is None:
            raise KeyError(f"update of missing key {key} in {table!r}")
        # Undo record before the in-place write (serial partition: no locks).
        eng._w(self.trace, "undo", 0.40)
        self._undo_entries.append(("update", table, row_id,
                                   eng.table(table).heap.read(row_id)))
        eng.undo_log.append(self.txn_id, "undo", eng.table(table).heap.schema.row_bytes,
                            self.trace, eng.mods["undo"])
        eng._w(self.trace, "table_code", 0.26)
        new_row = eng.table(table).heap.update_column(
            row_id, column, value, self.trace, eng.mods["table_code"]
        )
        # Command logging replays the invocation; for recovery we also
        # record the after-image (bookkeeping only: trace=None, zero
        # bytes — the invoke record above carries the logging traffic).
        eng.command_log.append(self.txn_id, "update", 0, payload=(table, row_id, new_row))
        return new_row

    def insert(self, table: str, values: tuple, key: int | None = None) -> int:
        eng = self.engine
        eng.stats.operations += 1
        self._enter_ee(table)
        eng._w(self.trace, "table_code", 0.27)
        eng._w(self.trace, "index_code", 0.30)
        row_id = eng.table(table).insert_row(values, key, self.trace, eng.mods["table_code"])
        eng._w(self.trace, "undo", 0.30)
        self._undo_entries.append(("insert", table, key if key is not None else row_id))
        eng.undo_log.append(self.txn_id, "undo-insert", 24, self.trace, eng.mods["undo"])
        eng.command_log.append(
            self.txn_id, "insert", 0,
            payload=(table, key if key is not None else row_id, row_id, tuple(values)),
        )
        return row_id

    def scan(self, table: str, key: int, n: int) -> list:
        eng = self.engine
        eng.stats.operations += 1
        self._enter_ee(table)
        eng._w(self.trace, "index_code", 0.27)
        tbl = eng.table(table)
        index = getattr(tbl, "index", None)
        if index is None:
            # Partitioned table: scan within the key's partition.
            p = tbl.partition_of(key)
            index = tbl._indexes[p]
            key = key - tbl._bases[p]
            results = index.range_scan(key, n, self.trace, eng.mods["index_code"])
            results = [(k + tbl._bases[p], v) for k, v in results]
        else:
            results = index.range_scan(key, n, self.trace, eng.mods["index_code"])
        out = []
        for scan_key, row_id in results:
            out.append((scan_key, tbl.heap.read(row_id, self.trace, eng.mods["table_code"])))
        if out:
            eng._w(self.trace, "table_code", 0.25)
        return out

    def delete(self, table: str, key: int) -> bool:
        eng = self.engine
        eng.stats.operations += 1
        self._enter_ee(table)
        eng._w(self.trace, "index_code", 0.30)
        tbl = eng.table(table)
        orig_key = key
        index = getattr(tbl, "index", None)
        if index is None:
            p = tbl.partition_of(key)
            index, key = tbl._indexes[p], key - tbl._bases[p]
        row_id = index.probe(key, None, eng.mods["index_code"])
        present = index.delete(key, self.trace, eng.mods["index_code"])
        if present:
            eng._w(self.trace, "undo", 0.30)
            self._undo_entries.append(("delete", index, key, row_id))
            eng.undo_log.append(self.txn_id, "undo-delete", 24, self.trace, eng.mods["undo"])
            eng.command_log.append(self.txn_id, "delete", 0, payload=(table, orig_key))
        return present

    def commit(self) -> None:
        self._finish()
        eng = self.engine
        # Release undo, serialise the response, reply on the wire.
        eng._w(self.trace, "undo", 0.15)
        eng._w(self.trace, "serde", 0.30)
        eng._w(self.trace, "network", 0.20)
        if not eng.config.single_sited:
            eng._w(self.trace, "coordinator", 0.35)
        eng.command_log.append(self.txn_id, "commit", 16, self.trace, eng.mods["java_fe"])

    def abort(self) -> None:
        self._finish()
        eng = self.engine
        # Abort marker for recovery classification (bookkeeping only).
        eng.command_log.append(self.txn_id, "abort", 0)
        eng._w(self.trace, "undo", 0.50)  # roll the undo log back
        mod = eng.mods["undo"]
        for entry in reversed(self._undo_entries):
            kind = entry[0]
            if kind == "update":
                _, table, row_id, old_row = entry
                eng.table(table).heap.write(row_id, old_row, self.trace, mod)
            elif kind == "insert":
                _, table, key = entry
                tbl = eng.table(table)
                index = getattr(tbl, "index", None)
                if index is None:
                    p = tbl.partition_of(key)
                    index, key = tbl._indexes[p], key - tbl._bases[p]
                index.delete(key, self.trace, mod)
            else:
                _, index, key, row_id = entry
                if row_id is not None:
                    index.insert(key, row_id, self.trace, mod)
        self._undo_entries.clear()
        eng._w(self.trace, "serde", 0.25)
        eng._w(self.trace, "network", 0.20)


class VoltDBEngine(Engine):
    """VoltDB's partitioned, serial, interpreted execution model."""

    system = "VoltDB"
    default_index_kind = CC_BTREE
    is_partitioned = True
    begin_phase = "plan_dispatch"
    # "node size tuned to the last-level cache line size" [26]
    default_node_bytes = 512

    def __init__(self, config: EngineConfig | None = None) -> None:
        super().__init__(config)
        self.command_log = WriteAheadLog("voltdb-cmd", self.space, buffer_bytes=2 << 20)
        self.undo_log = WriteAheadLog("voltdb-undo", self.space, buffer_bytes=1 << 20)

    def _register_modules(self) -> None:
        # Java front end: clean-room codebase, but JIT-compiled Java is
        # not petite — dispatch, planning stubs, txn initiation.
        java = dict(instructions_per_line=13.5, branches_per_kilo_instruction=190, base_cpi=0.50)
        self._module("network", OTHER, 15, **java)
        self._module("java_fe", OTHER, 31, **java)
        self._module("serde", OTHER, 16, **java)
        self._module("coordinator", OTHER, 28, **java)
        # The C++ execution engine: written from scratch, lean.
        ee = dict(instructions_per_line=15.0, branches_per_kilo_instruction=140,
                  mispredict_rate=0.03, base_cpi=0.42)
        self._module("ee_exec", ENGINE, 18, **ee)
        self._module("index_code", ENGINE, 11, **ee)
        self._module("table_code", ENGINE, 9, **ee)
        self._module("undo", ENGINE, 7, **ee)

    def begin(self, trace: AccessTrace | None = None, procedure: str = "adhoc") -> VoltDBTransaction:
        if trace is None:
            trace = AccessTrace()
        return VoltDBTransaction(self, trace, self._new_txn_id(), procedure)

    def partition_of(self, table: str, key: int) -> int:
        tbl = self.table(table)
        return tbl.partition_of(key) if hasattr(tbl, "partition_of") else 0

    def recovery_log(self) -> WriteAheadLog:
        return self.command_log

    def fault_logs(self) -> list[WriteAheadLog]:
        return [self.command_log, self.undo_log]

    def _aux_hot_regions(self) -> list[tuple[int, int]]:
        return [(self.undo_log._region.base_line, self.undo_log._region.n_lines)]

    def _aux_cold_regions(self) -> list[tuple[int, int]]:
        return [(self.command_log._region.base_line, self.command_log._region.n_lines)]
