"""HyPer: compiled, partitioned, main-memory OLTP [Kemper & Neumann].

The paper's characterisation (Sections 3, 4.1.2, 4.1.3, 5.1.1):

* transactions written in HyPerScript are **compiled directly into
  machine code** [Neumann 2011] — an aggressively optimised instruction
  stream with a tiny footprint and few branches, which almost
  eliminates L1-I misses;
* the index is the Adaptive Radix Tree [Leis 2013] — adaptive compact
  node sizes, few lines per probe;
* partitioned serial execution like VoltDB (one worker per partition),
  so no locks/latches on the transaction path;
* the flip side the paper highlights: because each transaction retires
  so few instructions, HyPer performs far more random data accesses per
  unit of work — when the working set exceeds the LLC its long-latency
  data stalls per kilo-instruction are 5-10x everyone else's and its
  IPC drops below all other systems.

Each stored procedure gets one compiled code module (built by
:class:`~repro.codegen.compiler.TransactionCompiler` from the
interpreted path it replaces); per-row work re-executes the compiled
loop body, whose lines stay L1I-resident.
"""

from __future__ import annotations

from repro.codegen.compiler import HYPER_COMPILER, TransactionCompiler
from repro.codegen.module import CodeModule, ENGINE, OTHER
from repro.core.trace import AccessTrace
from repro.engines.base import Engine, Transaction
from repro.engines.config import EngineConfig
from repro.storage.index_factory import ART
from repro.storage.wal import WriteAheadLog

# The interpreted query-processing path a compiled procedure subsumes.
# These are *templates* for footprint derivation — HyPer never executes
# them, which is precisely the point of compilation.
_INTERPRETED_TEMPLATES = [
    CodeModule("tpl:interp_exec", ENGINE, 96 * 1024),
    CodeModule("tpl:index_interp", ENGINE, 24 * 1024),
    CodeModule("tpl:tuple_access", ENGINE, 18 * 1024),
    CodeModule("tpl:txn_logic", ENGINE, 14 * 1024),
]


class HyPerTransaction(Transaction):
    """One compiled stored-procedure invocation, serial in its partition."""

    def __init__(self, engine: "HyPerEngine", trace: AccessTrace, txn_id: int, procedure: str) -> None:
        super().__init__(engine, trace, txn_id, procedure)
        self._shadow: list[tuple] = []  # undo via shadow copies
        self._compiled = engine.compiled_module(procedure)
        eng = engine
        eng._w(trace, "runtime", 0.05)
        # Compiled prologue: parameter binding, partition entry.
        eng.walker.run_segment(trace, self._compiled, 0.0, 0.06)

    def _loop_body(self) -> None:
        """One iteration of the compiled per-row loop (L1I-resident)."""
        self.engine.walker.run_segment(self.trace, self._compiled, 0.12, 0.52)

    def read(self, table: str, key: int) -> tuple | None:
        eng = self.engine
        eng.stats.operations += 1
        self._loop_body()
        row_id = eng.table(table).probe(key, self.trace, self._compiled)
        eng._retire_comparisons(self.trace, table, self._compiled)
        if row_id is None:
            return None
        return eng.table(table).heap.read(row_id, self.trace, self._compiled)

    def update(self, table: str, key: int, column: str, value) -> tuple:
        eng = self.engine
        eng.stats.operations += 1
        self._loop_body()
        row_id = eng.table(table).probe(key, self.trace, self._compiled)
        eng._retire_comparisons(self.trace, table, self._compiled)
        if row_id is None:
            raise KeyError(f"update of missing key {key} in {table!r}")
        self._shadow.append(("update", table, row_id, eng.table(table).heap.read(row_id)))
        new_row = eng.table(table).heap.update_column(
            row_id, column, value, self.trace, self._compiled
        )
        # Redo logging is compiled straight into the transaction code;
        # the after-image payload makes the log replayable.
        eng.redo_log.append(
            self.txn_id, "update", eng.table(table).heap.schema.row_bytes,
            self.trace, self._compiled,
            payload=(table, row_id, new_row),
        )
        return new_row

    def insert(self, table: str, values: tuple, key: int | None = None) -> int:
        eng = self.engine
        eng.stats.operations += 1
        self._loop_body()
        row_id = eng.table(table).insert_row(values, key, self.trace, self._compiled)
        self._shadow.append(("insert", table, key if key is not None else row_id))
        eng.redo_log.append(
            self.txn_id, "insert", 24, self.trace, self._compiled,
            payload=(table, key if key is not None else row_id, row_id, tuple(values)),
        )
        return row_id

    def scan(self, table: str, key: int, n: int) -> list:
        eng = self.engine
        eng.stats.operations += 1
        self._loop_body()
        tbl = eng.table(table)
        index = getattr(tbl, "index", None)
        if index is None:
            p = tbl.partition_of(key)
            index = tbl._indexes[p]
            results = [
                (k + tbl._bases[p], v)
                for k, v in index.range_scan(key - tbl._bases[p], n, self.trace, self._compiled)
            ]
        else:
            results = index.range_scan(key, n, self.trace, self._compiled)
        out = []
        for scan_key, row_id in results:
            out.append((scan_key, tbl.heap.read(row_id, self.trace, self._compiled)))
        return out

    def delete(self, table: str, key: int) -> bool:
        eng = self.engine
        eng.stats.operations += 1
        self._loop_body()
        tbl = eng.table(table)
        orig_key = key
        index = getattr(tbl, "index", None)
        if index is None:
            p = tbl.partition_of(key)
            index, key = tbl._indexes[p], key - tbl._bases[p]
        row_id = index.probe(key, None, self._compiled)
        present = index.delete(key, self.trace, self._compiled)
        if present:
            self._shadow.append(("delete", index, key, row_id))
            eng.redo_log.append(
                self.txn_id, "delete", 24, self.trace, self._compiled,
                payload=(table, orig_key),
            )
        return present

    def commit(self) -> None:
        self._finish()
        eng = self.engine
        # Compiled epilogue + commit record.
        eng.walker.run_segment(self.trace, self._compiled, 0.88, 1.0)
        eng.redo_log.append(self.txn_id, "commit", 16, self.trace, self._compiled)
        eng._w(self.trace, "runtime", 0.03)

    def abort(self) -> None:
        self._finish()
        eng = self.engine
        eng._w(self.trace, "runtime", 0.25)
        # Abort marker so recovery can classify this transaction without
        # waiting for end-of-log (bookkeeping only: trace=None).
        eng.redo_log.append(self.txn_id, "abort", 0)
        # Restore the shadow copies in reverse order.
        for entry in reversed(self._shadow):
            kind = entry[0]
            if kind == "update":
                _, table, row_id, old_row = entry
                eng.table(table).heap.write(row_id, old_row, self.trace, self._compiled)
            elif kind == "insert":
                _, table, key = entry
                tbl = eng.table(table)
                index = getattr(tbl, "index", None)
                if index is None:
                    p = tbl.partition_of(key)
                    index, key = tbl._indexes[p], key - tbl._bases[p]
                index.delete(key, self.trace, self._compiled)
            else:
                _, index, key, row_id = entry
                if row_id is not None:
                    index.insert(key, row_id, self.trace, self._compiled)
        self._shadow.clear()


class HyPerEngine(Engine):
    """HyPer's compiled, partitioned execution model."""

    system = "HyPer"
    default_index_kind = ART
    is_partitioned = True
    begin_phase = "compile"

    def __init__(self, config: EngineConfig | None = None) -> None:
        super().__init__(config)
        self.redo_log = WriteAheadLog("hyper-redo", self.space, buffer_bytes=2 << 20)
        self._compiler = TransactionCompiler(HYPER_COMPILER)
        self._compiled: dict[str, int] = {}

    def _register_modules(self) -> None:
        # A thin runtime is all that remains outside compiled code:
        # scheduling, memory management, log shipping.
        self._module(
            "runtime", OTHER, 14,
            instructions_per_line=15.0,
            branches_per_kilo_instruction=110,
            mispredict_rate=0.02,
            base_cpi=0.40,
        )

    def compiled_module(self, procedure: str) -> int:
        mod = self._compiled.get(procedure)
        if mod is None:
            mod = self._compiler.compile(self.layout, procedure, _INTERPRETED_TEMPLATES)
            self._compiled[procedure] = mod
        return mod

    def begin(self, trace: AccessTrace | None = None, procedure: str = "adhoc") -> HyPerTransaction:
        if trace is None:
            trace = AccessTrace()
        return HyPerTransaction(self, trace, self._new_txn_id(), procedure)

    def partition_of(self, table: str, key: int) -> int:
        tbl = self.table(table)
        return tbl.partition_of(key) if hasattr(tbl, "partition_of") else 0

    def recovery_log(self) -> WriteAheadLog:
        return self.redo_log

    def _aux_cold_regions(self) -> list[tuple[int, int]]:
        return [(self.redo_log._region.base_line, self.redo_log._region.n_lines)]
