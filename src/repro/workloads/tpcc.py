"""TPC-C: the wholesale-supplier benchmark (paper Section 5.2).

Nine tables, five transaction types with the standard mix — NewOrder
45 %, Payment 43 %, OrderStatus 4 %, Delivery 4 %, StockLevel 4 % (the
two read-only types are the 8 %).  Transactions contain probes,
inserts, updates and index scans, "covering a richer set of operations
than TPC-B".

Composite keys are encoded densely so every engine's integer-keyed
index can serve them, and so range partitioning by key doubles as
partitioning by warehouse:

* ``district = w*10 + d``
* ``customer = district*3000 + c``
* ``order    = district*ORDER_CAP + o``  (ORDER_CAP reserves headroom
  for inserted orders inside the dense domain)
* ``order_line = order*MAX_LINES + line``
* ``stock    = w*100000 + i``; ``item = i`` (replicated on partitioned
  engines, as VoltDB replicates read-only Item).

Each district's ``next_o_id`` lives in the district row (updated by
NewOrder) and is mirrored in workload state for key arithmetic, and the
per-order line count is derived deterministically from the order row so
pre-populated and inserted orders behave uniformly.
"""

from __future__ import annotations

import random

from repro.engines.base import UserAbort
from repro.engines.common import TableSpec
from repro.storage.record import LONG, Schema
from repro.workloads.base import TxnBody, Workload
from repro.workloads.keys import nurand_customer, nurand_item

DISTRICTS_PER_WAREHOUSE = 10
CUSTOMERS_PER_DISTRICT = 3000
INITIAL_ORDERS_PER_DISTRICT = 3000
ORDER_CAP = 4096  # dense per-district order-id capacity (3000 + headroom)
MAX_LINES = 15
ITEMS = 100_000
STOCK_PER_WAREHOUSE = ITEMS
FIRST_UNDELIVERED = 2100  # NEW-ORDER initially holds orders 2100..2999

BYTES_PER_WAREHOUSE = 100 << 20
"""Approximate logical footprint per warehouse (sets W from db size)."""

# Standard mix (clause 5.2.3 deck probabilities).
MIX = (
    ("new_order", 0.45),
    ("payment", 0.43),
    ("order_status", 0.04),
    ("delivery", 0.04),
    ("stock_level", 0.04),
)


def _schema(name: str, n_longs: int) -> Schema:
    columns = tuple((f"c{i}" if i else "id", LONG) for i in range(n_longs))
    return Schema(name=name, columns=columns, header_bytes=8)


def order_line_count(order_row: tuple) -> int:
    """Deterministic 5..15 line count derived from the order row."""
    return 5 + (abs(int(order_row[2])) % (MAX_LINES - 4))


class TPCC(Workload):
    """The five-transaction TPC-C mix over nine tables."""

    name = "tpcc"

    def __init__(self, *, db_bytes: int = 100 << 30, warehouses: int | None = None) -> None:
        self.n_warehouses = warehouses or max(2, db_bytes // BYTES_PER_WAREHOUSE)
        self.n_districts = self.n_warehouses * DISTRICTS_PER_WAREHOUSE
        self.db_bytes = db_bytes
        # Mirrors the district rows' next_o_id / oldest undelivered id.
        self._next_o_id: dict[int, int] = {}
        self._next_delivery: dict[int, int] = {}

    # -- schema ---------------------------------------------------------------

    def table_specs(self) -> list[TableSpec]:
        w = self.n_warehouses
        d = self.n_districts
        return [
            TableSpec("warehouse", _schema("warehouse", 9), w, warm_priority=3),
            TableSpec("district", _schema("district", 11), d, warm_priority=3),
            TableSpec("customer", _schema("customer", 21), d * CUSTOMERS_PER_DISTRICT),
            TableSpec("history", _schema("history", 8), 1, grows=True, warm_priority=1),
            TableSpec("orders", _schema("orders", 8), d * ORDER_CAP, grows=True),
            TableSpec("new_order", _schema("new_order", 3), d * ORDER_CAP, grows=True),
            TableSpec(
                "order_line", _schema("order_line", 10), d * ORDER_CAP * MAX_LINES, grows=True
            ),
            TableSpec("item", _schema("item", 5), ITEMS, replicated=True, warm_priority=2),
            TableSpec("stock", _schema("stock", 17), w * STOCK_PER_WAREHOUSE),
        ]

    # -- key helpers -------------------------------------------------------------

    @staticmethod
    def district_key(w: int, d: int) -> int:
        return w * DISTRICTS_PER_WAREHOUSE + d

    @staticmethod
    def customer_key(district_key: int, c: int) -> int:
        return district_key * CUSTOMERS_PER_DISTRICT + c

    @staticmethod
    def order_key(district_key: int, o: int) -> int:
        return district_key * ORDER_CAP + o

    @staticmethod
    def order_line_key(order_key: int, line: int) -> int:
        return order_key * MAX_LINES + line

    @staticmethod
    def stock_key(w: int, item: int) -> int:
        return w * STOCK_PER_WAREHOUSE + item

    def next_o_id(self, district_key: int) -> int:
        return self._next_o_id.get(district_key, INITIAL_ORDERS_PER_DISTRICT)

    # -- generation ---------------------------------------------------------------

    def _pick_warehouse(self, rng: random.Random, partition, n_partitions) -> int:
        lo, hi = self.partition_range(self.n_warehouses, partition, n_partitions)
        return lo + rng.randrange(hi - lo)

    def next_transaction(
        self,
        rng: random.Random,
        *,
        partition: int | None = None,
        n_partitions: int = 1,
    ) -> tuple[str, TxnBody]:
        r = rng.random()
        acc = 0.0
        kind = MIX[-1][0]
        for name, p in MIX:
            acc += p
            if r < acc:
                kind = name
                break
        w = self._pick_warehouse(rng, partition, n_partitions)
        builder = getattr(self, f"_gen_{kind}")
        return kind, builder(rng, w, remote_allowed=partition is None)

    def next_distributed_transaction(
        self,
        rng: random.Random,
        *,
        remote_pct: float = 10.0,
    ) -> tuple[str, int, dict[int, TxnBody]]:
        """One transaction decomposed into per-warehouse sub-bodies.

        Returns ``(kind, home_warehouse, {warehouse: body})``.  With
        probability ``remote_pct``/100 a NewOrder supplies lines from a
        remote warehouse (and a Payment pays for a remote customer), so
        the dict spans several warehouses; a sharded executor groups the
        sub-bodies by owning shard and runs the multi-shard ones under
        two-phase commit.  The mix, key distributions and 1 % NewOrder
        rollback follow :meth:`next_transaction`; sweeping ``remote_pct``
        0–100 is the Hardware-Islands multisite-fraction axis.
        """
        r = rng.random()
        acc = 0.0
        kind = MIX[-1][0]
        for name, p in MIX:
            acc += p
            if r < acc:
                kind = name
                break
        w = self._pick_warehouse(rng, None, 1)
        remote = (
            kind in ("new_order", "payment")
            and self.n_warehouses > 1
            and rng.random() * 100.0 < remote_pct
        )
        if kind == "new_order":
            return kind, w, self._gen_new_order_parts(rng, w, remote=remote)
        if kind == "payment":
            return kind, w, self._gen_payment_parts(rng, w, remote=remote)
        builder = getattr(self, f"_gen_{kind}")
        return kind, w, {w: builder(rng, w, remote_allowed=False)}

    def _remote_warehouse(self, rng: random.Random, home: int) -> int:
        other = rng.randrange(self.n_warehouses - 1)
        return other + 1 if other >= home else other

    # -- NewOrder (45%) ---------------------------------------------------------------

    def _gen_new_order(self, rng: random.Random, w: int, *, remote_allowed: bool) -> TxnBody:
        d = rng.randrange(DISTRICTS_PER_WAREHOUSE)
        dk = self.district_key(w, d)
        c = nurand_customer(rng, CUSTOMERS_PER_DISTRICT)
        n_lines = rng.randint(5, MAX_LINES)
        items = []
        for _ in range(n_lines):
            item = nurand_item(rng, ITEMS)
            supply_w = w
            if remote_allowed and self.n_warehouses > 1 and rng.random() < 0.10:
                supply_w = rng.randrange(self.n_warehouses)
            items.append((item, supply_w, rng.randint(1, 10)))
        # Clause 2.4.1.4: 1% of NewOrders roll back on an invalid item.
        rollback = rng.random() < 0.01
        o_id = self.next_o_id(dk)
        if o_id >= ORDER_CAP:  # wrap within the reserved dense range
            o_id = INITIAL_ORDERS_PER_DISTRICT
        self._next_o_id[dk] = o_id + 1
        ok = self.order_key(dk, o_id)
        workload = self

        def body(txn) -> None:
            txn.read("warehouse", w)
            txn.update("district", dk, "c1", lambda v: v + 1)  # next_o_id++
            txn.read("customer", workload.customer_key(dk, c))
            txn.insert("orders", (ok, dk, n_lines, 0, 0, 0, 0, 0), key=ok)
            txn.insert("new_order", (ok, dk, 0), key=ok)
            for line, (item, supply_w, qty) in enumerate(items):
                item_row = txn.read("item", item)
                if item_row is None:
                    raise UserAbort("invalid item")
                txn.update("stock", workload.stock_key(supply_w, item), "c2",
                           lambda v, q=qty: v - q)
                txn.insert(
                    "order_line",
                    (ok, line, item, supply_w, qty, 0, 0, 0, 0, 0),
                    key=workload.order_line_key(ok, line),
                )
            if rollback:
                raise UserAbort("1% rollback")

        return body

    def _gen_new_order_parts(
        self, rng: random.Random, w: int, *, remote: bool
    ) -> dict[int, TxnBody]:
        """NewOrder split by warehouse: district/orders/lines stay home,
        each remote-supplied line's stock update goes to its supplier."""
        d = rng.randrange(DISTRICTS_PER_WAREHOUSE)
        dk = self.district_key(w, d)
        c = nurand_customer(rng, CUSTOMERS_PER_DISTRICT)
        n_lines = rng.randint(5, MAX_LINES)
        supplier = self._remote_warehouse(rng, w) if remote else w
        items = []
        for line in range(n_lines):
            item = nurand_item(rng, ITEMS)
            # A multisite NewOrder sources its first line (and, per
            # clause-like coin flips, about half the rest) remotely.
            supply_w = w
            if remote and (line == 0 or rng.random() < 0.5):
                supply_w = supplier
            items.append((item, supply_w, rng.randint(1, 10)))
        rollback = rng.random() < 0.01
        o_id = self.next_o_id(dk)
        if o_id >= ORDER_CAP:
            o_id = INITIAL_ORDERS_PER_DISTRICT
        self._next_o_id[dk] = o_id + 1
        ok = self.order_key(dk, o_id)
        workload = self

        def home_body(txn) -> None:
            txn.read("warehouse", w)
            txn.update("district", dk, "c1", lambda v: v + 1)  # next_o_id++
            txn.read("customer", workload.customer_key(dk, c))
            txn.insert("orders", (ok, dk, n_lines, 0, 0, 0, 0, 0), key=ok)
            txn.insert("new_order", (ok, dk, 0), key=ok)
            for line, (item, supply_w, qty) in enumerate(items):
                item_row = txn.read("item", item)
                if item_row is None:
                    raise UserAbort("invalid item")
                if supply_w == w:
                    txn.update("stock", workload.stock_key(supply_w, item), "c2",
                               lambda v, q=qty: v - q)
                txn.insert(
                    "order_line",
                    (ok, line, item, supply_w, qty, 0, 0, 0, 0, 0),
                    key=workload.order_line_key(ok, line),
                )
            if rollback:
                raise UserAbort("1% rollback")

        parts: dict[int, TxnBody] = {w: home_body}
        remote_lines = [(i, sw, q) for i, sw, q in items if sw != w]
        if remote_lines:

            def remote_body(txn) -> None:
                for item, supply_w, qty in remote_lines:
                    txn.read("item", item)  # replicated read on the supplier
                    txn.update("stock", workload.stock_key(supply_w, item), "c2",
                               lambda v, q=qty: v - q)

            parts[supplier] = remote_body
        return parts

    # -- Payment (43%) ---------------------------------------------------------------

    def _gen_payment(self, rng: random.Random, w: int, *, remote_allowed: bool) -> TxnBody:
        d = rng.randrange(DISTRICTS_PER_WAREHOUSE)
        dk = self.district_key(w, d)
        # 15% remote customer (skipped when homed to one partition).
        cw, cd = w, d
        if remote_allowed and self.n_warehouses > 1 and rng.random() < 0.15:
            cw = rng.randrange(self.n_warehouses)
            cd = rng.randrange(DISTRICTS_PER_WAREHOUSE)
        cdk = self.district_key(cw, cd)
        c = nurand_customer(rng, CUSTOMERS_PER_DISTRICT)
        by_lastname = rng.random() < 0.60
        amount = rng.randint(1, 5000)
        workload = self

        def body(txn) -> None:
            txn.update("warehouse", w, "c1", lambda v: v + amount)  # w_ytd
            txn.update("district", dk, "c2", lambda v: v + amount)  # d_ytd
            ck = workload.customer_key(cdk, c)
            if by_lastname:
                # Same-last-name scan: examine the neighbouring cluster
                # of customers, pick the middle one (clause 2.5.2.2).
                base = max(0, min(c - 2, CUSTOMERS_PER_DISTRICT - 4))
                for i in range(4):
                    txn.read("customer", workload.customer_key(cdk, base + i))
                ck = workload.customer_key(cdk, base + 2)
            txn.update("customer", ck, "c1", lambda v: v - amount)  # balance
            txn.insert("history", (ck, cdk, dk, w, amount, 0, 0, 0))

        return body

    def _gen_payment_parts(
        self, rng: random.Random, w: int, *, remote: bool
    ) -> dict[int, TxnBody]:
        """Payment split by warehouse: w_ytd/d_ytd stay home, the customer
        update and history row go to the customer's warehouse."""
        d = rng.randrange(DISTRICTS_PER_WAREHOUSE)
        dk = self.district_key(w, d)
        cw = self._remote_warehouse(rng, w) if remote else w
        cd = rng.randrange(DISTRICTS_PER_WAREHOUSE) if remote else d
        cdk = self.district_key(cw, cd)
        c = nurand_customer(rng, CUSTOMERS_PER_DISTRICT)
        by_lastname = rng.random() < 0.60
        amount = rng.randint(1, 5000)
        workload = self

        def home_body(txn) -> None:
            txn.update("warehouse", w, "c1", lambda v: v + amount)  # w_ytd
            txn.update("district", dk, "c2", lambda v: v + amount)  # d_ytd

        def customer_body(txn) -> None:
            ck = workload.customer_key(cdk, c)
            if by_lastname:
                base = max(0, min(c - 2, CUSTOMERS_PER_DISTRICT - 4))
                for i in range(4):
                    txn.read("customer", workload.customer_key(cdk, base + i))
                ck = workload.customer_key(cdk, base + 2)
            txn.update("customer", ck, "c1", lambda v: v - amount)  # balance
            txn.insert("history", (ck, cdk, dk, w, amount, 0, 0, 0))

        if cw == w:

            def body(txn) -> None:
                home_body(txn)
                customer_body(txn)

            return {w: body}
        return {w: home_body, cw: customer_body}

    # -- OrderStatus (4%, read-only) ------------------------------------------------------

    def _gen_order_status(self, rng: random.Random, w: int, *, remote_allowed: bool) -> TxnBody:
        d = rng.randrange(DISTRICTS_PER_WAREHOUSE)
        dk = self.district_key(w, d)
        c = nurand_customer(rng, CUSTOMERS_PER_DISTRICT)
        by_lastname = rng.random() < 0.60
        o_id = rng.randrange(self.next_o_id(dk))
        workload = self

        def body(txn) -> None:
            if by_lastname:
                base = max(0, min(c - 2, CUSTOMERS_PER_DISTRICT - 4))
                for i in range(4):
                    txn.read("customer", workload.customer_key(dk, base + i))
            else:
                txn.read("customer", workload.customer_key(dk, c))
            ok = workload.order_key(dk, o_id)
            order_row = txn.read("orders", ok)
            if order_row is None:
                return
            lines = order_line_count(order_row)
            txn.scan("order_line", workload.order_line_key(ok, 0), lines)

        return body

    # -- Delivery (4%) ------------------------------------------------------------------

    def _gen_delivery(self, rng: random.Random, w: int, *, remote_allowed: bool) -> TxnBody:
        carrier = rng.randint(1, 10)
        districts = []
        for d in range(DISTRICTS_PER_WAREHOUSE):
            dk = self.district_key(w, d)
            oldest = self._next_delivery.get(dk, FIRST_UNDELIVERED)
            if oldest < self.next_o_id(dk):
                self._next_delivery[dk] = oldest + 1
                districts.append((dk, oldest))
        workload = self

        def body(txn) -> None:
            for dk, o_id in districts:
                ok = workload.order_key(dk, o_id)
                if not txn.delete("new_order", ok):
                    continue
                order_row = txn.update("orders", ok, "c3", carrier)  # o_carrier_id
                lines = order_line_count(order_row)
                total = 0
                for line, (_, line_row) in enumerate(
                    txn.scan("order_line", workload.order_line_key(ok, 0), lines)
                ):
                    txn.update(
                        "order_line", workload.order_line_key(ok, line), "c6", 1
                    )  # delivery date
                    total += int(line_row[4])
                customer = int(order_row[1]) % CUSTOMERS_PER_DISTRICT
                txn.update(
                    "customer",
                    workload.customer_key(dk, customer),
                    "c1",
                    lambda v, t=total: v + t,
                )

        return body

    # -- StockLevel (4%, read-only) -----------------------------------------------------------

    def _gen_stock_level(self, rng: random.Random, w: int, *, remote_allowed: bool) -> TxnBody:
        d = rng.randrange(DISTRICTS_PER_WAREHOUSE)
        dk = self.district_key(w, d)
        threshold = rng.randint(10, 20)
        next_o = self.next_o_id(dk)
        first = max(0, next_o - 20)
        workload = self

        def body(txn) -> None:
            txn.read("district", dk)
            low = 0
            seen: set[int] = set()
            for o_id in range(first, next_o):
                ok = workload.order_key(dk, o_id)
                order_row = txn.read("orders", ok)
                if order_row is None:
                    continue
                lines = order_line_count(order_row)
                for _, line_row in txn.scan(
                    "order_line", workload.order_line_key(ok, 0), lines
                ):
                    item = int(line_row[2]) % ITEMS
                    if item in seen:
                        continue
                    seen.add(item)
                    stock_row = txn.read("stock", workload.stock_key(w, item))
                    if stock_row is not None and int(stock_row[2]) % 100 < threshold:
                        low += 1

        return body
