"""Workload framework.

A workload declares its tables (:class:`~repro.engines.common.TableSpec`)
and generates transactions as ``(procedure_name, body)`` pairs, where
*body* is a callable driving the engine-agnostic
:class:`~repro.engines.base.Transaction` API.  The same body runs
unchanged on all five engines — exactly how the paper runs the same
benchmark against every system.

Partition-aware generation supports the paper's multi-threaded setup:
for VoltDB "we also use multiple data partitions and ensure that all
transactions access only a single partition" (Section 3), so the runner
asks for transactions homed to a given partition.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Callable

from repro.engines.base import Transaction
from repro.engines.common import TableSpec

TxnBody = Callable[[Transaction], None]


class Workload(ABC):
    """A benchmark: tables plus a transaction stream."""

    name = "abstract"

    @abstractmethod
    def table_specs(self) -> list[TableSpec]:
        """The tables this workload needs."""

    @abstractmethod
    def next_transaction(
        self,
        rng: random.Random,
        *,
        partition: int | None = None,
        n_partitions: int = 1,
    ) -> tuple[str, TxnBody]:
        """One transaction: (procedure name, body).

        When *partition* is given, every key the body touches must home
        to that partition (single-sited execution).
        """

    def setup(self, engine) -> None:
        """Create this workload's tables on *engine*."""
        engine.create_tables(self.table_specs())

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def partition_range(n_keys: int, partition: int | None, n_partitions: int) -> tuple[int, int]:
        """[lo, hi) key range for a partition (whole domain when None)."""
        if partition is None or n_partitions <= 1:
            return 0, n_keys
        per = -(-n_keys // n_partitions)
        lo = min(partition * per, n_keys - 1)
        return lo, min(lo + per, n_keys)

    @property
    def total_bytes(self) -> int:
        return sum(spec.logical_bytes for spec in self.table_specs())


def size_label(n_bytes: int) -> str:
    """Human label matching the paper's x-axes (1MB, 10MB, 10GB, 100GB)."""
    gb = 1 << 30
    mb = 1 << 20
    if n_bytes >= gb:
        return f"{n_bytes // gb}GB"
    return f"{max(1, n_bytes // mb)}MB"


PAPER_DB_SIZES: dict[str, int] = {
    "1MB": 1 << 20,
    "10MB": 10 << 20,
    "10GB": 10 << 30,
    "100GB": 100 << 30,
}
"""The four database sizes of Figures 1-3 / 20-22."""
