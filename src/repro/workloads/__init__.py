"""Benchmark workloads: the paper's micro-benchmark, TPC-B and TPC-C."""

from repro.workloads.base import PAPER_DB_SIZES, TxnBody, Workload, size_label
from repro.workloads.keys import (
    distinct_keys,
    nurand,
    nurand_customer,
    nurand_item,
    uniform_key,
    zipf_key,
)
from repro.workloads.microbench import BYTES_PER_ROW, MicroBenchmark
from repro.workloads.tpcb import TPCB
from repro.workloads.tpcc import TPCC, order_line_count
from repro.workloads.tpce_lite import TPCELite

__all__ = [
    "BYTES_PER_ROW",
    "MicroBenchmark",
    "PAPER_DB_SIZES",
    "TPCB",
    "TPCC",
    "TPCELite",
    "TxnBody",
    "Workload",
    "distinct_keys",
    "nurand",
    "nurand_customer",
    "nurand_item",
    "order_line_count",
    "size_label",
    "uniform_key",
    "zipf_key",
]
