"""TPC-B: the update-heavy banking benchmark (paper Section 5.1).

One transaction type, AccountUpdate: add a delta to one Branch, one
Teller and one Account row and append a row to History.  At the paper's
100 GB scale that is ~20 K branches, ~200 K tellers and ~2 billion
accounts (Section 5.1.2) — so Branch and Teller stay LLC-resident while
Account does not, and History is append-only.  That data-locality
profile is why TPC-B shows higher IPC than the 1-row micro-benchmark
despite being update-heavy.
"""

from __future__ import annotations

import random

from repro.engines.common import TableSpec
from repro.storage.record import LONG, Schema
from repro.workloads.base import TxnBody, Workload

TELLERS_PER_BRANCH = 10
ACCOUNTS_PER_BRANCH = 100_000
HISTORY_HEADROOM = 1 << 20

# ~100 GB -> 20K branches (Section 5.1.2's cardinalities).
BYTES_PER_BRANCH_TREE = 5 * (1 << 20) // 1024  # ≈5 MB per branch subtree


def _schema(name: str, extra_longs: int) -> Schema:
    columns = [("id", LONG), ("balance", LONG)]
    columns += [(f"filler{i}", LONG) for i in range(extra_longs)]
    return Schema(name=name, columns=tuple(columns), header_bytes=8)


class TPCB(Workload):
    """AccountUpdate over Branch / Teller / Account / History."""

    name = "tpcb"

    def __init__(self, *, db_bytes: int = 100 << 30) -> None:
        # Scale branches so total footprint tracks the requested size;
        # accounts dominate at ~48 B/row (+ index) -> ~5 MB per branch.
        self.n_branches = max(20, db_bytes // (5 << 20))
        self.n_tellers = self.n_branches * TELLERS_PER_BRANCH
        self.n_accounts = self.n_branches * ACCOUNTS_PER_BRANCH
        self.db_bytes = db_bytes

    def table_specs(self) -> list[TableSpec]:
        return [
            TableSpec("branch", _schema("branch", 2), self.n_branches, warm_priority=3),
            TableSpec("teller", _schema("teller", 2), self.n_tellers, warm_priority=2),
            TableSpec("account", _schema("account", 2), self.n_accounts),
            TableSpec("history", _schema("history", 3), 1, grows=True, warm_priority=1),
        ]

    def next_transaction(
        self,
        rng: random.Random,
        *,
        partition: int | None = None,
        n_partitions: int = 1,
    ) -> tuple[str, TxnBody]:
        # Partition-aware homing: pick everything within one partition's
        # branch range (TPC-B rows partition cleanly by branch).
        b_lo, b_hi = self.partition_range(self.n_branches, partition, n_partitions)
        branch = b_lo + rng.randrange(b_hi - b_lo)
        teller = branch * TELLERS_PER_BRANCH + rng.randrange(TELLERS_PER_BRANCH)
        account = branch * ACCOUNTS_PER_BRANCH + rng.randrange(ACCOUNTS_PER_BRANCH)
        delta = rng.randint(-99_999, 99_999)

        def body(txn) -> None:
            # One UPDATE per table (SET balance = balance + delta), then
            # the History append — the four TPC-B statements.
            txn.update("account", account, "balance", lambda v: v + delta)
            txn.update("teller", teller, "balance", lambda v: v + delta)
            txn.update("branch", branch, "balance", lambda v: v + delta)
            txn.insert("history", (account, delta, teller, branch, 0))

        return "account_update", body
