"""The paper's micro-benchmark (Section 3, "Benchmarks").

A randomly generated two-column (key, value) table, both columns Long —
or both 50-byte Strings for the data-type study of Section 6.2.  The
read-only variant reads N random rows via index lookups; the read-write
variant updates N random rows.  N ∈ {1, 10, 100} and the table is sized
to 1 MB / 10 MB / 10 GB / 100 GB.

Row count follows the paper's arithmetic: a 100 GB database holds "more
than one billion rows", i.e. ~80 bytes of total footprint per row
(tuple + index entries + per-row metadata); :data:`BYTES_PER_ROW`
captures that so database-size labels mean the same thing here as in
the figures.
"""

from __future__ import annotations

import random

from repro.engines.common import TableSpec
from repro.storage.record import ColumnType, LONG, microbench_schema
from repro.workloads.base import TxnBody, Workload
from repro.workloads.keys import distinct_keys

BYTES_PER_ROW = 80
"""Total per-row footprint (tuple + index + metadata): 100 GB -> 1.25 G rows."""

TABLE = "micro"


class MicroBenchmark(Workload):
    """Read-only / read-write random-row micro-benchmark."""

    def __init__(
        self,
        *,
        db_bytes: int,
        rows_per_txn: int = 1,
        read_write: bool = False,
        column_type: ColumnType = LONG,
    ) -> None:
        if db_bytes < BYTES_PER_ROW * 1000:
            raise ValueError("database too small to be meaningful")
        if rows_per_txn < 1:
            raise ValueError("rows_per_txn must be >= 1")
        self.db_bytes = db_bytes
        self.n_rows = max(1000, db_bytes // BYTES_PER_ROW)
        self.rows_per_txn = rows_per_txn
        self.read_write = read_write
        self.column_type = column_type
        variant = "rw" if read_write else "ro"
        self.name = f"micro_{variant}_{rows_per_txn}"
        self._procedure = f"{self.name}_{column_type.name}"

    def table_specs(self) -> list[TableSpec]:
        return [TableSpec(TABLE, microbench_schema(self.column_type), self.n_rows)]

    def next_transaction(
        self,
        rng: random.Random,
        *,
        partition: int | None = None,
        n_partitions: int = 1,
    ) -> tuple[str, TxnBody]:
        lo, hi = self.partition_range(self.n_rows, partition, n_partitions)
        domain = hi - lo
        if self.rows_per_txn == 1:
            keys = [lo + rng.randrange(domain)]
        else:
            keys = [lo + k for k in distinct_keys(rng, domain, min(self.rows_per_txn, domain))]

        if self.read_write:
            new_value = self.column_type.default_value(rng.getrandbits(30))

            def body(txn) -> None:
                for key in keys:
                    txn.update(TABLE, key, "value", new_value)

        else:

            def body(txn) -> None:
                for key in keys:
                    row = txn.read(TABLE, key)
                    if row is None:
                        raise LookupError(f"populated key {key} missing")

        return self._procedure, body
