"""TPC-E-lite: the benchmark the paper omits, as an extension.

Section 3: "We omit the more recent TPC-E benchmark since recent
workload characterization studies demonstrate that TPC-E exhibits
similar micro-architectural behavior to the TPC-B and TPC-C benchmarks
[6, 29]."  That similarity claim is checkable here, so this module
implements a compact TPC-E-flavoured workload — the brokerage schema's
core tables and a read-heavy transaction mix — and the extension bench
(`benchmarks/test_bench_extension_tpce.py`) verifies the Tözün et al.
finding on the simulated hardware.

Scope: the four highest-traffic transactions (TradeOrder, TradeResult,
TradeLookup, MarketWatch) over the brokerage core (customer, account,
broker, security, trade, trade_history, holding, last_trade), with
TPC-E's hallmark ~77% read / 23% write mix.  Key encodings are dense
integers like the TPC-C implementation's.
"""

from __future__ import annotations

import random

from repro.engines.common import TableSpec
from repro.storage.record import LONG, Schema
from repro.workloads.base import TxnBody, Workload

ACCOUNTS_PER_CUSTOMER = 2
SECURITIES = 68_500  # TPC-E's fixed security universe
TRADES_PER_ACCOUNT_CAP = 256
HOLDINGS_PER_ACCOUNT = 16

BYTES_PER_CUSTOMER = 48 << 10
"""Approximate footprint per customer row-set (sets scale from size)."""

# Read-only transactions form ~77% of TPC-E (the defining contrast
# with write-heavy TPC-B / TPC-C).
MIX = (
    ("trade_order", 0.15),   # read-write
    ("trade_result", 0.08),  # read-write (completes pending orders)
    ("trade_lookup", 0.42),  # read-only
    ("market_watch", 0.35),  # read-only
)


def _schema(name: str, n_longs: int) -> Schema:
    columns = tuple((f"c{i}" if i else "id", LONG) for i in range(n_longs))
    return Schema(name=name, columns=columns, header_bytes=8)


class TPCELite(Workload):
    """Read-heavy brokerage workload (TPC-E's core transactions)."""

    name = "tpce_lite"

    def __init__(self, *, db_bytes: int = 100 << 30, customers: int | None = None) -> None:
        self.n_customers = customers or max(1000, db_bytes // BYTES_PER_CUSTOMER)
        self.n_accounts = self.n_customers * ACCOUNTS_PER_CUSTOMER
        self.db_bytes = db_bytes
        # Trades per account mirror TPC-C's order headroom trick: a
        # dense per-account range with room for inserted trades.
        self._next_trade: dict[int, int] = {}

    # -- schema ---------------------------------------------------------------

    def table_specs(self) -> list[TableSpec]:
        return [
            TableSpec("customer", _schema("customer", 12), self.n_customers),
            TableSpec("account", _schema("account", 10), self.n_accounts, warm_priority=1),
            TableSpec("broker", _schema("broker", 8), max(10, self.n_customers // 100),
                      warm_priority=2),
            TableSpec("security", _schema("security", 14), SECURITIES, replicated=True,
                      warm_priority=3),
            TableSpec("last_trade", _schema("last_trade", 6), SECURITIES, replicated=True,
                      warm_priority=3),
            TableSpec(
                "trade", _schema("trade", 14),
                self.n_accounts * TRADES_PER_ACCOUNT_CAP, grows=True,
            ),
            TableSpec("trade_history", _schema("trade_history", 5), 1, grows=True,
                      warm_priority=1),
            TableSpec(
                "holding", _schema("holding", 8),
                self.n_accounts * HOLDINGS_PER_ACCOUNT,
            ),
        ]

    # -- key helpers -------------------------------------------------------------

    @staticmethod
    def trade_key(account: int, t: int) -> int:
        return account * TRADES_PER_ACCOUNT_CAP + t

    @staticmethod
    def holding_key(account: int, h: int) -> int:
        return account * HOLDINGS_PER_ACCOUNT + h

    def next_trade_id(self, account: int) -> int:
        return self._next_trade.get(account, TRADES_PER_ACCOUNT_CAP // 2)

    # -- generation ---------------------------------------------------------------

    def next_transaction(
        self,
        rng: random.Random,
        *,
        partition: int | None = None,
        n_partitions: int = 1,
    ) -> tuple[str, TxnBody]:
        r = rng.random()
        acc = 0.0
        kind = MIX[-1][0]
        for name, p in MIX:
            acc += p
            if r < acc:
                kind = name
                break
        lo, hi = self.partition_range(self.n_customers, partition, n_partitions)
        customer = lo + rng.randrange(hi - lo)
        account = customer * ACCOUNTS_PER_CUSTOMER + rng.randrange(ACCOUNTS_PER_CUSTOMER)
        return kind, getattr(self, f"_gen_{kind}")(rng, customer, account)

    def _gen_trade_order(self, rng: random.Random, customer: int, account: int) -> TxnBody:
        security = rng.randrange(SECURITIES)
        qty = rng.randint(1, 800)
        t = self.next_trade_id(account)
        if t >= TRADES_PER_ACCOUNT_CAP:
            t = TRADES_PER_ACCOUNT_CAP // 2
        self._next_trade[account] = t + 1
        tk = self.trade_key(account, t)
        workload = self

        def body(txn) -> None:
            txn.read("customer", customer)
            txn.read("account", account)
            txn.read("broker", account % max(10, workload.n_customers // 100))
            txn.read("security", security)
            txn.read("last_trade", security)
            txn.insert("trade", (tk, account, security, qty, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0),
                       key=tk)
            txn.insert("trade_history", (tk, 0, 0, 0, 0))
            txn.update("account", account, "c2", lambda v: v - qty)  # buying power

        return body

    def _gen_trade_result(self, rng: random.Random, customer: int, account: int) -> TxnBody:
        # Complete the account's most recent pending trade.
        t = max(0, self.next_trade_id(account) - 1)
        tk = self.trade_key(account, t)
        holding = self.holding_key(account, rng.randrange(HOLDINGS_PER_ACCOUNT))

        def body(txn) -> None:
            trade_row = txn.read("trade", tk)
            if trade_row is None:
                return
            security = int(trade_row[2]) % SECURITIES
            txn.update("trade", tk, "c4", 1)  # status -> completed
            txn.update("holding", holding, "c2", lambda v: v + 1)
            txn.update("last_trade", security, "c1", lambda v: v + 1)
            txn.update("account", account, "c1", lambda v: v + 1)  # balance
            txn.insert("trade_history", (tk, 1, 0, 0, 0))

        return body

    def _gen_trade_lookup(self, rng: random.Random, customer: int, account: int) -> TxnBody:
        # Read a window of the account's recent trades (ordered scan).
        first = max(0, self.next_trade_id(account) - rng.randint(5, 20))
        n = rng.randint(5, 20)
        tk = self.trade_key(account, first)

        def body(txn) -> None:
            txn.read("account", account)
            for _, trade_row in txn.scan("trade", tk, n):
                security = int(trade_row[2]) % SECURITIES
                txn.read("security", security)

        return body

    def _gen_market_watch(self, rng: random.Random, customer: int, account: int) -> TxnBody:
        # Price every security the account holds (read-only fan-out).
        holdings = [
            self.holding_key(account, h) for h in range(HOLDINGS_PER_ACCOUNT)
        ]
        rng.shuffle(holdings)
        watch = holdings[: rng.randint(5, HOLDINGS_PER_ACCOUNT)]

        def body(txn) -> None:
            txn.read("customer", customer)
            for hk in watch:
                holding_row = txn.read("holding", hk)
                if holding_row is None:
                    continue
                security = int(holding_row[1]) % SECURITIES
                txn.read("security", security)
                txn.read("last_trade", security)

        return body
