"""Key distributions used by the workload generators.

All generators take an explicit ``random.Random`` so runs are seeded and
repeatable (the paper averages three repetitions; we re-seed per
repetition).
"""

from __future__ import annotations

import random

# TPC-C NURand constants (clause 2.1.6); C values are per-run constants.
NURAND_A_C_LAST = 255
NURAND_A_CUST_ID = 1023
NURAND_A_ITEM_ID = 8191


def uniform_key(rng: random.Random, n: int) -> int:
    """Uniform key in [0, n)."""
    return rng.randrange(n)


def nurand(rng: random.Random, a: int, x: int, y: int, c: int = 123) -> int:
    """TPC-C non-uniform random over [x, y] (clause 2.1.6)."""
    return (((rng.randint(0, a) | rng.randint(x, y)) + c) % (y - x + 1)) + x


def nurand_customer(rng: random.Random, n_customers: int) -> int:
    """Skewed customer pick within a district (0-based)."""
    return nurand(rng, NURAND_A_CUST_ID, 1, n_customers, c=259) - 1


def nurand_item(rng: random.Random, n_items: int) -> int:
    """Skewed item pick (0-based)."""
    return nurand(rng, NURAND_A_ITEM_ID, 1, n_items, c=7911) - 1


def zipf_key(rng: random.Random, n: int, theta: float = 0.8, *, n_ranks: int = 64) -> int:
    """Cheap approximate Zipf: pick a rank bucket then uniform inside it.

    Used by the locality-sensitivity extension benches, not by the
    paper's own workloads (which are uniform / NURand).
    """
    if not 0.0 <= theta < 1.0:
        raise ValueError("theta must be in [0, 1)")
    if n <= n_ranks:
        return rng.randrange(n)
    weights = [(i + 1) ** -(1.0 / (1.0 - theta)) for i in range(n_ranks)]
    total = sum(weights)
    r = rng.random() * total
    acc = 0.0
    bucket = 0
    for i, w in enumerate(weights):
        acc += w
        if r <= acc:
            bucket = i
            break
    per_bucket = n // n_ranks
    return bucket * per_bucket + rng.randrange(per_bucket)


def distinct_keys(rng: random.Random, n_domain: int, count: int) -> list[int]:
    """*count* distinct uniform keys (retry-based; count << n_domain)."""
    if count > n_domain:
        raise ValueError("cannot draw more distinct keys than the domain holds")
    if count * 4 >= n_domain:
        return rng.sample(range(n_domain), count)
    seen: set[int] = set()
    while len(seen) < count:
        seen.add(rng.randrange(n_domain))
    return list(seen)
