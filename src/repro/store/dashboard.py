"""The static single-page dashboard ``repro-bench serve`` ships.

One self-contained HTML document (no external assets, no CDN): vanilla
JS fetches the JSON API (``/runs``, ``/history/<metric>``,
``/diff/<a>/<b>``) and renders stat tiles, inline-SVG sparklines of the
BENCH/LOAD trajectories, the run table, and a two-run diff panel.
Colors follow a small role-based token set with selected light and
dark values; series identity uses one categorical hue (single-series
sparklines need no legend), and pass/fail wears the reserved status
colors with a textual label, never color alone.
"""

from __future__ import annotations

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro run store</title>
<style>
  :root {
    color-scheme: light;
    --surface-1: #fcfcfb;
    --surface-2: #f1f0ee;
    --border: #d8d7d3;
    --text-primary: #0b0b0b;
    --text-secondary: #52514e;
    --series-1: #2a78d6;
    --status-good: #008300;
    --status-serious: #e34948;
  }
  @media (prefers-color-scheme: dark) {
    :root {
      color-scheme: dark;
      --surface-1: #1a1a19;
      --surface-2: #242422;
      --border: #3c3b38;
      --text-primary: #ffffff;
      --text-secondary: #c3c2b7;
      --series-1: #3987e5;
      --status-good: #008300;
      --status-serious: #e66767;
    }
  }
  * { box-sizing: border-box; }
  body {
    margin: 0; padding: 24px; background: var(--surface-1);
    color: var(--text-primary);
    font: 14px/1.45 ui-sans-serif, system-ui, sans-serif;
  }
  h1 { font-size: 20px; margin: 0 0 4px; }
  .sub { color: var(--text-secondary); margin: 0 0 20px; }
  .tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 20px; }
  .tile {
    background: var(--surface-2); border: 1px solid var(--border);
    border-radius: 8px; padding: 10px 16px; min-width: 110px;
  }
  .tile .n { font-size: 22px; font-variant-numeric: tabular-nums; }
  .tile .k { color: var(--text-secondary); font-size: 12px; }
  .cards { display: flex; flex-wrap: wrap; gap: 16px; margin-bottom: 24px; }
  .card {
    background: var(--surface-2); border: 1px solid var(--border);
    border-radius: 8px; padding: 12px 16px; flex: 1 1 260px; max-width: 420px;
  }
  .card h2 { font-size: 13px; margin: 0 0 2px; }
  .card .meta { color: var(--text-secondary); font-size: 12px; margin-bottom: 6px; }
  svg.spark { display: block; width: 100%; height: 56px; }
  svg.spark polyline { fill: none; stroke: var(--series-1); stroke-width: 2; }
  svg.spark circle { fill: var(--series-1); stroke: var(--surface-2); stroke-width: 2; }
  table { border-collapse: collapse; width: 100%; margin-bottom: 24px; }
  th, td {
    text-align: left; padding: 6px 10px; border-bottom: 1px solid var(--border);
    font-variant-numeric: tabular-nums; vertical-align: top;
  }
  th { color: var(--text-secondary); font-weight: 600; font-size: 12px; }
  tbody tr:hover { background: var(--surface-2); }
  code { font: 12px ui-monospace, monospace; }
  .pick { cursor: pointer; }
  .pick.a, .pick.b { outline: 2px solid var(--series-1); outline-offset: -2px; }
  .badge { font-size: 12px; padding: 1px 8px; border-radius: 10px; border: 1px solid; }
  .badge.ok { color: var(--status-good); border-color: var(--status-good); }
  .badge.bad { color: var(--status-serious); border-color: var(--status-serious); }
  #diff { background: var(--surface-2); border: 1px solid var(--border);
          border-radius: 8px; padding: 12px 16px; }
  #diff h2 { font-size: 14px; margin: 0 0 8px; }
  #diff .hint { color: var(--text-secondary); }
  #diff td.flag { color: var(--status-serious); }
</style>
</head>
<body>
<h1>repro run store</h1>
<p class="sub">append-only benchmark history &mdash; BENCH / LOAD / chaos /
figure runs with provenance and deterministic fingerprints</p>
<div class="tiles" id="tiles"></div>
<div class="cards" id="cards"></div>
<h2 style="font-size:15px">runs</h2>
<p class="sub">click one run for side A and another for side B to diff them</p>
<table id="runs"><thead><tr>
  <th>run</th><th>kind</th><th>created</th><th>fingerprint</th><th>summary</th>
</tr></thead><tbody></tbody></table>
<div id="diff"><h2>diff</h2><p class="hint">pick two runs of the same kind above</p></div>
<script>
"use strict";
const fmt = v => (v == null) ? "-"
  : (typeof v === "number" ? v.toLocaleString(undefined, {maximumFractionDigits: 1}) : String(v));

function sparkline(history) {
  const values = history.map(h => h[1]);
  const w = 380, h = 56, pad = 6;
  if (!values.length) return "<svg class='spark' viewBox='0 0 380 56'></svg>";
  const lo = Math.min(...values), hi = Math.max(...values);
  const span = (hi - lo) || 1;
  const x = i => values.length === 1 ? w / 2 : pad + i * (w - 2 * pad) / (values.length - 1);
  const y = v => h - pad - (v - lo) * (h - 2 * pad) / span;
  const pts = values.map((v, i) => `${x(i).toFixed(1)},${y(v).toFixed(1)}`).join(" ");
  const dots = history.map(([id, v], i) =>
    `<circle cx="${x(i).toFixed(1)}" cy="${y(v).toFixed(1)}" r="4">` +
    `<title>${id}: ${fmt(v)}</title></circle>`).join("");
  return `<svg class="spark" viewBox="0 0 ${w} ${h}" role="img">` +
    `<polyline points="${pts}"></polyline>${dots}</svg>`;
}

async function getJSON(url) {
  const resp = await fetch(url);
  if (!resp.ok) throw new Error(`${url}: HTTP ${resp.status}`);
  return resp.json();
}

function summaryText(meta) {
  const s = meta.summary || {};
  return Object.entries(s)
    .filter(([, v]) => v != null && !(Array.isArray(v) && !v.length))
    .map(([k, v]) => `${k}=${Array.isArray(v) ? v.join("+") : fmt(v)}`)
    .join("  ");
}

const picked = { a: null, b: null };

async function showDiff() {
  const box = document.getElementById("diff");
  if (!picked.a || !picked.b) return;
  try {
    const d = await getJSON(`/diff/${picked.a}/${picked.b}`);
    const badge = d.identical
      ? '<span class="badge ok">zero drift &mdash; fingerprints identical</span>'
      : (d.ok ? '<span class="badge ok">within thresholds</span>'
              : '<span class="badge bad">regressions</span>');
    let rows = (d.entries || []).map(e =>
      `<tr><td><code>${e.metric}</code></td><td>${fmt(e.a)}</td><td>${fmt(e.b)}</td>` +
      `<td>${e.rel == null ? "-" : (100 * e.rel).toFixed(1) + "%"}</td>` +
      `<td class="flag">${e.flag || ""}</td></tr>`).join("");
    rows += (d.verdict_changes || []).map(v =>
      `<tr><td colspan="4">verdict</td><td class="flag">${v}</td></tr>`).join("");
    box.innerHTML = `<h2>diff <code>${d.a}</code> &rarr; <code>${d.b}</code> ${badge}</h2>` +
      `<p class="hint">fingerprints <code>${d.fingerprint_a}</code> &rarr; ` +
      `<code>${d.fingerprint_b}</code></p>` +
      (rows ? `<table><thead><tr><th>metric</th><th>A</th><th>B</th><th>&Delta;%</th>` +
              `<th>flag</th></tr></thead><tbody>${rows}</tbody></table>`
            : "<p class='hint'>no comparable entries</p>");
  } catch (err) {
    box.innerHTML = `<h2>diff</h2><p class="hint">${err.message}</p>`;
  }
}

function pickRun(tr, runId) {
  const which = picked.a === null ? "a" : (picked.b === null ? "b" : null);
  if (which === null) {
    document.querySelectorAll("tr.pick.a, tr.pick.b")
      .forEach(el => el.classList.remove("a", "b"));
    picked.a = null; picked.b = null;
    return pickRun(tr, runId);
  }
  picked[which] = runId;
  tr.classList.add("pick", which);
  showDiff();
}

async function main() {
  const runs = await getJSON("/runs");
  const counts = {};
  runs.forEach(m => { counts[m.kind] = (counts[m.kind] || 0) + 1; });
  document.getElementById("tiles").innerHTML =
    ["bench", "load", "chaos", "figure"].map(kind =>
      `<div class="tile"><div class="n">${counts[kind] || 0}</div>` +
      `<div class="k">${kind} runs</div></div>`).join("");
  const tbody = document.querySelector("#runs tbody");
  runs.slice().reverse().forEach(meta => {
    const tr = document.createElement("tr");
    tr.className = "pick";
    tr.innerHTML = `<td><code>${meta.run_id}</code></td><td>${meta.kind}</td>` +
      `<td>${meta.created || "-"}</td>` +
      `<td><code title="${meta.fingerprint}">${(meta.fingerprint || "").slice(0, 8)}</code></td>` +
      `<td>${summaryText(meta)}</td>`;
    tr.addEventListener("click", () => pickRun(tr, meta.run_id));
    tbody.appendChild(tr);
  });
  const cards = document.getElementById("cards");
  const charts = [
    ["events_per_sec", "replay throughput", "events/sec (BENCH trajectory)"],
    ["capacity_tps", "load capacity", "probed tps (LOAD trajectory)"],
    ["p999_us", "tail latency", "p999 us at x1 offered load (LOAD trajectory)"],
  ];
  for (const [metric, title, meta] of charts) {
    try {
      const hist = await getJSON(`/history/${metric}`);
      if (!hist.history.length) continue;
      const last = hist.history[hist.history.length - 1][1];
      const div = document.createElement("div");
      div.className = "card";
      div.innerHTML = `<h2>${title}: ${fmt(last)}</h2>` +
        `<div class="meta">${meta} &mdash; ${hist.history.length} run(s)</div>` +
        sparkline(hist.history);
      cards.appendChild(div);
    } catch (err) { /* a metric with no runs is fine */ }
  }
}
main().catch(err => {
  document.body.insertAdjacentHTML("beforeend",
    `<p class="sub">failed to load: ${err.message}</p>`);
});
</script>
</body>
</html>
"""
