"""The stdlib-only HTTP API + dashboard: ``repro-bench serve``.

Routes (all JSON unless noted):

* ``GET /``                 — the single-page dashboard (HTML);
* ``GET /runs``             — every run's ``meta.json``, oldest first;
* ``GET /runs/<id>``        — one full run (spec, provenance, payload,
  verdicts, metrics, fingerprint);
* ``GET /diff/<a>/<b>``     — the comparison engine's verdict on two
  runs (400 on mixed kinds, 404 on unknown ids);
* ``GET /history/<metric>`` — the metric's trajectory across runs
  (named metrics from :data:`repro.store.compare.METRICS` or a dotted
  payload path).

Built on :mod:`http.server` (``ThreadingHTTPServer``) — no third-party
dependency, safe for CI smoke jobs, good enough for a laptop dashboard.
The store is read per request, so a server left running picks up new
runs without restarting.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import unquote, urlparse

from repro.store.compare import diff_runs, metric_history
from repro.store.dashboard import DASHBOARD_HTML
from repro.store.fsdb import RunStore


def _run_to_dict(record) -> dict:
    return {
        "run_id": record.run_id,
        "kind": record.kind,
        "created": record.created,
        "fingerprint": record.fingerprint(),
        "spec": record.spec,
        "provenance": record.provenance,
        "payload": record.payload,
        "verdicts": record.verdicts,
        "metrics": record.metrics,
    }


class StoreRequestHandler(BaseHTTPRequestHandler):
    """Routes GETs against the store attached to the server."""

    server_version = "repro-store/1"

    # The handler is instantiated per request by http.server; the store
    # rides on the server object (see make_server).
    @property
    def store(self) -> RunStore:
        return self.server.store  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    # -- responses -----------------------------------------------------------

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(body)

    def _json(self, payload, status: int = 200) -> None:
        body = json.dumps(payload, indent=1).encode("utf-8")
        self._send(status, body, "application/json; charset=utf-8")

    def _error(self, status: int, message: str) -> None:
        self._json({"error": message}, status=status)

    # -- routing -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        parts = [
            unquote(part)
            for part in urlparse(self.path).path.split("/")
            if part
        ]
        try:
            if not parts or parts == ["index.html"]:
                self._send(
                    200, DASHBOARD_HTML.encode("utf-8"),
                    "text/html; charset=utf-8",
                )
            elif parts == ["runs"]:
                self._json(self.store.list_runs())
            elif len(parts) == 2 and parts[0] == "runs":
                self._json(_run_to_dict(self.store.get(parts[1])))
            elif len(parts) == 3 and parts[0] == "diff":
                a = self.store.get(parts[1])
                b = self.store.get(parts[2])
                self._json(diff_runs(a, b).to_dict())
            elif len(parts) == 2 and parts[0] == "history":
                history = metric_history(self.store, parts[1])
                self._json({"metric": parts[1], "history": history})
            else:
                self._error(404, f"no route for {self.path!r}")
        except KeyError as exc:
            self._error(404, str(exc.args[0]) if exc.args else "not found")
        except ValueError as exc:
            self._error(400, str(exc))


def make_server(
    store: RunStore, host: str = "127.0.0.1", port: int = 0,
    *, verbose: bool = False,
) -> ThreadingHTTPServer:
    """A ready-to-serve HTTP server bound to *host*:*port* (0 = ephemeral)."""
    server = ThreadingHTTPServer((host, port), StoreRequestHandler)
    server.store = store  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    return server


def serve(
    store: RunStore, host: str = "127.0.0.1", port: int = 8642,
    *, verbose: bool = False,
) -> None:  # pragma: no cover - blocking loop; tests use make_server
    """Serve until interrupted (the ``repro-bench serve`` loop)."""
    server = make_server(store, host, port, verbose=verbose)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
