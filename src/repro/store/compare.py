"""The comparison engine: diff two runs, chart one metric's history.

Every comparison states its threshold explicitly:

* **perf** (``bench`` vs ``bench``) — events/sec and txns/sec deltas;
  a drop beyond :data:`PERF_REGRESSION_TOLERANCE` is flagged (the same
  30 % the ``repro-bench perf --check`` CI gate uses).
* **latency** (``load`` vs ``load``) — per-multiplier p50/p99/p999 and
  achieved-throughput deltas; a p999 increase beyond
  :data:`P999_REGRESSION_TOLERANCE` is flagged (the ``load --check``
  CI gate).
* **figure drift** (``figure`` vs ``figure``) — per-cell relative
  error; any cell beyond :data:`FIGURE_DRIFT_TOLERANCE` is flagged.
  Same-seed runs must show **zero** drift.
* **chaos verdicts** (``chaos`` vs ``chaos``) — pass/fail flips,
  failed-invariant set changes, recovered-state digest changes.

Two runs with equal fingerprints are *identical by construction* and
the diff says so without walking the payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.store.fsdb import RunStore
from repro.store.schema import BENCH, CHAOS, FIGURE, LOAD, RunRecord

PERF_REGRESSION_TOLERANCE = 0.30
"""Flag a bench diff when events/sec drops by more than this fraction."""

P999_REGRESSION_TOLERANCE = 0.30
"""Flag a load diff when p999 grows by more than this fraction."""

FIGURE_DRIFT_TOLERANCE = 0.01
"""Flag a figure cell whose relative error exceeds this fraction."""


@dataclass(frozen=True)
class DiffEntry:
    """One compared quantity: where it was, where it is, how far it moved."""

    metric: str
    a: float | None
    b: float | None
    flag: str = ""  # non-empty marks a threshold violation

    @property
    def delta(self) -> float | None:
        if self.a is None or self.b is None:
            return None
        return self.b - self.a

    @property
    def rel(self) -> float | None:
        """Relative change (b - a) / |a|; None when undefined."""
        if self.a is None or self.b is None or self.a == 0:
            return None
        return (self.b - self.a) / abs(self.a)


@dataclass(frozen=True)
class RunDiff:
    """The outcome of comparing run *a* against run *b*."""

    a_id: str
    b_id: str
    kind: str
    fingerprint_a: str
    fingerprint_b: str
    entries: tuple[DiffEntry, ...] = ()
    verdict_changes: tuple[str, ...] = ()

    @property
    def identical(self) -> bool:
        return self.fingerprint_a == self.fingerprint_b

    @property
    def regressions(self) -> tuple[str, ...]:
        flagged = tuple(e.flag for e in self.entries if e.flag)
        return flagged + self.verdict_changes

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> dict:
        return {
            "a": self.a_id,
            "b": self.b_id,
            "kind": self.kind,
            "fingerprint_a": self.fingerprint_a,
            "fingerprint_b": self.fingerprint_b,
            "identical": self.identical,
            "ok": self.ok,
            "entries": [
                {
                    "metric": e.metric,
                    "a": e.a,
                    "b": e.b,
                    "delta": e.delta,
                    "rel": e.rel,
                    "flag": e.flag,
                }
                for e in self.entries
            ],
            "verdict_changes": list(self.verdict_changes),
            "regressions": list(self.regressions),
        }


# -- kind-specific comparisons ------------------------------------------------


def _bench_entries(a: RunRecord, b: RunRecord) -> list[DiffEntry]:
    entries = []
    for metric, path in (
        ("replay.events_per_sec", ("replay", "events_per_sec")),
        ("engine.txns_per_sec", ("engine", "txns_per_sec")),
        ("figure_sweep.wall_s", ("figure_sweep", "wall_s")),
    ):
        va = _dig(a.payload, path)
        vb = _dig(b.payload, path)
        flag = ""
        if (
            metric != "figure_sweep.wall_s"
            and isinstance(va, (int, float))
            and isinstance(vb, (int, float))
            and va > 0
            and (vb - va) / va < -PERF_REGRESSION_TOLERANCE
        ):
            flag = (
                f"perf-regression:{metric} dropped "
                f"{(va - vb) / va:.0%} (> {PERF_REGRESSION_TOLERANCE:.0%})"
            )
        entries.append(DiffEntry(metric, _num(va), _num(vb), flag))
    return entries


_LOAD_POINT_METRICS = ("achieved_tps", "p50_us", "p99_us", "p999_us")


def _load_entries(a: RunRecord, b: RunRecord) -> list[DiffEntry]:
    entries = [
        DiffEntry(
            "capacity_tps",
            _num(a.payload.get("capacity_tps")),
            _num(b.payload.get("capacity_tps")),
        )
    ]
    points_a = {p.get("multiplier"): p for p in a.payload.get("points", [])}
    points_b = {p.get("multiplier"): p for p in b.payload.get("points", [])}
    for multiplier in sorted(set(points_a) & set(points_b), key=float):
        pa, pb = points_a[multiplier], points_b[multiplier]
        for metric in _LOAD_POINT_METRICS:
            va, vb = _num(pa.get(metric)), _num(pb.get(metric))
            flag = ""
            if (
                metric == "p999_us"
                and va is not None
                and vb is not None
                and va > 0
                and (vb - va) / va > P999_REGRESSION_TOLERANCE
            ):
                flag = (
                    f"p999-regression:x{multiplier:g} grew "
                    f"{(vb - va) / va:.0%} (> {P999_REGRESSION_TOLERANCE:.0%})"
                )
            entries.append(DiffEntry(f"x{multiplier:g}.{metric}", va, vb, flag))
        entries.extend(_chaos_point_entries(multiplier, pa, pb))
    return entries


def _chaos_point_entries(multiplier, pa: dict, pb: dict) -> list[DiffEntry]:
    """Chaos-sweep deltas for one multiplier: tail blowup and verdicts.

    The fault-window p999 blowup gates like p999 itself (same
    tolerance, and the flag says "p999" so the ``load --check`` gate
    picks it up); a degraded-mode verdict flipping ok -> fail is always
    flagged.  Classic points (no ``chaos`` block on either side)
    contribute nothing, so pre-chaos diffs are unchanged.
    """
    ca, cb = pa.get("chaos"), pb.get("chaos")
    if not isinstance(ca, dict) or not isinstance(cb, dict):
        return []
    entries = []
    va, vb = _num(ca.get("p999_blowup")), _num(cb.get("p999_blowup"))
    flag = ""
    if (
        va is not None
        and vb is not None
        and va > 0
        and (vb - va) / va > P999_REGRESSION_TOLERANCE
    ):
        flag = (
            f"p999-blowup-regression:x{multiplier:g} fault-window tail grew "
            f"{(vb - va) / va:.0%} (> {P999_REGRESSION_TOLERANCE:.0%})"
        )
    entries.append(DiffEntry(f"x{multiplier:g}.chaos.p999_blowup", va, vb, flag))
    verdicts_a = {v.get("name"): bool(v.get("ok")) for v in ca.get("verdicts", [])}
    verdicts_b = {v.get("name"): bool(v.get("ok")) for v in cb.get("verdicts", [])}
    for name in sorted(set(verdicts_a) & set(verdicts_b)):
        ok_a, ok_b = verdicts_a[name], verdicts_b[name]
        flag = (
            f"degraded-verdict:{name} flipped ok -> fail at x{multiplier:g}"
            if ok_a and not ok_b
            else ""
        )
        entries.append(
            DiffEntry(
                f"x{multiplier:g}.verdict.{name}",
                1.0 if ok_a else 0.0,
                1.0 if ok_b else 0.0,
                flag,
            )
        )
    return entries


def _figure_entries(a: RunRecord, b: RunRecord) -> list[DiffEntry]:
    panels_a = {p["figure_id"]: p for p in a.payload.get("panels", [])}
    panels_b = {p["figure_id"]: p for p in b.payload.get("panels", [])}
    entries = []
    for figure_id in sorted(set(panels_a) & set(panels_b)):
        cells_a = {
            (c["system"], c["x"]): c for c in panels_a[figure_id]["cells"]
        }
        cells_b = {
            (c["system"], c["x"]): c for c in panels_b[figure_id]["cells"]
        }
        for key in sorted(set(cells_a) & set(cells_b)):
            va = _num(cells_a[key].get("value"))
            vb = _num(cells_b[key].get("value"))
            flag = ""
            if va is not None and vb is not None:
                drift = abs(vb - va) / abs(va) if va != 0 else abs(vb - va)
                if drift > FIGURE_DRIFT_TOLERANCE:
                    flag = (
                        f"figure-drift:{figure_id} {key[0]}@{key[1]} moved "
                        f"{drift:.1%} (> {FIGURE_DRIFT_TOLERANCE:.0%})"
                    )
            entries.append(
                DiffEntry(f"{figure_id}.{key[0]}@{key[1]}", va, vb, flag)
            )
    return entries


def _chaos_changes(a: RunRecord, b: RunRecord) -> tuple[str, ...]:
    changes = []
    cells_a = {
        (c.get("system"), c.get("workload"), c.get("seed")): c
        for c in a.verdicts.get("cells", [])
    }
    cells_b = {
        (c.get("system"), c.get("workload"), c.get("seed")): c
        for c in b.verdicts.get("cells", [])
    }
    for key in sorted(
        set(cells_a) & set(cells_b), key=lambda k: tuple(str(p) for p in k)
    ):
        ca, cb = cells_a[key], cells_b[key]
        label = "/".join(str(part) for part in key if part is not None)
        if ca.get("ok") and not cb.get("ok"):
            failed = ", ".join(cb.get("failed_invariants", [])) or "(unnamed)"
            changes.append(f"chaos-verdict:{label} flipped PASS -> FAIL ({failed})")
        elif not ca.get("ok") and cb.get("ok"):
            changes.append(f"chaos-fixed:{label} flipped FAIL -> PASS")
        elif sorted(ca.get("failed_invariants", [])) != sorted(
            cb.get("failed_invariants", [])
        ):
            changes.append(
                f"chaos-verdict:{label} failing invariants changed "
                f"{ca.get('failed_invariants')} -> {cb.get('failed_invariants')}"
            )
        elif ca.get("digest") != cb.get("digest"):
            changes.append(
                f"chaos-digest:{label} recovered-state digest changed "
                f"{ca.get('digest')} -> {cb.get('digest')}"
            )
    only_a = sorted(set(cells_a) - set(cells_b), key=str)
    only_b = sorted(set(cells_b) - set(cells_a), key=str)
    for key in only_a:
        changes.append(f"chaos-cell-removed:{'/'.join(str(p) for p in key)}")
    for key in only_b:
        changes.append(f"chaos-cell-added:{'/'.join(str(p) for p in key)}")
    return tuple(changes)


def diff_runs(a: RunRecord, b: RunRecord) -> RunDiff:
    """Compare two runs of the same kind; raises ValueError on a mix."""
    if a.kind != b.kind:
        raise ValueError(
            f"cannot diff a {a.kind} run against a {b.kind} run"
        )
    entries: list[DiffEntry] = []
    verdict_changes: tuple[str, ...] = ()
    if a.kind == BENCH:
        entries = _bench_entries(a, b)
    elif a.kind == LOAD:
        entries = _load_entries(a, b)
    elif a.kind == FIGURE:
        entries = _figure_entries(a, b)
    elif a.kind == CHAOS:
        verdict_changes = _chaos_changes(a, b)
    return RunDiff(
        a_id=a.run_id or "a",
        b_id=b.run_id or "b",
        kind=a.kind,
        fingerprint_a=a.fingerprint(),
        fingerprint_b=b.fingerprint(),
        entries=tuple(entries),
        verdict_changes=verdict_changes,
    )


def render_diff(diff: RunDiff) -> str:
    header = f"diff {diff.a_id} -> {diff.b_id} [{diff.kind}]"
    lines = [header, "-" * len(header)]
    if diff.identical:
        lines.append(
            f"fingerprints identical ({diff.fingerprint_a}): zero drift"
        )
    else:
        lines.append(
            f"fingerprints differ: {diff.fingerprint_a} -> {diff.fingerprint_b}"
        )
    if diff.entries:
        width = max(len(e.metric) for e in diff.entries) + 2
        for e in diff.entries:
            a_txt = "-" if e.a is None else f"{e.a:,.1f}"
            b_txt = "-" if e.b is None else f"{e.b:,.1f}"
            rel = "" if e.rel is None else f"  ({e.rel:+.1%})"
            mark = "  <-- " + e.flag if e.flag else ""
            lines.append(f"  {e.metric:<{width}}{a_txt:>14} -> {b_txt:>14}{rel}{mark}")
    for change in diff.verdict_changes:
        lines.append(f"  VERDICT: {change}")
    if diff.kind == CHAOS and not diff.verdict_changes:
        lines.append("  chaos verdicts unchanged")
    lines.append(
        "ok: no thresholds tripped" if diff.ok
        else "REGRESSIONS: " + "; ".join(diff.regressions)
    )
    return "\n".join(lines)


# -- metric histories ---------------------------------------------------------

METRICS: dict[str, tuple[str, tuple[str, ...]]] = {
    "events_per_sec": (BENCH, ("replay", "events_per_sec")),
    "txns_per_sec": (BENCH, ("engine", "txns_per_sec")),
    "capacity_tps": (LOAD, ("capacity_tps",)),
    "p50_us": (LOAD, ("@x1", "p50_us")),
    "p99_us": (LOAD, ("@x1", "p99_us")),
    "p999_us": (LOAD, ("@x1", "p999_us")),
    "chaos_ok": (CHAOS, ("@verdict", "ok")),
}
"""Named metrics ``repro-bench history`` understands, mapped to
``(record kind, extraction path)``.  ``@x1`` selects the load point at
multiplier 1.0 (falling back to the last point); ``@verdict`` reads
from the verdicts section instead of the payload."""


def _dig(mapping, path):
    value = mapping
    for part in path:
        if not isinstance(value, dict):
            return None
        value = value.get(part)
    return value


def _num(value):
    if isinstance(value, bool):
        return float(value)
    return float(value) if isinstance(value, (int, float)) else None


def extract_metric(record: RunRecord, metric: str) -> float | None:
    """Resolve *metric* against one run (named, or a dotted payload path)."""
    if metric in METRICS:
        kind, path = METRICS[metric]
        if record.kind != kind:
            return None
        if path[0] == "@x1":
            points = record.payload.get("points", [])
            at_one = next(
                (p for p in points if p.get("multiplier") == 1.0),
                points[-1] if points else None,
            )
            return _num(_dig(at_one or {}, path[1:]))
        if path[0] == "@verdict":
            return _num(_dig(record.verdicts, path[1:]))
        return _num(_dig(record.payload, path))
    return _num(_dig(record.payload, tuple(metric.split("."))))


def metric_history(
    store: RunStore, metric: str, *, kind: str | None = None
) -> list[tuple[str, float]]:
    """``(run_id, value)`` for every run where *metric* resolves, oldest
    first — the trajectory the dashboard sparklines plot."""
    history = []
    for run_id in store.run_ids():
        record = store.get(run_id)
        if kind is not None and record.kind != kind:
            continue
        value = extract_metric(record, metric)
        if value is not None:
            history.append((run_id, value))
    return history


def _spark(values: list[float]) -> str:
    """A one-line unicode sparkline (terminal sibling of the SVG ones)."""
    blocks = "▁▂▃▄▅▆▇█"
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return blocks[0] * len(values)
    span = hi - lo
    return "".join(
        blocks[min(len(blocks) - 1, int((v - lo) / span * len(blocks)))]
        for v in values
    )


def render_history(metric: str, history: list[tuple[str, float]]) -> str:
    header = f"history of {metric} ({len(history)} run(s))"
    lines = [header, "-" * len(header)]
    if not history:
        lines.append("no runs carry this metric")
        return "\n".join(lines)
    width = max(len(run_id) for run_id, _ in history) + 2
    for run_id, value in history:
        lines.append(f"  {run_id:<{width}}{value:>16,.1f}")
    values = [value for _, value in history]
    lines.append(f"  trend {_spark(values)}  min {min(values):,.1f}  max {max(values):,.1f}")
    return "\n".join(lines)


# -- the load --check gate ----------------------------------------------------

_LOAD_BASELINE_KEYS = (
    "system", "mix", "backend", "process", "clients", "streams",
    "events_per_point", "think_ms", "servers", "shards", "replicas",
    "ack", "fault_rate", "seed",
    # Chaos sweeps only compare against baselines with the identical
    # fault schedule and resilience policy; classic runs carry None for
    # both, which `.get()` also yields for legacy records that predate
    # the keys — old baselines keep matching.
    "chaos", "resilience",
)


def _load_spec_key(spec: dict) -> tuple:
    return tuple((key, spec.get(key)) for key in _LOAD_BASELINE_KEYS)


def find_load_baseline(
    fresh_spec: dict, candidates: list[RunRecord]
) -> RunRecord | None:
    """The most recent candidate whose spec matches *fresh_spec* on every
    comparison-relevant field (same virtual experiment, so latencies are
    directly comparable).

    Tolerant of legacy/malformed candidates: a record whose spec is not
    a dict (hand-edited store files, pre-schema blobs) is skipped, not
    fatal — the gate must never crash on old history.
    """
    key = _load_spec_key(fresh_spec)
    matching = []
    for record in candidates:
        if record is None or record.kind != LOAD:
            continue
        try:
            if _load_spec_key(record.spec) == key:
                matching.append(record)
        except (AttributeError, TypeError):
            continue
    if not matching:
        return None
    return max(matching, key=lambda record: (record.created, record.run_id))


def check_load_regression(
    fresh: RunRecord, candidates: list[RunRecord]
) -> tuple[str, bool]:
    """The ``repro-bench load --check`` gate; returns (report, ok).

    Compares *fresh* against the most recent committed baseline with an
    identical spec and fails on any per-multiplier p999 growth beyond
    :data:`P999_REGRESSION_TOLERANCE`.  No comparable baseline is not a
    failure — the gate reports so and passes (first run of a new spec).
    """
    baseline = find_load_baseline(fresh.spec, candidates)
    if baseline is None:
        return (
            "load check: no comparable baseline record "
            "(same system/mix/backend/seed) — nothing to gate against",
            True,
        )
    diff = diff_runs(baseline, fresh)
    gate_flags = [
        flag
        for flag in diff.regressions
        if "p999" in flag or "degraded-verdict" in flag
    ]
    lines = [
        f"load check vs {baseline.run_id or 'committed baseline'} "
        f"({baseline.created or 'undated'}):"
    ]
    if diff.identical:
        lines.append("  fingerprints identical: zero drift")
    for entry in diff.entries:
        interesting = (
            entry.metric.endswith("p999_us")
            or entry.metric.endswith("chaos.p999_blowup")
            or ".verdict." in entry.metric
        )
        if not interesting:
            continue
        rel = "" if entry.rel is None else f" ({entry.rel:+.1%})"
        a_txt = "-" if entry.a is None else f"{entry.a:,.1f}"
        b_txt = "-" if entry.b is None else f"{entry.b:,.1f}"
        mark = "  REGRESSION" if entry.flag else ""
        lines.append(f"  {entry.metric:<40}{a_txt:>12} -> {b_txt:>12}{rel}{mark}")
    ok = not gate_flags
    lines.append(
        f"  gate: p999 within {P999_REGRESSION_TOLERANCE:.0%} of baseline"
        if ok
        else "  GATE FAILED: " + "; ".join(gate_flags)
    )
    return "\n".join(lines), ok
