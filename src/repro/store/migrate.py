"""One-shot (and idempotent) migration of legacy record blobs.

``benchmarks/records/BENCH_*.json`` and ``LOAD_*.json`` predate the
store: JSON lists of per-run dicts with no per-run directory, no
verdicts and no fingerprint.  ``repro-bench store migrate`` promotes
every entry into the store layout.  Migration is idempotent — an entry
whose (kind, origin timestamp, content fingerprint) is already present
is skipped — so it can run on every ``serve`` start and legacy history
always shows up in the dashboard.

The legacy files stay where they are and the old readers
(:func:`repro.bench.perf.load_records`, the ``perf --check`` baseline)
keep working: the store is a second, richer view, not a breaking move.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.store.fsdb import RunStore
from repro.store.schema import RunRecord, bench_run, load_run

DEFAULT_RECORDS_DIR = Path("benchmarks") / "records"

_CONVERTERS = {
    "BENCH": bench_run,
    "LOAD": load_run,
}


def _legacy_entries(records_dir: Path) -> list[tuple[str, dict]]:
    """Every (prefix, record dict) across the legacy files, oldest file
    first, preserving in-file append order."""
    entries: list[tuple[str, dict]] = []
    if not records_dir.is_dir():
        return entries
    for prefix in sorted(_CONVERTERS):
        for path in sorted(records_dir.glob(f"{prefix}_*.json")):
            try:
                data = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            records = data if isinstance(data, list) else [data]
            entries.extend(
                (prefix, record) for record in records if isinstance(record, dict)
            )
    return entries


def migrate_records(
    records_dir: Path = DEFAULT_RECORDS_DIR,
    store: RunStore | None = None,
) -> tuple[list[str], int]:
    """Promote legacy records into *store*; returns (new run ids, skipped).

    Skipped counts entries already present (same kind, origin timestamp
    and fingerprint) — running twice migrates nothing the second time.
    """
    store = store or RunStore()
    migrated: list[str] = []
    skipped = 0
    for prefix, legacy in _legacy_entries(records_dir):
        record: RunRecord = _CONVERTERS[prefix](legacy)
        if store.has_fingerprint(record.kind, record.created, record.fingerprint()):
            skipped += 1
            continue
        migrated.append(store.put(record))
    return migrated, skipped


def render_migration(migrated: list[str], skipped: int) -> str:
    lines = [f"migrated {len(migrated)} legacy record(s), {skipped} already present"]
    lines.extend(f"  {run_id}" for run_id in migrated)
    return "\n".join(lines)
