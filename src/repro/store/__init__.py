"""Persistent run store, comparison engine & dashboard — ``repro.store``.

Every benchmark producer (``repro-bench perf`` / ``load`` / ``chaos`` /
figure runs) can persist its outcome as a **run**: a per-run directory
under ``benchmarks/store/`` holding the full spec, host provenance, the
result payload, invariant verdicts, optional obs metrics, and a
deterministic content fingerprint.  The store is append-only: runs are
written once and never mutated, so the directory accumulates the
repository's complete measurement history.

On top of the store sit a comparison engine (``repro-bench diff`` /
``history`` — perf deltas, figure drift, chaos-verdict changes,
latency-percentile regressions with explicit thresholds) and a
stdlib-only HTTP API + single-page dashboard (``repro-bench serve``).

The fingerprint contract (see :mod:`repro.store.fingerprint`): volatile
fields — wall-clock timestamps, host provenance, self-measured rates —
are excluded, so two same-seed runs fingerprint identically whether
they ran serially or with ``--jobs N``, sanitized or plain, today or
next year.  ``repro-bench diff`` on two such runs reports **zero
drift**.
"""

from __future__ import annotations

from repro.store.compare import (
    FIGURE_DRIFT_TOLERANCE,
    P999_REGRESSION_TOLERANCE,
    PERF_REGRESSION_TOLERANCE,
    DiffEntry,
    RunDiff,
    check_load_regression,
    diff_runs,
    find_load_baseline,
    metric_history,
    render_diff,
    render_history,
)
from repro.store.fingerprint import VOLATILE_KEYS, canonical, fingerprint
from repro.store.fsdb import DEFAULT_STORE_DIR, RunStore
from repro.store.migrate import migrate_records
from repro.store.schema import (
    BENCH,
    CHAOS,
    FIGURE,
    KINDS,
    LOAD,
    SCHEMA_VERSION,
    RunRecord,
    bench_run,
    chaos_run,
    figure_run,
    load_run,
    summarize,
)

__all__ = [
    "BENCH",
    "CHAOS",
    "DEFAULT_STORE_DIR",
    "DiffEntry",
    "FIGURE",
    "FIGURE_DRIFT_TOLERANCE",
    "KINDS",
    "LOAD",
    "P999_REGRESSION_TOLERANCE",
    "PERF_REGRESSION_TOLERANCE",
    "RunDiff",
    "RunRecord",
    "RunStore",
    "SCHEMA_VERSION",
    "VOLATILE_KEYS",
    "bench_run",
    "canonical",
    "chaos_run",
    "check_load_regression",
    "find_load_baseline",
    "diff_runs",
    "figure_run",
    "fingerprint",
    "load_run",
    "metric_history",
    "migrate_records",
    "render_diff",
    "render_history",
    "summarize",
]
