"""Run-record schema: what one persisted run is made of.

A :class:`RunRecord` is the unit the store writes and the comparison
engine reads.  Four record kinds cover today's producers:

* ``bench``  — ``repro-bench perf`` (simulator self-measurement);
* ``load``   — ``repro-bench load`` (open-loop saturation sweeps);
* ``chaos``  — ``repro-bench chaos`` (fault-injection verdicts);
* ``figure`` — figure regenerations (the paper's tables/plots).

Each carries the same five sections regardless of kind: ``spec`` (what
was asked for), ``provenance`` (who/where produced it), ``payload``
(the result itself), ``verdicts`` (invariant/gate outcomes) and
``metrics`` (an obs snapshot when one rode along).  The fingerprint is
computed over kind + spec + payload + verdicts + metrics with volatile
fields excluded (see :mod:`repro.store.fingerprint`).

Converters from the existing producers' dict shapes (``BENCH_*.json``
records, ``LOAD_*.json`` records, chaos suite cells, figure panels)
live here so every write path and the migration tool agree on one
layout.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.store.fingerprint import fingerprint

SCHEMA_VERSION = 1

BENCH = "bench"
LOAD = "load"
CHAOS = "chaos"
FIGURE = "figure"
KINDS = (BENCH, LOAD, CHAOS, FIGURE)

_DIGEST_RE = re.compile(r"digest (\d+)")


@dataclass(frozen=True)
class RunRecord:
    """One persisted run (append-only once written)."""

    kind: str
    spec: dict
    provenance: dict
    payload: dict
    verdicts: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    created: str = ""  # ISO timestamp; volatile, excluded from the fingerprint
    run_id: str = ""  # assigned by RunStore.put()

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown run kind {self.kind!r}; known: {', '.join(KINDS)}"
            )

    def fingerprint(self) -> str:
        """Deterministic content fingerprint (see the module docstring)."""
        return fingerprint(
            {
                "kind": self.kind,
                "spec": self.spec,
                "payload": self.payload,
                "verdicts": self.verdicts,
                "metrics": self.metrics,
            }
        )


# -- converters from producer shapes -----------------------------------------


def bench_run(record: dict) -> RunRecord:
    """A ``bench`` run from one ``BENCH_<date>.json`` record dict."""
    spec = {
        "quick": record.get("quick", False),
        "figures": list(record.get("figure_sweep", {}).get("figures", [])),
    }
    payload = {
        "replay": dict(record.get("replay", {})),
        "engine": dict(record.get("engine", {})),
        "figure_sweep": dict(record.get("figure_sweep", {})),
    }
    return RunRecord(
        kind=BENCH,
        spec=spec,
        provenance=dict(record.get("provenance", {})),
        payload=payload,
        created=record.get("timestamp", ""),
    )


def load_run(record: dict) -> RunRecord:
    """A ``load`` run from one ``LOAD_<date>.json`` record dict.

    Chaos sweeps (points carrying a ``chaos`` block) lift their
    degraded-mode verdicts into ``RunRecord.verdicts`` so the store's
    comparison engine can flag ok -> fail flips.  Only points at or
    below the capacity multiplier (x1.0) gate: past saturation the
    queue grows without bound by construction, so "recovers within N
    ticks" is not a meaningful promise there.
    """
    payload = {
        "capacity_tps": record.get("capacity_tps"),
        "base_rate_tps": record.get("base_rate_tps"),
        "points": list(record.get("points", [])),
    }
    verdicts: dict = {}
    chaos_points = [
        p
        for p in payload["points"]
        if isinstance(p, dict) and isinstance(p.get("chaos"), dict)
    ]
    if chaos_points:
        gated = [p for p in chaos_points if (p.get("multiplier") or 0.0) <= 1.0]
        degraded: dict[str, bool] = {}
        for point in gated:
            for v in point["chaos"].get("verdicts", []):
                name = str(v.get("name"))
                degraded[name] = degraded.get(name, True) and bool(v.get("ok"))
        verdicts = {
            "ok": all(degraded.values()) if degraded else True,
            "degraded": degraded,
            "gated_multipliers": [p.get("multiplier") for p in gated],
        }
    return RunRecord(
        kind=LOAD,
        spec=dict(record.get("spec", {})),
        provenance=dict(record.get("provenance", {})),
        payload=payload,
        verdicts=verdicts,
        created=record.get("timestamp", ""),
    )


def chaos_run(spec: dict, cells: list[dict], ok: bool, *, created: str = "",
              provenance: dict | None = None) -> RunRecord:
    """A ``chaos`` run from the suite's per-cell outcomes.

    *cells* are the dicts ``run_chaos_suite(..., collect=...)`` emits:
    ``{"system", "workload", "ok", "failed_invariants", "report"}``.
    The per-cell recovered-state digest is lifted out of the rendered
    report (itself a pure function of the seed) so verdict comparisons
    can tell "same pass, different recovered state" from "identical".
    """
    for cell in cells:
        if "digest" not in cell:
            match = _DIGEST_RE.search(cell.get("report", ""))
            cell["digest"] = int(match.group(1)) if match else None
    failed = sorted(
        {name for cell in cells for name in cell.get("failed_invariants", ())}
    )
    verdicts = {
        "ok": ok,
        "failed_invariants": failed,
        "cells": [
            {
                "system": cell.get("system"),
                "workload": cell.get("workload"),
                "seed": cell.get("seed"),
                "ok": cell.get("ok"),
                "failed_invariants": sorted(cell.get("failed_invariants", ())),
                "digest": cell.get("digest"),
            }
            for cell in cells
        ],
    }
    return RunRecord(
        kind=CHAOS,
        spec=spec,
        provenance=dict(provenance or {}),
        payload={"cells": cells},
        verdicts=verdicts,
        created=created,
    )


def figure_run(panels, *, quick: bool = False, created: str = "",
               provenance: dict | None = None) -> RunRecord:
    """A ``figure`` run from a list of :class:`FigureResult` panels.

    Cells are flattened to scalars (the figure's plotted metric) plus
    the six-component stall breakdown when the metric has one — the
    exact numbers drift comparisons care about.
    """
    from repro.bench.results import IPC, PERCENT_ENGINE
    from repro.core.metrics import STALL_COMPONENTS

    panel_payloads = []
    for panel in panels:
        cells = []
        for system in panel.systems:
            for x in panel.x_values:
                cell: dict = {
                    "system": system,
                    "x": x,
                    "value": panel.value(system, x),
                }
                if panel.metric not in (IPC, PERCENT_ENGINE):
                    b = panel.breakdown(system, x)
                    cell["breakdown"] = {
                        c: getattr(b, c) for c in STALL_COMPONENTS
                    }
                cells.append(cell)
        panel_payloads.append(
            {
                "figure_id": panel.figure_id,
                "title": panel.title,
                "metric": panel.metric,
                "x_label": panel.x_label,
                "x_values": list(panel.x_values),
                "systems": list(panel.systems),
                "cells": cells,
            }
        )
    spec = {
        "figures": sorted({p["figure_id"] for p in panel_payloads}),
        "quick": quick,
    }
    return RunRecord(
        kind=FIGURE,
        spec=spec,
        provenance=dict(provenance or {}),
        payload={"panels": panel_payloads},
        created=created,
    )


# -- listing summaries --------------------------------------------------------


def summarize(record: RunRecord) -> dict:
    """The headline numbers a run listing shows (kind-specific)."""
    if record.kind == BENCH:
        replay = record.payload.get("replay", {})
        engine = record.payload.get("engine", {})
        return {
            "events_per_sec": replay.get("events_per_sec"),
            "txns_per_sec": engine.get("txns_per_sec"),
        }
    if record.kind == LOAD:
        spec = record.spec
        points = record.payload.get("points", [])
        at_one = next(
            (p for p in points if p.get("multiplier") == 1.0),
            points[-1] if points else {},
        )
        return {
            "system": spec.get("system"),
            "mix": spec.get("mix"),
            "backend": spec.get("backend"),
            "clients": spec.get("clients"),
            "capacity_tps": record.payload.get("capacity_tps"),
            "p999_us": at_one.get("p999_us"),
        }
    if record.kind == CHAOS:
        cells = record.verdicts.get("cells", [])
        return {
            "ok": record.verdicts.get("ok"),
            "cells": len(cells),
            "failed_invariants": record.verdicts.get("failed_invariants", []),
        }
    panels = record.payload.get("panels", [])
    return {
        "figures": record.spec.get("figures", []),
        "panels": len(panels),
        "cells": sum(len(p.get("cells", [])) for p in panels),
    }
