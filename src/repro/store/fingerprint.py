"""The deterministic content fingerprint of a run.

A fingerprint answers one question: *did the simulated outcome change?*
Two runs of the same spec at the same seed must fingerprint identically
no matter when or where they ran — serial vs ``--jobs N``, sanitized
vs plain, today vs next year, this laptop vs CI.  Everything that is a
pure function of the seed (figure cells, load latencies, chaos digests)
is covered; everything that is not — wall-clock timestamps, host
provenance, self-measured wall rates — is excluded by key name before
hashing.

The hash itself is :func:`repro.util.stablehash.stable_hash` over a
canonical nested-tuple form (dict keys sorted, volatile keys dropped),
so the fingerprint is stable across processes and PYTHONHASHSEED — the
same contract the simulator's placement hashing already relies on.
"""

from __future__ import annotations

from repro.util.stablehash import stable_hash

_MASK = 0xFFFFFFFFFFFFFFFF

VOLATILE_KEYS = frozenset(
    {
        # When the run happened.
        "timestamp",
        "date",
        "created",
        # Who/where it ran.
        "provenance",
        "git_sha",
        "python",
        "machine",
        "platform",
        "implementation",
        "cpu_count",
        # Store bookkeeping assigned after the fact.
        "run_id",
        "fingerprint",
        # Self-measured wall-clock rates (the perf suite measuring
        # itself): real time, not simulated time.
        "wall_s",
        "best_round_s",
        "rounds",
        "events_per_sec",
        "txns_per_sec",
        # Execution plan: --jobs N must not change the fingerprint.
        "jobs",
    }
)
"""Key names whose values never enter the fingerprint (recursively)."""


def canonical(value):
    """*value* as nested tuples: dict keys sorted, volatile keys dropped.

    The canonical form is hashable and independent of dict insertion
    order, JSON round-trips, and list-vs-tuple container choices, so it
    is what both the fingerprint and drift comparisons should look at.
    """
    if isinstance(value, dict):
        return tuple(
            (key, canonical(value[key]))
            for key in sorted(value)
            if key not in VOLATILE_KEYS
        )
    if isinstance(value, (list, tuple)):
        return tuple(canonical(item) for item in value)
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        # A float that carries an integral value must fingerprint the
        # same as the int it round-trips to through JSON readers.
        return int(value) if value.is_integer() else value
    return value


def fingerprint(payload) -> str:
    """16-hex-digit deterministic fingerprint of *payload*'s content."""
    return f"{stable_hash(canonical(payload)) & _MASK:016x}"
