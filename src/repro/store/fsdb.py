"""The filesystem run store: one directory per run, append-only.

Layout (under ``benchmarks/store/`` by default)::

    benchmarks/store/
      load-2026-08-08-001/
        meta.json         # run_id, kind, created, fingerprint, summary
        spec.json         # the full spec the producer ran
        provenance.json   # git SHA, python, cpu, platform
        result.json       # the payload (points / replay / cells / panels)
        verdicts.json     # invariant/gate verdicts (when any)
        metrics.json      # obs metrics snapshot (when one rode along)

Run ids are ``<kind>-<date>-<seq>``: sortable, human-readable, unique
per store.  ``put`` never overwrites an existing run and there is no
delete — the store is the repository's append-only measurement
history.  Everything is plain JSON so runs diff cleanly in git and any
tool can read them without this package.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.store.schema import SCHEMA_VERSION, KINDS, RunRecord, summarize

DEFAULT_STORE_DIR = Path("benchmarks") / "store"

_SECTION_FILES = {
    "spec": "spec.json",
    "provenance": "provenance.json",
    "payload": "result.json",
    "verdicts": "verdicts.json",
    "metrics": "metrics.json",
}


def _dump(path: Path, value) -> None:
    path.write_text(json.dumps(value, indent=2, sort_keys=True) + "\n")


def _load(path: Path):
    if not path.exists():
        return {}
    return json.loads(path.read_text())


class RunStore:
    """Append-only run database over a directory of per-run dirs."""

    def __init__(self, root: Path | str = DEFAULT_STORE_DIR) -> None:
        self.root = Path(root)

    # -- write ---------------------------------------------------------------

    def put(self, record: RunRecord) -> str:
        """Persist *record* as a new run directory; returns its run id."""
        self.root.mkdir(parents=True, exist_ok=True)
        date = (record.created or "0000-00-00")[:10] or "0000-00-00"
        prefix = f"{record.kind}-{date}-"
        seq = 1 + sum(
            1 for p in self.root.iterdir()
            if p.is_dir() and p.name.startswith(prefix)
        )
        while (self.root / f"{prefix}{seq:03d}").exists():
            seq += 1
        run_id = f"{prefix}{seq:03d}"
        run_dir = self.root / run_id
        run_dir.mkdir()
        stamped = RunRecord(
            kind=record.kind,
            spec=record.spec,
            provenance=record.provenance,
            payload=record.payload,
            verdicts=record.verdicts,
            metrics=record.metrics,
            created=record.created,
            run_id=run_id,
        )
        _dump(run_dir / "spec.json", stamped.spec)
        _dump(run_dir / "provenance.json", stamped.provenance)
        _dump(run_dir / "result.json", stamped.payload)
        if stamped.verdicts:
            _dump(run_dir / "verdicts.json", stamped.verdicts)
        if stamped.metrics:
            _dump(run_dir / "metrics.json", stamped.metrics)
        _dump(
            run_dir / "meta.json",
            {
                "schema_version": SCHEMA_VERSION,
                "run_id": run_id,
                "kind": stamped.kind,
                "created": stamped.created,
                "fingerprint": stamped.fingerprint(),
                "summary": summarize(stamped),
            },
        )
        return run_id

    # -- read ----------------------------------------------------------------

    def run_ids(self) -> list[str]:
        """Every run id, oldest first (date then sequence)."""
        if not self.root.is_dir():
            return []
        ids = [
            p.name
            for p in self.root.iterdir()
            if p.is_dir() and (p / "meta.json").exists()
        ]

        def sort_key(run_id: str):
            kind, _, rest = run_id.partition("-")
            return (rest, kind)

        return sorted(ids, key=sort_key)

    def list_runs(self, kind: str | None = None) -> list[dict]:
        """Every run's ``meta.json`` (oldest first), optionally one kind."""
        if kind is not None and kind not in KINDS:
            raise KeyError(
                f"unknown run kind {kind!r}; known: {', '.join(KINDS)}"
            )
        metas = []
        for run_id in self.run_ids():
            meta = _load(self.root / run_id / "meta.json")
            if kind is None or meta.get("kind") == kind:
                metas.append(meta)
        return metas

    def get(self, run_id: str) -> RunRecord:
        """The full :class:`RunRecord` for *run_id* (KeyError if absent)."""
        run_dir = self.root / run_id
        meta_path = run_dir / "meta.json"
        if not meta_path.exists():
            raise KeyError(f"no run {run_id!r} in {self.root}")
        meta = _load(meta_path)
        return RunRecord(
            kind=meta.get("kind", ""),
            spec=_load(run_dir / "spec.json"),
            provenance=_load(run_dir / "provenance.json"),
            payload=_load(run_dir / "result.json"),
            verdicts=_load(run_dir / "verdicts.json"),
            metrics=_load(run_dir / "metrics.json"),
            created=meta.get("created", ""),
            run_id=run_id,
        )

    def meta(self, run_id: str) -> dict:
        meta_path = self.root / run_id / "meta.json"
        if not meta_path.exists():
            raise KeyError(f"no run {run_id!r} in {self.root}")
        return _load(meta_path)

    def has_fingerprint(self, kind: str, created: str, fp: str) -> bool:
        """Dedup key for idempotent migration: same kind + origin
        timestamp + content fingerprint means the run is already here."""
        for meta in self.list_runs(kind):
            if meta.get("created") == created and meta.get("fingerprint") == fp:
                return True
        return False
