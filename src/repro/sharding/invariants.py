"""Cross-shard 2PC invariants, machine-checked after a chaos run.

Each check emits ``"name: detail"`` strings (the chaos report groups
violations by the ``name:`` prefix):

* ``atomic-cross-shard-commit`` — a decided-commit global transaction
  is committed on **every** member shard and a decided-abort (or
  undecided, which presumed abort makes an abort) one on **none**;
  partial application across shards is the one thing 2PC exists to
  prevent.
* ``no-acked-cross-shard-txn-lost`` — a client-acknowledged global
  commit (coordinator decision durable + every participant's durable
  ack) survives on every member shard.
* ``no-orphan-prepared-record`` — after shutdown resolution no shard's
  final log replays an undecided ``prepare`` record and no shard still
  holds in-doubt or open 2PC state: every prepared transaction was
  driven to a verdict.

A shard's final verdict for a sub-transaction is its replayed
``txn_status``; the cluster journal (durable per-shard verdicts,
recorded only at forced-log moments) covers sub-transactions whose
records predate a crash-recovery checkpoint that no longer carries
them.
"""

from __future__ import annotations

from repro.sharding.twopc import ABORT, COMMIT

_COMMITTED = "committed"


def _member_status(cluster, states, rec, shard_id: int) -> str | None:
    txn_id = rec.local_txn.get(shard_id)
    if txn_id is not None:
        status = states[shard_id].txn_status.get(txn_id)
        if status is not None:
            return status
    return cluster.journal.get((rec.gtid, shard_id))


def cross_shard_invariants(cluster, states) -> list[str]:
    """Check the three invariants; returns violation messages."""
    problems: list[str] = []
    for gtid in sorted(cluster.global_txns):
        rec = cluster.global_txns[gtid]
        decision = rec.decision if rec.decision is not None else ABORT
        statuses = {
            s: _member_status(cluster, states, rec, s) for s in rec.members
        }
        committed = sorted(s for s, st in statuses.items() if st == _COMMITTED)
        if decision == COMMIT and len(committed) != len(rec.members):
            missing = sorted(set(rec.members) - set(committed))
            problems.append(
                f"atomic-cross-shard-commit: gtid {gtid} decided commit but "
                f"shards {missing} show "
                f"{[statuses[s] for s in missing]} (committed on {committed})"
            )
        elif decision == ABORT and committed:
            problems.append(
                f"atomic-cross-shard-commit: gtid {gtid} decided abort "
                f"(or undecided: presumed abort) but shards {committed} "
                f"committed it"
            )
        if rec.acked and decision == COMMIT:
            lost = sorted(s for s in rec.members if statuses[s] != _COMMITTED)
            if lost:
                problems.append(
                    f"no-acked-cross-shard-txn-lost: gtid {gtid} was "
                    f"acknowledged to the client but shards {lost} show "
                    f"{[statuses[s] for s in lost]}"
                )
    for shard in cluster.shards:
        state = states[shard.shard_id]
        for txn_id in sorted(state.prepared):
            gtid, coord = state.prepared[txn_id]
            problems.append(
                f"no-orphan-prepared-record: shard {shard.shard_id} final log "
                f"replays txn {txn_id} (gtid {gtid}, coordinator {coord}) as "
                f"still prepared"
            )
        if shard.in_doubt:
            problems.append(
                f"no-orphan-prepared-record: shard {shard.shard_id} still "
                f"holds in-doubt gtids {sorted(shard.in_doubt)}"
            )
        if shard.open:
            problems.append(
                f"no-orphan-prepared-record: shard {shard.shard_id} still "
                f"holds open 2PC transactions {sorted(shard.open)}"
            )
    return problems
