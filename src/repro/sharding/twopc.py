"""Presumed-abort two-phase commit: protocol vocabulary and bookkeeping.

The protocol (driven by :class:`repro.sharding.cluster.ShardedCluster`)
is textbook presumed-abort 2PC with the coordinator doubling as a
participant for its home sub-transaction:

1. The coordinator executes the home sub-body (locks held, commit
   deferred) and sends ``prepare`` to every remote participant.
2. A participant executes its sub-body, appends a forced ``prepare``
   record — replicated under its shard's ack mode, so a yes vote is as
   durable as the promise it makes — and answers ``vote`` yes; any
   abort (user, engine, injected) answers no with nothing durable.
3. On all-yes the coordinator appends its *own* prepare record, then
   the forced ``coord-commit`` decision record — the global commit
   point — commits its home transaction and sends ``decision`` commit;
   on any no vote or exhausted retries it aborts (``coord-abort`` is
   appended unforced: presumed abort needs no durable abort).
4. Participants apply the decision, force it durable, and answer
   ``decision-ack``; the client ack requires the coordinator durable
   *and* every participant's durable ack.

In-doubt resolution after a crash: a recovered participant finds
``prepare`` records with no decision marker (status PREPARED), keeps
the transaction's records carried through checkpoints, and asks the
coordinator with ``decision-req``.  The coordinator answers from its
replayed decision records — **no ``coord-commit`` record means abort**
(the presumption).  A participant that lost its prepared state entirely
(async-replicated shard failing over an unshipped prepare) answers a
commit decision with ``decision-ack`` status ``unknown``; the
coordinator then re-sends ``prepare`` so the sub-transaction re-executes
on the new epoch — decided-commit transactions are re-driven, never
dropped.

Every message traverses the cross-shard
:class:`~repro.replication.network.SimNetwork` and is therefore subject
to drop / delay / duplicate / reorder / partition faults; the
coordinator retries each phase under a tick deadline with capped
exponential backoff plus seeded jitter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Message kinds on the cross-shard fabric.
MSG_PREPARE = "prepare"
MSG_VOTE = "vote"
MSG_DECISION = "decision"
MSG_DECISION_ACK = "decision-ack"
MSG_DECISION_REQ = "decision-req"

# Decisions.
COMMIT = "commit"
ABORT = "abort"

# decision-ack statuses.
ACK_DURABLE = "durable"
ACK_LAGGING = "lagging"  # applied, but replication ack timed out
ACK_UNKNOWN = "unknown"  # no trace of the transaction on this shard

# How often the coordinator re-sends a prepare to a participant that
# answered a commit decision with ACK_UNKNOWN before giving up for the
# round (resolution re-drives it with faults off).
MAX_REPREPARES = 5


@dataclass
class GlobalTxn:
    """Coordinator-side bookkeeping for one cross-shard transaction."""

    gtid: int
    procedure: str
    home: int  # coordinator shard id
    participants: tuple[int, ...]  # remote shard ids (home excluded)
    bodies: dict[int, object] = field(default_factory=dict)  # shard -> TxnBody
    votes: dict[int, bool] = field(default_factory=dict)  # shard -> yes/no
    local_txn: dict[int, int] = field(default_factory=dict)  # shard -> txn id
    decision: str | None = None  # COMMIT | ABORT once decided
    acks: dict[int, str] = field(default_factory=dict)  # shard -> ack status
    reprepares: dict[int, int] = field(default_factory=dict)  # shard -> count
    acked: bool = False  # client-visible durable ack
    # Fabric-clock latency marks (prepare -> decision -> fully acked).
    prepare_sent_at: int = 0
    decided_at: int = 0
    resolved_at: int = 0

    @property
    def members(self) -> tuple[int, ...]:
        """Every shard touched: the home shard plus the participants."""
        return (self.home,) + self.participants

    def all_votes_in(self) -> bool:
        return all(shard in self.votes for shard in self.participants)

    def all_yes(self) -> bool:
        return self.all_votes_in() and all(
            self.votes[shard] for shard in self.participants
        )

    def pending_acks(self) -> tuple[int, ...]:
        """Participants that have not durably acknowledged the decision."""
        return tuple(
            shard for shard in self.participants
            if self.acks.get(shard) != ACK_DURABLE
        )
