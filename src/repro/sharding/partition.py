"""Warehouse partitioning: TPC-C keys -> owning warehouse -> shard.

The dense composite keys (see :mod:`repro.workloads.tpcc`) make the
owning warehouse pure integer arithmetic, so the mapping is total over
every partitioned table.  Shard placement hashes the warehouse id
through :func:`repro.util.stablehash.stable_hash` on a *tagged tuple* —
``stable_hash`` maps bare ints to themselves, which would make shard
assignment ``w % n_shards`` (a correlated, migration-hostile layout);
the tag turns it into a mixed hash that is stable across processes and
independent of shard enumeration order.

``item`` is replicated on every shard (as VoltDB replicates read-only
Item) and ``history`` rows are keyless appends homed wherever the
writing sub-transaction runs: both map to no single warehouse.
"""

from __future__ import annotations

from repro.util.stablehash import stable_hash
from repro.workloads.tpcc import (
    CUSTOMERS_PER_DISTRICT,
    DISTRICTS_PER_WAREHOUSE,
    MAX_LINES,
    ORDER_CAP,
    STOCK_PER_WAREHOUSE,
)

# Tables owned by exactly one warehouse (the partitioned set).
PARTITIONED_TABLES = (
    "warehouse",
    "district",
    "customer",
    "orders",
    "new_order",
    "order_line",
    "stock",
)
# Tables with no owning warehouse: replicated or append-anywhere.
UNPARTITIONED_TABLES = ("item", "history")


def shard_of_warehouse(warehouse: int, n_shards: int) -> int:
    """The shard that owns *warehouse* (stable, enumeration-independent)."""
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    return stable_hash(("tpcc-warehouse", warehouse)) % n_shards


def warehouse_of_key(table: str, key: int) -> int | None:
    """The warehouse owning (table, key); None for unpartitioned tables."""
    if table == "warehouse":
        return key
    if table == "district":
        return key // DISTRICTS_PER_WAREHOUSE
    if table == "customer":
        return key // (CUSTOMERS_PER_DISTRICT * DISTRICTS_PER_WAREHOUSE)
    if table in ("orders", "new_order"):
        return key // (ORDER_CAP * DISTRICTS_PER_WAREHOUSE)
    if table == "order_line":
        return key // (MAX_LINES * ORDER_CAP * DISTRICTS_PER_WAREHOUSE)
    if table == "stock":
        return key // STOCK_PER_WAREHOUSE
    if table in UNPARTITIONED_TABLES:
        return None
    raise KeyError(f"unknown TPC-C table {table!r}")


def shard_of_key(table: str, key: int, n_shards: int) -> int | None:
    """The shard owning (table, key); None for unpartitioned tables."""
    warehouse = warehouse_of_key(table, key)
    if warehouse is None:
        return None
    return shard_of_warehouse(warehouse, n_shards)
