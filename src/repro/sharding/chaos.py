"""Cross-shard chaos: crash and break 2PC, then prove the invariants.

The sharded sibling of :class:`repro.faults.chaos.ChaosRunner`: drive a
:class:`~repro.sharding.cluster.ShardedCluster` through a deterministic
fault schedule that mixes

* process crashes — ``coordinator_crash`` / ``participant_crash`` at
  the 2PC protocol points plus the ordinary engine points (WAL append,
  group commit, txn body), one per segment, cycling over the pool;
* network faults — one of drop / delay / duplicate / reorder /
  partition per segment at ``net.send`` on the cross-shard fabric, so
  every 2PC message class gets lost, doubled and shuffled;
* prepare stalls — a participant delays its yes vote past the
  coordinator deadline, forcing the retry/backoff path.

Recovery is exercised in-line (the cluster absorbs crashes and
re-drives in-doubt transactions); after the run, shutdown resolution
heals the fabric, every shard's log is replayed, and the report checks
per-shard invariants (state round-trip, TPC-C consistency, replica
convergence) plus the three cross-shard ones
(:func:`repro.sharding.invariants.cross_shard_invariants`).

Everything derives from the spec's seed through the established child
streams — ``fault-schedule`` for crash scheduling, ``net`` for network
at-hits, ``stall`` for prepare stalls, ``workload`` for the
transaction stream — so a run is exactly reproducible and the suite is
bit-identical serial vs ``--jobs N``.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

from repro import obs
from repro.engines.base import COMMITTED, EngineStats
from repro.engines.config import EngineConfig
from repro.engines.registry import canonical_name
from repro.faults.injector import (
    COORDINATOR_CRASH,
    CRASH,
    FaultInjector,
    FaultSpec,
    NET_SEND,
    NETWORK_KINDS,
    PARTICIPANT_CRASH,
    PREPARE_STALL,
    SimulatedCrash,
    TPC_COORDINATOR,
    TPC_PARTICIPANT,
    TPC_PREPARE,
    TXN_BODY,
    WAL_AFTER_APPEND,
    WAL_GROUP_COMMIT,
)
from repro.faults.invariants import tpcc_invariants
from repro.lint import sanitizer
from repro.replication.group import ACK_MODES
from repro.sharding.cluster import ShardSpec, ShardedCluster
from repro.sharding.invariants import cross_shard_invariants
from repro.storage.recovery import take_checkpoint, verify_against_engine
from repro.util.rng import child_rng, root_rng

# Crash pool: (point, kind) pairs cycled one-per-segment.  The 2PC
# points fire a few times per cross-shard transaction; engine points
# fire much more often, hence the wider at-hit ranges.
_CRASH_POOL = (
    (TPC_COORDINATOR, COORDINATOR_CRASH),
    (TPC_PARTICIPANT, PARTICIPANT_CRASH),
    (WAL_GROUP_COMMIT, CRASH),
    (TXN_BODY, CRASH),
    (WAL_AFTER_APPEND, CRASH),
)
_AT_HIT_RANGES = {
    TPC_COORDINATOR: (1, 4),
    TPC_PARTICIPANT: (1, 3),
    WAL_GROUP_COMMIT: (1, 2),
    TXN_BODY: (1, 5),
}
_DEFAULT_AT_HIT_RANGE = (1, 15)
_NET_AT_HIT_RANGE = (1, 40)
_STALL_AT_HIT_RANGE = (1, 4)


@dataclass(frozen=True)
class ShardedChaosSpec:
    """One sharded chaos run (picklable: suite cells fan out)."""

    system: str = "shore-mt"
    n_shards: int = 2
    remote_pct: float = 20.0
    replicas: int = 0
    ack: str = "async"
    n_txns: int = 60
    # Crashes to schedule; None = one per pool entry.
    n_crashes: int | None = None
    checkpoint_every: int = 20
    # Network fault kinds to cycle (one per segment); None = all five.
    net_kinds: tuple[str, ...] | None = None
    # Schedule a prepare stall per segment (retry-path coverage).
    stalls: bool = True
    seed: int = 1
    engine_config: EngineConfig | None = None

    def __post_init__(self) -> None:
        if self.ack not in ACK_MODES:
            raise ValueError(
                f"unknown ack mode {self.ack!r}; known: {', '.join(ACK_MODES)}"
            )
        unknown = set(self.net_kinds or ()) - set(NETWORK_KINDS)
        if unknown:
            raise ValueError(
                f"unknown network fault kind(s) {', '.join(sorted(unknown))}; "
                f"known: {', '.join(NETWORK_KINDS)}"
            )

    def shard_spec(self) -> ShardSpec:
        return ShardSpec(
            n_shards=self.n_shards,
            system=self.system,
            replicas=self.replicas,
            ack=self.ack,
            remote_pct=self.remote_pct,
            seed=self.seed,
            engine_config=self.engine_config,
        )


@dataclass
class ShardedChaosResult:
    """Outcome of one sharded chaos run."""

    system: str
    n_shards: int
    remote_pct: float
    replicas: int
    ack: str
    seed: int
    attempted: int
    committed: int
    counters: dict
    stats: EngineStats
    crashes: list = field(default_factory=list)  # (point, hit, shard)
    problems: list[str] = field(default_factory=list)
    state_digests: tuple[int, ...] = ()
    net_counters: dict = field(default_factory=dict)
    fired: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.problems

    def failed_invariants(self) -> list[str]:
        names = {p.split(":", 1)[0] for p in self.problems if ":" in p}
        return sorted(names)

    def digest(self) -> int:
        """Checksum of final per-shard states + verdict bookkeeping."""
        content = (
            self.state_digests,
            sorted(self.counters.items()),
            tuple(self.crashes),
            tuple(self.problems),
        )
        return zlib.crc32(repr(content).encode())


class ShardedChaosRunner:
    """Run a sharded cluster under a 2PC-aware fault schedule."""

    def __init__(self, spec: ShardedChaosSpec) -> None:
        self.spec = spec

    def _segment_injector(
        self,
        segment: int,
        armed: bool,
        fault_rng: random.Random,
        net_rng: random.Random,
        stall_rng: random.Random,
    ) -> FaultInjector:
        """One crash + one network fault + one stall per segment.

        Each schedule class draws its at-hits from its own child
        stream, so enabling or disabling any one of them cannot shift
        the others — the schedule-digest regression test pins this.
        """
        schedule = []
        if armed:
            point, kind = _CRASH_POOL[segment % len(_CRASH_POOL)]
            lo, hi = _AT_HIT_RANGES.get(point, _DEFAULT_AT_HIT_RANGE)
            with sanitizer.scope("fault-schedule"):
                at_hit = fault_rng.randint(lo, hi)
            schedule.append(FaultSpec(point, kind=kind, at_hit=at_hit))
        kinds = self.spec.net_kinds or NETWORK_KINDS
        kind = kinds[segment % len(kinds)]
        with sanitizer.scope("net"):
            net_at_hit = net_rng.randint(*_NET_AT_HIT_RANGE)
        schedule.append(FaultSpec(NET_SEND, kind=kind, at_hit=net_at_hit))
        if self.spec.stalls:
            with sanitizer.scope("stall"):
                stall_at_hit = stall_rng.randint(*_STALL_AT_HIT_RANGE)
            schedule.append(
                FaultSpec(TPC_PREPARE, kind=PREPARE_STALL, at_hit=stall_at_hit)
            )
        return FaultInjector(schedule, seed=self.spec.seed * 1000 + segment)

    def run(self) -> ShardedChaosResult:
        spec = self.spec
        with obs.span(
            "sharded_chaos.run", track="chaos", cat="sharding",
            system=spec.system, shards=spec.n_shards, remote_pct=spec.remote_pct,
        ) as run_span:
            result = self._run()
            run_span.set(
                attempted=result.attempted,
                crashes=len(result.crashes),
                ok=result.ok,
            )
            return result

    def _run(self) -> ShardedChaosResult:
        spec = self.spec
        fault_rng = root_rng(spec.seed, "fault-schedule")
        txn_rng = root_rng(spec.seed + 1, "workload")
        net_rng = child_rng(spec.seed, "net")
        stall_rng = child_rng(spec.seed, "stall")
        cluster = ShardedCluster(spec.shard_spec())
        n_crashes = (
            spec.n_crashes if spec.n_crashes is not None else len(_CRASH_POOL)
        )
        segments = n_crashes + 1
        per_segment = -(-spec.n_txns // segments)
        injectors: list[FaultInjector] = []
        committed = 0
        commits_since_ckpt = 0
        for segment in range(segments):
            injector = self._segment_injector(
                segment, segment < n_crashes, fault_rng, net_rng, stall_rng
            )
            injectors.append(injector)
            cluster.attach_injector(injector)
            for _ in range(per_segment):
                outcome = cluster.submit_next(txn_rng)
                if outcome != COMMITTED:
                    continue
                committed += 1
                commits_since_ckpt += 1
                if spec.checkpoint_every and commits_since_ckpt >= spec.checkpoint_every:
                    commits_since_ckpt = 0
                    self._checkpoint_all(cluster)
        cluster.attach_injector(None)
        cluster.resolve_all()
        states = cluster.final_states()
        problems = list(cluster.problems)
        for shard in cluster.shards:
            state = states[shard.shard_id]
            problems.extend(
                f"state-roundtrip: shard {shard.shard_id}: {p}"
                for p in verify_against_engine(state, shard.engine)
            )
            problems.extend(
                f"tpcc-consistency: shard {shard.shard_id}: {p}"
                for p in tpcc_invariants(cluster.workload, shard.engine)
            )
            if shard.group is not None:
                shard.group.final_sync()
                problems.extend(shard.group.convergence_problems())
        problems.extend(cross_shard_invariants(cluster, states))
        total = EngineStats()
        total.merge(cluster.total_stats)
        for shard in cluster.shards:
            total.merge(shard.engine.stats)
        fired: dict[str, int] = {}
        for injector in injectors:
            for fault in injector.fired:
                fired[fault.kind] = fired.get(fault.kind, 0) + 1
        return ShardedChaosResult(
            system=canonical_name(spec.system),
            n_shards=spec.n_shards,
            remote_pct=spec.remote_pct,
            replicas=spec.replicas,
            ack=spec.ack,
            seed=spec.seed,
            attempted=cluster.counters["submitted"],
            committed=committed,
            counters=dict(cluster.counters),
            stats=total,
            crashes=list(cluster.crashes),
            problems=problems,
            state_digests=tuple(
                states[s.shard_id].digest() for s in cluster.shards
            ),
            net_counters=dict(cluster.net.counters),
            fired=fired,
        )

    def _checkpoint_all(self, cluster: ShardedCluster) -> None:
        """Fuzzy-checkpoint (and truncate) every shard's log; safe now
        that checkpoints carry prepared records and commit decisions."""
        for shard in cluster.shards:
            if shard.crashed:
                continue
            try:
                take_checkpoint(shard.log, truncate=True)
                if shard.group is not None:
                    shard.group.ship()
            except SimulatedCrash as crash:
                cluster._note_crash(shard, crash)
        cluster._recover_crashed()


# -- the suite (CLI entry) ---------------------------------------------------


def _run_sharded_task(spec: ShardedChaosSpec) -> tuple[str, bool, tuple[str, ...]]:
    """One suite cell; picklable for --jobs fan-out.  The rendered
    report embeds the result digest, so serial and parallel suite runs
    are bit-identical."""
    from repro.bench.report import render_sharded_chaos_result  # local: import cycle

    result = ShardedChaosRunner(spec).run()
    return (
        render_sharded_chaos_result(result),
        result.ok,
        tuple(result.failed_invariants()),
    )


def run_sharded_chaos_suite(
    *,
    system: str = "shore-mt",
    n_shards: int = 2,
    remote_pct: float = 20.0,
    replicas: int = 0,
    ack: str = "async",
    seeds=(1,),
    n_txns: int | None = None,
    n_crashes: int | None = None,
    jobs: int = 1,
    collect: list | None = None,
) -> tuple[str, bool]:
    """Run the sharded chaos sweep over *seeds*; returns (report, ok).

    Each seed is an independent cell (its own cluster, schedule and
    workload stream); with ``jobs > 1`` cells fan out over a process
    pool and are collected in submission order.  When *collect* is a
    list, one dict per cell is appended (same shape as
    :func:`repro.faults.chaos.run_chaos_suite`'s hook) so the run can
    be persisted to :mod:`repro.store`.
    """
    overrides: dict = {}
    if n_txns is not None:
        overrides["n_txns"] = n_txns
    if n_crashes is not None:
        overrides["n_crashes"] = n_crashes
    tasks = [
        ShardedChaosSpec(
            system=system, n_shards=n_shards, remote_pct=remote_pct,
            replicas=replicas, ack=ack, seed=seed, **overrides,
        )
        for seed in seeds
    ]
    if jobs > 1 and len(tasks) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
            outcomes = list(pool.map(_run_sharded_task, tasks, chunksize=1))
    else:
        outcomes = [_run_sharded_task(task) for task in tasks]
    outcomes = sanitizer.checked_merge(outcomes, "run_sharded_chaos_suite")
    if collect is not None:
        for spec, (text, ok, failed) in zip(tasks, outcomes):
            collect.append(
                {
                    "system": spec.system,
                    "workload": "tpcc",
                    "seed": spec.seed,
                    "ok": ok,
                    "failed_invariants": list(failed),
                    "report": text,
                }
            )
    lines = [text for text, _, _ in outcomes]
    all_ok = all(ok for _, ok, _ in outcomes)
    if all_ok:
        verdict = (
            f"all {len(tasks)} sharded chaos runs clean "
            f"({n_shards} shards, {remote_pct:g}% remote, ack={ack})"
        )
    else:
        failed = sorted({name for _, _, names_ in outcomes for name in names_})
        verdict = "SHARDED CHAOS FAILURES (see above) — failing invariants: " + (
            ", ".join(failed) if failed else "(unnamed)"
        )
    lines.append(verdict)
    return "\n".join(lines), all_ok
