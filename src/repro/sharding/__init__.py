"""Sharded multi-primary OLTP: warehouse partitioning + deterministic 2PC.

The Hardware-Islands angle of the paper's analysis: TPC-C partitioned
by warehouse across N shard primaries (each optionally its own
replication group), with cross-partition NewOrder / Payment driven
through a presumed-abort two-phase commit whose every message crosses
the deterministic :class:`~repro.replication.network.SimNetwork` —
so the multisite-fraction sweep, the fault chaos, and the recovery
invariants all compose with the existing machinery.
"""

from repro.sharding.chaos import (
    ShardedChaosSpec,
    ShardedChaosResult,
    ShardedChaosRunner,
    run_sharded_chaos_suite,
)
from repro.sharding.cluster import CRASHED, OpenTxn, Shard, ShardSpec, ShardedCluster
from repro.sharding.invariants import cross_shard_invariants
from repro.sharding.partition import (
    PARTITIONED_TABLES,
    UNPARTITIONED_TABLES,
    shard_of_key,
    shard_of_warehouse,
    warehouse_of_key,
)
from repro.sharding.twopc import (
    ABORT,
    ACK_DURABLE,
    ACK_LAGGING,
    ACK_UNKNOWN,
    COMMIT,
    GlobalTxn,
    MAX_REPREPARES,
    MSG_DECISION,
    MSG_DECISION_ACK,
    MSG_DECISION_REQ,
    MSG_PREPARE,
    MSG_VOTE,
)

__all__ = [
    "ABORT",
    "ACK_DURABLE",
    "ACK_LAGGING",
    "ACK_UNKNOWN",
    "COMMIT",
    "CRASHED",
    "GlobalTxn",
    "MAX_REPREPARES",
    "MSG_DECISION",
    "MSG_DECISION_ACK",
    "MSG_DECISION_REQ",
    "MSG_PREPARE",
    "MSG_VOTE",
    "OpenTxn",
    "PARTITIONED_TABLES",
    "Shard",
    "ShardSpec",
    "ShardedChaosResult",
    "ShardedChaosRunner",
    "ShardedChaosSpec",
    "ShardedCluster",
    "UNPARTITIONED_TABLES",
    "cross_shard_invariants",
    "run_sharded_chaos_suite",
    "shard_of_key",
    "shard_of_warehouse",
    "warehouse_of_key",
]
