"""ShardedCluster: TPC-C partitioned by warehouse over N primaries + 2PC.

Each shard is one primary engine (optionally a
:class:`~repro.replication.group.ReplicationGroup` with its own
replicas) owning the warehouses :func:`~repro.sharding.partition.
shard_of_warehouse` maps to it.  Single-shard transactions take the
ordinary submit path; multi-shard ones (remote NewOrder stock /
Payment customers, swept via ``remote_pct``) run under the
presumed-abort two-phase commit documented in
:mod:`repro.sharding.twopc`, with every protocol message traversing a
cross-shard :class:`~repro.replication.network.SimNetwork` — so 2PC
inherits the fabric's deterministic drop / delay / duplicate / reorder
/ partition faults, and the coordinator retries each phase under a
tick deadline with capped exponential backoff plus seeded jitter.

Crash faults (``coordinator_crash`` / ``participant_crash`` at the 2PC
points, plus the ordinary engine points) kill one shard's simulated
process; recovery replays its durable log through the existing ARIES
path, rebuilds in-doubt transactions from carried ``prepare`` records,
and resolves them against the coordinator's replayed decision records
— no ``coord-commit`` record means abort.  The journal of durable
per-shard verdicts plus the coordinator bookkeeping feed the
cross-shard invariants in :mod:`repro.sharding.invariants`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro import obs
from repro.engines.base import (
    AbortReason,
    COMMITTED,
    EngineStats,
    TransactionAborted,
    USER_ABORTED,
    UserAbort,
)
from repro.engines.config import EngineConfig
from repro.engines.registry import make_engine
from repro.faults.injector import (
    PREPARE_STALL,
    SimulatedCrash,
    TPC_COORDINATOR,
    TPC_PARTICIPANT,
    TPC_PREPARE,
)
from repro.lint import sanitizer
from repro.replication.group import ACK_MODES, ASYNC, ReplicationGroup, ReplicationSpec
from repro.replication.network import SimNetwork
from repro.storage.recovery import (
    ABORTED as R_ABORTED,
    COMMITTED as R_COMMITTED,
    COORD_COMMIT,
    PREPARE,
    PREPARED,
    prepared_records,
    redo_records,
    replay,
    restore_engine,
    verify_against_engine,
    write_checkpoint,
)
from repro.sharding.partition import shard_of_warehouse
from repro.sharding.twopc import (
    ABORT,
    ACK_DURABLE,
    ACK_LAGGING,
    ACK_UNKNOWN,
    COMMIT,
    GlobalTxn,
    MAX_REPREPARES,
    MSG_DECISION,
    MSG_DECISION_ACK,
    MSG_DECISION_REQ,
    MSG_PREPARE,
    MSG_VOTE,
)
from repro.util.backoff import jittered_backoff
from repro.util.rng import child_rng
from repro.workloads.tpcc import TPCC

CRASHED = "crashed"
"""Submit outcome when the transaction died with a shard process."""

# Bytes accounted to protocol log records (markers, tiny payloads).
_MARKER_BYTES = 16
_PREPARE_BYTES = 32


def _merge_bodies(bodies: list):
    """Several same-shard sub-bodies run as one sub-transaction."""
    if len(bodies) == 1:
        return bodies[0]

    def merged(txn) -> None:
        for body in bodies:
            body(txn)

    return merged


@dataclass(frozen=True)
class ShardSpec:
    """Shape of a sharded cluster (picklable: suite tasks carry it)."""

    n_shards: int = 2
    system: str = "shore-mt"
    # Replicas *per shard* (0 = bare primaries) and the intra-shard ack
    # mode a durable decision waits on.
    replicas: int = 0
    ack: str = ASYNC
    warehouses: int | None = None  # None = max(2, n_shards)
    remote_pct: float = 10.0
    # Cross-shard fabric latency and the coordinator's per-phase
    # deadline / retry / backoff envelope.
    latency_ticks: int = 1
    deadline_ticks: int = 16
    max_retries: int = 3
    backoff_base_ticks: int = 2
    backoff_cap_ticks: int = 16
    group_commit_size: int = 4
    seed: int = 1
    engine_config: EngineConfig | None = None

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.replicas < 0:
            raise ValueError("replicas must be >= 0")
        if self.ack not in ACK_MODES:
            raise ValueError(
                f"unknown ack mode {self.ack!r}; known: {', '.join(ACK_MODES)}"
            )
        if not 0.0 <= self.remote_pct <= 100.0:
            raise ValueError("remote_pct must be within [0, 100]")

    def n_warehouses(self) -> int:
        return self.warehouses if self.warehouses is not None else max(2, self.n_shards)

    def resolved_config(self) -> EngineConfig:
        return self.engine_config or EngineConfig(materialize_threshold=0)

    def replication_spec(self) -> ReplicationSpec:
        return ReplicationSpec(
            n_replicas=self.replicas, ack=self.ack, latency_ticks=self.latency_ticks
        )


@dataclass
class OpenTxn:
    """A live (locks-held) sub-transaction awaiting its 2PC decision."""

    gtid: int
    txn: object
    procedure: str
    prepared: bool = False


class Shard:
    """One partition: a primary engine, optionally replicated."""

    def __init__(self, shard_id: int, spec: ShardSpec, engine_factory) -> None:
        self.shard_id = shard_id
        self.node = f"shard{shard_id}"
        self.spec = spec
        self.group: ReplicationGroup | None = None
        if spec.replicas > 0:
            self.group = ReplicationGroup(
                spec.replication_spec(), engine_factory,
                seed=spec.seed * 131 + shard_id,
            )
        else:
            self._engine, self._log = engine_factory()
        self.crashed = False
        self.recoveries = 0
        # Live 2PC state (dies with the process on a crash).
        self.open: dict[int, OpenTxn] = {}
        # Recovered in-doubt state: gtid -> (txn_id, coordinator shard)
        # and the carried log records awaiting the verdict.
        self.in_doubt: dict[int, tuple[int, int]] = {}
        self.in_doubt_records: dict[int, list] = {}
        # gtid -> decision durably applied here (idempotence guard).
        self.resolved: dict[int, str] = {}

    @property
    def engine(self):
        return self.group.engine if self.group is not None else self._engine

    @property
    def log(self):
        return self.group.log if self.group is not None else self._log

    def adopt(self, engine, log) -> None:
        """Install a freshly recovered engine (bare-shard restart)."""
        self._engine, self._log = engine, log

    def durable_decision(self, lsn: int, txn_id: int | None = None) -> bool:
        """Make the log tip durable under the shard's ack policy."""
        if self.group is not None:
            return self.group.replicate(lsn, txn_id)
        self.log.force()
        return True


class ShardedCluster:
    """N shard primaries + deterministic presumed-abort 2PC."""

    def __init__(self, spec: ShardSpec) -> None:
        self.spec = spec
        self.workload = TPCC(warehouses=spec.n_warehouses())
        self.net = SimNetwork(latency_ticks=spec.latency_ticks)
        self.shards = [
            Shard(i, spec, self._make_engine_factory()) for i in range(spec.n_shards)
        ]
        for shard in self.shards:
            self.net.register(shard.node, self._make_handler(shard))
        self.injector = None
        self._jitter_rng = child_rng(spec.seed, "2pc-client")
        self._image_rng = child_rng(spec.seed, "image")
        self._next_gtid = 1
        self.global_txns: dict[int, GlobalTxn] = {}
        # (gtid, shard) -> durable verdict on that shard ("committed" /
        # "aborted"), recorded only at forced-log moments, so a crash
        # can never roll a journal entry back.
        self.journal: dict[tuple[int, int], str] = {}
        self.total_stats = EngineStats()
        self.counters: dict[str, int] = {
            "submitted": 0, "local": 0, "cross": 0,
            "committed_global": 0, "aborted_global": 0,
            "acked_global": 0, "unacked_global": 0,
            "in_doubt_resolved": 0, "recoveries": 0, "reprepares": 0,
            "prepare_stalls": 0,
        }
        self.prepare_ticks: list[int] = []
        self.commit_ticks: list[int] = []
        self.crashes: list[tuple[str, int, int]] = []  # (point, hit, shard)
        self.problems: list[str] = []
        # The procedure submit_next most recently ran (NewOrder/Payment)
        # — the load driver labels per-operation latency samples with it.
        self.last_procedure: str = ""

    # -- engine lifecycle ----------------------------------------------------

    def _make_engine_factory(self):
        spec, workload = self.spec, self.workload

        def factory():
            engine = make_engine(spec.system, spec.resolved_config())
            workload.setup(engine)
            log = engine.recovery_log()
            if log is None:
                raise ValueError(f"{spec.system} exposes no recovery log")
            log.retain_all = True
            log.group_commit_size = spec.group_commit_size
            return engine, log

        return factory

    def attach_injector(self, injector) -> None:
        """Thread one injector through every shard, group, and the fabric."""
        self.injector = injector
        for shard in self.shards:
            if shard.group is not None:
                shard.group.attach_injector(injector)
            else:
                shard.engine.attach_injector(injector)
        self.net.injector = injector

    def shard_of(self, warehouse: int) -> Shard:
        return self.shards[shard_of_warehouse(warehouse, self.spec.n_shards)]

    # -- submit --------------------------------------------------------------

    def submit_next(self, rng: random.Random) -> str:
        """Generate and run one transaction; returns its outcome.

        Crashes are absorbed: the dead shard recovers (ARIES replay,
        in-doubt rebuild, presumed-abort resolution) before returning,
        so the caller sees ``"crashed"`` rather than an exception.
        """
        # Only the caller-supplied stream may draw here; its purpose is
        # "workload" for chaos runs but e.g. "load-cluster:x1" when the
        # load driver submits, so scope on the stream's own purpose.
        with sanitizer.scope(getattr(rng, "_repro_purpose", "workload")):
            procedure, home_w, parts = self.workload.next_distributed_transaction(
                rng, remote_pct=self.spec.remote_pct
            )
        self.last_procedure = procedure
        by_shard: dict[int, list] = {}
        for warehouse, body in parts.items():
            by_shard.setdefault(
                shard_of_warehouse(warehouse, self.spec.n_shards), []
            ).append(body)
        self.counters["submitted"] += 1
        home_shard = shard_of_warehouse(home_w, self.spec.n_shards)
        bodies = {s: _merge_bodies(bs) for s, bs in by_shard.items()}
        try:
            if len(bodies) == 1:
                self.counters["local"] += 1
                outcome = self._submit_local(
                    self.shards[next(iter(bodies))], procedure, bodies.popitem()[1]
                )
            else:
                self.counters["cross"] += 1
                outcome = self._run_coordinator(
                    self.shards[home_shard], procedure, bodies
                )
        except SimulatedCrash as crash:
            self._note_crash(self.shards[home_shard], crash)
            outcome = CRASHED
        self._recover_crashed()
        return outcome

    def _submit_local(self, shard: Shard, procedure: str, body) -> str:
        if shard.group is not None:
            outcome = shard.group.submit(procedure, body)
        else:
            shard.engine.execute(procedure, body)
            outcome = shard.engine.last_outcome
            self.net.tick(1)  # keep cross-shard traffic draining
        return outcome

    # -- the coordinator -----------------------------------------------------

    def _run_coordinator(self, coord: Shard, procedure: str, bodies) -> str:
        """Drive one cross-shard transaction through presumed-abort 2PC."""
        gtid = self._next_gtid
        self._next_gtid += 1
        participants = tuple(s for s in sorted(bodies) if s != coord.shard_id)
        rec = GlobalTxn(
            gtid=gtid, procedure=procedure, home=coord.shard_id,
            participants=participants, bodies=bodies,
        )
        self.global_txns[gtid] = rec
        with obs.span(
            "twopc.txn", track="2pc", cat="sharding",
            gtid=gtid, home=coord.shard_id, n_shards=len(bodies),
        ) as txn_span:
            outcome = self._coordinate(coord, rec)
            txn_span.set(outcome=outcome, decision=rec.decision or ABORT)
            return outcome

    def _coordinate(self, coord: Shard, rec: GlobalTxn) -> str:
        if self.injector is not None:
            self.injector.fire(TPC_COORDINATOR, step="begin", gtid=rec.gtid)
        txn = coord.engine.begin(None, rec.procedure)
        try:
            rec.bodies[coord.shard_id](txn)
        except (UserAbort, TransactionAborted) as exc:
            reason = getattr(exc, "reason", AbortReason.USER)
            if not txn.done:
                txn.abort()
            coord.engine.stats.record_abort(rec.procedure, reason)
            if isinstance(exc, UserAbort):
                coord.engine.stats.user_aborts += 1
            rec.decision = ABORT
            for s in rec.participants:
                rec.acks[s] = ACK_DURABLE  # never contacted: nothing durable
            self._journal(rec, ABORT)
            self.counters["aborted_global"] += 1
            obs.inc("twopc.aborts", stage="home-body")
            return USER_ABORTED
        rec.local_txn[coord.shard_id] = txn.txn_id
        coord.open[rec.gtid] = OpenTxn(rec.gtid, txn, rec.procedure)
        rec.prepare_sent_at = self.net.clock
        self._send_prepares(coord, rec, rec.participants)
        self._await(
            lambda: rec.all_votes_in(),
            resend=lambda: self._send_prepares(
                coord, rec, tuple(s for s in rec.participants if s not in rec.votes)
            ),
        )
        if self.injector is not None:
            self.injector.fire(TPC_COORDINATOR, step="decide", gtid=rec.gtid)
        if rec.all_yes():
            outcome = self._decide_commit(coord, rec, txn)
        else:
            outcome = self._decide_abort(coord, rec, txn)
        # Drive the decision to every yes-voter until each acks durably.
        self._await(
            lambda: not rec.pending_acks(),
            resend=lambda: self._send_decisions(coord, rec, rec.pending_acks()),
        )
        rec.resolved_at = self.net.clock
        if rec.decision == COMMIT:
            self.commit_ticks.append(rec.resolved_at - rec.prepare_sent_at)
            obs.observe("twopc.commit_ticks", rec.resolved_at - rec.prepare_sent_at)
        if rec.acked and not rec.pending_acks():
            self.counters["acked_global"] += 1
        else:
            rec.acked = False
            self.counters["unacked_global"] += 1
        obs.set_gauge("twopc.in_doubt", float(self._in_doubt_count()))
        return outcome

    def _decide_commit(self, coord: Shard, rec: GlobalTxn, txn) -> str:
        # The coordinator's own prepare precedes the decision record, so
        # a crash between them leaves the home sub-txn in doubt (and the
        # replayed decision resolves it) rather than losing it.
        log = coord.log
        log.append(txn.txn_id, PREPARE, _PREPARE_BYTES,
                   payload=(rec.gtid, coord.shard_id))
        decision_rec = log.append(0, COORD_COMMIT, _MARKER_BYTES, payload=(rec.gtid,))
        log.force()  # the global commit point
        rec.decision = COMMIT
        rec.decided_at = self.net.clock
        self.prepare_ticks.append(rec.decided_at - rec.prepare_sent_at)
        obs.observe("twopc.prepare_ticks", rec.decided_at - rec.prepare_sent_at)
        self._journal(rec, COMMIT, coord.shard_id)
        if self.injector is not None:
            self.injector.fire(TPC_COORDINATOR, step="post-decision", gtid=rec.gtid)
        txn.commit()
        coord.open.pop(rec.gtid, None)
        coord.resolved[rec.gtid] = COMMIT
        coord.engine.stats.record_commit(rec.procedure)
        self.counters["committed_global"] += 1
        rec.acked = coord.durable_decision(decision_rec.lsn, txn.txn_id)
        self._send_decisions(coord, rec, rec.pending_acks())
        obs.inc("twopc.commits")
        return COMMITTED

    def _decide_abort(self, coord: Shard, rec: GlobalTxn, txn) -> str:
        if not txn.done:
            txn.abort()
        coord.open.pop(rec.gtid, None)
        coord.resolved[rec.gtid] = ABORT
        coord.engine.stats.record_abort(rec.procedure, "2pc-no-vote")
        rec.decision = ABORT
        rec.decided_at = self.net.clock
        # Presumed abort: the decision needs no durability — losing it
        # reproduces it (no coord-commit record means abort).
        coord.log.append(0, "coord-abort", _MARKER_BYTES, payload=(rec.gtid,))
        self._journal(rec, ABORT)
        # Only yes-voters hold anything durable to resolve.
        for s in rec.participants:
            if not rec.votes.get(s, False):
                rec.acks[s] = ACK_DURABLE
        rec.acked = True
        self.counters["aborted_global"] += 1
        self._send_decisions(coord, rec, rec.pending_acks())
        obs.inc("twopc.aborts", stage="decision")
        return "2pc-aborted"

    def _send_prepares(self, coord: Shard, rec: GlobalTxn, shards) -> None:
        for s in shards:
            self.net.send(
                coord.node, self.shards[s].node, MSG_PREPARE,
                (rec.gtid, coord.shard_id, rec.procedure, rec.bodies[s]),
            )

    def _send_decisions(self, coord: Shard, rec: GlobalTxn, shards) -> None:
        if rec.decision is None:
            return
        for s in shards:
            self.net.send(
                coord.node, self.shards[s].node, MSG_DECISION,
                (rec.gtid, coord.shard_id, rec.decision),
            )

    def _await(self, done, resend) -> bool:
        """Tick the fabric until *done*, resending with capped backoff."""
        spec = self.spec
        attempt = 0
        while True:
            for _ in range(spec.deadline_ticks):
                if done():
                    return True
                self.net.tick()
            if done():
                return True
            attempt += 1
            if attempt > spec.max_retries:
                return False
            with sanitizer.scope("2pc-client"):
                backoff = jittered_backoff(
                    spec.backoff_base_ticks, spec.backoff_cap_ticks,
                    attempt, self._jitter_rng,
                )
            obs.inc("twopc.retries")
            resend()
            self.net.tick(backoff)

    # -- message handlers ----------------------------------------------------

    def _make_handler(self, shard: Shard):
        dispatch = {
            MSG_PREPARE: self._on_prepare,
            MSG_VOTE: self._on_vote,
            MSG_DECISION: self._on_decision,
            MSG_DECISION_ACK: self._on_decision_ack,
            MSG_DECISION_REQ: self._on_decision_req,
        }

        def handle(message) -> None:
            if shard.crashed:
                return  # a dead process receives nothing
            handler = dispatch.get(message.kind)
            if handler is None:
                return
            try:
                handler(shard, message)
            except SimulatedCrash as crash:
                self._note_crash(shard, crash)

        return handle

    def _on_prepare(self, shard: Shard, message) -> None:
        gtid, coord_id, procedure, body = message.payload
        coord_node = self.shards[coord_id].node
        if gtid in shard.resolved:  # duplicate after the decision landed
            self.net.send(shard.node, coord_node, MSG_DECISION_ACK,
                          (gtid, shard.shard_id,
                           self._ack_status(shard, shard.resolved[gtid])))
            return
        if gtid in shard.open:  # duplicate prepare: re-vote yes
            self.net.send(shard.node, coord_node, MSG_VOTE,
                          (gtid, shard.shard_id, True,
                           shard.open[gtid].txn.txn_id))
            return
        if gtid in shard.in_doubt:  # recovered in doubt: still yes
            self.net.send(shard.node, coord_node, MSG_VOTE,
                          (gtid, shard.shard_id, True, shard.in_doubt[gtid][0]))
            return
        if self.injector is not None:
            self.injector.fire(TPC_PARTICIPANT, step="prepare", gtid=gtid)
        txn = shard.engine.begin(None, procedure)
        try:
            body(txn)
        except (UserAbort, TransactionAborted) as exc:
            if not txn.done:
                txn.abort()
            shard.engine.stats.record_abort(
                procedure, getattr(exc, "reason", AbortReason.USER)
            )
            self.net.send(shard.node, coord_node, MSG_VOTE,
                          (gtid, shard.shard_id, False, txn.txn_id))
            return
        record = shard.log.append(
            txn.txn_id, PREPARE, _PREPARE_BYTES, payload=(gtid, coord_id)
        )
        if not shard.durable_decision(record.lsn):
            # The yes vote's durability promise cannot be met: vote no.
            txn.abort()
            shard.engine.stats.record_abort(procedure, "2pc-prepare-unreplicated")
            self.net.send(shard.node, coord_node, MSG_VOTE,
                          (gtid, shard.shard_id, False, txn.txn_id))
            return
        shard.open[gtid] = OpenTxn(gtid, txn, procedure, prepared=True)
        extra = 0
        if self.injector is not None:
            stall = self.injector.soft_fault(TPC_PREPARE, gtid=gtid)
            if stall == PREPARE_STALL:
                with sanitizer.scope(PREPARE_STALL):
                    extra = self.spec.deadline_ticks + self.injector.stream(
                        PREPARE_STALL
                    ).randint(1, self.spec.deadline_ticks)
                self.counters["prepare_stalls"] += 1
        self.net.send(shard.node, coord_node, MSG_VOTE,
                      (gtid, shard.shard_id, True, txn.txn_id),
                      extra_ticks=extra)

    def _on_vote(self, shard: Shard, message) -> None:
        gtid, from_shard, yes, txn_id = message.payload
        rec = self.global_txns.get(gtid)
        if rec is None:
            return
        if yes:
            rec.local_txn[from_shard] = txn_id
        if rec.decision is not None:
            # Late or re-driven vote: answer with the decision directly.
            if yes:
                self._send_decisions(shard, rec, (from_shard,))
            elif rec.decision == COMMIT:
                self._reprepare(shard, rec, from_shard)
            return
        rec.votes.setdefault(from_shard, yes)
        if not yes:
            rec.acks[from_shard] = ACK_DURABLE  # nothing durable to resolve

    def _on_decision(self, shard: Shard, message) -> None:
        gtid, coord_id, decision = message.payload
        coord_node = self.shards[coord_id].node
        if gtid in shard.resolved:  # duplicate decision
            self.net.send(shard.node, coord_node, MSG_DECISION_ACK,
                          (gtid, shard.shard_id,
                           self._ack_status(shard, shard.resolved[gtid])))
            return
        open_txn = shard.open.pop(gtid, None)
        if open_txn is not None:
            if self.injector is not None:
                self.injector.fire(TPC_PARTICIPANT, step="decision", gtid=gtid)
            if decision == COMMIT:
                open_txn.txn.commit()
                commit_lsn = shard.log.last_commit_lsn
                shard.engine.stats.record_commit(open_txn.procedure)
                durable = shard.durable_decision(commit_lsn, open_txn.txn.txn_id)
                self._journal_one(gtid, shard.shard_id, R_COMMITTED)
                status = ACK_DURABLE if durable else ACK_LAGGING
            else:
                open_txn.txn.abort()
                shard.engine.stats.record_abort(open_txn.procedure, "2pc-decision")
                self._journal_one(gtid, shard.shard_id, R_ABORTED)
                status = ACK_DURABLE
            shard.resolved[gtid] = decision
            self.net.send(shard.node, coord_node, MSG_DECISION_ACK,
                          (gtid, shard.shard_id, status))
            return
        if gtid in shard.in_doubt:
            durable = self._apply_indoubt(shard, gtid, decision)
            self.net.send(shard.node, coord_node, MSG_DECISION_ACK,
                          (gtid, shard.shard_id,
                           ACK_DURABLE if durable else ACK_LAGGING))
            return
        # No trace of the transaction here (state lost in a failover
        # before the prepare shipped): a commit decision must be
        # re-driven, an abort needs nothing (presumed).
        status = ACK_UNKNOWN if decision == COMMIT else ACK_DURABLE
        if decision == ABORT:
            shard.resolved[gtid] = ABORT
        self.net.send(shard.node, coord_node, MSG_DECISION_ACK,
                      (gtid, shard.shard_id, status))

    def _on_decision_ack(self, shard: Shard, message) -> None:
        gtid, from_shard, status = message.payload
        rec = self.global_txns.get(gtid)
        if rec is None:
            return
        if status == ACK_UNKNOWN and rec.decision == COMMIT:
            self._reprepare(shard, rec, from_shard)
            return
        if rec.acks.get(from_shard) != ACK_DURABLE:
            rec.acks[from_shard] = status

    def _on_decision_req(self, shard: Shard, message) -> None:
        gtid, from_shard = message.payload
        rec = self.global_txns.get(gtid)
        # Presumed abort: an unknown or undecided transaction is aborted.
        decision = rec.decision if rec is not None and rec.decision else ABORT
        self.net.send(shard.node, self.shards[from_shard].node, MSG_DECISION,
                      (gtid, shard.shard_id, decision))

    def _reprepare(self, coord: Shard, rec: GlobalTxn, target: int) -> None:
        """Re-drive a decided-commit sub-txn on a shard that lost it."""
        count = rec.reprepares.get(target, 0)
        if count >= MAX_REPREPARES:
            return  # resolve_all re-drives with a healed fabric
        rec.reprepares[target] = count + 1
        self.counters["reprepares"] += 1
        obs.inc("twopc.reprepares")
        self._send_prepares(coord, rec, (target,))

    # -- journal -------------------------------------------------------------

    def _journal(self, rec: GlobalTxn, decision: str, only: int | None = None) -> None:
        status = R_COMMITTED if decision == COMMIT else R_ABORTED
        members = (only,) if only is not None else rec.members
        for s in members:
            self._journal_one(rec.gtid, s, status)

    def _journal_one(self, gtid: int, shard_id: int, status: str) -> None:
        self.journal[(gtid, shard_id)] = status

    def _in_doubt_count(self) -> int:
        return sum(len(s.in_doubt) for s in self.shards)

    # -- crash + recovery ----------------------------------------------------

    def _note_crash(self, shard: Shard, crash: SimulatedCrash) -> None:
        if shard.crashed:
            return
        shard.crashed = True
        self.total_stats.merge(shard.engine.stats)
        shard.open.clear()  # live transactions die with the process
        self.crashes.append((crash.point, crash.hit, shard.shard_id))
        obs.annotate("twopc.crash", track="2pc", cat="sharding",
                     point=crash.point, shard=shard.shard_id)

    def _recover_crashed(self) -> None:
        for shard in self.shards:
            if shard.crashed:
                self._recover(shard)

    @staticmethod
    def _reserve_indoubt_rows(engine, state) -> None:
        """Pin heap slots for carried in-doubt inserts.

        A prepared transaction's insert records name the row ids the
        dead process assigned; the recovered engine must not hand those
        ids to new transactions, or the eventual commit verdict would
        redo the insert on top of someone else's row.
        """
        for record in state.active_records:
            if (
                record.kind == "insert"
                and state.txn_status.get(record.txn_id) == PREPARED
            ):
                table, _key, row_id, _values = record.payload
                heap = engine.table(table).heap
                while heap.n_rows <= row_id:
                    heap.append(heap.schema.default_row(heap.n_rows))

    def _recover(self, shard: Shard) -> None:
        """Restart one dead shard: replay, rebuild in-doubt, resolve."""
        with obs.span(
            "twopc.recover", track="2pc", cat="sharding", shard=shard.shard_id
        ) as span:
            if shard.group is not None:
                state, report = shard.group.failover()
                self.problems.extend(report.problems)
                self._reserve_indoubt_rows(shard.engine, state)
                if self.injector is not None:
                    shard.group.attach_injector(self.injector)
            else:
                with sanitizer.scope("image"):
                    image = shard.log.crash_image(self._image_rng)
                state = replay(image)
                engine, log = self._make_engine_factory()()
                restore_engine(state, engine)
                self._reserve_indoubt_rows(engine, state)
                self.problems.extend(
                    f"state-roundtrip: {p}"
                    for p in verify_against_engine(state, engine)
                )
                # The log alone under-counts: a crashed txn whose records
                # were all unflushed leaves no trace, and reusing its id
                # would let a later commit impersonate it in the global
                # bookkeeping.  Carry the dead process's counter too.
                engine._next_txn_id = max(
                    engine._next_txn_id,
                    shard.engine._next_txn_id,
                    max(state.txn_status, default=0) + 1,
                )
                state.active_records = [
                    r for r in state.active_records
                    if r.kind == COORD_COMMIT
                    or state.txn_status.get(r.txn_id) == PREPARED
                ]
                write_checkpoint(log, state)
                shard.adopt(engine, log)
                if self.injector is not None:
                    engine.attach_injector(self.injector)
            shard.crashed = False
            shard.recoveries += 1
            self.counters["recoveries"] += 1
            # Rebuild in-doubt bookkeeping from the replayed log.
            shard.in_doubt.clear()
            shard.in_doubt_records.clear()
            for txn_id in sorted(state.prepared):
                gtid, coord_id = state.prepared[txn_id]
                shard.in_doubt[gtid] = (txn_id, coord_id)
                shard.in_doubt_records[gtid] = prepared_records(state, txn_id)
            # A recovered coordinator re-learns its decisions from the
            # replayed decision records; anything it was coordinating
            # with no durable coord-commit is aborted by presumption.
            for gtid, status in sorted(state.decisions.items()):
                rec = self.global_txns.get(gtid)
                if rec is not None and rec.decision is None:
                    rec.decision = COMMIT if status == R_COMMITTED else ABORT
            for rec in self.global_txns.values():
                if rec.home == shard.shard_id and rec.decision is None:
                    rec.decision = ABORT
                    self._journal(rec, ABORT)
                    for s in rec.participants:
                        if not rec.votes.get(s, False):
                            rec.acks[s] = ACK_DURABLE
            self._resolve_in_doubt(shard)
            span.set(in_doubt=len(shard.in_doubt), recoveries=shard.recoveries)
            obs.inc("twopc.recoveries")

    def _resolve_in_doubt(self, shard: Shard) -> None:
        """Resolve recovered in-doubt transactions (home ones locally,
        the rest by querying their coordinator over the fabric)."""
        for gtid in sorted(shard.in_doubt):
            _, coord_id = shard.in_doubt[gtid]
            if coord_id == shard.shard_id:
                rec = self.global_txns.get(gtid)
                decision = rec.decision if rec is not None and rec.decision else ABORT
                self._apply_indoubt(shard, gtid, decision)
            else:
                self.net.send(shard.node, self.shards[coord_id].node,
                              MSG_DECISION_REQ, (gtid, shard.shard_id))

    def _ack_status(self, shard: Shard, decision: str) -> str:
        """Honest re-ack: a replicated shard re-verifies its commit is
        durable under the ack policy before answering ``durable``."""
        if decision != COMMIT or shard.group is None:
            return ACK_DURABLE
        tip = shard.log.next_lsn - 1
        return ACK_DURABLE if shard.group.replicate(tip) else ACK_LAGGING

    def _apply_indoubt(self, shard: Shard, gtid: int, decision: str) -> bool:
        """Apply the coordinator's verdict to a recovered in-doubt txn;
        returns whether a commit verdict went durable."""
        txn_id, _ = shard.in_doubt.pop(gtid)
        records = shard.in_doubt_records.pop(gtid, [])
        log = shard.log
        durable = True
        if decision == COMMIT:
            delta = redo_records(records)
            restore_engine(delta, shard.engine)
            record = log.append(txn_id, "commit", _MARKER_BYTES)
            durable = shard.durable_decision(record.lsn, txn_id)
            self._journal_one(gtid, shard.shard_id, R_COMMITTED)
        else:
            log.append(txn_id, "abort", _MARKER_BYTES)
            self._journal_one(gtid, shard.shard_id, R_ABORTED)
        shard.resolved[gtid] = decision
        self.counters["in_doubt_resolved"] += 1
        obs.inc("twopc.in_doubt_resolved", decision=decision)
        obs.set_gauge("twopc.in_doubt", float(self._in_doubt_count()))
        return durable

    # -- shutdown ------------------------------------------------------------

    def resolve_all(self, max_rounds: int = 8) -> None:
        """Heal the fabric and drive every global txn to a final verdict."""
        self.net.heal()
        for _ in range(max_rounds):
            self._recover_crashed()
            pending = False
            for shard in self.shards:
                if shard.in_doubt:
                    pending = True
                    self._resolve_in_doubt(shard)
            for rec in self.global_txns.values():
                if rec.decision is not None and rec.pending_acks():
                    pending = True
                    self._send_decisions(self.shards[rec.home], rec,
                                         rec.pending_acks())
            self.net.run_until_quiet()
            if not pending and not any(s.crashed for s in self.shards):
                break
        # Backstop: anything still open or in doubt resolves locally
        # from the coordinator's record (presumed abort by default).
        for shard in self.shards:
            for gtid in sorted(shard.open):
                rec = self.global_txns.get(gtid)
                decision = rec.decision if rec is not None and rec.decision else ABORT
                open_txn = shard.open.pop(gtid)
                if decision == COMMIT:
                    open_txn.txn.commit()
                    shard.engine.stats.record_commit(open_txn.procedure)
                    self._journal_one(gtid, shard.shard_id, R_COMMITTED)
                else:
                    open_txn.txn.abort()
                    shard.engine.stats.record_abort(open_txn.procedure, "2pc-shutdown")
                    self._journal_one(gtid, shard.shard_id, R_ABORTED)
                shard.resolved[gtid] = decision
            for gtid in sorted(shard.in_doubt):
                rec = self.global_txns.get(gtid)
                decision = rec.decision if rec is not None and rec.decision else ABORT
                self._apply_indoubt(shard, gtid, decision)
        self.net.run_until_quiet()

    def final_states(self) -> dict[int, object]:
        """Force + replay every shard's log (call after resolve_all)."""
        states: dict[int, object] = {}
        for shard in self.shards:
            shard.log.force()
            states[shard.shard_id] = replay(shard.log)
        return states
