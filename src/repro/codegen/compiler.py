"""Transaction compilation (HyPer / DBMS M style).

HyPer compiles stored procedures directly to machine code [Neumann
2011]; DBMS M compiles them "similar to, but less aggressively than,
HyPer" (Section 4.2.2).  The micro-architectural consequence the paper
measures is a drastically smaller, smoother instruction stream: a small
footprint, few branches, and dense straight-line code.

:class:`TransactionCompiler` models this: given the interpreted modules
a stored procedure would execute, it emits one compact compiled module
whose footprint is a configurable fraction of the replaced code, with
straight-line instruction density and low branch counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen.layout import CodeLayout
from repro.codegen.module import CodeModule, ENGINE


@dataclass(frozen=True)
class CompilerProfile:
    """How aggressively a system's compiler shrinks the instruction stream."""

    name: str
    footprint_factor: float
    min_footprint_bytes: int = 2048
    instructions_per_line: float = 16.0
    branches_per_kilo_instruction: float = 60.0
    mispredict_rate: float = 0.01
    base_cpi: float = 0.32

    def __post_init__(self) -> None:
        if not 0.0 < self.footprint_factor <= 1.0:
            raise ValueError("footprint_factor must be in (0, 1]")


HYPER_COMPILER = CompilerProfile(name="hyper-llvm", footprint_factor=0.033)
"""Aggressive data-centric compilation to machine code."""

DBMS_M_COMPILER = CompilerProfile(
    name="dbms-m-codegen",
    footprint_factor=0.18,
    min_footprint_bytes=4096,
    branches_per_kilo_instruction=90.0,
    mispredict_rate=0.02,
)
"""Moderate compilation: effective, but less aggressive than HyPer."""


class TransactionCompiler:
    """Compiles a stored procedure's interpreted path into one module."""

    def __init__(self, profile: CompilerProfile) -> None:
        self.profile = profile

    def compile(
        self, layout: CodeLayout, procedure_name: str, replaced: list[CodeModule]
    ) -> int:
        """Register the compiled module for *procedure_name*.

        *replaced* lists the interpreted modules whose per-transaction
        work the compiled code subsumes; the compiled footprint is
        ``footprint_factor`` of their combined size (floored at
        ``min_footprint_bytes``).  Returns the new module id.
        """
        if not replaced:
            raise ValueError("a compiled procedure must replace at least one module")
        source_bytes = sum(m.footprint_bytes for m in replaced)
        footprint = max(
            self.profile.min_footprint_bytes,
            int(source_bytes * self.profile.footprint_factor),
        )
        module = CodeModule(
            name=f"compiled:{procedure_name}",
            group=ENGINE,
            footprint_bytes=footprint,
            instructions_per_line=self.profile.instructions_per_line,
            branches_per_kilo_instruction=self.profile.branches_per_kilo_instruction,
            mispredict_rate=self.profile.mispredict_rate,
            base_cpi=self.profile.base_cpi,
        )
        return layout.add(module)
