"""Code modules: the instruction-footprint model of an engine component.

The paper attributes micro-architectural behaviour to the *code
structure* of each system: how many bytes of instructions a component
executes per transaction, how branchy that code is, and whether it is a
tight loop or a long straight-line path.  :class:`CodeModule` captures
exactly those properties for one component (parser, lock manager,
B-tree code, a compiled stored procedure, ...).

Footprints live in a simulated code address space managed by
:class:`~repro.codegen.layout.CodeLayout`; executing a module is done by
:class:`~repro.codegen.walker.CodeWalker`, which turns "run this slice
of the module" into instruction-line fetches plus retired-instruction
accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.spec import CACHE_LINE_BYTES

ENGINE = "engine"
"""Module group: code inside the OLTP/storage engine."""

OTHER = "other"
"""Module group: code outside the engine (parser, optimiser, comm, ...)."""

KERNEL = "kernel"
"""Module group: OS/runtime code attributed to neither (rarely used)."""

VALID_GROUPS = (ENGINE, OTHER, KERNEL)


@dataclass(frozen=True)
class CodeModule:
    """One engine component's code segment.

    Attributes
    ----------
    name:
        Human-readable component name (unique within one layout).
    group:
        ``"engine"`` or ``"other"`` — drives the Figure 7 breakdown of
        time spent inside vs outside the OLTP engine.
    footprint_bytes:
        Total code bytes of the component.
    instructions_per_line:
        Average instructions retired per fetched cache line.  Dense
        straight-line code approaches ``line_bytes / 4`` = 16; branchy
        legacy code executes fewer instructions per line it touches.
    branches_per_kilo_instruction:
        Branch density; legacy disk-based codebases are branch-heavy
        (Section 2.1's "many branch statements and patches").
    mispredict_rate:
        Fraction of branches mispredicted.
    base_cpi:
        Cycles per instruction this code would sustain with a perfect
        memory system.  A hand-tuned loop reaches the machine's ideal
        (1/3 CPI, Section 4.1.1); real database code has dependency
        chains and dense branching, so its no-miss CPI sits well above
        that — legacy stacks higher than lean engine code, compiled
        straight-line code lowest.
    """

    name: str
    group: str
    footprint_bytes: int
    instructions_per_line: float = 14.0
    branches_per_kilo_instruction: float = 180.0
    mispredict_rate: float = 0.04
    base_cpi: float = 0.45

    def __post_init__(self) -> None:
        if self.group not in VALID_GROUPS:
            raise ValueError(f"group must be one of {VALID_GROUPS}, got {self.group!r}")
        if self.footprint_bytes <= 0:
            raise ValueError("footprint_bytes must be positive")
        if self.instructions_per_line <= 0:
            raise ValueError("instructions_per_line must be positive")
        if not 0 <= self.mispredict_rate <= 1:
            raise ValueError("mispredict_rate must be in [0, 1]")
        if self.base_cpi <= 0:
            raise ValueError("base_cpi must be positive")

    @property
    def footprint_lines(self) -> int:
        return max(1, self.footprint_bytes // CACHE_LINE_BYTES)

    def instructions_for_lines(self, n_lines: int) -> int:
        return max(1, int(round(n_lines * self.instructions_per_line)))
