"""Instruction-stream modelling: code modules, layout, walking, compilation."""

from repro.codegen.compiler import (
    CompilerProfile,
    DBMS_M_COMPILER,
    HYPER_COMPILER,
    TransactionCompiler,
)
from repro.codegen.layout import CODE_SEGMENT_LINES, CodeLayout
from repro.codegen.module import CodeModule, ENGINE, KERNEL, OTHER
from repro.codegen.walker import CodeWalker

__all__ = [
    "CODE_SEGMENT_LINES",
    "CodeLayout",
    "CodeModule",
    "CodeWalker",
    "CompilerProfile",
    "DBMS_M_COMPILER",
    "ENGINE",
    "HYPER_COMPILER",
    "KERNEL",
    "OTHER",
    "TransactionCompiler",
]
