"""Code layout: places modules in the simulated code address space.

A :class:`CodeLayout` assigns each registered :class:`CodeModule` a
dense integer id (used as the module tag on trace events) and a
contiguous, page-aligned line-address range in a code segment that is
disjoint from every data region (see
:class:`~repro.storage.address_space.DataAddressSpace`, which starts
above :data:`CODE_SEGMENT_LINES`).
"""

from __future__ import annotations

from repro.codegen.module import CodeModule, ENGINE
from repro.core.spec import CACHE_LINE_BYTES

CODE_SEGMENT_LINES = 1 << 24
"""Line addresses below this belong to code (1 GB of code space)."""

_PAGE_LINES = 4096 // CACHE_LINE_BYTES  # align modules to 4 KB pages


class CodeLayout:
    """Registry + address allocator for an engine's code modules."""

    def __init__(self) -> None:
        self._modules: list[CodeModule] = []
        self._base_lines: list[int] = []
        self._by_name: dict[str, int] = {}
        self._next_line = _PAGE_LINES  # leave page zero unmapped

    def add(self, module: CodeModule) -> int:
        """Register *module*; returns its dense module id."""
        if module.name in self._by_name:
            raise ValueError(f"module {module.name!r} already registered")
        n_lines = module.footprint_lines
        # Round each module up to a page so neighbours never share lines.
        alloc = -(-n_lines // _PAGE_LINES) * _PAGE_LINES
        if self._next_line + alloc > CODE_SEGMENT_LINES:
            raise MemoryError("code segment exhausted")
        mod_id = len(self._modules)
        self._modules.append(module)
        self._base_lines.append(self._next_line)
        self._by_name[module.name] = mod_id
        self._next_line += alloc
        return mod_id

    # -- lookups -------------------------------------------------------------

    def module(self, mod_id: int) -> CodeModule:
        return self._modules[mod_id]

    def base_line(self, mod_id: int) -> int:
        return self._base_lines[mod_id]

    def id_of(self, name: str) -> int:
        return self._by_name[name]

    def name_of(self, mod_id: int) -> str:
        return self._modules[mod_id].name

    def group_of(self, mod_id: int) -> str:
        return self._modules[mod_id].group

    def ids(self) -> list[int]:
        return list(range(len(self._modules)))

    def engine_ids(self) -> list[int]:
        return [i for i, m in enumerate(self._modules) if m.group == ENGINE]

    def __len__(self) -> int:
        return len(self._modules)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def total_footprint_bytes(self, group: str | None = None) -> int:
        return sum(
            m.footprint_bytes for m in self._modules if group is None or m.group == group
        )
