"""Code walker: turns component execution into instruction-line fetches.

Engines describe execution as "run this slice of module M" (e.g. "the
index-probe path through the B-tree code" or "one iteration of the
per-row loop").  The walker emits the corresponding instruction-line
fetches into the transaction's trace and accounts retired instructions,
branches and mispredicts from the module's density parameters.

Because a given transaction type takes the same code path every time,
the same (module, slice) pair produces the same lines on every call —
that is what gives repeated transactions their instruction locality,
and what lets large footprints overflow the L1I exactly as the paper
describes.
"""

from __future__ import annotations

from repro.codegen.layout import CodeLayout
from repro.core.trace import AccessTrace


class CodeWalker:
    """Emits instruction streams for modules registered in a layout."""

    def __init__(self, layout: CodeLayout) -> None:
        self.layout = layout
        self._branch_carry = 0.0
        self._mispredict_carry = 0.0

    # -- execution primitives ------------------------------------------------

    def run(self, trace: AccessTrace, mod_id: int, fraction: float = 1.0) -> int:
        """Execute the leading *fraction* of the module once.

        Returns the number of instructions retired.
        """
        return self.run_segment(trace, mod_id, 0.0, fraction)

    def run_segment(
        self, trace: AccessTrace, mod_id: int, start_frac: float, end_frac: float
    ) -> int:
        """Execute the [start_frac, end_frac) slice of the module once."""
        if not 0.0 <= start_frac <= end_frac <= 1.0:
            raise ValueError(f"invalid segment [{start_frac}, {end_frac})")
        module = self.layout.module(mod_id)
        total_lines = module.footprint_lines
        first = int(start_frac * total_lines)
        last = max(first + 1, int(round(end_frac * total_lines)))
        n_lines = min(last, total_lines) - first
        if n_lines <= 0:
            return 0
        base = self.layout.base_line(mod_id)
        trace.ifetch_run(base + first, n_lines, mod_id)
        return self._retire(trace, mod_id, n_lines)

    def loop(
        self,
        trace: AccessTrace,
        mod_id: int,
        start_frac: float,
        end_frac: float,
        iterations: int,
    ) -> int:
        """Execute a loop body slice *iterations* times.

        Every iteration re-fetches the body's lines; a body that fits in
        the L1I therefore hits after the first iteration, which is the
        instruction-locality effect of repetitive per-row work
        (Section 4.2.2).
        """
        total = 0
        for _ in range(iterations):
            total += self.run_segment(trace, mod_id, start_frac, end_frac)
        return total

    # -- internal --------------------------------------------------------------

    def _retire(self, trace: AccessTrace, mod_id: int, n_lines: int) -> int:
        module = self.layout.module(mod_id)
        instructions = module.instructions_for_lines(n_lines)
        branches_f = instructions * module.branches_per_kilo_instruction / 1000.0 + self._branch_carry
        branches = int(branches_f)
        self._branch_carry = branches_f - branches
        mispredicts_f = branches * module.mispredict_rate + self._mispredict_carry
        mispredicts = int(mispredicts_f)
        self._mispredict_carry = mispredicts_f - mispredicts
        trace.retire(
            mod_id, instructions, branches, mispredicts,
            base_cycles=instructions * module.base_cpi,
        )
        return instructions
