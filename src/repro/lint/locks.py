"""Lock-order deadlock detection and exception-edge leak checking.

The paper's headline cost centre is the lock manager; our reproduction
has one too (:mod:`repro.storage.lock_manager`), plus 2PC coordination
paths that interleave lock-protected engine work.  This pass makes the
acquisition *order* a checked property:

**Acquisition sites.**  A call ``X.acquire(...)`` whose receiver name
contains ``lock``/``latch``/``mutex`` (``eng.locks.acquire``,
``self._lock_mgr.acquire``), and ``with``-statements over such
receivers.  Lock *tokens* are derived statically: the resource
argument's leading string constant (``("table", name)`` -> ``table``,
``("row", t, k)`` -> ``row``), a plain string constant, or — when the
resource is the callee's own parameter — the token substituted from
each call site through the summary chain, so helper wrappers like
``ShoreMTTransaction._lock`` attribute their tokens to the operations
that call them.

**Order graph.**  Within a function, acquiring B while A is held adds
edge ``A -> B``; across functions, calling a helper that (transitively)
leaves locks held threads those tokens into the caller's held set, in
statement order, to a fixpoint over the call graph.  Release points
(``release`` / ``release_all`` on a matching receiver) clear that
receiver's tokens; ``with`` blocks release at exit.  A cycle in the
token graph is a potential deadlock: two code paths that interleave
those acquisitions can block each other forever — reported once per
cycle, at the edge that closes it, with the full cycle spelled out.

**Exception edges.**  When a function both acquires and releases the
*same* receiver, every statement between the two that can raise (any
call) must be covered by a ``try`` whose handler or ``finally``
reaches the release — otherwise an exception leaks the lock (reported
as *lock-leak*).  Engines that release through a separate
commit/rollback path (2PL's release-at-end discipline) never pair the
two in one function and are exempt by construction; the no-wait lock
manager plus engine abort handling owns that protocol.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import (
    FunctionInfo,
    ModuleInfo,
    Project,
    ProjectPass,
)
from repro.lint.engine import Finding

_LOCKY = ("lock", "latch", "mutex")

ORDER_RULE = "lock-order"
LEAK_RULE = "lock-leak"


def _is_locky(dotted: str | None) -> bool:
    if not dotted:
        return False
    tail = dotted.split(".")[-1]
    if tail in ("acquire", "release", "release_all"):
        dotted = dotted[: -(len(tail) + 1)]
    lowered = dotted.lower()
    return any(marker in lowered for marker in _LOCKY)


def _receiver_of(dotted: str) -> str:
    """``eng.locks.acquire`` -> ``locks`` (the receiver's last part)."""
    parts = dotted.split(".")
    return parts[-2] if len(parts) >= 2 else parts[-1]


def _tokenize(node: ast.AST, fn: FunctionInfo, module: ModuleInfo):
    """Static identity of a lock resource expression.

    Returns a string token, ``("param", i)`` for substitution at call
    sites, or None when the identity cannot be pinned statically.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Tuple) and node.elts:
        head = node.elts[0]
        if isinstance(head, ast.Constant) and isinstance(head.value, str):
            return head.value
        return None
    if isinstance(node, ast.Name):
        index = fn.param_index(node.id)
        if index is not None:
            return ("param", index)
        value = module.constants.get(node.id)
        if value is not None:
            return value
        return None
    if isinstance(node, ast.Attribute):
        dotted = module.resolve(node)
        return dotted if dotted else None
    return None


class _Event:
    """One acquire/release/call event in statement order."""

    __slots__ = ("kind", "receiver", "token", "node", "target", "covered")

    def __init__(self, kind, receiver, token, node, target=None,
                 covered=frozenset()):
        self.kind = kind          # "acquire" | "release" | "call"
        self.receiver = receiver  # receiver tail for acquire/release
        self.token = token        # token | ("param", i) | None
        self.node = node
        self.target = target      # project qualname for "call"
        # Receivers whose release is guaranteed on an exception raised
        # at this point (enclosing try with a releasing finally/handler,
        # or a `with` managing the lock itself); "*" covers everything.
        self.covered = covered


def _linearize(fn: FunctionInfo, module: ModuleInfo) -> list[_Event]:
    """Acquire/release/call events in a deterministic statement order.

    Branches contribute sequentially (if-body then else-body): the
    pass over-approximates interleavings, which is the right direction
    for deadlock detection.  ``with lock:`` emits acquire at entry and
    release at exit.  Every event records which receivers an enclosing
    ``try``'s handlers/``finally`` would release if the event raised —
    the canonical ``acquire(); try: ... finally: release()`` idiom
    leaves the acquire uncovered but every risky call covered, which is
    exactly what the leak check wants.
    """
    events: list[_Event] = []

    def call_events(node: ast.AST, guarded: frozenset) -> None:
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            site = next((c for c in fn.calls if c.node is sub), None)
            raw = site.raw if site else None
            if raw and raw.split(".")[-1] in ("acquire",) and _is_locky(raw):
                token = _tokenize(sub.args[1], fn, module) if len(sub.args) >= 2 else None
                if token is None and len(sub.args) == 1:
                    token = _tokenize(sub.args[0], fn, module)
                if token is None:
                    token = _receiver_of(raw)
                receiver = _receiver_of(raw)
                events.append(_Event(
                    "acquire", receiver, token, sub, covered=guarded,
                ))
            elif raw and raw.split(".")[-1] in ("release", "release_all") and _is_locky(raw):
                events.append(_Event("release", _receiver_of(raw), None, sub,
                                     covered=guarded))
            elif site and site.target:
                events.append(_Event("call", None, None, sub,
                                     target=site.target, covered=guarded))
            elif isinstance(sub, ast.Call):
                events.append(_Event("call", None, None, sub, covered=guarded))

    def released_receivers(handlers: list[ast.AST]) -> frozenset:
        out: set[str] = set()
        for handler in handlers:
            for sub in ast.walk(handler):
                if isinstance(sub, ast.Call):
                    raw = module.resolve(sub.func)
                    if raw and raw.split(".")[-1] in ("release", "release_all"):
                        out.add(_receiver_of(raw))
                    elif raw is not None and "." not in raw:
                        # A local cleanup helper (rollback) may release
                        # transitively; treat as covering everything.
                        out.add("*")
                    elif raw and raw.startswith("self."):
                        out.add("*")
        return frozenset(out)

    def walk(body: list[ast.stmt], guarded: frozenset) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested scopes are analysed on their own
            if isinstance(stmt, ast.Try):
                cover = guarded | released_receivers(
                    list(stmt.handlers) + list(stmt.finalbody)
                )
                walk(stmt.body, cover)
                for handler in stmt.handlers:
                    walk(handler.body, guarded)
                walk(stmt.orelse, guarded)
                walk(stmt.finalbody, guarded)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                entered: list[str] = []
                for item in stmt.items:
                    dotted = module.resolve(item.context_expr)
                    if dotted and _is_locky(dotted) and not dotted.endswith(")"):
                        token = dotted
                        receiver = _receiver_of(dotted)
                        events.append(_Event(
                            "acquire", receiver, token, item.context_expr,
                            covered=guarded | {receiver},
                        ))
                        entered.append(receiver)
                    else:
                        call_events(item.context_expr, guarded)
                walk(stmt.body, guarded | frozenset(entered))
                for receiver in entered:
                    events.append(_Event("release", receiver, None, stmt))
            elif isinstance(stmt, (ast.If,)):
                call_events(stmt.test, guarded)
                walk(stmt.body, guarded)
                walk(stmt.orelse, guarded)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                call_events(stmt.iter, guarded)
                walk(stmt.body, guarded)
                walk(stmt.orelse, guarded)
            elif isinstance(stmt, ast.While):
                call_events(stmt.test, guarded)
                walk(stmt.body, guarded)
                walk(stmt.orelse, guarded)
            else:
                call_events(stmt, guarded)

    walk(list(fn.node.body), frozenset())
    return events


class LockOrderPass(ProjectPass):
    name = "locks"
    summary = "lock-order cycles (deadlocks) and exception-edge lock leaks"

    MAX_DEPTH = 8

    def check(self, project: Project) -> Iterator[Finding]:
        events = {
            qual: _linearize(project.functions[qual], project.module_of(qual))
            for qual in project.functions
        }
        summaries = self._summaries(project, events)
        edges = self._order_edges(project, events, summaries)
        yield from self._report_cycles(project, edges)
        yield from self._report_leaks(project, events)

    # -- summaries: tokens a function leaves held -----------------------------

    def _summaries(self, project: Project, events) -> dict[str, tuple]:
        summaries: dict[str, tuple] = {qual: () for qual in project.functions}
        for _round in range(self.MAX_DEPTH):
            changed = False
            for qual in project.functions:
                held: list = []
                for event in events[qual]:
                    if event.kind == "acquire":
                        held.append((event.receiver, event.token))
                    elif event.kind == "release":
                        held = [h for h in held if h[0] != event.receiver]
                    elif event.kind == "call" and event.target in summaries:
                        for receiver, token in summaries[event.target]:
                            sub = self._substitute(
                                token, event.node, project, event.target, qual, events
                            )
                            held.append((receiver, sub))
                new = tuple(held)
                if new != summaries[qual]:
                    summaries[qual] = new
                    changed = True
            if not changed:
                break
        return summaries

    def _substitute(self, token, call_node, project, target, caller, events):
        """Map a callee's ``("param", i)`` token to the caller's arg."""
        if not (isinstance(token, tuple) and token and token[0] == "param"):
            return token
        callee = project.functions.get(target)
        caller_fn = project.functions.get(caller)
        if callee is None or caller_fn is None:
            return None
        index = token[1]
        positional = list(call_node.args)
        if callee.class_name is not None and not isinstance(call_node.func, ast.Name):
            positional = [None] + positional
        arg = None
        if index < len(positional):
            arg = positional[index]
        elif index < len(callee.params):
            wanted = callee.params[index]
            for kw in call_node.keywords:
                if kw.arg == wanted:
                    arg = kw.value
        if arg is None:
            return None
        return _tokenize(arg, caller_fn, project.module_of(caller))

    # -- the order graph ------------------------------------------------------

    def _order_edges(self, project, events, summaries):
        """token -> token -> first (module, node) witnessing the edge."""
        edges: dict[str, dict[str, tuple]] = {}

        def add(a, b, module, node):
            if not isinstance(a, str) or not isinstance(b, str) or a == b:
                return
            edges.setdefault(a, {})
            if b not in edges[a]:
                edges[a][b] = (module, node)

        for qual in project.functions:
            module = project.module_of(qual)
            held: list = []
            for event in events[qual]:
                if event.kind == "acquire":
                    for _receiver, token in held:
                        add(token, event.token, module, event.node)
                    held.append((event.receiver, event.token))
                elif event.kind == "release":
                    held = [h for h in held if h[0] != event.receiver]
                elif event.kind == "call" and event.target in summaries:
                    for receiver, token in summaries[event.target]:
                        sub = self._substitute(
                            token, event.node, project, event.target, qual, events
                        )
                        for _r, prior in held:
                            add(prior, sub, module, event.node)
                        held.append((receiver, sub))
        return edges

    def _report_cycles(self, project, edges) -> Iterator[Finding]:
        """DFS cycle detection; each cycle reported once, canonically."""
        reported: set[tuple] = set()
        for start in sorted(edges):
            stack = [(start, (start,))]
            while stack:
                node, path = stack.pop()
                for succ in sorted(edges.get(node, {})):
                    if succ == start:
                        cycle = path
                        pivot = cycle.index(min(cycle))
                        canonical = cycle[pivot:] + cycle[:pivot]
                        if canonical in reported:
                            continue
                        reported.add(canonical)
                        module, witness = edges[node][start]
                        pretty = " -> ".join(canonical + (canonical[0],))
                        yield module.finding(
                            ORDER_RULE, witness,
                            f"lock-order cycle {pretty}: two paths that "
                            f"interleave these acquisitions can deadlock — "
                            f"impose one global order",
                        )
                    elif succ not in path and len(path) < 8:
                        stack.append((succ, path + (succ,)))

    # -- exception-edge leaks -------------------------------------------------

    def _report_leaks(self, project, events) -> Iterator[Finding]:
        for qual in sorted(project.functions):
            module = project.module_of(qual)
            seq = events[qual]
            releases = {
                e.receiver: i for i, e in enumerate(seq) if e.kind == "release"
            }
            for i, event in enumerate(seq):
                if event.kind != "acquire":
                    continue
                if event.receiver in event.covered or "*" in event.covered:
                    continue  # `with` or a releasing try owns this one
                rel = releases.get(event.receiver)
                if rel is None or rel <= i:
                    continue  # release-at-end protocols live elsewhere
                risky = any(
                    e.kind == "call"
                    and event.receiver not in e.covered
                    and "*" not in e.covered
                    for e in seq[i + 1: rel]
                )
                if risky:
                    yield module.finding(
                        LEAK_RULE, event.node,
                        f"lock {event.token!r} acquired here is released "
                        f"only on the fall-through path — an exception in "
                        f"between leaks it; use try/finally or `with`",
                    )
