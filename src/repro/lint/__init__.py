"""repro.lint — determinism & simulation-correctness analysis.

Two halves, one contract:

* **Static**: an AST rule engine (:mod:`repro.lint.engine`,
  :mod:`repro.lint.rules`) with eight determinism rules, a fingerprint
  suppression baseline (:mod:`repro.lint.baseline`), and the
  ``repro-lint`` CLI (:mod:`repro.lint.cli`).
* **Runtime**: the RNG-stream sanitizer (:mod:`repro.lint.sanitizer`)
  — provenance-tagged streams, cross-stream draw detection, serial vs
  parallel draw-count comparison, and unordered-merge guards, armed by
  ``repro-bench ... --sanitize``.

Everything in the package is stdlib-only and imports nothing from the
rest of ``repro``, so any layer (including ``repro.obs`` and the fault
machinery) can use the sanitizer without import cycles.

Quickstart::

    from repro.lint import lint_paths
    for finding in lint_paths(["src"]):
        print(finding.render())

    from repro.lint import sanitizer
    with sanitizer.sanitizing():
        ...  # run anything; rng factories now hand out TrackedRandom
    assert sanitizer.ok(), sanitizer.violations()
"""

from repro.lint import sanitizer
from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.engine import (
    FileContext,
    Finding,
    LintConfig,
    LintEngine,
    Rule,
    iter_python_files,
    lint_paths,
)
from repro.lint.rules import default_rules, rule_names

__all__ = [
    "FileContext",
    "Finding",
    "LintConfig",
    "LintEngine",
    "Rule",
    "apply_baseline",
    "default_rules",
    "iter_python_files",
    "lint_paths",
    "load_baseline",
    "rule_names",
    "sanitizer",
    "write_baseline",
]
