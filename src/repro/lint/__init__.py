"""repro.lint — determinism & simulation-correctness analysis.

Two halves, one contract:

* **Static**: an AST rule engine (:mod:`repro.lint.engine`,
  :mod:`repro.lint.rules`) with eight determinism rules, a fingerprint
  suppression baseline (:mod:`repro.lint.baseline`), and the
  ``repro-lint`` CLI (:mod:`repro.lint.cli`); plus a whole-program
  layer — a cached deterministic call graph
  (:mod:`repro.lint.callgraph`) feeding four interprocedural passes
  (:mod:`repro.lint.taint`, :mod:`repro.lint.locks`,
  :mod:`repro.lint.units`, :mod:`repro.lint.streams`) orchestrated by
  :mod:`repro.lint.passes`, with SARIF 2.1.0 output
  (:mod:`repro.lint.sarif`).
* **Runtime**: the RNG-stream sanitizer (:mod:`repro.lint.sanitizer`)
  — provenance-tagged streams, cross-stream draw detection, serial vs
  parallel draw-count comparison, and unordered-merge guards, armed by
  ``repro-bench ... --sanitize``.

Everything in the package is stdlib-only and imports nothing from the
rest of ``repro``, so any layer (including ``repro.obs`` and the fault
machinery) can use the sanitizer without import cycles.

Quickstart::

    from repro.lint import lint_paths
    for finding in lint_paths(["src"]):
        print(finding.render())

    from repro.lint import sanitizer
    with sanitizer.sanitizing():
        ...  # run anything; rng factories now hand out TrackedRandom
    assert sanitizer.ok(), sanitizer.violations()
"""

from repro.lint import sanitizer
from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.engine import (
    FileContext,
    Finding,
    LintConfig,
    LintEngine,
    Rule,
    iter_python_files,
    lint_paths,
)
from repro.lint.callgraph import Project, ProjectPass, build_project
from repro.lint.passes import default_passes, lint_all, pass_names, run_passes, select_passes
from repro.lint.rules import default_rules, rule_names
from repro.lint.sarif import render_sarif, to_sarif

__all__ = [
    "FileContext",
    "Finding",
    "LintConfig",
    "LintEngine",
    "Project",
    "ProjectPass",
    "Rule",
    "apply_baseline",
    "build_project",
    "default_passes",
    "default_rules",
    "iter_python_files",
    "lint_all",
    "lint_paths",
    "load_baseline",
    "pass_names",
    "render_sarif",
    "rule_names",
    "run_passes",
    "sanitizer",
    "select_passes",
    "to_sarif",
    "write_baseline",
]
