"""RNG-stream discipline: every ``child_rng`` purpose in one table.

Determinism here rests on named streams: ``child_rng(seed, purpose)``
string-seeds an independent ``random.Random`` per purpose, so adding a
draw to one subsystem cannot shift another's sequence.  That only
holds if purposes are *disciplined* — a purpose string typo'd or
duplicated in a second subsystem silently aliases two streams onto the
same sequence, and renaming one changes every pinned schedule digest
built from it.  The runtime sanitizer catches cross-stream *draws*;
this pass catches the *construction* mistakes statically:

* every literal purpose must appear in :data:`STREAM_REGISTRY`, which
  also records how many construction sites the purpose is allowed
  (``"image"`` and ``"net"`` are deliberately two — the chaos harness
  and the sharded cluster tear from like-named streams);
* dynamic purposes built as f-strings must start with a prefix from
  :data:`PREFIX_REGISTRY` (``f"load-arrival:{tag}:{stream}"``);
* purposes that are plain variables are only allowed at functions
  listed in :data:`DYNAMIC_SITES` (the fault injector's per-kind
  streams, where the kind names are themselves a checked registry);
* literal ``sanitizer.scope(...)`` labels must be registered purposes,
  registered prefixes, or :data:`SCOPE_LABELS` extras — and a draw on
  a locally-constructed stream inside a scope naming a *different*
  stream flags here instead of at runtime.

The registries are the single table the drift-guard test pins against
the strings actually used: change a purpose and both the pass and the
test point at this file.  **Do not rename existing purposes** — the
stream seed is ``f"{seed}:{purpose}"``, so a rename changes pinned
digests and figures; register the new site instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import FunctionInfo, ModuleInfo, Project, ProjectPass
from repro.lint.engine import Finding

PURPOSE_RULE = "stream-purpose"
SCOPE_RULE = "stream-scope"

# Literal purpose -> number of construction sites allowed.  More sites
# than this aliases streams; fewer is fine (the drift test flags
# entries that stop being used at all).
STREAM_REGISTRY: dict[str, int] = {
    "2pc-client": 1,   # sharded cluster client-side 2PC jitter
    "client": 1,       # replication group client jitter
    "image": 2,        # crash-image tear: chaos harness + sharded cluster
    "net": 2,          # net jitter: chaos harness + sharded chaos
    "stall": 1,        # sharded chaos prepare-stall placement
}

# f-string purposes must start with one of these prefixes (through the
# first ":"); value is the number of construction sites allowed.
PREFIX_REGISTRY: dict[str, int] = {
    "chaos-load:": 1,    # per-(point, kind) fault-window placement
    "load-arrival:": 1,  # per-(point, stream) open-loop arrivals
    "load-cluster:": 1,  # per-point cluster workload stream
    "load-image:": 1,    # per-point crash-image tear under load
    "load-retry:": 1,    # per-point retry backoff jitter
}

# Functions allowed to pass a non-literal purpose to child_rng.  Keep
# this to factories whose purpose argument is itself a checked
# registry (fault kinds).
DYNAMIC_SITES = frozenset({
    "repro.faults.injector.FaultInjector.stream",
})

# Scope labels that are legal without being stream purposes: regions
# the sanitizer isolates that draw from streams named elsewhere.
SCOPE_LABELS = frozenset({
    "fault-schedule",
    "prepare_stall",
    "workload",
})

_DRAW_METHODS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gauss",
    "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "random", "randint", "randrange", "sample", "shuffle", "triangular",
    "uniform", "vonmisesvariate", "weibullvariate",
})


def _fstring_prefix(node: ast.JoinedStr) -> str | None:
    """Leading literal text through the first ``:`` — the stream family."""
    if not node.values or not isinstance(node.values[0], ast.Constant):
        return None
    text = str(node.values[0].value)
    if ":" in text:
        return text[: text.index(":") + 1]
    return text


def _local_strings(fn: FunctionInfo) -> dict[str, tuple[str, str]]:
    """``name -> ("literal"|"prefix", value)`` for simple assignments."""
    out: dict[str, tuple[str, str]] = {}
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if isinstance(node.value, ast.Constant) and isinstance(node.value.value, str):
            out[target.id] = ("literal", node.value.value)
        elif isinstance(node.value, ast.JoinedStr):
            prefix = _fstring_prefix(node.value)
            if prefix is not None:
                out[target.id] = ("prefix", prefix)
    return out


def _purpose_of(
    node: ast.AST,
    locals_: dict[str, tuple[str, str]],
    module: ModuleInfo,
    project: Project,
) -> tuple[str, str | None]:
    """Classify a purpose expression: ("literal", s) / ("prefix", p) /
    ("dynamic", None)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return ("literal", node.value)
    if isinstance(node, ast.JoinedStr):
        prefix = _fstring_prefix(node)
        return ("prefix", prefix) if prefix else ("dynamic", None)
    if isinstance(node, ast.Name):
        if node.id in locals_:
            return locals_[node.id]
        value = project.constant_value(module, node.id)
        if value is not None:
            return ("literal", value)
    return ("dynamic", None)


def _purpose_allowed(kind: str, value: str | None) -> bool:
    """Is this purpose/scope label registered (any table)?"""
    if kind == "literal":
        if value in STREAM_REGISTRY or value in SCOPE_LABELS:
            return True
        return any(value.startswith(p) for p in PREFIX_REGISTRY)
    if kind == "prefix":
        return value in PREFIX_REGISTRY
    return True  # dynamic labels are the runtime sanitizer's problem


def _matches(purpose: tuple[str, str | None], scopes: list[tuple[str, str | None]]) -> bool:
    """Does a stream's purpose match any scope label in the block?"""
    p_kind, p_val = purpose
    for s_kind, s_val in scopes:
        if s_kind == "dynamic" or p_kind == "dynamic":
            return True
        if p_val == s_val:
            return True
        if p_kind == "literal" and s_kind == "prefix" and p_val.startswith(s_val):
            return True
        if p_kind == "prefix" and s_kind == "literal" and s_val.startswith(p_val):
            return True
    return False


def _is_child_rng(raw: str | None) -> bool:
    return raw is not None and (raw == "child_rng" or raw.endswith(".child_rng"))


def _is_scope(raw: str | None) -> bool:
    return raw is not None and raw.endswith("sanitizer.scope")


class StreamsPass(ProjectPass):
    name = "streams"
    summary = "child_rng purpose registry and sanitizer-scope discipline"

    def check(self, project: Project) -> Iterator[Finding]:
        # site lists keyed by purpose, for the uniqueness check.
        literal_sites: dict[str, list[tuple[ModuleInfo, ast.AST]]] = {}
        prefix_sites: dict[str, list[tuple[ModuleInfo, ast.AST]]] = {}
        findings: list[Finding] = []

        for fn in project.sim_functions():
            module = project.module_of(fn.qualname)
            locals_ = _local_strings(fn)
            # child_rng construction sites.
            for site in fn.calls:
                if not _is_child_rng(site.raw):
                    continue
                arg = None
                if len(site.node.args) >= 2:
                    arg = site.node.args[1]
                else:
                    for kw in site.node.keywords:
                        if kw.arg == "purpose":
                            arg = kw.value
                if arg is None:
                    continue
                kind, value = _purpose_of(arg, locals_, module, project)
                if kind == "literal":
                    if value not in STREAM_REGISTRY:
                        findings.append(module.finding(
                            PURPOSE_RULE, site.node,
                            f"child_rng purpose {value!r} is not in the "
                            f"stream registry — add it to "
                            f"repro.lint.streams.STREAM_REGISTRY (do not "
                            f"rename existing purposes)",
                        ))
                    else:
                        literal_sites.setdefault(value, []).append(
                            (module, site.node)
                        )
                elif kind == "prefix":
                    if value not in PREFIX_REGISTRY:
                        findings.append(module.finding(
                            PURPOSE_RULE, site.node,
                            f"child_rng purpose prefix {value!r} is not in "
                            f"repro.lint.streams.PREFIX_REGISTRY",
                        ))
                    else:
                        prefix_sites.setdefault(value, []).append(
                            (module, site.node)
                        )
                elif fn.qualname not in DYNAMIC_SITES:
                    findings.append(module.finding(
                        PURPOSE_RULE, site.node,
                        f"child_rng purpose here is not a literal; use a "
                        f"registered literal/prefix or list "
                        f"{fn.qualname} in repro.lint.streams.DYNAMIC_SITES",
                    ))
            # sanitizer.scope labels + cross-stream draws inside them.
            findings.extend(self._scope_findings(fn, module, project, locals_))

        for registry, sites in (
            (STREAM_REGISTRY, literal_sites), (PREFIX_REGISTRY, prefix_sites),
        ):
            for purpose in sorted(sites):
                entries = sorted(
                    sites[purpose],
                    key=lambda e: (e[0].display_path, e[1].lineno),
                )
                allowed = registry[purpose]
                for module, node in entries[allowed:]:
                    findings.append(module.finding(
                        PURPOSE_RULE, node,
                        f"purpose {purpose!r} is constructed at "
                        f"{len(entries)} sites but the registry allows "
                        f"{allowed} — duplicate purposes alias RNG streams",
                    ))
        yield from findings

    def _scope_findings(
        self,
        fn: FunctionInfo,
        module: ModuleInfo,
        project: Project,
        locals_: dict[str, tuple[str, str]],
    ) -> Iterator[Finding]:
        # name -> purpose for streams constructed locally in this body.
        stream_vars: dict[str, tuple[str, str | None]] = {}
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
                and _is_child_rng(module.resolve(node.value.func))
                and len(node.value.args) >= 2
            ):
                stream_vars[node.targets[0].id] = _purpose_of(
                    node.value.args[1], locals_, module, project
                )
        for node in ast.walk(fn.node):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            for item in node.items:
                call = item.context_expr
                if not isinstance(call, ast.Call) or not _is_scope(
                    module.resolve(call.func)
                ):
                    continue
                labels = [
                    _purpose_of(arg, locals_, module, project)
                    for arg in call.args
                ]
                for (kind, value), arg in zip(labels, call.args):
                    if not _purpose_allowed(kind, value):
                        yield module.finding(
                            SCOPE_RULE, arg,
                            f"sanitizer scope label {value!r} is not a "
                            f"registered stream purpose, prefix, or "
                            f"SCOPE_LABELS entry",
                        )
                for sub in ast.walk(node):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in _DRAW_METHODS
                        and isinstance(sub.func.value, ast.Name)
                        and sub.func.value.id in stream_vars
                    ):
                        purpose = stream_vars[sub.func.value.id]
                        if not _matches(purpose, labels):
                            shown = ", ".join(
                                repr(v) for _k, v in labels if v is not None
                            )
                            yield module.finding(
                                SCOPE_RULE, sub,
                                f"draw on stream {purpose[1]!r} inside "
                                f"scope({shown}) — a cross-stream draw the "
                                f"sanitizer would flag at runtime",
                            )
