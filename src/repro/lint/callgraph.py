"""The whole-program layer under the interprocedural passes.

The single-file rule engine (:mod:`repro.lint.engine`) answers "is
this line syntactically bad"; the project passes (taint, locks, units,
streams) need to answer "does this *flow* somewhere bad", which takes
a view of the whole program: which modules exist, which function each
call site actually reaches, and what every function's summary looks
like.  This module builds that view once and shares it:

* :func:`module_name_for` — maps a file path to its dotted module name
  by walking up through ``__init__.py`` packages (``src/repro/load/
  driver.py`` -> ``repro.load.driver``); loose files (fixtures) fall
  back to their stem.
* :class:`ModuleInfo` / :class:`FunctionInfo` / :class:`CallSite` —
  per-module parse results: import aliases, module-level string
  constants (so ``scope(PREPARE_STALL)`` resolves to its literal),
  classes with their base names, and per-function call sites resolved
  to project-qualified names where possible (``self.method`` through
  the class and its project-local bases, local functions, imported
  module functions).  Unresolved calls keep their dotted form so the
  passes can still pattern-match stdlib targets (``time.time``,
  ``os.urandom``).
* :class:`Project` — the call graph: modules in sorted-name order,
  functions in definition order, a global qualname index, and
  :meth:`Project.to_dict`, a fully sorted JSON-able dump used by the
  determinism tests (two processes with different ``PYTHONHASHSEED``
  must produce byte-identical dumps).

Construction is **cached** per file content: a module whose source
hash is unchanged is not re-parsed within the process (the engine,
the CLI, and every pass share one build per lint run; test suites that
lint the same tree repeatedly hit the cache).  Everything iterates in
sorted or definition order — no ``id()`` ordering, no set iteration —
so the graph is a pure function of the file contents.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.lint.engine import (
    Finding,
    LintConfig,
    _collect_aliases,
    iter_python_files,
)

# Builtins that pass their arguments' taint/unit through unchanged.
TRANSPARENT_CALLS = frozenset(
    {"int", "float", "str", "bool", "abs", "round", "max", "min", "sum",
     "sorted", "tuple", "list", "len"}
)


@dataclass
class CallSite:
    """One call expression inside a function."""

    node: ast.Call
    raw: str | None        # dotted name as written, import aliases applied
    target: str | None     # project-qualified callee ("repro.x.f"), if resolved

    def to_dict(self) -> dict:
        return {
            "line": self.node.lineno,
            "col": self.node.col_offset,
            "raw": self.raw,
            "target": self.target,
        }


@dataclass
class FunctionInfo:
    """One function or method, with its resolved call sites."""

    qualname: str          # "repro.load.driver.run_load" / "...Cls.method"
    module: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None
    params: tuple[str, ...]
    calls: list[CallSite] = field(default_factory=list)

    @property
    def line(self) -> int:
        return self.node.lineno

    def param_index(self, name: str) -> int | None:
        try:
            return self.params.index(name)
        except ValueError:
            return None

    def to_dict(self) -> dict:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "params": list(self.params),
            "calls": [c.to_dict() for c in self.calls],
        }


@dataclass
class ModuleInfo:
    """One parsed module: trees, aliases, constants, classes, functions."""

    name: str
    path: Path
    display_path: str
    lines: list[str]
    tree: ast.Module
    aliases: dict[str, str]
    is_sim: bool
    # Module-level `NAME = "literal"` assignments, for resolving
    # constant references (fault kinds, scope labels) to their values.
    constants: dict[str, str] = field(default_factory=dict)
    # class name -> base-class dotted names (aliases applied).
    classes: dict[str, tuple[str, ...]] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted name with import aliases applied (engine idiom)."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(self.aliases.get(node.id, node.id))
        return ".".join(reversed(parts))

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1) or 1
        col = getattr(node, "col_offset", 0) or 0
        snippet = self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        return Finding(self.display_path, line, col, rule, message, snippet)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "path": self.display_path,
            "is_sim": self.is_sim,
            "constants": dict(sorted(self.constants.items())),
            "classes": {k: list(v) for k, v in sorted(self.classes.items())},
            "functions": [
                self.functions[q].to_dict() for q in self.function_order()
            ],
        }

    def function_order(self) -> list[str]:
        """Qualnames in definition (line) order — the iteration order."""
        return sorted(self.functions, key=lambda q: (self.functions[q].line, q))


def module_name_for(path: Path) -> str:
    """Dotted module name by walking up through ``__init__.py`` packages."""
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def _function_params(node: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    args = node.args
    names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    names += [a.arg for a in args.kwonlyargs]
    return tuple(names)


def _collect_constants(tree: ast.Module) -> dict[str, str]:
    constants: dict[str, str] = {}
    for stmt in tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str)
        ):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    constants[target.id] = stmt.value.value
    return constants


def _parse_module(path: Path, display: str, config: LintConfig) -> ModuleInfo | None:
    try:
        source = path.read_text()
        tree = ast.parse(source)
    except (OSError, UnicodeDecodeError, SyntaxError):
        return None  # the file engine reports parse/io errors
    module = ModuleInfo(
        name=module_name_for(path),
        path=path,
        display_path=display,
        lines=source.splitlines(),
        tree=tree,
        aliases=_collect_aliases(tree),
        is_sim=config.is_sim_path(path),
        constants=_collect_constants(tree),
    )
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            bases = tuple(
                b for b in (module.resolve(base) for base in node.bases) if b
            )
            module.classes[node.name] = bases
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{module.name}.{node.name}.{item.name}"
                    module.functions[qual] = FunctionInfo(
                        qual, module.name, item, node.name, _function_params(item)
                    )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{module.name}.{node.name}"
            module.functions[qual] = FunctionInfo(
                qual, module.name, node, None, _function_params(node)
            )
    return module


class Project:
    """The call graph every project pass runs over."""

    def __init__(self, modules: list[ModuleInfo], config: LintConfig) -> None:
        self.config = config
        self.modules: dict[str, ModuleInfo] = {}
        for module in sorted(modules, key=lambda m: m.name):
            # Last-one-wins on duplicate stems (loose fixture files);
            # sorted input keeps the winner deterministic.
            self.modules[module.name] = module
        self.functions: dict[str, FunctionInfo] = {}
        for module in self.modules.values():
            for qual in module.function_order():
                self.functions[qual] = module.functions[qual]
        self._resolve_calls()

    # -- construction ---------------------------------------------------------

    def _method_target(self, cls_module: str, cls_name: str, method: str) -> str | None:
        """Resolve *method* on class *cls_name*, walking project bases."""
        seen: set[tuple[str, str]] = set()
        stack = [(cls_module, cls_name)]
        while stack:
            mod_name, cname = stack.pop(0)
            if (mod_name, cname) in seen:
                continue
            seen.add((mod_name, cname))
            qual = f"{mod_name}.{cname}.{method}"
            if qual in self.functions:
                return qual
            module = self.modules.get(mod_name)
            if module is None or cname not in module.classes:
                continue
            for base in module.classes[cname]:
                head, _, tail = base.rpartition(".")
                if not head:  # same-module base
                    stack.append((mod_name, base))
                elif head in self.modules:
                    stack.append((head, tail))
        return None

    def _resolve_one(self, module: ModuleInfo, fn: FunctionInfo, dotted: str | None) -> str | None:
        if dotted is None:
            return None
        if dotted.startswith("self.") and fn.class_name:
            tail = dotted[5:]
            if "." not in tail:
                return self._method_target(module.name, fn.class_name, tail)
            return None
        if "." not in dotted:
            qual = f"{module.name}.{dotted}"
            if qual in self.functions:
                return qual
            if dotted in module.classes:  # local class constructor
                return self._method_target(module.name, dotted, "__init__")
            return None
        if dotted in self.functions:
            return dotted
        # Mod.Class(...) constructor / Mod.Class.method references.
        head, _, tail = dotted.rpartition(".")
        if head in self.modules and tail in self.modules[head].classes:
            return self._method_target(head, tail, "__init__")
        grand, _, cls = head.rpartition(".")
        if grand in self.modules and cls in self.modules[grand].classes:
            return self._method_target(grand, cls, tail)
        return None

    def _resolve_calls(self) -> None:
        for module in self.modules.values():
            for qual in module.function_order():
                fn = module.functions[qual]
                fn.calls = []  # cached modules are re-resolved per build
                for node in ast.walk(fn.node):
                    if not isinstance(node, ast.Call):
                        continue
                    raw = module.resolve(node.func)
                    target = self._resolve_one(module, fn, raw)
                    fn.calls.append(CallSite(node, raw, target))
                fn.calls.sort(key=lambda c: (c.node.lineno, c.node.col_offset))

    # -- queries --------------------------------------------------------------

    def module_of(self, qualname: str) -> ModuleInfo:
        return self.modules[self.functions[qualname].module]

    def constant_value(self, module: ModuleInfo, name: str) -> str | None:
        """Value of a string constant, following import/re-export hops
        (``from repro.faults import PREPARE_STALL`` through the package
        ``__init__`` to the defining module)."""
        dotted = module.aliases.get(name, name)
        if "." not in dotted:
            return module.constants.get(name)
        for _hop in range(3):
            head, _, tail = dotted.rpartition(".")
            target = self.modules.get(head)
            if target is None:
                break
            if tail in target.constants:
                return target.constants[tail]
            hop = target.aliases.get(tail)
            if hop is None or hop == dotted:
                break
            dotted = hop
        return module.constants.get(name)

    def sim_functions(self) -> Iterator[FunctionInfo]:
        for module in self.modules.values():
            if not module.is_sim:
                continue
            for qual in module.function_order():
                yield module.functions[qual]

    def to_dict(self) -> dict:
        """Sorted, JSON-able dump — the determinism-test surface."""
        return {
            "modules": [m.to_dict() for m in self.modules.values()],
            "n_functions": len(self.functions),
        }


class ProjectPass:
    """Base class for whole-program passes (taint, locks, units, streams)."""

    name: str = ""
    summary: str = ""

    def check(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError


# -- the content-hash build cache ---------------------------------------------

_MODULE_CACHE: dict[tuple, ModuleInfo] = {}


def _content_key(path: Path, config: LintConfig) -> tuple[str, str, object] | None:
    try:
        digest = hashlib.sha1(path.read_bytes()).hexdigest()
    except OSError:
        return None
    # is_sim is baked into the cached ModuleInfo, so the sim-path
    # override participates in the key.
    return (str(path.resolve()), digest, config.treat_as_sim)


def build_project(paths: Iterable, config: LintConfig | None = None) -> Project:
    """Parse every Python file under *paths* into a :class:`Project`.

    Per-file parses are cached on ``(path, content-sha1)``, so repeated
    builds over an unchanged tree re-parse nothing; the assembled
    Project is rebuilt each call (it is cheap relative to parsing) so
    cross-file resolution always reflects the full requested path set.
    """
    config = config or LintConfig()
    modules: list[ModuleInfo] = []
    for path in iter_python_files(paths, config):
        key = _content_key(path, config)
        if key is not None and key in _MODULE_CACHE:
            modules.append(_MODULE_CACHE[key])
            continue
        module = _parse_module(path, str(path), config)
        if module is None:
            continue
        if key is not None:
            if len(_MODULE_CACHE) > 4096:  # unbounded-growth guard
                _MODULE_CACHE.clear()
            _MODULE_CACHE[key] = module
        modules.append(module)
    return Project(modules, config)
