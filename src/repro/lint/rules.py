"""The determinism & simulation-correctness rule catalogue.

Eight rules, each a class over the shared :class:`~repro.lint.engine.FileContext`.
The catalogue encodes the conventions every headline guarantee rests
on (bit-identical ``--jobs N``, obs-on/off parity, byte-identical
crash schedules):

== =================== ======== =====================================
#  rule                sim-only what it bans
== =================== ======== =====================================
1  wall-clock          yes      host-clock reads outside repro.util.clock
2  entropy             no       os.urandom / uuid1,4 / secrets / SystemRandom
3  global-random       no       draws on the shared module-level random RNG
4  rng-factory         yes      random.Random(...) outside repro.util.rng
5  unordered-iter      no       iterating sets / keys-view unions into results
6  float-eq            yes      exact == on fractional float constants
7  mutable-default     no       mutable defaults in defs and dataclass fields
8  pool-seed           yes      ProcessPoolExecutor fan-out with no seed threaded
== =================== ======== =====================================

*sim-only* rules skip test files — a test constructing its own
``random.Random(0)`` is deterministic and fine; library code must go
through the seeded factories.  ``pool-seed`` is a heuristic (it looks
for a seed/rng identifier anywhere in the scope that builds the worker
tasks); the others are exact on the syntax they target.  All rules are
pure syntax — no type inference — so a set reaching a loop through a
variable, say, is out of reach; the runtime sanitizer covers that side.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Finding, Rule

# -- 1. wall-clock -----------------------------------------------------------

_WALL_CLOCK = {
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.strftime", "time.localtime", "time.gmtime",
    "time.ctime", "time.asctime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

_CLOCK_HINTS = {
    "time.time": "wall_timer()",
    "time.perf_counter": "perf_timer()",
    "time.perf_counter_ns": "perf_timer_ns()",
    "time.strftime": "today() / timestamp()",
}


class WallClockRule(Rule):
    name = "wall-clock"
    summary = "host-clock reads in sim paths (only repro.util.clock may)"
    sim_only = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.config.allows(ctx.config.wall_clock_allowlist, ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            dotted = ctx.resolve(node)
            if dotted in _WALL_CLOCK:
                hint = _CLOCK_HINTS.get(dotted, "a repro.util.clock helper")
                yield ctx.finding(
                    self.name, node,
                    f"{dotted} read in a sim path — route through "
                    f"repro.util.clock ({hint})",
                )


# -- 2. entropy --------------------------------------------------------------

_ENTROPY = {
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
    "random.SystemRandom",
}


class EntropyRule(Rule):
    name = "entropy"
    summary = "OS entropy sources (results must be a pure function of the seed)"
    sim_only = False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            dotted = ctx.resolve(node)
            if dotted is None:
                continue
            if dotted in _ENTROPY or dotted.startswith("secrets."):
                yield ctx.finding(
                    self.name, node,
                    f"{dotted} is an OS entropy source — derive randomness "
                    f"from the run seed (child_rng/root_rng)",
                )


# -- 3. global-random --------------------------------------------------------

_GLOBAL_DRAWS = {
    "random", "randint", "randrange", "randbytes", "getrandbits",
    "choice", "choices", "shuffle", "sample",
    "uniform", "triangular", "betavariate", "expovariate",
    "gammavariate", "gauss", "lognormvariate", "normalvariate",
    "vonmisesvariate", "paretovariate", "weibullvariate",
    "seed", "setstate", "getstate",
}


class GlobalRandomRule(Rule):
    name = "global-random"
    summary = "draws on the module-level random RNG (shared, reseedable state)"
    sim_only = False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.resolve(node.func)
            if dotted is None:
                continue
            root, _, method = dotted.rpartition(".")
            if root == "random" and method in _GLOBAL_DRAWS:
                yield ctx.finding(
                    self.name, node,
                    f"{dotted}() draws from the shared module-level RNG — "
                    f"any import-order change shifts every stream; use a "
                    f"seeded stream (child_rng/root_rng)",
                )


# -- 4. rng-factory ----------------------------------------------------------


class RngFactoryRule(Rule):
    name = "rng-factory"
    summary = "random.Random constructed outside the seeded-factory idiom"
    sim_only = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.config.allows(ctx.config.rng_factory_allowlist, ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if ctx.resolve(node.func) != "random.Random":
                continue
            if not node.args and not node.keywords:
                yield ctx.finding(
                    self.name, node,
                    "argless random.Random() seeds from OS entropy — every "
                    "run differs; use child_rng(seed, purpose)",
                )
            else:
                yield ctx.finding(
                    self.name, node,
                    "random.Random(...) constructed outside repro.util.rng — "
                    "use child_rng(seed, purpose) or root_rng(seed) so the "
                    "stream carries its provenance",
                )


# -- 5. unordered-iter -------------------------------------------------------

_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _is_keys_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "keys"
        and not node.args
    )


def _is_set_expr(node: ast.AST, ctx: FileContext) -> bool:
    """Syntactically-certain unordered set expressions."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return ctx.resolve(node.func) in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        left = _is_set_expr(node.left, ctx) or _is_keys_call(node.left)
        right = _is_set_expr(node.right, ctx) or _is_keys_call(node.right)
        # a.keys() | b.keys() produces a set; ordered dict union (d1 | d2)
        # does not hit this branch because neither side is set-like.
        return left and right
    return False


class UnorderedIterRule(Rule):
    name = "unordered-iter"
    summary = "iteration over unordered sets where order can reach results"
    sim_only = False

    _MESSAGE = (
        "iteration order of a set is not deterministic across processes — "
        "sort first (sorted(...)) or keep an ordered container"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter, ctx):
                    yield ctx.finding(self.name, node.iter, self._MESSAGE)
            elif isinstance(node, ast.comprehension):
                if _is_set_expr(node.iter, ctx):
                    yield ctx.finding(self.name, node.iter, self._MESSAGE)
            elif isinstance(node, ast.Call):
                dotted = ctx.resolve(node.func)
                is_seq_ctor = dotted in ("list", "tuple", "enumerate")
                is_join = (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                )
                if (
                    (is_seq_ctor or is_join)
                    and len(node.args) == 1
                    and _is_set_expr(node.args[0], ctx)
                ):
                    yield ctx.finding(
                        self.name, node,
                        "materialising a set in arbitrary order — wrap in "
                        "sorted(...) to pin it",
                    )


# -- 6. float-eq -------------------------------------------------------------


def _fractional_float(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, float)
        and not node.value.is_integer()
    )


class FloatEqRule(Rule):
    name = "float-eq"
    summary = "exact == / != against fractional float constants"
    sim_only = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(_fractional_float(operand) for operand in operands):
                yield ctx.finding(
                    self.name, node,
                    "exact float equality on a fractional constant — cycle "
                    "and metric values accumulate rounding; use "
                    "math.isclose or compare integral counters",
                )


# -- 7. mutable-default ------------------------------------------------------

_MUTABLE_CTORS = (
    "list", "dict", "set",
    "collections.defaultdict", "collections.OrderedDict", "collections.Counter",
    "collections.deque",
)


def _is_mutable_value(node: ast.AST, ctx: FileContext) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return ctx.resolve(node.func) in _MUTABLE_CTORS
    return False


def _is_dataclass_decorated(node: ast.ClassDef, ctx: FileContext) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if ctx.resolve(target) in ("dataclass", "dataclasses.dataclass"):
            return True
    return False


class MutableDefaultRule(Rule):
    name = "mutable-default"
    summary = "mutable default arguments and dataclass field defaults"
    sim_only = False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    if _is_mutable_value(default, ctx):
                        yield ctx.finding(
                            self.name, default,
                            "mutable default argument is shared across calls "
                            "— default to None (or use field(default_factory))",
                        )
            elif isinstance(node, ast.ClassDef) and _is_dataclass_decorated(node, ctx):
                for stmt in node.body:
                    value = None
                    if isinstance(stmt, ast.AnnAssign):
                        value = stmt.value
                    elif isinstance(stmt, ast.Assign):
                        value = stmt.value
                    if value is not None and _is_mutable_value(value, ctx):
                        yield ctx.finding(
                            self.name, value,
                            "mutable default on a dataclass field — use "
                            "field(default_factory=...)",
                        )


# -- 8. pool-seed ------------------------------------------------------------

_POOL_CTORS = (
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.process.ProcessPoolExecutor",
)
_SEED_MARKERS = ("seed", "rng")


def _pool_names(scope_nodes: list[ast.AST], ctx: FileContext) -> set[str]:
    names: set[str] = set()
    for node in scope_nodes:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                expr = item.context_expr
                if (
                    isinstance(expr, ast.Call)
                    and ctx.resolve(expr.func) in _POOL_CTORS
                    and isinstance(item.optional_vars, ast.Name)
                ):
                    names.add(item.optional_vars.id)
        elif isinstance(node, ast.Assign):
            if (
                isinstance(node.value, ast.Call)
                and ctx.resolve(node.value.func) in _POOL_CTORS
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return names


def _mentions_seed(scope_nodes: list[ast.AST]) -> bool:
    for node in scope_nodes:
        identifiers: list[str] = []
        if isinstance(node, ast.Name):
            identifiers.append(node.id)
        elif isinstance(node, ast.Attribute):
            identifiers.append(node.attr)
        elif isinstance(node, ast.arg):
            identifiers.append(node.arg)
        elif isinstance(node, ast.keyword) and node.arg:
            identifiers.append(node.arg)
        for ident in identifiers:
            lowered = ident.lower()
            if any(marker in lowered for marker in _SEED_MARKERS):
                return True
    return False


class PoolSeedRule(Rule):
    name = "pool-seed"
    summary = "ProcessPoolExecutor fan-out without a seed threaded to workers"
    sim_only = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        functions = [
            node for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        inside_functions: set[int] = set()
        for function in functions:
            for node in ast.walk(function):
                if node is not function:
                    inside_functions.add(id(node))
        module_scope = [
            node for node in ast.walk(ctx.tree) if id(node) not in inside_functions
        ]
        scopes = [list(ast.walk(fn)) for fn in functions] + [module_scope]
        for scope_nodes in scopes:
            pools = _pool_names(scope_nodes, ctx)
            if not pools:
                continue
            dispatches = [
                node for node in scope_nodes
                if isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("map", "submit")
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in pools
            ]
            if dispatches and not _mentions_seed(scope_nodes):
                yield ctx.finding(
                    self.name, dispatches[0],
                    "worker tasks fan out with no seed in sight — thread a "
                    "per-task seed (e.g. RunSpec.rep_seed) through the task "
                    "tuple so workers are order-independent",
                )


def default_rules() -> list[Rule]:
    """The catalogue, in documentation order."""
    return [
        WallClockRule(),
        EntropyRule(),
        GlobalRandomRule(),
        RngFactoryRule(),
        UnorderedIterRule(),
        FloatEqRule(),
        MutableDefaultRule(),
        PoolSeedRule(),
    ]


def rule_names() -> list[str]:
    return [rule.name for rule in default_rules()]
