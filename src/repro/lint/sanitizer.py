"""Runtime determinism sanitizer: provenance-tagged RNG streams.

The static rules in :mod:`repro.lint` catch nondeterminism you can see
in the source; this module catches the kind you can only see at run
time — a stream drawn from the wrong place, a serial/parallel run
whose streams consumed different draw counts, a ``set`` reaching a
merge point.  It is the dynamic half of the determinism contract:

* :class:`TrackedRandom` — a ``random.Random`` subclass the seeded
  factories (:mod:`repro.util.rng`) hand out when the sanitizer is
  armed.  It is seeded identically to the plain ``Random`` it
  replaces, so **sanitized runs are bit-identical to plain runs**; on
  top it tags the stream with its ``(seed, purpose)`` provenance and
  counts every underlying draw.
* :func:`scope` — declares "only these purposes may draw here".
  Chaos wraps its schedule draws in ``scope("fault-schedule")``, the
  crash-image tear in ``scope("image")``, and so on; a draw from any
  other stream inside the region is recorded as a **cross-stream
  draw** violation (the bug class where one stream's consumption
  silently shifts another's sequence).
* :func:`drain_draws` / :func:`compare_draws` — per-stream draw
  counts, shipped back from worker processes on
  ``RunResult.rng_draws`` and merged in seed order, so a serial run
  and a ``--jobs N`` run can be diffed stream by stream
  (**draw-count divergence**).
* :func:`checked_merge` — guards merge points: handing an unordered
  ``set``/``frozenset`` to a seed-order fold is recorded as an
  **unordered-merge hazard**.

Arming: ``repro-bench ... --sanitize`` enters :func:`sanitizing`,
which also exports ``REPRO_SANITIZE=1`` so pool worker processes arm
themselves on import.  Everything here is stdlib-only and imports
nothing from the rest of ``repro``, so any layer may use it.
"""

from __future__ import annotations

import os
import random
from contextlib import contextmanager, nullcontext

ENV_VAR = "REPRO_SANITIZE"
MAX_VIOLATIONS = 200

_armed = os.environ.get(ENV_VAR) == "1"
_scopes: list[tuple[str, ...]] = []
_draws: dict[str, int] = {}
_violations: list[str] = []
_violation_keys: set[tuple] = set()


def enabled() -> bool:
    """Is the sanitizer armed (``--sanitize`` or ``REPRO_SANITIZE=1``)?"""
    return _armed


def arm() -> None:
    global _armed
    _armed = True


def disarm() -> None:
    global _armed
    _armed = False


def reset() -> None:
    """Clear draw counts, violations, and any leaked scopes."""
    _draws.clear()
    _violations.clear()
    _violation_keys.clear()
    _scopes.clear()


@contextmanager
def sanitizing(on: bool = True):
    """Arm the sanitizer for the block (and export :data:`ENV_VAR` so
    worker processes spawned inside arm themselves on import)."""
    if not on:
        yield
        return
    global _armed
    previous_armed = _armed
    previous_env = os.environ.get(ENV_VAR)
    _armed = True
    os.environ[ENV_VAR] = "1"
    try:
        yield
    finally:
        _armed = previous_armed
        if previous_env is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous_env


# -- violations --------------------------------------------------------------


def _record(key: tuple, message: str) -> None:
    if key in _violation_keys:
        return
    _violation_keys.add(key)
    if len(_violations) < MAX_VIOLATIONS:
        _violations.append(message)


def violations() -> list[str]:
    return list(_violations)


def ok() -> bool:
    return not _violations


# -- provenance-tagged streams -----------------------------------------------


class TrackedRandom(random.Random):
    """A seeded stream that knows where it came from.

    Seeded exactly like the ``random.Random(seed_value)`` it replaces
    (the Mersenne state is identical, so every draw is identical);
    additionally counts underlying draws per ``(seed, purpose)`` key
    and checks the active :func:`scope` on each one.  Only
    ``random()`` and ``getrandbits()`` need intercepting — every other
    generator method (``randint``, ``shuffle``, ``gauss``, ...)
    bottoms out in one of the two.
    """

    def __init__(self, seed_value, purpose: str) -> None:
        self._repro_key: str | None = None  # draws during seeding don't count
        super().__init__(seed_value)
        self._repro_purpose = purpose
        self._repro_key = f"{purpose}@{seed_value}"

    def _note_draw(self) -> None:
        key = self._repro_key
        if key is None:
            return
        _draws[key] = _draws.get(key, 0) + 1
        if _scopes:
            allowed = _scopes[-1]
            if self._repro_purpose not in allowed:
                _record(
                    ("cross-stream", self._repro_purpose, allowed),
                    f"cross-stream draw: stream {key!r} drawn inside "
                    f"scope {'/'.join(allowed)!r}",
                )

    def random(self) -> float:
        self._note_draw()
        return super().random()

    def getrandbits(self, k: int) -> int:
        self._note_draw()
        return super().getrandbits(k)


_NULL_SCOPE = nullcontext()


class _Scope:
    __slots__ = ("purposes",)

    def __init__(self, purposes: tuple[str, ...]) -> None:
        self.purposes = purposes

    def __enter__(self) -> "_Scope":
        _scopes.append(self.purposes)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        _scopes.pop()
        return False


def scope(*purposes: str):
    """Only streams with one of *purposes* may draw inside the block.

    A no-op (shared null context) while the sanitizer is disarmed, so
    instrumented call sites cost one branch when off.
    """
    if not _armed:
        return _NULL_SCOPE
    return _Scope(purposes)


# -- draw-count reports ------------------------------------------------------


def snapshot_draws() -> dict[str, int]:
    """Per-stream draw counts so far, in sorted-key order (picklable)."""
    return dict(sorted(_draws.items()))


def drain_draws() -> dict[str, int]:
    """Snapshot-and-clear the draw counts ({} while disarmed/empty)."""
    snap = snapshot_draws()
    _draws.clear()
    return snap


def merge_draws(into: dict[str, int], more: dict[str, int]) -> dict[str, int]:
    """Fold *more* into *into* (sums per stream key); returns *into*."""
    for key, count in more.items():
        into[key] = into.get(key, 0) + count
    return into


def compare_draws(a: dict[str, int], b: dict[str, int]) -> list[str]:
    """Stream-by-stream divergence between two draw reports.

    Empty means the two runs consumed every stream identically — the
    serial vs ``--jobs N`` draw-count invariant.
    """
    problems = []
    for key in sorted(set(a) | set(b)):
        left, right = a.get(key, 0), b.get(key, 0)
        if left != right:
            problems.append(f"draw-count divergence on {key!r}: {left} != {right}")
    return problems


# -- merge-point ordering guard ----------------------------------------------


def checked_merge(items, label: str):
    """Pass-through guard for seed-order merge points.

    Records an unordered-merge hazard when *items* is a ``set`` or
    ``frozenset`` — iteration order would leak into the folded result.
    Returns *items* unchanged either way.
    """
    if _armed and isinstance(items, (set, frozenset)):
        _record(
            ("unordered-merge", label),
            f"unordered merge: {label} received a {type(items).__name__} "
            f"(iteration order is not deterministic) — use a list/tuple in "
            f"seed order",
        )
    return items


def summary() -> str:
    """One line for the CLI: streams, draws, violations."""
    total = sum(_draws.values())
    verdict = "ok" if ok() else f"{len(_violations)} violation(s)"
    return f"sanitizer: {len(_draws)} stream(s), {total} draw(s), {verdict}"
