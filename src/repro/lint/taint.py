"""Interprocedural nondeterminism taint: does host state reach sim state?

The file-local *wall-clock* / *entropy* rules flag every syntactic
reference — which is why ``repro.util.clock`` needs an allowlist (its
whole job is reading the clock) and why a helper that launders
``time.time()`` through a return value is invisible to them.  This
pass tracks the *value* instead:

**Sources** — expressions that materialise host state:

* wall-clock reads (``time.time`` & friends, ``datetime.now``, and —
  transitively, via the call graph — the ``repro.util.clock`` helpers
  that wrap them);
* OS entropy (``os.urandom``, ``uuid.uuid4``, ``secrets.*``);
* the process environment (``os.environ[...]``, ``os.getenv``);
* builtin ``hash()`` (PYTHONHASHSEED-randomised on strings — the exact
  bug class ``repro.util.stablehash`` exists to kill).

**Propagation** — assignments, arithmetic, f-strings, transparent
builtins (``int``, ``max``, ...), and *call edges*: every function
gets a return summary ("returns wall-clock taint", "returns whatever
parameter 1 was"), iterated to a fixpoint over the call graph, so a
tainted value survives any depth of helper laundering.

**Sinks** — where a tainted value becomes simulation state:

* attribute stores (``self.offset = tainted``) and subscript stores
  (``state[k] = tainted``) in sim-path modules;
* seed positions: the first argument of ``child_rng`` / ``root_rng``
  or any ``seed=`` keyword anywhere;
* call frontiers: passing a tainted argument to a parameter that
  (transitively) reaches one of the above inside the callee.

A finding is emitted at the sim-path frontier where source-tainted
data meets a sink — so ``repro.util.clock`` consumers that only
*display* timings (``started = wall_timer(); print(...)``) are clean
(fewer false positives than the syntactic rule), while a helper chain
that feeds ``time.time()`` into an engine attribute or an RNG seed is
flagged at the exact call that commits the value (real positives the
syntactic rule could never see).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import (
    FunctionInfo,
    ModuleInfo,
    Project,
    ProjectPass,
    TRANSPARENT_CALLS,
)
from repro.lint.engine import Finding
from repro.lint.rules import _ENTROPY, _WALL_CLOCK

WALL_CLOCK = "wall-clock"
ENTROPY = "entropy"
ENVIRON = "environ"
BUILTIN_HASH = "builtin-hash"

_SOURCE_LABELS = (WALL_CLOCK, ENTROPY, ENVIRON, BUILTIN_HASH)

_ENVIRON_CALLS = {"os.getenv", "os.environ.get", "os.environ.pop"}

# Seeded-factory entry points: their first argument is a seed sink.
_SEED_FACTORIES = {
    "repro.util.rng.child_rng",
    "repro.util.rng.root_rng",
    "random.Random",
}


def _source_label(raw: str | None) -> str | None:
    """Taint label for a direct stdlib source call, if any."""
    if raw is None:
        return None
    if raw in _WALL_CLOCK:
        return WALL_CLOCK
    if raw in _ENTROPY or raw.startswith("secrets."):
        return ENTROPY
    if raw in _ENVIRON_CALLS:
        return ENVIRON
    if raw == "hash":
        return BUILTIN_HASH
    return None


class _FunctionTaint(ast.NodeVisitor):
    """Flow-insensitive local taint for one function.

    ``var_taint`` maps local names to label sets; labels are source
    strings or ``("param", i)`` markers.  The walk runs to a local
    fixpoint (assignments out of source order converge in a couple of
    sweeps) against the current global summaries, which the
    interprocedural driver iterates to *its* fixpoint.
    """

    def __init__(self, fn: FunctionInfo, module: ModuleInfo, pass_: "TaintPass") -> None:
        self.fn = fn
        self.module = module
        self.pass_ = pass_
        self.var_taint: dict[str, frozenset] = {
            name: frozenset({("param", i)}) for i, name in enumerate(fn.params)
        }
        self.returns: frozenset = frozenset()
        self.sink_events: list[tuple[ast.AST, frozenset, str]] = []

    # -- expression taint -----------------------------------------------------

    def taint_of(self, node: ast.AST) -> frozenset:
        if isinstance(node, ast.Name):
            return self.var_taint.get(node.id, frozenset())
        if isinstance(node, ast.Call):
            return self._call_taint(node)
        if isinstance(node, ast.Attribute):
            dotted = self.module.resolve(node)
            if dotted and dotted.startswith("os.environ"):
                return frozenset({ENVIRON})
            return frozenset()
        if isinstance(node, ast.Subscript):
            base = self.module.resolve(node.value)
            if base and base.startswith("os.environ"):
                return frozenset({ENVIRON})
            return self.taint_of(node.value)
        if isinstance(node, (ast.BinOp,)):
            return self.taint_of(node.left) | self.taint_of(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.taint_of(node.operand)
        if isinstance(node, ast.BoolOp):
            out: frozenset = frozenset()
            for value in node.values:
                out |= self.taint_of(value)
            return out
        if isinstance(node, ast.Compare):
            out = self.taint_of(node.left)
            for comp in node.comparators:
                out |= self.taint_of(comp)
            return out
        if isinstance(node, ast.IfExp):
            return self.taint_of(node.body) | self.taint_of(node.orelse)
        if isinstance(node, ast.JoinedStr):
            out = frozenset()
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    out |= self.taint_of(value.value)
            return out
        if isinstance(node, ast.FormattedValue):
            return self.taint_of(node.value)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = frozenset()
            for elt in node.elts:
                out |= self.taint_of(elt)
            return out
        if isinstance(node, ast.Starred):
            return self.taint_of(node.value)
        if isinstance(node, ast.NamedExpr):
            return self.taint_of(node.value)
        return frozenset()

    def _call_taint(self, node: ast.Call) -> frozenset:
        site = self._site_for(node)
        raw = site.raw if site else None
        label = _source_label(raw)
        if label is not None:
            return frozenset({label})
        if raw in TRANSPARENT_CALLS:
            out: frozenset = frozenset()
            for arg in node.args:
                out |= self.taint_of(arg)
            return out
        target = site.target if site else None
        if target is None:
            return frozenset()
        summary = self.pass_.returns.get(target, frozenset())
        out = frozenset(l for l in summary if not isinstance(l, tuple))
        for entry in summary:
            if isinstance(entry, tuple) and entry[0] == "param":
                arg = self._arg_at(node, target, entry[1])
                if arg is not None:
                    out |= self.taint_of(arg)
        return out

    def _site_for(self, node: ast.Call):
        for site in self.fn.calls:
            if site.node is node:
                return site
        return None

    def _arg_at(self, node: ast.Call, target: str, index: int) -> ast.AST | None:
        """The argument expression feeding callee parameter *index*."""
        callee = self.pass_.project.functions.get(target)
        if callee is None:
            return None
        positional = list(node.args)
        # Method call through an instance: `obj.m(a)` binds a at param 1.
        if callee.class_name is not None and not self._is_direct_ref(node, callee):
            positional = [None] + positional  # type: ignore[list-item]
        if index < len(positional):
            return positional[index]
        if index < len(callee.params):
            wanted = callee.params[index]
            for kw in node.keywords:
                if kw.arg == wanted:
                    return kw.value
        return None

    def _is_direct_ref(self, node: ast.Call, callee: FunctionInfo) -> bool:
        """True when the call names the function (not a bound method)."""
        return isinstance(node.func, ast.Name) and callee.class_name is None

    # -- statements -----------------------------------------------------------

    def _store(self, target: ast.AST, taint: frozenset, what: str) -> None:
        if not taint:
            return
        if isinstance(target, ast.Name):
            self.var_taint[target.id] = self.var_taint.get(target.id, frozenset()) | taint
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            base = target.value if isinstance(target, ast.Subscript) else target
            dotted = self.module.resolve(base)
            if dotted and dotted.startswith("os.environ"):
                return  # writing the environment back is not sim state
            self.sink_events.append((target, taint, what))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._store(elt, taint, what)

    def visit_Assign(self, node: ast.Assign) -> None:
        taint = self.taint_of(node.value)
        for target in node.targets:
            kind = "attribute" if isinstance(target, ast.Attribute) else "subscript"
            self._store(target, taint, kind)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            kind = "attribute" if isinstance(node.target, ast.Attribute) else "subscript"
            self._store(node.target, self.taint_of(node.value), kind)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        kind = "attribute" if isinstance(node.target, ast.Attribute) else "subscript"
        self._store(node.target, self.taint_of(node.value), kind)
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self.returns |= self.taint_of(node.value)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        site = self._site_for(node)
        raw = site.raw if site else None
        # Seed sinks: child_rng(tainted, ...) / Random(tainted) / seed=.
        if raw in _SEED_FACTORIES or (site and site.target in _SEED_FACTORIES):
            if node.args:
                taint = self.taint_of(node.args[0])
                if taint:
                    self.sink_events.append((node, taint, "seed"))
        for kw in node.keywords:
            if kw.arg == "seed":
                taint = self.taint_of(kw.value)
                if taint:
                    self.sink_events.append((node, taint, "seed"))
        self.generic_visit(node)

    # Nested defs keep their own scope; don't leak locals across.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node is not self.fn.node:
            return
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def run(self) -> None:
        for _sweep in range(2):  # converge out-of-order local flows
            before = dict(self.var_taint)
            self.sink_events.clear()
            self.returns = frozenset()
            self.visit(self.fn.node)
            if self.var_taint == before:
                break


class TaintPass(ProjectPass):
    name = "taint"
    summary = "interprocedural nondeterminism taint (host state reaching sim state)"

    RULE = "taint-flow"

    def __init__(self) -> None:
        self.project: Project | None = None
        self.returns: dict[str, frozenset] = {}
        self.param_sinks: dict[str, frozenset] = {}

    def check(self, project: Project) -> Iterator[Finding]:
        self.project = project
        self.returns = {q: frozenset() for q in project.functions}
        self.param_sinks = {q: frozenset() for q in project.functions}
        analyses = self._fixpoint(project)
        yield from self._report(project, analyses)

    # -- interprocedural fixpoint --------------------------------------------

    def _fixpoint(self, project: Project) -> dict[str, _FunctionTaint]:
        analyses: dict[str, _FunctionTaint] = {}
        for _round in range(6):
            changed = False
            for module in project.modules.values():
                for qual in module.function_order():
                    fn = module.functions[qual]
                    analysis = _FunctionTaint(fn, module, self)
                    analysis.run()
                    analyses[qual] = analysis
                    new_returns = frozenset(
                        entry for entry in analysis.returns
                        if isinstance(entry, tuple) or entry in _SOURCE_LABELS
                    )
                    if new_returns != self.returns[qual]:
                        self.returns[qual] = new_returns
                        changed = True
                    new_sinks = self._param_sinks_of(fn, analysis)
                    if new_sinks != self.param_sinks[qual]:
                        self.param_sinks[qual] = new_sinks
                        changed = True
            if not changed:
                break
        return analyses

    def _param_sinks_of(self, fn: FunctionInfo, analysis: _FunctionTaint) -> frozenset:
        """Indices of *fn*'s params that reach a sink inside it."""
        sinks: set[int] = set()
        for _node, taint, _what in analysis.sink_events:
            for entry in taint:
                if isinstance(entry, tuple) and entry[0] == "param":
                    sinks.add(entry[1])
        # Transitive: a param passed on to a sinking parameter.
        for site in fn.calls:
            if site.target is None:
                continue
            callee_sinks = self.param_sinks.get(site.target, frozenset())
            if not callee_sinks:
                continue
            for index in callee_sinks:
                arg = analysis._arg_at(site.node, site.target, index)
                if arg is None:
                    continue
                for entry in analysis.taint_of(arg):
                    if isinstance(entry, tuple) and entry[0] == "param":
                        sinks.add(entry[1])
        return frozenset(sinks)

    # -- reporting ------------------------------------------------------------

    def _report(
        self, project: Project, analyses: dict[str, _FunctionTaint]
    ) -> Iterator[Finding]:
        for module in project.modules.values():
            if not module.is_sim:
                continue
            for qual in module.function_order():
                analysis = analyses[qual]
                fn = module.functions[qual]
                # Direct sinks: source-tainted value stored locally.
                for node, taint, what in analysis.sink_events:
                    labels = sorted(l for l in taint if l in _SOURCE_LABELS)
                    if not labels:
                        continue
                    yield module.finding(
                        self.RULE, node,
                        f"{'/'.join(labels)}-derived value reaches sim state "
                        f"({what} store) — results must be a pure function "
                        f"of the seed",
                    )
                # Call frontiers: tainted argument into a sinking param.
                for site in fn.calls:
                    if site.target is None:
                        continue
                    for index in sorted(self.param_sinks.get(site.target, ())):
                        arg = analysis._arg_at(site.node, site.target, index)
                        if arg is None:
                            continue
                        labels = sorted(
                            l for l in analysis.taint_of(arg) if l in _SOURCE_LABELS
                        )
                        if not labels:
                            continue
                        callee = project.functions[site.target]
                        pname = (
                            callee.params[index]
                            if index < len(callee.params) else f"#{index}"
                        )
                        yield module.finding(
                            self.RULE, site.node,
                            f"{'/'.join(labels)}-derived argument flows into "
                            f"sim state via {callee.qualname}({pname}=...)",
                        )
