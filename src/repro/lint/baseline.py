"""The suppression baseline: grandfathered findings, pinned by fingerprint.

A baseline file holds one fingerprint per line (trailing context is
informational), so adopting a new rule on an old codebase is a
two-step: ``repro-lint --update-baseline`` pins today's findings,
and from then on only *new* findings fail the build.  The repository
ships with an **empty** baseline (``.repro-lint-baseline``) — the
initial clean-up sweep fixed everything — and keeping it empty is the
point: every entry is a debt with a fingerprint on it.

Fingerprints come from :meth:`repro.lint.engine.Finding.fingerprint`
(path tail + rule + source line), so they survive line-number drift;
entries whose finding disappeared are reported as *stale* so the file
shrinks back.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.lint.engine import Finding

_HEADER = [
    "# repro-lint suppression baseline.",
    "# One grandfathered finding per line: <fingerprint> <location> <rule>: <message>",
    "# Regenerate with: repro-lint <paths> --update-baseline",
    "# Keep this file empty: every entry is suppressed technical debt.",
]


def load_baseline(path) -> set[str]:
    """Fingerprints in the baseline file ({} when absent)."""
    path = Path(path)
    if not path.exists():
        return set()
    fingerprints: set[str] = set()
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fingerprints.add(line.split()[0])
    return fingerprints


def write_baseline(findings: Iterable[Finding], path) -> int:
    """Pin *findings* into the baseline file; returns the entry count."""
    path = Path(path)
    entries: dict[str, str] = {}
    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        entries.setdefault(
            finding.fingerprint(),
            f"{finding.fingerprint()} {finding.path}:{finding.line} "
            f"{finding.rule}: {finding.message}",
        )
    lines = list(_HEADER) + list(entries.values())
    path.write_text("\n".join(lines) + "\n")
    return len(entries)


def apply_baseline(
    findings: list[Finding], fingerprints: set[str]
) -> tuple[list[Finding], int, set[str]]:
    """Split *findings* against the baseline.

    Returns ``(kept, suppressed_count, stale_fingerprints)`` — *kept*
    are the findings that should fail the run; *stale* entries no
    longer match anything and can be deleted from the file.
    """
    kept = [f for f in findings if f.fingerprint() not in fingerprints]
    suppressed = len(findings) - len(kept)
    stale = fingerprints - {f.fingerprint() for f in findings}
    return kept, suppressed, stale
