"""SARIF 2.1.0 serialisation for ``repro-lint`` findings.

Static Analysis Results Interchange Format is what CI annotation
surfaces (GitHub code scanning, most IDE problem panes) ingest, so the
lint job uploads one ``repro-lint.sarif`` artifact per run.  We emit
the minimal valid shape: one run, one tool driver, a rule table built
from whichever rules/passes actually fired plus the registered
catalogues, and one result per finding with a ``partialFingerprints``
entry carrying the same baseline fingerprint the text pipeline uses —
so a SARIF consumer's dedup agrees with ``.repro-lint-baseline``.
"""

from __future__ import annotations

import json

from repro.lint.engine import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
FINGERPRINT_KEY = "reproLint/v1"


def _rule_catalogue() -> dict[str, str]:
    """rule id -> short description, from rules and passes."""
    from repro.lint.passes import default_passes
    from repro.lint.rules import default_rules

    catalogue: dict[str, str] = {}
    for rule in default_rules():
        catalogue[rule.name] = rule.summary
    for pass_ in default_passes():
        # A pass may emit under several rule ids; register the ones
        # its module declares.
        for attr in ("RULE",):
            rule_id = getattr(pass_, attr, None)
            if rule_id:
                catalogue[rule_id] = pass_.summary
    from repro.lint import locks, streams, units

    catalogue.setdefault(locks.ORDER_RULE, "lock-order cycle (potential deadlock)")
    catalogue.setdefault(locks.LEAK_RULE, "lock leaked on an exception edge")
    catalogue.setdefault(units.RULE, "cross-unit time arithmetic")
    catalogue.setdefault(streams.PURPOSE_RULE, "unregistered child_rng purpose")
    catalogue.setdefault(streams.SCOPE_RULE, "sanitizer scope discipline")
    return catalogue


def to_sarif(findings: list[Finding], tool_version: str = "0") -> dict:
    """One SARIF ``log`` dict for *findings*."""
    catalogue = _rule_catalogue()
    fired = sorted({f.rule for f in findings})
    rule_ids = sorted(set(catalogue) | set(fired))
    index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    rules = [
        {
            "id": rule_id,
            "shortDescription": {
                "text": catalogue.get(rule_id, rule_id),
            },
        }
        for rule_id in rule_ids
    ]
    results = [
        {
            "ruleId": f.rule,
            "ruleIndex": index[f.rule],
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path.replace("\\", "/")},
                        "region": {
                            "startLine": max(f.line, 1),
                            "startColumn": max(f.col, 0) + 1,
                        },
                    }
                }
            ],
            "partialFingerprints": {FINGERPRINT_KEY: f.fingerprint()},
        }
        for f in findings
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro-lint",
                        "version": tool_version,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(findings: list[Finding]) -> str:
    return json.dumps(to_sarif(findings), indent=2, sort_keys=True)
