"""Time-unit dimensional analysis over the virtual timeline.

The simulation prices work in three currencies — integer nanoseconds
(`*_ns`), fabric ticks (`*_ticks`, 50us each), and CPU cycles
(`*_cycles`) — and the load driver multiplies between them constantly.
Mixing them silently is the single easiest way to corrupt a figure
(the paper's throughput-vs-latency curves are built from exactly these
quantities), so this pass makes the units a checked convention:

**Declarations are names.**  A suffix declares a unit: ``_ns``,
``_us``, ``_ms``, ``_s``, ``_ticks``, ``_cycles`` on variables,
attributes, and parameters.  Conversion *factors* are declared by
pairing two unit words — ``TICK_NS`` / ``tick_ns`` ("ns per tick"),
``NS_PER_MS`` — and conversion *functions* by the ``a_to_b`` shape
(``us_to_ns``), which is the :mod:`repro.util.timeunits` naming
scheme.

**Checks.**  Adding, subtracting or comparing two quantities of
*known, different* units flags; so does assigning a known unit to a
name suffixed with a different one, passing one where a resolved
callee's parameter is suffixed with another, or feeding ``a_to_b`` a
non-``a`` argument.  Multiplying or dividing by a conversion factor
converts (``ticks * TICK_NS -> ns``, ``ns // TICK_NS -> ticks``);
multiplying by a bare literal does *not* — ``timeout_ms * 1_000_000``
stays milliseconds until it hits an ``_ns`` name and flags, which is
precisely the load-driver bug class this pass exists for.

**Noise control.**  Unknown units propagate silently (scaling by a
count, ratios of like units, anything the suffix convention doesn't
cover), and a flagged expression yields *unknown* so one bug produces
one finding.  ``repro/util/timeunits.py`` itself is exempt — its
bodies are the cross-unit arithmetic, by definition — and
:data:`UNIT_EXCEPTIONS` is the registry for names whose suffix is a
false friend.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import (
    TRANSPARENT_CALLS,
    FunctionInfo,
    ModuleInfo,
    Project,
    ProjectPass,
)
from repro.lint.engine import Finding

RULE = "unit-mismatch"

# Names whose unit-like suffix does not declare a time unit.  Keep this
# registry small and commented — every entry is a naming debt.
UNIT_EXCEPTIONS = frozenset({
    "ns",      # a bare `ns` is usually a namespace, not nanoseconds
})

# Modules (matched on dotted-name tail) whose whole point is cross-unit
# arithmetic: the conversion helpers themselves.
EXEMPT_MODULE_TAILS = ("timeunits",)

_UNIT_WORDS = {
    "ns": "ns", "nanos": "ns",
    "us": "us", "micros": "us",
    "ms": "ms", "millis": "ms",
    "s": "s", "sec": "s", "secs": "s", "seconds": "s",
    "tick": "ticks", "ticks": "ticks",
    "cycle": "cycles", "cycles": "cycles",
}

# A unit is a plain string ("ns"); a conversion factor is
# ("conv", numerator_unit, denominator_unit): TICK_NS == ("conv",
# "ns", "ticks") reads "ns per tick".  None means unknown.


def unit_of_name(name: str | None):
    """Unit (or conversion factor) declared by *name*'s shape."""
    if not name or name in UNIT_EXCEPTIONS:
        return None
    words = [w for w in name.lower().split("_") if w]
    if not words:
        return None
    if len(words) == 3 and words[1] == "per":
        num = _UNIT_WORDS.get(words[0])
        den = _UNIT_WORDS.get(words[2])
        if num and den and num != den:
            return ("conv", num, den)
    if "per" in words:
        return None  # a rate over a non-time denominator (us per record)
    if len(words) == 2:
        first = _UNIT_WORDS.get(words[0])
        second = _UNIT_WORDS.get(words[1])
        if first and second and first != second:
            # ``TICK_NS`` reads "ns per tick": the value is in ns.
            return ("conv", second, first)
    last = _UNIT_WORDS.get(words[-1])
    if last is None:
        return None
    if words == ["s"]:
        return None  # a bare `s` is almost always a string
    return last


def _converter_units(tail: str):
    """``us_to_ns`` -> ("us", "ns"); None when not that shape."""
    if "_to_" not in tail:
        return None
    src, _, dst = tail.partition("_to_")
    src_u = _UNIT_WORDS.get(src)
    dst_u = _UNIT_WORDS.get(dst)
    if src_u and dst_u:
        return (src_u, dst_u)
    return None


def _is_plain(unit) -> bool:
    return isinstance(unit, str)


class _FunctionUnits:
    """One forward sweep over a function body, tracking name units."""

    def __init__(self, fn: FunctionInfo, module: ModuleInfo, project: Project):
        self.fn = fn
        self.module = module
        self.project = project
        self.sites = {site.node: site for site in fn.calls}
        self.var_units: dict[str, object] = {}
        for param in fn.params:
            unit = unit_of_name(param)
            if unit is not None:
                self.var_units[param] = unit
        self.findings: list[Finding] = []

    def run(self) -> list[Finding]:
        self._walk(list(self.fn.node.body))
        return self.findings

    # -- statements -----------------------------------------------------------

    def _walk(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are analysed as their own functions
        if isinstance(stmt, ast.Assign):
            unit = self.unit_of(stmt.value)
            for target in stmt.targets:
                self._store(target, unit)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._store(stmt.target, self.unit_of(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            unit = self.unit_of(stmt.value)
            name = self._target_name(stmt.target)
            target_unit = self.var_units.get(name) if name else None
            if target_unit is None:
                target_unit = unit_of_name(name)
            if (
                isinstance(stmt.op, (ast.Add, ast.Sub))
                and _is_plain(target_unit)
                and _is_plain(unit)
                and target_unit != unit
            ):
                self._flag(
                    stmt,
                    f"augmenting {target_unit} name {name!r} with a {unit} "
                    f"value — convert explicitly (repro.util.timeunits)",
                )
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                unit = self.unit_of(stmt.value)
                declared = unit_of_name(self.fn.node.name)
                if (
                    _is_plain(declared)
                    and _is_plain(unit)
                    and declared != unit
                ):
                    self._flag(
                        stmt,
                        f"function {self.fn.node.name!r} declares {declared} "
                        f"by suffix but returns a {unit} value",
                    )
        elif isinstance(stmt, (ast.If, ast.While)):
            self.unit_of(stmt.test)
            self._walk(stmt.body)
            self._walk(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.unit_of(stmt.iter)
            self._walk(stmt.body)
            self._walk(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.unit_of(item.context_expr)
            self._walk(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._walk(stmt.body)
            for handler in stmt.handlers:
                self._walk(handler.body)
            self._walk(stmt.orelse)
            self._walk(stmt.finalbody)
        elif isinstance(stmt, ast.Expr):
            self.unit_of(stmt.value)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.unit_of(child)

    def _target_name(self, target: ast.AST) -> str | None:
        if isinstance(target, ast.Name):
            return target.id
        if isinstance(target, ast.Attribute):
            return target.attr
        return None

    def _store(self, target: ast.AST, unit) -> None:
        name = self._target_name(target)
        if name is None:
            if isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    self._store(elt, None)
            return
        declared = unit_of_name(name)
        if _is_plain(declared) and _is_plain(unit) and declared != unit:
            self._flag(
                target,
                f"assigning a {unit} value to {declared}-suffixed name "
                f"{name!r} — convert explicitly (repro.util.timeunits)",
            )
        if isinstance(target, ast.Name):
            self.var_units[name] = declared if declared is not None else unit

    # -- expressions ----------------------------------------------------------

    def unit_of(self, node: ast.AST):
        if isinstance(node, ast.Constant):
            return None
        if isinstance(node, ast.Name):
            if node.id in self.var_units:
                return self.var_units[node.id]
            return unit_of_name(node.id)
        if isinstance(node, ast.Attribute):
            self.unit_of(node.value)
            return unit_of_name(node.attr)
        if isinstance(node, ast.BinOp):
            return self._binop(node)
        if isinstance(node, ast.UnaryOp):
            return self.unit_of(node.operand)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Compare):
            self._compare(node)
            return None
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self.unit_of(value)
            return None
        if isinstance(node, ast.IfExp):
            self.unit_of(node.test)
            body = self.unit_of(node.body)
            other = self.unit_of(node.orelse)
            if _is_plain(body) and _is_plain(other) and body != other:
                self._flag(
                    node,
                    f"conditional expression yields {body} on one branch "
                    f"and {other} on the other",
                )
                return None
            return body if body is not None else other
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                self.unit_of(elt)
            return None
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self.unit_of(key)
            for value in node.values:
                self.unit_of(value)
            return None
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            self.unit_of(node.elt)
            return None
        if isinstance(node, ast.DictComp):
            self.unit_of(node.key)
            self.unit_of(node.value)
            return None
        if isinstance(node, ast.Subscript):
            self.unit_of(node.value)
            return None
        if isinstance(node, ast.Starred):
            return self.unit_of(node.value)
        if isinstance(node, ast.NamedExpr):
            unit = self.unit_of(node.value)
            self._store(node.target, unit)
            return unit
        return None

    def _binop(self, node: ast.BinOp):
        left = self.unit_of(node.left)
        right = self.unit_of(node.right)
        op = node.op
        if isinstance(op, ast.Mult):
            for conv, other, other_node in (
                (left, right, node.right), (right, left, node.left),
            ):
                if isinstance(conv, tuple):
                    num, den = conv[1], conv[2]
                    if _is_plain(other) and other != den:
                        self._flag(
                            node,
                            f"multiplying a {other} value by a "
                            f"{num}-per-{den[:-1]} factor",
                        )
                        return None
                    return num
            # Scaling a known unit by a count keeps the unit — this is
            # what walks `timeout_ms * 1_000_000` into an `_ns` name.
            if _is_plain(left) and right is None:
                return left
            if _is_plain(right) and left is None:
                return right
            return None  # two plain units: area-like, out of scope
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            if isinstance(right, tuple):
                num, den = right[1], right[2]
                if _is_plain(left) and left != num:
                    self._flag(
                        node,
                        f"dividing a {left} value by a "
                        f"{num}-per-{den[:-1]} factor",
                    )
                    return None
                return den
            if _is_plain(left) and right is None:
                return left  # dividing by a count
            return None  # like-unit ratios and per-count rates: unknown
        if isinstance(op, (ast.Add, ast.Sub)):
            if _is_plain(left) and _is_plain(right) and left != right:
                word = "adding" if isinstance(op, ast.Add) else "subtracting"
                self._flag(
                    node,
                    f"{word} {left} and {right} quantities — convert "
                    f"explicitly (repro.util.timeunits)",
                )
                return None
            if _is_plain(left):
                return left
            if _is_plain(right):
                return right
            return None
        if isinstance(op, ast.Mod):
            if isinstance(right, tuple) and _is_plain(left):
                return left if left == right[1] else None
            if _is_plain(left) and _is_plain(right) and left != right:
                self._flag(
                    node, f"remainder of {left} by {right} quantities"
                )
                return None
            return left if _is_plain(left) else None
        return None

    def _compare(self, node: ast.Compare) -> None:
        units = [self.unit_of(node.left)]
        units += [self.unit_of(comp) for comp in node.comparators]
        plain = sorted({u for u in units if _is_plain(u)})
        if len(plain) > 1:
            self._flag(
                node,
                f"comparing {' and '.join(plain)} quantities — convert "
                f"to one unit first",
            )

    def _call(self, node: ast.Call):
        site = self.sites.get(node)
        raw = site.raw if site else None
        tail = raw.split(".")[-1] if raw else None
        arg_units = [self.unit_of(arg) for arg in node.args]
        kw_units = {
            kw.arg: self.unit_of(kw.value)
            for kw in node.keywords
            if kw.arg is not None
        }
        for kw in node.keywords:
            if kw.arg is None:
                self.unit_of(kw.value)

        if tail:
            converted = _converter_units(tail)
            if converted is not None:
                src, dst = converted
                if node.args and _is_plain(arg_units[0]) and arg_units[0] != src:
                    self._flag(
                        node,
                        f"{tail}() converts from {src} but the argument "
                        f"is {arg_units[0]}",
                    )
                return dst
            if tail in TRANSPARENT_CALLS:
                plain = sorted({u for u in arg_units if _is_plain(u)})
                if tail in ("max", "min", "sum") and len(plain) > 1:
                    self._flag(
                        node,
                        f"{tail}() over mixed {' and '.join(plain)} "
                        f"quantities",
                    )
                    return None
                return plain[0] if len(plain) == 1 else None

        target = site.target if site else None
        callee = self.project.functions.get(target) if target else None
        if callee is not None:
            offset = 1 if callee.params and callee.params[0] in ("self", "cls") else 0
            for index, unit in enumerate(arg_units):
                pos = index + offset
                if pos >= len(callee.params):
                    break
                declared = unit_of_name(callee.params[pos])
                if _is_plain(declared) and _is_plain(unit) and declared != unit:
                    self._flag(
                        node.args[index],
                        f"passing a {unit} value where {callee.qualname} "
                        f"expects {declared} ({callee.params[pos]!r})",
                    )
            for name, unit in sorted(kw_units.items()):
                declared = unit_of_name(name)
                if _is_plain(declared) and _is_plain(unit) and declared != unit:
                    self._flag(
                        node,
                        f"passing a {unit} value as {name}= to "
                        f"{callee.qualname}",
                    )
        else:
            # Even unresolved calls get the keyword-suffix check: the
            # keyword name itself declares what the callee expects.
            for name, unit in sorted(kw_units.items()):
                declared = unit_of_name(name)
                if _is_plain(declared) and _is_plain(unit) and declared != unit:
                    self._flag(
                        node, f"passing a {unit} value as {name}="
                    )
        if tail:
            declared = unit_of_name(tail)
            if _is_plain(declared):
                return declared  # elapsed_ns() and friends
        return None

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(self.module.finding(RULE, node, message))


class UnitsPass(ProjectPass):
    name = "units"
    summary = "cross-unit time arithmetic without explicit conversion"

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules.values():
            if module.name.rpartition(".")[2] in EXEMPT_MODULE_TAILS:
                continue
            for qual in module.function_order():
                fn = module.functions[qual]
                yield from _FunctionUnits(fn, module, project).run()
