"""The rule engine behind ``repro-lint``.

One file, one parse, every rule: the engine reads a Python source
file, builds an :class:`ast` tree plus an import-alias map, classifies
the file as *sim path* or not, and hands a :class:`FileContext` to
each registered :class:`Rule`.  Rules yield :class:`Finding`\\ s;
the engine filters pragma-suppressed lines and returns the rest in
``(line, col, rule)`` order — the whole pipeline is deterministic, as
befits a determinism linter.

Sim-path classification: a file is simulation code unless it looks
like a test (``test_*.py``, ``conftest.py``, anything under a
``tests``/``benchmarks`` directory).  Rules with ``sim_only = True``
(wall-clock, rng-factory, float-eq, pool-seed) only run on sim paths —
a test constructing its own ``random.Random(0)`` is deterministic and
fine; library code must use the seeded factories.

Suppression, narrowest first:

* inline pragma ``# repro-lint: disable=rule-a,rule-b`` (or a bare
  ``disable``) on the flagged line;
* file pragma ``# repro-lint: skip-file`` in the first ten lines;
* the checked-in fingerprint baseline (:mod:`repro.lint.baseline`)
  for grandfathered findings.

Fingerprints hash the last two path components, the rule name, and
the stripped source line — stable across line-number drift and
checkout location, so a baseline survives unrelated edits.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

FILE_PRAGMA = "repro-lint: skip-file"
LINE_PRAGMA = "repro-lint: disable"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    snippet: str = ""

    def fingerprint(self) -> str:
        """Baseline key: stable across line drift and checkout roots."""
        tail = "/".join(Path(self.path).parts[-2:])
        raw = f"{tail}|{self.rule}|{self.snippet}".encode()
        return hashlib.sha1(raw).hexdigest()[:16]

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


@dataclass(frozen=True)
class LintConfig:
    """Engine configuration (all tuples so the config is hashable)."""

    # Run only these rule names (None = every registered rule).
    select: tuple[str, ...] | None = None
    # Modules where reading the host clock is legal.
    wall_clock_allowlist: tuple[str, ...] = ("repro/util/clock.py",)
    # Modules allowed to construct random.Random (the factory itself
    # and the sanitizer's subclass machinery).
    rng_factory_allowlist: tuple[str, ...] = (
        "repro/util/rng.py",
        "repro/lint/sanitizer.py",
    )
    # Directory names never descended into (the lint fixture corpus is
    # intentionally dirty).
    exclude_parts: tuple[str, ...] = (
        "lint_fixtures",
        "__pycache__",
        ".git",
        "build",
        "dist",
    )
    # Override sim-path classification (None = classify by path).
    treat_as_sim: bool | None = None

    def is_sim_path(self, path: Path) -> bool:
        if self.treat_as_sim is not None:
            return self.treat_as_sim
        if path.name.startswith("test_") or path.name == "conftest.py":
            return False
        return not (set(path.parts) & {"tests", "benchmarks"})

    def allows(self, allowlist: tuple[str, ...], path: Path) -> bool:
        posix = path.as_posix()
        return any(posix.endswith(entry) for entry in allowlist)


@dataclass
class FileContext:
    """Everything a rule needs about the file under analysis."""

    path: Path
    display_path: str
    lines: list[str]
    tree: ast.AST
    config: LintConfig
    is_sim: bool
    aliases: dict[str, str]

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted name of a Name/Attribute chain with import aliases
        applied (``from time import time as t`` makes ``t`` resolve to
        ``time.time``); None for anything that isn't a plain chain."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(self.aliases.get(node.id, node.id))
        return ".".join(reversed(parts))

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1) or 1
        col = getattr(node, "col_offset", 0) or 0
        snippet = self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        return Finding(self.display_path, line, col, rule, message, snippet)


class Rule:
    """Base class: subclasses set the metadata and implement check()."""

    name: str = ""
    summary: str = ""
    sim_only: bool = False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError


def _collect_aliases(tree: ast.AST) -> dict[str, str]:
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def _line_suppressed(finding: Finding, lines: list[str]) -> bool:
    if not (0 < finding.line <= len(lines)):
        return False
    line = lines[finding.line - 1]
    idx = line.find(LINE_PRAGMA)
    if idx < 0:
        return False
    rest = line[idx + len(LINE_PRAGMA):].strip()
    if not rest.startswith("="):
        return True  # bare "disable": everything on this line
    names = {name.strip() for name in rest[1:].split(",")}
    return finding.rule in names


def iter_python_files(paths: Iterable, config: LintConfig) -> Iterator[Path]:
    """Every ``.py`` file under *paths*, sorted, excludes applied."""
    excluded = set(config.exclude_parts)
    seen: set[Path] = set()
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            candidates = sorted(entry.rglob("*.py"))
        else:
            candidates = [entry]
        for path in candidates:
            if set(path.parts) & excluded:
                continue
            key = path.resolve()
            if key in seen:
                continue
            seen.add(key)
            yield path


class LintEngine:
    """Runs a rule set over files; the ``repro-lint`` CLI wraps this."""

    def __init__(self, rules=None, config: LintConfig | None = None) -> None:
        from repro.lint.rules import default_rules

        self.config = config or LintConfig()
        rules = list(rules) if rules is not None else default_rules()
        if self.config.select is not None:
            known = {rule.name for rule in rules}
            unknown = set(self.config.select) - known
            if unknown:
                raise ValueError(
                    f"unknown rule(s) {', '.join(sorted(unknown))}; "
                    f"known: {', '.join(sorted(known))}"
                )
            rules = [rule for rule in rules if rule.name in self.config.select]
        self.rules = rules

    def lint_source(self, source: str, path, display_path: str | None = None) -> list[Finding]:
        path = Path(path)
        display = display_path or str(path)
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            return [
                Finding(display, exc.lineno or 1, 0, "parse-error",
                        f"syntax error: {exc.msg}")
            ]
        lines = source.splitlines()
        if any(FILE_PRAGMA in line for line in lines[:10]):
            return []
        ctx = FileContext(
            path=path,
            display_path=display,
            lines=lines,
            tree=tree,
            config=self.config,
            is_sim=self.config.is_sim_path(path),
            aliases=_collect_aliases(tree),
        )
        findings: list[Finding] = []
        for rule in self.rules:
            if rule.sim_only and not ctx.is_sim:
                continue
            findings.extend(rule.check(ctx))
        findings = [f for f in findings if not _line_suppressed(f, lines)]
        findings.sort(key=lambda f: (f.line, f.col, f.rule))
        return findings

    def lint_file(self, path, display_path: str | None = None) -> list[Finding]:
        path = Path(path)
        display = display_path or str(path)
        try:
            source = path.read_text()
        except (OSError, UnicodeDecodeError) as exc:
            return [Finding(display, 1, 0, "io-error", str(exc))]
        return self.lint_source(source, path, display)

    def lint_paths(self, paths: Iterable) -> list[Finding]:
        findings: list[Finding] = []
        for path in iter_python_files(paths, self.config):
            findings.extend(self.lint_file(path))
        return findings


def lint_paths(paths, *, rules=None, config: LintConfig | None = None) -> list[Finding]:
    """Convenience one-shot: lint *paths* with the default engine."""
    return LintEngine(rules, config).lint_paths(paths)
