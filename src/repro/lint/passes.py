"""Registry and runner for the whole-program passes.

The file engine (:mod:`repro.lint.engine`) runs per-file rules; this
module owns everything that needs the :class:`~repro.lint.callgraph.
Project` view: the pass catalogue, one shared call-graph build per
run, and the same pragma/ordering discipline the engine applies —
``# repro-lint: disable=<rule>`` and ``repro-lint: skip-file`` work
identically for pass findings, and the combined output is sorted
``(path, line, col, rule)`` so the whole pipeline stays deterministic.

``lint_all`` is the one-stop entry the CLI and tests use: file rules
plus project passes over one path set, one build.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.callgraph import Project, ProjectPass, build_project
from repro.lint.engine import (
    FILE_PRAGMA,
    Finding,
    LintConfig,
    LintEngine,
    _line_suppressed,
)
from repro.lint.locks import LockOrderPass
from repro.lint.streams import StreamsPass
from repro.lint.taint import TaintPass
from repro.lint.units import UnitsPass


def default_passes() -> list[ProjectPass]:
    """Every registered project pass, in report order."""
    return [TaintPass(), LockOrderPass(), UnitsPass(), StreamsPass()]


def pass_names() -> list[str]:
    return [p.name for p in default_passes()]


def select_passes(names: Iterable[str] | None) -> list[ProjectPass]:
    passes = default_passes()
    if names is None:
        return passes
    wanted = list(names)
    known = {p.name for p in passes}
    unknown = set(wanted) - known
    if unknown:
        raise ValueError(
            f"unknown pass(es) {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}"
        )
    return [p for p in passes if p.name in wanted]


def run_passes(
    paths: Iterable,
    passes: Iterable[ProjectPass] | None = None,
    config: LintConfig | None = None,
    project: Project | None = None,
) -> list[Finding]:
    """Run project passes over *paths*, suppression and order applied."""
    config = config or LintConfig()
    if project is None:
        project = build_project(paths, config)
    findings: list[Finding] = []
    for pass_ in passes if passes is not None else default_passes():
        findings.extend(pass_.check(project))
    lines_of = {m.display_path: m.lines for m in project.modules.values()}
    skipped = {
        m.display_path
        for m in project.modules.values()
        if any(FILE_PRAGMA in line for line in m.lines[:10])
    }
    findings = [
        f
        for f in findings
        if f.path not in skipped
        and not _line_suppressed(f, lines_of.get(f.path, []))
    ]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_all(
    paths: Iterable,
    *,
    config: LintConfig | None = None,
    rules=None,
    passes: Iterable[ProjectPass] | None = None,
) -> list[Finding]:
    """File rules plus project passes over one path set."""
    config = config or LintConfig()
    findings = LintEngine(rules, config).lint_paths(paths)
    findings.extend(run_passes(paths, passes, config))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
