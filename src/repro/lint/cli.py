"""``repro-lint`` — the determinism linter's command line.

Usage::

    repro-lint [paths ...]                  # default: src
    repro-lint src tests --rules rng-factory,wall-clock
    repro-lint src tests --passes taint,locks
    repro-lint src --update-baseline        # pin current findings
    repro-lint src --format sarif           # SARIF 2.1.0 on stdout
    repro-lint src --sarif-out report.sarif # ...and/or to a file
    repro-lint --list-rules
    repro-lint --list-passes
    repro-lint src --dump-callgraph -       # the determinism surface
    python -m repro.lint src tests

By default every file rule *and* every whole-program pass (taint,
locks, units, streams — see ``--list-passes``) runs; ``--passes``
narrows to a subset, ``--passes none`` disables them.  Exit codes:
0 clean (modulo baseline), 1 findings, 2 usage error.  The baseline
defaults to ``.repro-lint-baseline`` in the working directory and is
only consulted when it exists; ``--no-baseline`` ignores it outright.
New findings vs the committed baseline fail the build — that is the
CI delta gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.callgraph import build_project
from repro.lint.engine import LintConfig, LintEngine, iter_python_files
from repro.lint.passes import default_passes, run_passes, select_passes
from repro.lint.rules import default_rules
from repro.lint.sarif import render_sarif

DEFAULT_BASELINE = ".repro-lint-baseline"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Determinism & simulation-correctness static analysis: bans "
            "wall-clock and entropy in sim paths, unseeded/unfactored RNG "
            "construction, unordered-set iteration, exact float equality, "
            "mutable defaults, and seedless process-pool fan-out."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--rules", default=None, metavar="NAME[,NAME...]",
        help="run only these rules (see --list-rules)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    parser.add_argument(
        "--passes", default=None, metavar="NAME[,NAME...]",
        help=(
            "run only these whole-program passes (see --list-passes); "
            "'none' disables them (default: all)"
        ),
    )
    parser.add_argument(
        "--list-passes", action="store_true",
        help="print the whole-program pass catalogue and exit",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE, metavar="FILE",
        help=f"suppression baseline file (default: {DEFAULT_BASELINE}, if present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true", help="ignore any baseline file"
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="pin every current finding into the baseline file and exit 0",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        dest="output_format",
        help="finding output format (default: text)",
    )
    parser.add_argument(
        "--sarif-out", default=None, metavar="FILE",
        help="also write a SARIF 2.1.0 report to FILE (the CI artifact)",
    )
    parser.add_argument(
        "--sim-paths", choices=("auto", "always", "never"), default="auto",
        help=(
            "sim-path classification for sim-only rules: auto = by path "
            "(tests/benchmarks are not sim code), always / never override"
        ),
    )
    parser.add_argument(
        "--dump-callgraph", default=None, metavar="FILE",
        help=(
            "dump the resolved call graph as sorted JSON to FILE ('-' = "
            "stdout) and exit; byte-identical across processes"
        ),
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in default_rules():
            scope = "sim paths only" if rule.sim_only else "all files"
            print(f"{rule.name:16} [{scope:14}] {rule.summary}")
        return 0

    if args.list_passes:
        for pass_ in default_passes():
            print(f"{pass_.name:16} {pass_.summary}")
        return 0

    select = tuple(r.strip() for r in args.rules.split(",") if r.strip()) if args.rules else None
    treat_as_sim = {"auto": None, "always": True, "never": False}[args.sim_paths]
    try:
        engine = LintEngine(config=LintConfig(select=select, treat_as_sim=treat_as_sim))
        if args.passes is None:
            passes = default_passes()
        elif args.passes.strip() == "none":
            passes = []
        else:
            passes = select_passes(
                [p.strip() for p in args.passes.split(",") if p.strip()]
            )
    except ValueError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"repro-lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    if args.dump_callgraph is not None:
        dump = json.dumps(
            build_project(args.paths, engine.config).to_dict(),
            indent=2, sort_keys=True,
        )
        if args.dump_callgraph == "-":
            print(dump)
        else:
            Path(args.dump_callgraph).write_text(dump + "\n")
        return 0

    files = list(iter_python_files(args.paths, engine.config))
    findings = []
    for path in files:
        findings.extend(engine.lint_file(path))
    if passes:
        findings.extend(run_passes(args.paths, passes, engine.config))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    baseline_path = Path(args.baseline)
    if args.update_baseline:
        count = write_baseline(findings, baseline_path)
        print(f"pinned {count} finding(s) into {baseline_path}")
        return 0

    fingerprints = set() if args.no_baseline else load_baseline(baseline_path)
    kept, suppressed, stale = apply_baseline(findings, fingerprints)

    if args.sarif_out:
        Path(args.sarif_out).write_text(render_sarif(kept) + "\n")

    if args.output_format == "sarif":
        print(render_sarif(kept))
        return 1 if kept else 0

    if args.output_format == "json":
        print(json.dumps(
            [
                {
                    "path": f.path, "line": f.line, "col": f.col,
                    "rule": f.rule, "message": f.message,
                    "fingerprint": f.fingerprint(),
                }
                for f in kept
            ],
            indent=2,
        ))
        return 1 if kept else 0

    for finding in kept:
        print(finding.render())
    notes = []
    if suppressed:
        notes.append(f"{suppressed} suppressed by baseline")
    if stale:
        notes.append(f"{len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'}")
    suffix = f" ({', '.join(notes)})" if notes else ""
    print(
        f"{len(kept)} finding(s) across {len(files)} file(s), "
        f"{len(engine.rules)} rule(s), {len(passes)} pass(es){suffix}"
    )
    return 1 if kept else 0


def console_main() -> int:  # pragma: no cover - thin wrapper
    return main()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
