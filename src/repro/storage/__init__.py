"""Database substrates: storage, indexing, concurrency control, logging.

Everything the five engine models are built from — implemented from
scratch, instrumented to emit their cache-line access streams into
transaction traces.
"""

from repro.storage.address_space import Arena, DataAddressSpace, Region
from repro.storage.art import AdaptiveRadixTree, key_to_bytes
from repro.storage.btree import BPlusTree, binary_search_probes
from repro.storage.buffer_pool import BufferPool
from repro.storage.cc_btree import CacheConsciousBTree
from repro.storage.hash_index import HashIndex, fibonacci_hash
from repro.storage.heap import HeapTable
from repro.storage.index_factory import (
    ART,
    BTREE,
    CC_BTREE,
    HASH,
    INDEX_KINDS,
    MATERIALIZE_THRESHOLD,
    make_index,
)
from repro.storage.layout_models import AnalyticART, AnalyticBTree, AnalyticHash
from repro.storage.lock_manager import LockConflict, LockManager, LockMode, compatible
from repro.storage.mvcc import MVCCStore, ValidationFailure
from repro.storage.record import LONG, STRING50, ColumnType, Schema, microbench_schema, string_type
from repro.storage.recovery import (
    CHECKPOINT,
    RecoveredState,
    analyse,
    replay,
    restore_engine,
    take_checkpoint,
    valid_prefix,
    verify_against_engine,
    write_checkpoint,
)
from repro.storage.wal import (
    LogImage,
    LogRecord,
    RECORD_HEADER_BYTES,
    WriteAheadLog,
    record_checksum,
    torn_copy,
)

__all__ = [
    "ART",
    "AdaptiveRadixTree",
    "AnalyticART",
    "AnalyticBTree",
    "AnalyticHash",
    "Arena",
    "BPlusTree",
    "BTREE",
    "BufferPool",
    "CC_BTREE",
    "CHECKPOINT",
    "CacheConsciousBTree",
    "ColumnType",
    "DataAddressSpace",
    "HASH",
    "HashIndex",
    "HeapTable",
    "INDEX_KINDS",
    "LONG",
    "LockConflict",
    "LockManager",
    "LockMode",
    "LogImage",
    "LogRecord",
    "MATERIALIZE_THRESHOLD",
    "MVCCStore",
    "RECORD_HEADER_BYTES",
    "RecoveredState",
    "Region",
    "STRING50",
    "Schema",
    "ValidationFailure",
    "WriteAheadLog",
    "analyse",
    "binary_search_probes",
    "compatible",
    "fibonacci_hash",
    "key_to_bytes",
    "make_index",
    "microbench_schema",
    "record_checksum",
    "replay",
    "restore_engine",
    "string_type",
    "take_checkpoint",
    "torn_copy",
    "valid_prefix",
    "verify_against_engine",
    "write_checkpoint",
]
