"""Index factory: one call site for materialised vs analytic indexes.

Engines ask for an index *kind* and a logical key count; below
:data:`MATERIALIZE_THRESHOLD` they get the real structure (pre-populated
with ``key_to_value`` for the dense key range), above it the analytic
layout model (see :mod:`repro.storage.layout_models`).  Both sides share
the probe/insert/delete call signature, so engine code is identical at
1 MB and 100 GB.
"""

from __future__ import annotations

from typing import Callable

from repro.storage.address_space import DataAddressSpace
from repro.storage.art import AdaptiveRadixTree
from repro.storage.btree import BPlusTree
from repro.storage.cc_btree import CacheConsciousBTree
from repro.storage.hash_index import HashIndex
from repro.storage.layout_models import AnalyticART, AnalyticBTree, AnalyticHash

MATERIALIZE_THRESHOLD = 100_000
"""Key counts at or below this build the real structure."""

BTREE = "btree"
CC_BTREE = "cc_btree"
ART = "art"
HASH = "hash"

INDEX_KINDS = (BTREE, CC_BTREE, ART, HASH)


def make_index(
    kind: str,
    name: str,
    space: DataAddressSpace,
    *,
    n_keys: int,
    key_to_value: Callable | None = None,
    key_bytes: int = 8,
    page_bytes: int = 8192,
    node_bytes: int | None = None,
    materialize_threshold: int = MATERIALIZE_THRESHOLD,
    search_line_cap: int | None = None,
):
    """Build an index of *kind* over a logical population of *n_keys*.

    ``key_to_value`` defines the pre-populated contents (dense integer
    keys ``0..n_keys-1`` map through it); materialised structures are
    populated eagerly, analytic ones resolve through it lazily.
    """
    if kind not in INDEX_KINDS:
        raise ValueError(f"unknown index kind {kind!r}; expected one of {INDEX_KINDS}")
    if n_keys < 1:
        raise ValueError("n_keys must be >= 1")

    materialize = n_keys <= materialize_threshold
    if materialize:
        if kind == BTREE:
            index = BPlusTree(
                name, space, page_bytes=page_bytes, key_bytes=key_bytes,
                search_line_cap=search_line_cap,
            )
        elif kind == CC_BTREE:
            index = CacheConsciousBTree(name, space, node_bytes=node_bytes, key_bytes=key_bytes)
        elif kind == ART:
            index = AdaptiveRadixTree(name, space, key_bytes=key_bytes)
        else:
            index = HashIndex(name, space, expected_keys=n_keys)
        if key_to_value is not None:
            for key in range(n_keys):
                index.insert(key, key_to_value(key))
        return index

    if kind == BTREE:
        return AnalyticBTree(
            name, space, n_keys=n_keys, key_to_value=key_to_value,
            page_bytes=page_bytes, search_line_cap=search_line_cap,
        )
    if kind == CC_BTREE:
        node = node_bytes or CacheConsciousBTree.DEFAULT_NODE_BYTES
        return AnalyticBTree(
            name, space, n_keys=n_keys, key_to_value=key_to_value,
            page_bytes=node, search_line_cap=search_line_cap,
        )
    if kind == ART:
        return AnalyticART(name, space, n_keys=n_keys, key_to_value=key_to_value)
    return AnalyticHash(name, space, n_keys=n_keys, key_to_value=key_to_value)
