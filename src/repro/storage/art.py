"""Adaptive Radix Tree (ART) — HyPer's index [Leis et al., ICDE 2013].

A radix tree over the big-endian bytes of the key, with the two ART
space tricks that give it its cache behaviour:

* **adaptive node sizes** — inner nodes grow through Node4 → Node16 →
  Node48 → Node256 as fan-out increases, so sparsely populated levels
  stay within one or two cache lines;
* **path compression** — one-child chains collapse into a per-node
  prefix, so tree height tracks key distribution, not key length.

Growth replaces the node (fresh allocation), as in the paper's
implementation.  Probes emit one serially-dependent line per visited
node plus the child-slot line for the large node kinds whose arrays
span lines — that is why ART probes touch so few lines ("adaptive
compact node sizes", Section 4.1.3).
"""

from __future__ import annotations

from repro.core.spec import CACHE_LINE_BYTES
from repro.core.trace import AccessTrace
from repro.storage.address_space import Arena, DataAddressSpace

NODE4, NODE16, NODE48, NODE256 = 4, 16, 48, 256

_NODE_BYTES = {NODE4: 64, NODE16: 176, NODE48: 704, NODE256: 2096}
_HEADER_BYTES = 16
_LEAF_BYTES = 32
_GROW_ORDER = {NODE4: NODE16, NODE16: NODE48, NODE48: NODE256}


def key_to_bytes(key: int | bytes | str, key_bytes: int = 8) -> bytes:
    """Canonical byte string for a key (big-endian ints sort correctly)."""
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode("utf-8")
    if key < 0:
        raise ValueError("ART keys must be non-negative integers")
    return key.to_bytes(key_bytes, "big")


class _Leaf:
    __slots__ = ("key", "value", "offset")

    def __init__(self, key: bytes, value, offset: int) -> None:
        self.key = key
        self.value = value
        self.offset = offset


class _Inner:
    __slots__ = ("kind", "prefix", "children", "offset")

    def __init__(self, kind: int, prefix: bytes, offset: int) -> None:
        self.kind = kind
        self.prefix = prefix
        self.children: dict[int, object] = {}
        self.offset = offset

    @property
    def full(self) -> bool:
        return len(self.children) >= self.kind


class AdaptiveRadixTree:
    """ART mapping fixed-width byte keys to values."""

    def __init__(self, name: str, space: DataAddressSpace, *, key_bytes: int = 8) -> None:
        self.name = name
        self.key_bytes = key_bytes
        self._arena: Arena = space.arena(f"art:{name}")
        self._root: object | None = None
        self.n_keys = 0

    # -- allocation ------------------------------------------------------------

    def _new_inner(self, kind: int, prefix: bytes) -> _Inner:
        return _Inner(kind, prefix, self._arena.alloc(_NODE_BYTES[kind]))

    def _new_leaf(self, key: bytes, value) -> _Leaf:
        return _Leaf(key, value, self._arena.alloc(_LEAF_BYTES))

    def _grow(self, node: _Inner) -> _Inner:
        bigger = self._new_inner(_GROW_ORDER[node.kind], node.prefix)
        bigger.children = node.children
        return bigger

    # -- trace emission ----------------------------------------------------------

    def _emit_visit(
        self, node, byte: int | None, trace: AccessTrace | None, mod: int
    ) -> None:
        """One dependent line per node visit.

        ART implementations tag the node kind in the child pointer, so
        the common descent path issues exactly one load per node: the
        child slot itself (large nodes) or the header line (small nodes
        and leaves).
        """
        if trace is None:
            return
        base = self._arena.line_of(node.offset)
        if isinstance(node, _Inner) and byte is not None:
            slot_off = self._slot_offset(node.kind, byte)
            trace.load(base + slot_off // CACHE_LINE_BYTES, mod, serial=True)
        else:
            trace.load(base, mod, serial=True)

    @staticmethod
    def _slot_offset(kind: int, byte: int) -> int:
        """Byte offset of the child slot consulted for *byte*."""
        if kind in (NODE4, NODE16):
            # key array + child array both within the first line(s);
            # model the child-pointer read at a deterministic slot.
            return _HEADER_BYTES + (byte % kind) * 8
        if kind == NODE48:
            # 256-byte child index, then 48 pointers.
            return _HEADER_BYTES + 256 + (byte % 48) * 8
        return _HEADER_BYTES + byte * 8  # NODE256: direct pointer array

    # -- operations ----------------------------------------------------------------

    def probe(self, key, trace: AccessTrace | None = None, mod: int = 0):
        """Point lookup; returns the value or None."""
        kb = key_to_bytes(key, self.key_bytes)
        node = self._root
        depth = 0
        while node is not None:
            if isinstance(node, _Leaf):
                self._emit_visit(node, None, trace, mod)
                return node.value if node.key == kb else None
            if node.prefix and kb[depth : depth + len(node.prefix)] != node.prefix:
                self._emit_visit(node, None, trace, mod)
                return None
            depth += len(node.prefix)
            if depth >= len(kb):
                return None
            byte = kb[depth]
            self._emit_visit(node, byte, trace, mod)
            node = node.children.get(byte)
            depth += 1
        return None

    def probe_path(self, key) -> list[int]:
        """Byte offsets of nodes a probe visits (layout verification)."""
        kb = key_to_bytes(key, self.key_bytes)
        path: list[int] = []
        node = self._root
        depth = 0
        while node is not None:
            path.append(node.offset)
            if isinstance(node, _Leaf):
                return path
            if node.prefix and kb[depth : depth + len(node.prefix)] != node.prefix:
                return path
            depth += len(node.prefix)
            if depth >= len(kb):
                return path
            node = node.children.get(kb[depth])
            depth += 1
        return path

    def insert(self, key, value, trace: AccessTrace | None = None, mod: int = 0) -> None:
        kb = key_to_bytes(key, self.key_bytes)
        if self._root is None:
            self._root = self._new_leaf(kb, value)
            self.n_keys += 1
            if trace is not None:
                trace.store(self._arena.line_of(self._root.offset), mod)
            return
        self._root = self._insert(self._root, kb, value, 0, trace, mod)

    def _insert(self, node, kb: bytes, value, depth: int, trace, mod):
        if isinstance(node, _Leaf):
            self._emit_visit(node, None, trace, mod)
            if node.key == kb:
                node.value = value
                if trace is not None:
                    trace.store(self._arena.line_of(node.offset), mod)
                return node
            # Split: new inner node with the common prefix of both keys.
            common = 0
            while (
                depth + common < len(kb)
                and depth + common < len(node.key)
                and kb[depth + common] == node.key[depth + common]
            ):
                common += 1
            inner = self._new_inner(NODE4, kb[depth : depth + common])
            new_leaf = self._new_leaf(kb, value)
            inner.children[node.key[depth + common]] = node
            inner.children[kb[depth + common]] = new_leaf
            self.n_keys += 1
            if trace is not None:
                trace.store(self._arena.line_of(inner.offset), mod)
                trace.store(self._arena.line_of(new_leaf.offset), mod)
            return inner

        # Inner node: check the compressed prefix.
        prefix = node.prefix
        match = 0
        while (
            match < len(prefix)
            and depth + match < len(kb)
            and kb[depth + match] == prefix[match]
        ):
            match += 1
        if match < len(prefix):
            # Prefix mismatch: split the prefix.
            self._emit_visit(node, None, trace, mod)
            parent = self._new_inner(NODE4, prefix[:match])
            node.prefix = prefix[match + 1 :]
            parent.children[prefix[match]] = node
            new_leaf = self._new_leaf(kb, value)
            parent.children[kb[depth + match]] = new_leaf
            self.n_keys += 1
            if trace is not None:
                trace.store(self._arena.line_of(parent.offset), mod)
                trace.store(self._arena.line_of(new_leaf.offset), mod)
            return parent

        depth += len(prefix)
        byte = kb[depth]
        self._emit_visit(node, byte, trace, mod)
        child = node.children.get(byte)
        if child is None:
            if node.full:
                node = self._grow(node)
            leaf = self._new_leaf(kb, value)
            node.children[byte] = leaf
            self.n_keys += 1
            if trace is not None:
                trace.store(self._arena.line_of(node.offset), mod)
                trace.store(self._arena.line_of(leaf.offset), mod)
        else:
            node.children[byte] = self._insert(child, kb, value, depth + 1, trace, mod)
        return node

    def delete(self, key, trace: AccessTrace | None = None, mod: int = 0) -> bool:
        """Remove *key* (leaf unlink; inner nodes are not shrunk, as in
        implementations that defer structural cleanup).  True if present."""
        kb = key_to_bytes(key, self.key_bytes)
        parent: _Inner | None = None
        parent_byte = -1
        node = self._root
        depth = 0
        while node is not None:
            if isinstance(node, _Leaf):
                self._emit_visit(node, None, trace, mod)
                if node.key != kb:
                    return False
                if parent is None:
                    self._root = None
                else:
                    del parent.children[parent_byte]
                    if trace is not None:
                        trace.store(self._arena.line_of(parent.offset), mod)
                self.n_keys -= 1
                return True
            if node.prefix and kb[depth : depth + len(node.prefix)] != node.prefix:
                return False
            depth += len(node.prefix)
            if depth >= len(kb):
                return False
            byte = kb[depth]
            self._emit_visit(node, byte, trace, mod)
            parent, parent_byte = node, byte
            node = node.children.get(byte)
            depth += 1
        return False

    def range_scan(self, key, n: int, trace: AccessTrace | None = None, mod: int = 0):
        """Up to *n* (key, value) pairs with key >= *key*, in key order.

        Radix trees are naturally ordered, so a scan is an in-order walk
        from the seek point; each visited leaf costs its line.
        """
        kb = key_to_bytes(key, self.key_bytes)
        out: list[tuple] = []

        def walk(node) -> bool:
            if node is None:
                return True
            if isinstance(node, _Leaf):
                if node.key >= kb:
                    if trace is not None:
                        trace.load(self._arena.line_of(node.offset), mod)
                    out.append((node.key, node.value))
                return len(out) < n
            for byte in sorted(node.children):
                if not walk(node.children[byte]):
                    return False
            return True

        walk(self._root)
        return out

    def height(self) -> int:
        """Maximum node depth (leaves included)."""

        def depth_of(node) -> int:
            if node is None or isinstance(node, _Leaf):
                return 1 if node is not None else 0
            return 1 + max((depth_of(c) for c in node.children.values()), default=0)

        return depth_of(self._root)

    def items(self):
        """All (key bytes, value) pairs in key order (test helper)."""

        def walk(node):
            if node is None:
                return
            if isinstance(node, _Leaf):
                yield (node.key, node.value)
                return
            for byte in sorted(node.children):
                yield from walk(node.children[byte])

        yield from walk(self._root)

    def __len__(self) -> int:
        return self.n_keys
