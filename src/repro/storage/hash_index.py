"""Hash index with bucket array + chaining (DBMS M's primary index).

"Hash index... directly goes to the hash bucket that corresponds to the
probed keys.  Therefore, hash index requires fewer random data requests
incurring fewer data misses" (Section 6.1).  The structure here is the
classic in-memory layout: a contiguous bucket-pointer array sized for a
target load factor, with per-bucket chains of entry nodes.

A probe costs one serially-dependent line for the bucket slot, then one
line per chain node walked — usually one, occasionally more, with chain
lengths following the actual collision behaviour of the inserted keys.
"""

from __future__ import annotations

from repro.core.trace import AccessTrace
from repro.storage.address_space import Arena, DataAddressSpace

_ENTRY_BYTES = 32  # key, value, next pointer, padding
_SLOT_BYTES = 8


def fibonacci_hash(key_hash: int, n_buckets: int) -> int:
    """Multiplicative hashing — deterministic and well-spread."""
    return ((key_hash * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF) % n_buckets


class _Entry:
    __slots__ = ("key", "value", "next", "offset")

    def __init__(self, key, value, offset: int) -> None:
        self.key = key
        self.value = value
        self.next: "_Entry | None" = None
        self.offset = offset


class HashIndex:
    """Chained hash table over the simulated address space."""

    def __init__(
        self,
        name: str,
        space: DataAddressSpace,
        *,
        expected_keys: int,
        load_factor: float = 0.75,
    ) -> None:
        if expected_keys <= 0:
            raise ValueError("expected_keys must be positive")
        if not 0 < load_factor <= 4:
            raise ValueError("load_factor out of range")
        self.name = name
        self.n_buckets = max(64, int(expected_keys / load_factor))
        self._bucket_region = space.region(
            f"hash:{name}:buckets", self.n_buckets * _SLOT_BYTES
        )
        self._arena: Arena = space.arena(f"hash:{name}:entries")
        self._buckets: dict[int, _Entry] = {}
        self.n_keys = 0

    # -- addressing --------------------------------------------------------------

    def _bucket_line(self, bucket: int) -> int:
        return self._bucket_region.line(bucket * _SLOT_BYTES)

    def bucket_of(self, key) -> int:
        return fibonacci_hash(hash(key), self.n_buckets)

    # -- operations ----------------------------------------------------------------

    def probe(self, key, trace: AccessTrace | None = None, mod: int = 0):
        """Point lookup; returns the value or None."""
        bucket = self.bucket_of(key)
        if trace is not None:
            trace.load(self._bucket_line(bucket), mod, serial=True)
        entry = self._buckets.get(bucket)
        while entry is not None:
            if trace is not None:
                trace.load(self._arena.line_of(entry.offset), mod, serial=True)
            if entry.key == key:
                return entry.value
            entry = entry.next
        return None

    def probe_path(self, key) -> list[int]:
        """(bucket line, entry offsets...) a probe touches — for layout tests."""
        bucket = self.bucket_of(key)
        path = [self._bucket_line(bucket)]
        entry = self._buckets.get(bucket)
        while entry is not None:
            path.append(self._arena.line_of(entry.offset))
            if entry.key == key:
                break
            entry = entry.next
        return path

    def insert(self, key, value, trace: AccessTrace | None = None, mod: int = 0) -> None:
        """Insert or overwrite *key*."""
        bucket = self.bucket_of(key)
        if trace is not None:
            trace.load(self._bucket_line(bucket), mod, serial=True)
        entry = self._buckets.get(bucket)
        while entry is not None:
            if trace is not None:
                trace.load(self._arena.line_of(entry.offset), mod, serial=True)
            if entry.key == key:
                entry.value = value
                if trace is not None:
                    trace.store(self._arena.line_of(entry.offset), mod)
                return
            entry = entry.next
        new = _Entry(key, value, self._arena.alloc(_ENTRY_BYTES))
        new.next = self._buckets.get(bucket)
        self._buckets[bucket] = new
        self.n_keys += 1
        if trace is not None:
            trace.store(self._arena.line_of(new.offset), mod)
            trace.store(self._bucket_line(bucket), mod)

    def delete(self, key, trace: AccessTrace | None = None, mod: int = 0) -> bool:
        bucket = self.bucket_of(key)
        if trace is not None:
            trace.load(self._bucket_line(bucket), mod, serial=True)
        entry = self._buckets.get(bucket)
        prev: _Entry | None = None
        while entry is not None:
            if trace is not None:
                trace.load(self._arena.line_of(entry.offset), mod, serial=True)
            if entry.key == key:
                if prev is None:
                    if entry.next is None:
                        del self._buckets[bucket]
                    else:
                        self._buckets[bucket] = entry.next
                    if trace is not None:
                        trace.store(self._bucket_line(bucket), mod)
                else:
                    prev.next = entry.next
                    if trace is not None:
                        trace.store(self._arena.line_of(prev.offset), mod)
                self.n_keys -= 1
                return True
            prev, entry = entry, entry.next
        return False

    def range_scan(self, key, n: int, trace: AccessTrace | None = None, mod: int = 0):
        """Scan emulation via successive dense-key probes (see the
        analytic model's note: hash indexes cannot scan in key order)."""
        out = []
        if isinstance(key, int):
            for k in range(key, key + n):
                value = self.probe(k, trace, mod)
                if value is not None:
                    out.append((k, value))
        return out

    @property
    def height(self) -> int:
        """Probe depth analogue: bucket slot + chain entry."""
        return 2

    def chain_length(self, key) -> int:
        """Chain nodes walked to find *key* (collision diagnostics)."""
        return max(0, len(self.probe_path(key)) - 1)

    def items(self):
        for entry in self._buckets.values():
            while entry is not None:
                yield (entry.key, entry.value)
                entry = entry.next

    def __len__(self) -> int:
        return self.n_keys
