"""Cache-conscious B+tree.

VoltDB "uses traditional B-tree with node size tuned to the last-level
cache line size" [Stonebraker 2007] and DBMS M implements "a variant of
cache-conscious B-tree index similar to the Bw-tree" (Section 3).  The
micro-architectural property that matters is small nodes: each level of
a probe costs one cache line instead of the many lines a binary search
walks inside an 8 KB page, and there is no page-latch traffic.

Implementation-wise this is the :class:`~repro.storage.btree.BPlusTree`
with cache-line-multiple nodes; the class exists so engines state their
index choice explicitly and so the node-size ablation has two named
contestants.
"""

from __future__ import annotations

from repro.core.spec import CACHE_LINE_BYTES
from repro.storage.address_space import DataAddressSpace
from repro.storage.btree import BPlusTree, NODE_HEADER_BYTES


class CacheConsciousBTree(BPlusTree):
    """B+tree whose nodes span a handful of cache lines."""

    DEFAULT_NODE_BYTES = 4 * CACHE_LINE_BYTES  # 256 B: header + ~12 entries

    def __init__(
        self,
        name: str,
        space: DataAddressSpace,
        *,
        node_bytes: int | None = None,
        key_bytes: int = 8,
        value_bytes: int = 8,
    ) -> None:
        node_bytes = node_bytes or self.DEFAULT_NODE_BYTES
        min_bytes = NODE_HEADER_BYTES + 2 * (key_bytes + value_bytes)
        if node_bytes < min_bytes:
            raise ValueError(f"node_bytes must be >= {min_bytes}")
        if node_bytes % CACHE_LINE_BYTES:
            raise ValueError("node_bytes must be a multiple of the cache-line size")
        super().__init__(
            name,
            space,
            page_bytes=node_bytes,
            key_bytes=key_bytes,
            value_bytes=value_bytes,
        )
