"""Multi-version concurrency control with optimistic validation (DBMS M).

Systems that avoid partitioning "rely on optimistic and multiversion
concurrency control" [Bernstein & Goodman 1983; Larson 2013]
(Section 2.1).  The model here is Hekaton-flavoured:

* every write creates a new version holding (begin_ts, end_ts, value),
  linked off the row's version chain;
* readers walk the chain to the visible version for their begin
  timestamp (each hop a serially-dependent line load);
* at commit, the read set is validated — if any read row has grown a
  newer committed version, the transaction aborts (first-committer
  wins).

The chain storage is a real data structure over the simulated address
space, so version walks and validation produce the extra data traffic
the paper attributes to the MVCC engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.trace import AccessTrace
from repro.storage.address_space import Arena, DataAddressSpace

_VERSION_BYTES = 64
INFINITY_TS = 1 << 62


class ValidationFailure(Exception):
    """OCC commit-time validation failed (write-write / read-write race)."""

    def __init__(self, row, txn_id: int) -> None:
        super().__init__(f"txn {txn_id} failed validation on row {row!r}")
        self.row = row
        self.txn_id = txn_id


@dataclass
class _Version:
    begin_ts: int
    end_ts: int
    value: object
    offset: int
    prev: "_Version | None" = None


class MVCCStore:
    """Per-table version-chain store with a global timestamp counter."""

    def __init__(self, name: str, space: DataAddressSpace) -> None:
        self.name = name
        self._arena: Arena = space.arena(f"mvcc:{name}")
        self._chains: dict[object, _Version] = {}
        self._clock = 1
        self.aborts = 0
        self.commits = 0

    # -- timestamps --------------------------------------------------------------

    def begin_timestamp(self) -> int:
        self._clock += 1
        return self._clock

    # -- version access ------------------------------------------------------------

    def read(
        self,
        row_key,
        begin_ts: int,
        trace: AccessTrace | None = None,
        mod: int = 0,
        *,
        default=None,
    ):
        """Visible value of *row_key* at *begin_ts* (chain walk)."""
        version = self._chains.get(row_key)
        while version is not None:
            if trace is not None:
                trace.load(self._arena.line_of(version.offset), mod, serial=True)
            if version.begin_ts <= begin_ts < version.end_ts:
                return version.value
            version = version.prev
        return default

    def latest_committed_ts(self, row_key) -> int:
        head = self._chains.get(row_key)
        return head.begin_ts if head is not None else 0

    def install(
        self,
        row_key,
        value,
        commit_ts: int,
        trace: AccessTrace | None = None,
        mod: int = 0,
    ) -> None:
        """Install a new committed version at *commit_ts*."""
        head = self._chains.get(row_key)
        version = _Version(
            begin_ts=commit_ts,
            end_ts=INFINITY_TS,
            value=value,
            offset=self._arena.alloc(_VERSION_BYTES),
            prev=head,
        )
        if head is not None:
            head.end_ts = commit_ts
            if trace is not None:
                trace.store(self._arena.line_of(head.offset), mod)
        self._chains[row_key] = version
        if trace is not None:
            trace.store(self._arena.line_of(version.offset), mod)

    def validate(
        self,
        txn_id: int,
        begin_ts: int,
        read_set: dict,
        trace: AccessTrace | None = None,
        mod: int = 0,
    ) -> None:
        """First-committer-wins validation of *read_set* (key -> seen ts)."""
        for row_key, seen_ts in read_set.items():
            head = self._chains.get(row_key)
            if trace is not None and head is not None:
                trace.load(self._arena.line_of(head.offset), mod, serial=True)
            latest = head.begin_ts if head is not None else 0
            if latest != seen_ts and latest > begin_ts:
                self.aborts += 1
                raise ValidationFailure(row_key, txn_id)

    def chain_length(self, row_key) -> int:
        n = 0
        version = self._chains.get(row_key)
        while version is not None:
            n += 1
            version = version.prev
        return n

    def garbage_collect(self, oldest_active_ts: int) -> int:
        """Drop versions no active transaction can see; returns count."""
        dropped = 0
        for key, head in self._chains.items():
            version = head
            while version.prev is not None:
                if version.prev.end_ts <= oldest_active_ts:
                    dropped += self._count(version.prev)
                    version.prev = None
                    break
                version = version.prev
        return dropped

    @staticmethod
    def _count(version: "_Version | None") -> int:
        n = 0
        while version is not None:
            n += 1
            version = version.prev
        return n
