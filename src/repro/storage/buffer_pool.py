"""Buffer pool — the disk-based engines' page cache.

The paper's point about the buffer pool is not I/O (all data is
memory-resident and logging is asynchronous) but *overhead*: every page
access goes through a hash page-table probe, frame metadata, pin/unpin
reference counting and an LRU update [Harizopoulos 2008].  Those are
real data accesses (page-table buckets, frame headers) and real code
(the buffer-pool module footprint), and they are exactly what in-memory
engines delete.

Pages here are identified by (table/space id, page number); fix() pins
a frame and emits the page-table + frame-header traffic.  Since the
working set is memory-resident, fixes hit after warm-up — the cost the model charges is the metadata
traffic, matching the paper's setting.
"""

from __future__ import annotations

from repro.core.trace import AccessTrace
from repro.storage.address_space import DataAddressSpace
from repro.storage.hash_index import fibonacci_hash

_FRAME_HEADER_BYTES = 64
_PT_SLOT_BYTES = 8


class BufferPoolStats:
    __slots__ = ("fixes", "hits", "misses", "evictions")

    def __init__(self) -> None:
        self.fixes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class BufferPool:
    """Frame table + hashed page table with LRU replacement."""

    def __init__(
        self,
        name: str,
        space: DataAddressSpace,
        *,
        n_frames: int = 1 << 16,
        page_bytes: int = 8192,
    ) -> None:
        if n_frames <= 0:
            raise ValueError("n_frames must be positive")
        self.name = name
        self.n_frames = n_frames
        self.page_bytes = page_bytes
        self._pt_region = space.region(f"bp:{name}:pagetable", 2 * n_frames * _PT_SLOT_BYTES)
        self._frame_region = space.region(
            f"bp:{name}:frames", n_frames * _FRAME_HEADER_BYTES
        )
        # page id -> frame index; dict order is LRU order.
        self._frames: dict[tuple[int, int], int] = {}
        self._pins: dict[tuple[int, int], int] = {}
        self._free: list[int] = list(range(n_frames - 1, -1, -1))
        self.stats = BufferPoolStats()

    def _emit_metadata(self, page: tuple[int, int], frame: int, trace, mod) -> None:
        if trace is None:
            return
        bucket = fibonacci_hash(hash(page), 2 * self.n_frames)
        trace.load(self._pt_region.line(bucket * _PT_SLOT_BYTES), mod, serial=True)
        # Frame header read-modify-write: pin count + LRU stamp.
        frame_line = self._frame_region.line(frame * _FRAME_HEADER_BYTES)
        trace.load(frame_line, mod, serial=True)
        trace.store(frame_line, mod)

    def fix(
        self, space_id: int, page_no: int, trace: AccessTrace | None = None, mod: int = 0
    ) -> int:
        """Pin a page; returns its frame index."""
        page = (space_id, page_no)
        self.stats.fixes += 1
        frame = self._frames.pop(page, None)
        if frame is not None:
            self.stats.hits += 1
            self._frames[page] = frame  # refresh LRU position
        else:
            self.stats.misses += 1
            frame = self._allocate_frame()
            self._frames[page] = frame
        self._pins[page] = self._pins.get(page, 0) + 1
        self._emit_metadata(page, frame, trace, mod)
        return frame

    def unfix(self, space_id: int, page_no: int, trace: AccessTrace | None = None, mod: int = 0) -> None:
        page = (space_id, page_no)
        pins = self._pins.get(page, 0)
        if pins <= 0:
            raise RuntimeError(f"unfix of unpinned page {page}")
        if pins == 1:
            del self._pins[page]
        else:
            self._pins[page] = pins - 1
        if trace is not None:
            frame = self._frames[page]
            trace.store(self._frame_region.line(frame * _FRAME_HEADER_BYTES), mod)

    def _allocate_frame(self) -> int:
        if self._free:
            return self._free.pop()
        # Evict the LRU unpinned page.
        for page, frame in self._frames.items():
            if self._pins.get(page, 0) == 0:
                del self._frames[page]
                self.stats.evictions += 1
                return frame
        raise RuntimeError("buffer pool exhausted: all frames pinned")

    def is_resident(self, space_id: int, page_no: int) -> bool:
        return (space_id, page_no) in self._frames

    @property
    def hit_ratio(self) -> float:
        return self.stats.hits / self.stats.fixes if self.stats.fixes else 0.0
